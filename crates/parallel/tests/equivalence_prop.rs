//! Property test: for *random* meshes, ensemble sizes, localization radii
//! and S-EnKF parameterizations, the parallel analyses are identical to the
//! serial point-wise reference.

use enkf_core::{serial_enkf, LocalAnalysis};
use enkf_data::{write_ensemble, ScenarioBuilder};
use enkf_grid::{FileLayout, LocalizationRadius, Mesh};
use enkf_parallel::{AssimilationSetup, PEnkf, SEnkf};
use enkf_pfs::{FileStore, ScratchDir};
use enkf_tuning::Params;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    mesh: Mesh,
    members: usize,
    radius: LocalizationRadius,
    params: Params,
    seed: u64,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    // Mesh extents chosen with guaranteed divisors for (nsdx, nsdy, L).
    (
        2usize..=4,
        2usize..=3,
        1usize..=2,
        1usize..=2,
        0usize..=2,
        0usize..=2,
        3usize..=6,
        any::<u64>(),
    )
        .prop_map(|(nsdx, nsdy, layers, cells, xi, eta, members, seed)| {
            let mesh = Mesh::new(nsdx * 3, nsdy * layers * cells);
            // n_cg must divide members.
            let ncg = if members % 2 == 0 { 2 } else { 1 };
            Case {
                mesh,
                members,
                radius: LocalizationRadius { xi, eta },
                params: Params {
                    nsdx,
                    nsdy,
                    layers,
                    ncg,
                },
                seed,
            }
        })
}

proptest! {
    // Each case spins up real threads and writes real files; keep the case
    // count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_variants_equal_serial_reference(case in case_strategy()) {
        let scenario = ScenarioBuilder::new(case.mesh)
            .members(case.members)
            .observation_stride(2)
            .seed(case.seed)
            .build();
        let scratch = ScratchDir::new("equiv-prop").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(case.mesh, 8)).unwrap();
        write_ensemble(&store, &scenario.ensemble).unwrap();
        let setup = AssimilationSetup {
            store: &store,
            members: case.members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(case.radius),
        };
        let reference =
            serial_enkf(&scenario.ensemble, &scenario.observations, case.radius).unwrap();

        let (p, _) = PEnkf { nsdx: case.params.nsdx, nsdy: case.params.nsdy }
            .run(&setup)
            .unwrap();
        prop_assert!(
            p.states().approx_eq(reference.states(), 1e-12),
            "P-EnKF diverged for {case:?}"
        );

        let (s, report) = SEnkf::new(case.params).run(&setup).unwrap();
        prop_assert!(
            s.states().approx_eq(reference.states(), 1e-12),
            "S-EnKF diverged for {case:?}"
        );
        prop_assert_eq!(report.num_io_ranks, case.params.c1());
        prop_assert_eq!(report.num_compute_ranks, case.params.c2());
    }
}
