//! Phase timing reports shared by the real and modeled executors.

use std::time::Instant;

/// Wall/virtual time spent in each phase, summed over the ranks of one
/// class (compute or I/O). The first four categories are exactly the
/// stacked components of the paper's Figure 9; `fault` is the time injected
/// faults and their recovery (failed attempts, retry backoffs) consumed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// File reading.
    pub read: f64,
    /// Data communication.
    pub comm: f64,
    /// Local analysis computation.
    pub compute: f64,
    /// Waiting (dependency stalls, resource queueing, blocked receives).
    pub wait: f64,
    /// Injected faults and recovery actions (zero on a fault-free run).
    pub fault: f64,
}

impl PhaseBreakdown {
    /// Sum of all phases.
    pub fn total(&self) -> f64 {
        self.read + self.comm + self.compute + self.wait + self.fault
    }

    /// Elementwise accumulate.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        self.read += other.read;
        self.comm += other.comm;
        self.compute += other.compute;
        self.wait += other.wait;
        self.fault += other.fault;
    }

    /// Divide every phase by `n` (e.g. to get a per-rank mean).
    pub fn scaled(&self, factor: f64) -> PhaseBreakdown {
        PhaseBreakdown {
            read: self.read * factor,
            comm: self.comm * factor,
            compute: self.compute * factor,
            wait: self.wait * factor,
            fault: self.fault * factor,
        }
    }

    /// Fraction of the total spent reading (Figure 1's I/O share, with
    /// `comm` counted toward I/O).
    pub fn io_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.read + self.comm) / t
        }
    }

    /// Project execution-trace spans into the four-phase breakdown by
    /// summing durations per operation kind. Both executors' reports are
    /// built this way, making the trace the single source of truth.
    pub fn from_spans<'a>(spans: impl IntoIterator<Item = &'a enkf_trace::Span>) -> Self {
        let mut totals = enkf_trace::PhaseTotals::default();
        for s in spans {
            totals.add(s);
        }
        totals.into()
    }
}

impl From<enkf_trace::PhaseTotals> for PhaseBreakdown {
    fn from(t: enkf_trace::PhaseTotals) -> Self {
        PhaseBreakdown {
            read: t.read,
            comm: t.comm,
            compute: t.compute,
            wait: t.wait,
            fault: t.fault,
        }
    }
}

/// The result of one real (threaded) parallel run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionReport {
    /// Phase totals over compute ranks.
    pub compute_ranks: PhaseBreakdown,
    /// Phase totals over dedicated I/O ranks (empty for P-EnKF/L-EnKF).
    pub io_ranks: PhaseBreakdown,
    /// Number of compute ranks.
    pub num_compute_ranks: usize,
    /// Number of dedicated I/O ranks.
    pub num_io_ranks: usize,
    /// End-to-end wall time of the run, seconds.
    pub wall_time: f64,
    /// Ensemble members dropped by degraded-mode execution (ascending;
    /// empty on a fault-free run). The analysis covers the surviving
    /// `members − dropped_members.len()` columns.
    pub dropped_members: Vec<usize>,
}

impl ExecutionReport {
    /// Per-compute-rank mean phases.
    pub fn compute_mean(&self) -> PhaseBreakdown {
        if self.num_compute_ranks == 0 {
            PhaseBreakdown::default()
        } else {
            self.compute_ranks
                .scaled(1.0 / self.num_compute_ranks as f64)
        }
    }

    /// Per-I/O-rank mean phases.
    pub fn io_mean(&self) -> PhaseBreakdown {
        if self.num_io_ranks == 0 {
            PhaseBreakdown::default()
        } else {
            self.io_ranks.scaled(1.0 / self.num_io_ranks as f64)
        }
    }
}

/// A per-rank stopwatch used by the real executors.
#[derive(Debug)]
pub struct PhaseTimer {
    /// Accumulated phases.
    pub phases: PhaseBreakdown,
    started: Instant,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// Start a fresh timer.
    pub fn new() -> Self {
        PhaseTimer {
            phases: PhaseBreakdown::default(),
            started: Instant::now(),
        }
    }

    /// Time a closure and charge it to the given accessor.
    pub fn measure<T>(
        &mut self,
        slot: impl FnOnce(&mut PhaseBreakdown) -> &mut f64,
        f: impl FnOnce() -> T,
    ) -> T {
        let t0 = Instant::now();
        let out = f();
        *slot(&mut self.phases) += t0.elapsed().as_secs_f64();
        out
    }

    /// Seconds since the timer was created.
    pub fn elapsed(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = PhaseBreakdown {
            read: 1.0,
            comm: 2.0,
            compute: 3.0,
            wait: 4.0,
            fault: 0.0,
        };
        assert_eq!(a.total(), 10.0);
        a.merge(&PhaseBreakdown {
            read: 0.5,
            comm: 0.5,
            compute: 0.5,
            wait: 0.5,
            fault: 0.25,
        });
        assert_eq!(a.total(), 12.25);
        assert_eq!(a.read, 1.5);
        assert_eq!(a.fault, 0.25);
    }

    #[test]
    fn io_fraction() {
        let p = PhaseBreakdown {
            read: 3.0,
            comm: 1.0,
            compute: 4.0,
            wait: 0.0,
            fault: 0.0,
        };
        assert!((p.io_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(PhaseBreakdown::default().io_fraction(), 0.0);
    }

    #[test]
    fn report_means() {
        let rep = ExecutionReport {
            compute_ranks: PhaseBreakdown {
                read: 8.0,
                comm: 0.0,
                compute: 4.0,
                wait: 0.0,
                fault: 0.0,
            },
            io_ranks: PhaseBreakdown::default(),
            num_compute_ranks: 4,
            num_io_ranks: 0,
            wall_time: 1.0,
            dropped_members: vec![],
        };
        assert_eq!(rep.compute_mean().read, 2.0);
        assert_eq!(rep.io_mean(), PhaseBreakdown::default());
    }

    #[test]
    fn timer_accumulates_into_slots() {
        let mut t = PhaseTimer::new();
        let v = t.measure(
            |p| &mut p.compute,
            || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                42
            },
        );
        assert_eq!(v, 42);
        assert!(t.phases.compute >= 0.004, "compute {}", t.phases.compute);
        assert_eq!(t.phases.read, 0.0);
        assert!(t.elapsed() >= t.phases.compute);
    }
}
