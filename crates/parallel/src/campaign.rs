//! Supervised multi-cycle assimilation campaigns with crash recovery.
//!
//! A *campaign* runs K forecast–observe–analyze cycles of a
//! [`CycledExperiment`] through one of the parallel executors
//! (L/P/S-EnKF), checkpointing the resumable state after every cycle via
//! [`enkf_ckpt::CheckpointStore`]. The supervisor wraps each cycle's
//! `run_faulted` call and turns substrate failures — rank crashes, helper
//! thread deaths, retry exhaustion, receive timeouts — into *recoveries*:
//! tear the cycle down, restore the last durable checkpoint **from disk**,
//! and re-run under an exponential-backoff restart budget. Members the
//! fault plan makes unrecoverable degrade the campaign to the N−1 path
//! (the ensemble continues on the survivors) instead of consuming restarts.
//!
//! Restoring from disk even for in-process recoveries is what makes the
//! headline invariant hold: **kill–resume determinism**. A campaign killed
//! after any completed cycle and resumed from the checkpoint directory
//! produces bit-identical final ensembles, per-cycle statistics, and
//! per-cycle trace digests to an uninterrupted run — recovery replays the
//! exact RNG cursor, truth state and ensembles the uninterrupted run had at
//! that cycle boundary, so there is nothing left to diverge.
//!
//! With [`CkptMode::Pipelined`] the supervisor additionally moves each
//! checkpoint write off the critical path: cycle k's durable write runs on
//! a background [`AsyncCheckpointer`] thread while cycle k+1's forecast
//! and read phase proceed, with at most one write in flight and drain
//! barriers at campaign end, before every restore, and on error paths.
//! The durable frontier then lags the computed frontier by at most one
//! cycle; recovery always restores the last *durable* cycle, and
//! kill–resume determinism is untouched (cycle digests hash executor
//! traces only, and replays from an older frontier are bit-identical).

use crate::exec::setup::AssimilationSetup;
use crate::report::ExecutionReport;
use crate::{DEnkf, LEnkf, PEnkf, SEnkf};
use enkf_ckpt::{fnv64, AsyncCheckpointer, CampaignCheckpoint, CheckpointStore, CkptError};
use enkf_core::{inflated, EnkfError, Ensemble, LocalAnalysis, Result as CoreResult};
use enkf_data::{write_ensemble, CycleConfig, CycleState, CycleStats, CycledExperiment};
use enkf_fault::{FaultConfig, FaultLog, RetryPolicy, SubstrateError};
use enkf_grid::Mesh;
use enkf_health::{HealthMonitor, HealthParams, HealthSnapshot};
use enkf_pfs::FileStore;
use enkf_trace::{RankTracer, Role, Trace};
use enkf_tuning::Params;
use std::time::{Duration, Instant};

/// Which parallel variant a campaign drives. All three share the
/// supervisor, the checkpoint format and the recovery state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignExecutor {
    /// Single-reader baseline (§6).
    LEnkf {
        /// Sub-domains along longitude.
        nsdx: usize,
        /// Sub-domains along latitude.
        nsdy: usize,
    },
    /// Block-reading baseline (Fig. 3).
    PEnkf {
        /// Sub-domains along longitude.
        nsdx: usize,
        /// Sub-domains along latitude.
        nsdy: usize,
    },
    /// The paper's co-designed variant (Figs. 6–8).
    SEnkf(Params),
    /// The distributed-array non-sequential variant: `shards` state shards,
    /// one batched analysis with a selectable `C⁻¹` kernel.
    DEnkf {
        /// State shards (= ranks).
        shards: usize,
        /// Kernel applying `C⁻¹` in the batched transform.
        kernel: enkf_core::BatchedKernel,
    },
}

impl CampaignExecutor {
    /// Ranks the executor occupies; the supervisor traces as rank
    /// `num_ranks()` so its spans never collide with an executor rank.
    pub fn num_ranks(&self) -> usize {
        match *self {
            CampaignExecutor::LEnkf { nsdx, nsdy } | CampaignExecutor::PEnkf { nsdx, nsdy } => {
                nsdx * nsdy
            }
            CampaignExecutor::SEnkf(p) => p.c2() + p.ncg * p.nsdy,
            CampaignExecutor::DEnkf { shards, .. } => shards,
        }
    }

    fn run_adaptive(
        &self,
        setup: &AssimilationSetup<'_>,
        cfg: &FaultConfig,
        monitor: Option<&HealthMonitor>,
    ) -> CoreResult<(Ensemble, ExecutionReport, Trace, FaultLog)> {
        match *self {
            CampaignExecutor::LEnkf { nsdx, nsdy } => {
                LEnkf { nsdx, nsdy }.run_adaptive(setup, cfg, monitor)
            }
            CampaignExecutor::PEnkf { nsdx, nsdy } => {
                PEnkf { nsdx, nsdy }.run_adaptive(setup, cfg, monitor)
            }
            CampaignExecutor::SEnkf(p) => SEnkf::new(p).run_adaptive(setup, cfg, monitor),
            CampaignExecutor::DEnkf { shards, kernel } => {
                DEnkf { shards, kernel }.run_adaptive(setup, cfg, monitor)
            }
        }
    }
}

/// Configuration of a supervised campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Experiment mesh.
    pub mesh: Mesh,
    /// Cycles to complete.
    pub cycles: usize,
    /// Initial ensemble size.
    pub members: usize,
    /// Twin-experiment cycle configuration.
    pub cycle: CycleConfig,
    /// Campaign seed (drives truth, ensembles, observation noise).
    pub seed: u64,
    /// Local analysis kernel.
    pub analysis: LocalAnalysis,
    /// Multiplicative background inflation applied before each analysis.
    pub inflation: f64,
    /// Restart budget: how many recoveries per cycle, with what backoff.
    pub restart: RetryPolicy,
}

impl CampaignConfig {
    /// Fingerprint of everything that must match for a checkpoint to be
    /// resumable: mesh, members, seed, cycle physics, analysis kernel,
    /// inflation, and the executor (a different executor would change the
    /// per-cycle trace digests).
    pub fn fingerprint(&self, exec: &CampaignExecutor) -> u64 {
        fnv64(
            format!(
                "{:?}|{}|{}|{:?}|{:?}|{}|{:?}",
                self.mesh, self.members, self.seed, self.cycle, self.analysis, self.inflation, exec
            )
            .as_bytes(),
        )
    }
}

/// How the supervisor spends restart backoff between recovery attempts.
///
/// The real deployment sleeps wall-clock time ([`BackoffClock::Wall`]),
/// but that clock is injectable so the scheduler and conformance suites
/// run recoveries in virtual time: [`BackoffClock::Virtual`] skips the
/// sleep and accounts the would-be delay in
/// [`CampaignReport::virtual_backoff`] instead. Both clocks take the
/// identical recovery path — same checkpoint restores, same trace
/// operation structure (digests exclude durations), same results — so
/// tests lose the seconds of dead sleeping, not coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackoffClock {
    /// Sleep restart backoffs on the wall clock (production behaviour).
    #[default]
    Wall,
    /// Account restart backoffs in virtual time without sleeping.
    Virtual,
}

/// How the supervisor commits per-cycle checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CkptMode {
    /// Write each checkpoint on the critical path before starting the next
    /// cycle (the PR 5 behaviour; durable frontier == computed frontier).
    #[default]
    Sync,
    /// Hand each checkpoint to a background writer and overlap the write
    /// with the next cycle's forecast and read phase. At most one write is
    /// in flight; the durable frontier lags by ≤ 1 cycle.
    Pipelined,
}

/// Per-invocation context of a supervised campaign: who the campaign
/// belongs to and how backoff time passes. [`run_campaign`] uses the
/// default (anonymous tenant, wall-clock backoff); the multi-tenant
/// scheduler dispatches through [`run_campaign_ctx`] with a tenant tag and
/// a virtual clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignCtx {
    /// `(tenant, job)` stamped on every span of the campaign trace.
    pub tenant: Option<(u32, u32)>,
    /// The restart-backoff clock.
    pub backoff: BackoffClock,
    /// Synchronous or pipelined checkpoint commits.
    pub ckpt_mode: CkptMode,
    /// Online health monitoring: `Some(params)` attaches a cross-cycle
    /// [`HealthMonitor`] — each cycle runs through the executors' adaptive
    /// read path (blacklisted-OST members last, speculative duplicates,
    /// deadline-budgeted retries) and the detectors step at every
    /// successful cycle boundary. Detector state is in-memory only: a
    /// campaign resumed from a checkpoint restarts its detectors cold
    /// (conservative — probation clears, suspicion re-accrues), so the
    /// kill–resume bit-identity guarantee applies to non-adaptive
    /// campaigns; adaptive campaigns are deterministic per uninterrupted
    /// run of a seeded plan.
    pub health: Option<HealthParams>,
}

/// One recovery action the supervisor took.
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// Cycle being attempted when the failure hit.
    pub cycle: usize,
    /// Attempt number within the cycle (0 = first run).
    pub attempt: u32,
    /// The substrate failure, rendered.
    pub error: String,
    /// Whether this recovery degraded the campaign to the N−1 path
    /// instead of consuming restart budget.
    pub degraded: bool,
    /// Checkpoint cycle the supervisor restored from.
    pub restored_from: usize,
}

/// What a completed campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-cycle twin-experiment statistics, cycle 0..K.
    pub stats: Vec<CycleStats>,
    /// FNV-64 hash of each cycle's executor trace digest — the kill–resume
    /// conformance artifact (bit-identical across interruptions).
    pub cycle_digests: Vec<u64>,
    /// The final analysis ensemble.
    pub final_analysis: Ensemble,
    /// Executor spans of every cycle run in *this* process, plus the
    /// supervisor's checkpoint/restore/recovery spans.
    pub trace: Trace,
    /// Every recovery the supervisor performed.
    pub recoveries: Vec<RecoveryEvent>,
    /// `Some(c)` when the campaign resumed from an on-disk checkpoint at
    /// cycle `c` instead of starting fresh.
    pub resumed_from: Option<usize>,
    /// Whether the campaign finished on the degraded (N−k) path.
    pub degraded: bool,
    /// Members dropped by degradation (by original index).
    pub dropped_members: Vec<usize>,
    /// Wall-clock seconds for this process's portion of the campaign.
    pub wall_time: f64,
    /// Restart-backoff seconds accounted but not slept
    /// ([`BackoffClock::Virtual`]); zero under the wall clock.
    pub virtual_backoff: f64,
    /// One [`HealthSnapshot`] per completed cycle when the campaign ran
    /// with [`CampaignCtx::health`]; empty otherwise. The scheduler feeds
    /// these to its rebalance to reprice SLAs against degraded capacity.
    pub health_snapshots: Vec<HealthSnapshot>,
    /// Canonical digest of every health decision the campaign's monitor
    /// made (`None` without monitoring) — the chaos-soak conformance
    /// artifact, byte-identical to the modeled campaign's under a common
    /// seeded plan.
    pub health_digest: Option<String>,
}

/// Supervisor-level failures.
#[derive(Debug)]
pub enum CampaignError {
    /// Saving or loading a checkpoint failed.
    Checkpoint(CkptError),
    /// Writing the background ensemble to the work store failed.
    Io(std::io::Error),
    /// The analysis itself failed for a non-substrate reason (geometry,
    /// linear algebra) — restarting cannot help.
    Analysis(EnkfError),
    /// A cycle kept failing past the restart budget.
    RestartBudgetExhausted {
        /// The cycle that would not complete.
        cycle: usize,
        /// Attempts made (initial + restarts).
        attempts: u32,
        /// The last substrate failure, rendered.
        last: String,
    },
    /// Recovery needed a checkpoint but no durable one survives.
    NoCheckpoint {
        /// The cycle being recovered.
        cycle: usize,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Checkpoint(e) => write!(f, "{e}"),
            CampaignError::Io(e) => write!(f, "work-store write failed: {e}"),
            CampaignError::Analysis(e) => write!(f, "analysis failed: {e}"),
            CampaignError::RestartBudgetExhausted {
                cycle,
                attempts,
                last,
            } => write!(
                f,
                "cycle {cycle} failed {attempts} attempts, restart budget exhausted: {last}"
            ),
            CampaignError::NoCheckpoint { cycle } => write!(
                f,
                "recovery of cycle {cycle} found no durable checkpoint to restore"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<CkptError> for CampaignError {
    fn from(e: CkptError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

fn experiment_from(cfg: &CampaignConfig, ck: &CampaignCheckpoint) -> CycledExperiment {
    CycledExperiment::restore(
        cfg.mesh,
        cfg.members,
        cfg.cycle,
        cfg.seed,
        CycleState {
            cycle: ck.cycle,
            rng_cursor: ck.rng_cursor,
            truth: ck.truth.clone(),
            background: ck.analysis.clone(),
            free_run: ck.free_run.clone(),
        },
    )
}

fn checkpoint_of(
    cfg: &CampaignConfig,
    fp: u64,
    exp: &CycledExperiment,
    stats: &[CycleStats],
    digests: &[u64],
) -> CampaignCheckpoint {
    let s = exp.snapshot();
    CampaignCheckpoint {
        cycle: s.cycle,
        seed: cfg.seed,
        members0: cfg.members,
        rng_cursor: s.rng_cursor,
        config_fp: fp,
        truth: s.truth,
        analysis: s.background,
        free_run: s.free_run,
        stats: stats.to_vec(),
        cycle_digests: digests.to_vec(),
    }
}

/// Run (or resume) a supervised campaign.
///
/// `work` is the ensemble work store the executors read from — each cycle
/// the inflated background is written there before the executor runs.
/// `ckpt` is the durable checkpoint directory: if it already holds a
/// checkpoint with a matching [`CampaignConfig::fingerprint`], the
/// campaign resumes from it; otherwise it starts fresh (and commits the
/// initial state as cycle 0's recovery line before running anything).
///
/// Failure handling per cycle attempt:
///
/// * [`SubstrateError::Unrecoverable`] — a member is *permanently* lost:
///   restore the checkpoint and re-run degraded (N−1); does not consume
///   restart budget.
/// * Any other [`SubstrateError`] (crash, helper failure, timeout, retry
///   exhaustion) — transient: sleep the restart backoff, restore the last
///   durable checkpoint from disk, re-run. Cycle-scoped crashes in the
///   plan fire only on attempt 0, modelling a replaced node.
/// * Non-substrate errors abort the campaign
///   ([`CampaignError::Analysis`]).
pub fn run_campaign(
    work: &FileStore,
    ckpt: &CheckpointStore,
    exec: &CampaignExecutor,
    cfg: &CampaignConfig,
    fault: &FaultConfig,
) -> Result<CampaignReport, CampaignError> {
    run_campaign_ctx(work, ckpt, exec, cfg, fault, &CampaignCtx::default())
}

/// [`run_campaign`] with an explicit [`CampaignCtx`]: a tenant/job tag
/// stamped on the campaign trace and an injectable restart-backoff clock.
pub fn run_campaign_ctx(
    work: &FileStore,
    ckpt: &CheckpointStore,
    exec: &CampaignExecutor,
    cfg: &CampaignConfig,
    fault: &FaultConfig,
    ctx: &CampaignCtx,
) -> Result<CampaignReport, CampaignError> {
    let t0 = Instant::now();
    let fp = cfg.fingerprint(exec);
    let mut sup = RankTracer::new(exec.num_ranks(), t0);
    sup.set_role(Role::Io);

    match ctx.ckpt_mode {
        CkptMode::Sync => {
            let eng = Engine {
                t0,
                fp,
                sup,
                writer: None,
            };
            supervise(work, ckpt, exec, cfg, fault, ctx, eng)
        }
        CkptMode::Pipelined => std::thread::scope(|s| {
            // The writer traces on a fork of the supervisor tracer (same
            // rank, role and epoch), so pipelined and synchronous
            // campaigns emit the identical Ckpt span multiset.
            let writer = AsyncCheckpointer::spawn(s, ckpt, sup.fork());
            let eng = Engine {
                t0,
                fp,
                sup,
                writer: Some(&writer),
            };
            supervise(work, ckpt, exec, cfg, fault, ctx, eng)
        }),
    }
}

/// Supervisor state threaded into [`supervise`]: the campaign clock and
/// fingerprint, the supervisor tracer, and (in pipelined mode) the
/// background checkpoint writer.
struct Engine<'a, 'scope> {
    t0: Instant,
    fp: u64,
    sup: RankTracer,
    writer: Option<&'a AsyncCheckpointer<'scope>>,
}

/// Drain barrier: wait out any in-flight asynchronous checkpoint, fold its
/// spans into the campaign trace, and surface a deferred write error. A
/// no-op in synchronous mode.
fn drain_writer(
    writer: Option<&AsyncCheckpointer<'_>>,
    trace: &mut Trace,
) -> Result<(), CampaignError> {
    if let Some(w) = writer {
        let (spans, res) = w.drain();
        trace.extend(spans);
        res.map_err(|e| CampaignError::Checkpoint(CkptError::Io(e)))?;
    }
    Ok(())
}

fn supervise(
    work: &FileStore,
    ckpt: &CheckpointStore,
    exec: &CampaignExecutor,
    cfg: &CampaignConfig,
    fault: &FaultConfig,
    ctx: &CampaignCtx,
    eng: Engine<'_, '_>,
) -> Result<CampaignReport, CampaignError> {
    let Engine {
        t0,
        fp,
        mut sup,
        writer,
    } = eng;

    let mut stats: Vec<CycleStats> = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    let mut trace = Trace::new("campaign-real");
    let mut recoveries = Vec::new();
    let mut dropped_members = Vec::new();
    let mut degraded_mode = false;
    let mut virtual_backoff = 0.0f64;
    let mut monitor = ctx.health.map(HealthMonitor::new);
    let mut health_snapshots: Vec<HealthSnapshot> = Vec::new();

    let (mut exp, resumed_from) = match ckpt.load_latest(fp, Some(&mut sup))? {
        Some((ck, _skipped)) => {
            stats = ck.stats.clone();
            digests = ck.cycle_digests.clone();
            degraded_mode = ck.analysis.size() < ck.members0;
            let cycle = ck.cycle;
            (experiment_from(cfg, &ck), Some(cycle))
        }
        None => {
            let exp = CycledExperiment::new(cfg.mesh, cfg.members, cfg.cycle, cfg.seed);
            // Commit the initial state before running anything: cycle 0 is
            // the recovery line for a crash in the very first cycle.
            ckpt.save(&checkpoint_of(cfg, fp, &exp, &[], &[]), Some(&mut sup))
                .map_err(|e| CampaignError::Checkpoint(CkptError::Io(e)))?;
            (exp, None)
        }
    };

    let mut attempt: u32 = 0; // attempts within the current cycle
    let mut restarts: u32 = 0; // budget-consuming restarts within it
    while exp.cycle() < cfg.cycles {
        let c = exp.cycle();
        let fcfg = FaultConfig {
            plan: fault.plan.for_cycle_attempt(c, attempt),
            retry: fault.retry,
            degraded: fault.degraded || degraded_mode,
            recv_timeout: fault.recv_timeout,
        };
        let mut cycle_out: Option<(ExecutionReport, Trace)> = None;
        let res = exp.run_cycle(|bg, obs| {
            let inflated_bg = inflated(bg, cfg.inflation);
            write_ensemble(work, &inflated_bg).map_err(CampaignError::Io)?;
            let setup = AssimilationSetup {
                store: work,
                members: inflated_bg.size(),
                observations: obs,
                analysis: cfg.analysis,
            };
            let (analysis, report, cycle_trace, _log) = exec
                .run_adaptive(&setup, &fcfg, monitor.as_ref())
                .map_err(CampaignError::Analysis)?;
            cycle_out = Some((report, cycle_trace));
            Ok(analysis)
        });
        match res {
            Ok(s) => {
                let (report, cycle_trace) = cycle_out.expect("successful cycle produced a trace");
                stats.push(s);
                digests.push(fnv64(cycle_trace.digest().as_bytes()));
                trace.extend(cycle_trace.spans().iter().cloned());
                for m in report.dropped_members {
                    if !dropped_members.contains(&m) {
                        dropped_members.push(m);
                    }
                }
                if let Some(mon) = monitor.as_mut() {
                    // Cycle boundary: fold this cycle's observations into
                    // the detectors and refreeze the routing view the next
                    // cycle's readers will consult.
                    health_snapshots.push(mon.end_cycle());
                }
                let snapshot = checkpoint_of(cfg, fp, &exp, &stats, &digests);
                match writer {
                    // Pipelined: hand the O(1) snapshot to the background
                    // writer and start the next cycle immediately; blocks
                    // only if the previous write is still in flight.
                    Some(w) => w
                        .save_async(snapshot)
                        .map_err(|e| CampaignError::Checkpoint(CkptError::Io(e)))?,
                    None => ckpt
                        .save(&snapshot, Some(&mut sup))
                        .map_err(|e| CampaignError::Checkpoint(CkptError::Io(e)))?,
                }
                attempt = 0;
                restarts = 0;
            }
            Err(CampaignError::Analysis(EnkfError::Substrate(se))) => {
                if let Some(mon) = monitor.as_ref() {
                    // The attempt failed mid-cycle: discard its partial
                    // observations — the re-run re-observes the full cycle,
                    // keeping detection a pure function of completed cycles.
                    mon.abort_cycle();
                }
                let permanent_loss = matches!(se, SubstrateError::Unrecoverable { .. });
                if !permanent_loss {
                    if restarts >= cfg.restart.max_retries {
                        return Err(CampaignError::RestartBudgetExhausted {
                            cycle: c,
                            attempts: attempt + 1,
                            last: se.to_string(),
                        });
                    }
                    let backoff = cfg.restart.backoff(restarts);
                    match ctx.backoff {
                        BackoffClock::Wall => {
                            sup.recovery(|| std::thread::sleep(Duration::from_secs_f64(backoff)));
                        }
                        BackoffClock::Virtual => {
                            virtual_backoff += backoff;
                            sup.recovery(|| ());
                        }
                    }
                    restarts += 1;
                } else {
                    // Permanently lost member: re-run degraded on the
                    // survivors. Free of budget — the failure cannot recur
                    // once the member is dropped.
                    degraded_mode = true;
                    sup.recovery(|| ());
                }
                // Restore from *disk*, not from memory: in-process recovery
                // and a process kill + resume take the identical path. The
                // drain barrier first waits out any in-flight asynchronous
                // write, so the restore sees the freshest durable cycle and
                // never races the writer.
                drain_writer(writer, &mut trace)?;
                let Some((ck, _skipped)) = ckpt.load_latest(fp, Some(&mut sup))? else {
                    return Err(CampaignError::NoCheckpoint { cycle: c });
                };
                recoveries.push(RecoveryEvent {
                    cycle: c,
                    attempt,
                    error: se.to_string(),
                    degraded: permanent_loss,
                    restored_from: ck.cycle,
                });
                stats = ck.stats.clone();
                digests = ck.cycle_digests.clone();
                exp = experiment_from(cfg, &ck);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }

    // End-of-campaign drain barrier: the report is complete only once the
    // final cycle's checkpoint is durable (and its spans are in the trace).
    drain_writer(writer, &mut trace)?;
    let final_analysis = exp.background().clone();
    trace.extend(sup.into_spans());
    if let Some((tenant, job)) = ctx.tenant {
        trace.tag_tenant(tenant, job);
    }
    Ok(CampaignReport {
        stats,
        cycle_digests: digests,
        final_analysis,
        trace,
        recoveries,
        resumed_from,
        degraded: degraded_mode,
        dropped_members,
        wall_time: t0.elapsed().as_secs_f64(),
        virtual_backoff,
        health_snapshots,
        health_digest: monitor.map(|m| m.digest()),
    })
}
