//! D-EnKF: the distributed-array non-sequential executor (real backend).
//!
//! The three sequential executors localize: each rank assimilates only the
//! observations near its sub-domain, point by point. D-EnKF instead shards
//! the **state** across ranks as full-width latitude bars (a distributed
//! array over the store's native bar layout — one disk addressing operation
//! per member per rank) and assimilates the **whole** observation network in
//! one batched covariance-form update (arXiv 2311.12909):
//!
//! * Rank `s` of `shards` owns bar `s`; it reads its bar of every member
//!   file and forms the shard's observed rows `S_loc = H_loc U`,
//!   `D_loc = Yˢ_loc − H_loc Xᵇ` — observation-space data, `m_loc × N`,
//!   *independent of the state dimension*.
//! * Ranks all-to-all exchange these small observation blocks (never state
//!   rows), so every rank assembles the identical global `S`, `D`.
//! * Every rank computes the same `N × N` transform
//!   `T = Sᵀ (S Sᵀ/(N−1) + R)⁻¹ D/(N−1)` — with a dense Cholesky or the
//!   inversion-free iterative Sherman-Morrison kernel
//!   ([`enkf_core::BatchedKernel`]) — and applies `Xᵃ = Xᵇ + U_shard T`
//!   to its own rows only.
//!
//! Because the kernel GEMM accumulates over `k` in a fixed order regardless
//! of output shape, `U_shard T` rows are bit-identical to the same rows of
//! the one-shard product: shard-count invariance is exact.

use crate::exec::setup::AssimilationSetup;
use crate::exec::{assemble_analysis, dilate, prepare_faults};
use crate::report::{ExecutionReport, PhaseBreakdown};
use enkf_core::{batched_transform, BatchedKernel, EnkfError, Ensemble, Result};
use enkf_data::region_to_matrix;
use enkf_fault::{FaultConfig, FaultLog, SubstrateError};
use enkf_health::HealthMonitor;
use enkf_linalg::Matrix;
use enkf_net::{Cluster, RankCtx};
use enkf_pfs::{read_region_adaptive, RegionData};
use enkf_trace::Trace;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The observation-space payload of the all-to-all exchange.
#[derive(Debug, Clone)]
enum DMsg {
    /// One shard's observed anomaly and innovation rows.
    ObsBlock {
        /// Global observation-row indices, ascending (the shard's rows of
        /// the network).
        rows: Vec<usize>,
        /// The shard's rows of `S = H U` (`m_loc × N_alive`).
        s: Matrix,
        /// The shard's rows of `D = Yˢ − H Xᵇ` (`m_loc × N_alive`).
        d: Matrix,
    },
    /// A sender failed before producing its block; receivers must stop
    /// waiting instead of deadlocking.
    Abort {
        /// Human-readable failure description.
        reason: String,
    },
}

/// Wire size of one shard's observation block: `rows` indices (8 bytes
/// each) plus two `rows × members` f64 matrices. The DES model charges its
/// `Comm` tasks with the same formula, which is what makes the real and
/// modeled trace digests byte-identical.
pub(crate) fn exchange_bytes(rows: usize, members: usize) -> u64 {
    8 * (rows * (2 * members + 1)) as u64
}

/// The D-EnKF variant: `shards` ranks, each owning one full-width bar of
/// the state, one non-sequential batched analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DEnkf {
    /// State shards (= ranks); must divide the mesh height.
    pub shards: usize,
    /// Kernel applying `C⁻¹` in the batched transform.
    pub kernel: BatchedKernel,
}

impl DEnkf {
    /// Run the assimilation; returns the analysis ensemble and the phase
    /// timings.
    pub fn run(&self, setup: &AssimilationSetup<'_>) -> Result<(Ensemble, ExecutionReport)> {
        self.run_traced(setup)
            .map(|(analysis, report, _)| (analysis, report))
    }

    /// [`DEnkf::run`], additionally returning the execution trace: per rank
    /// one read span per member bar (single-seek, full-width), one send
    /// span per peer (the observation block) and one compute span (the
    /// batched transform plus the shard update).
    pub fn run_traced(
        &self,
        setup: &AssimilationSetup<'_>,
    ) -> Result<(Ensemble, ExecutionReport, Trace)> {
        self.run_faulted(setup, &FaultConfig::none())
            .map(|(analysis, report, trace, _)| (analysis, report, trace))
    }

    /// [`DEnkf::run_traced`] under a fault plan. With `FaultConfig::none()`
    /// this is behaviourally identical to `run_traced` (byte-identical
    /// trace digests). Under a seeded plan, bar reads retry with backoff,
    /// unrecoverable members are dropped when `cfg.degraded` is set (every
    /// rank shrinks `S`/`D` to the survivors — the N−1 path), stragglers
    /// dilate compute, message delays stall the exchange, and crashes or
    /// message drops switch receives to a timeout surfacing
    /// [`SubstrateError::RecvTimeout`]; a rank whose peers all exited gets
    /// the typed [`SubstrateError::PeerExited`] instead of a channel panic.
    pub fn run_faulted(
        &self,
        setup: &AssimilationSetup<'_>,
        cfg: &FaultConfig,
    ) -> Result<(Ensemble, ExecutionReport, Trace, FaultLog)> {
        self.run_adaptive(setup, cfg, None)
    }

    /// [`DEnkf::run_faulted`] with online health monitoring. Each shard
    /// reads members whose OST is blacklisted last and routes bar reads
    /// through [`read_region_adaptive`], so a degraded OST triggers a
    /// speculative duplicate read against its replica; bars are collected
    /// keyed by member and re-assembled ascending, so the reorder never
    /// reaches the numerics. Observed dilation ratios feed the monitor;
    /// the caller folds them with [`HealthMonitor::end_cycle`]. With
    /// `monitor: None` this is byte-identical to [`DEnkf::run_faulted`].
    pub fn run_adaptive(
        &self,
        setup: &AssimilationSetup<'_>,
        cfg: &FaultConfig,
        monitor: Option<&HealthMonitor>,
    ) -> Result<(Ensemble, ExecutionReport, Trace, FaultLog)> {
        setup.validate()?;
        // Shards are full-width bars: the `1 × shards` decomposition.
        let decomp = setup.decomposition(1, self.shards)?;
        let mesh = setup.mesh();
        let nranks = decomp.num_subdomains();
        let kernel = self.kernel;
        let prep = prepare_faults(cfg, setup.members)?;
        let injector = &prep.injector;
        let dropped = &prep.dropped;
        let alive = &prep.alive;
        let use_timeout = prep.use_timeout;
        let recv_timeout = cfg.recv_timeout;
        let m_total = setup.observations.len();
        setup.observations.prepare();
        let t0 = Instant::now();

        type RankOut = Result<(enkf_grid::RegionRect, Matrix)>;
        let results: Vec<(RankOut, Vec<enkf_trace::Span>)> =
            Cluster::run_traced(nranks, |mut ctx: RankCtx<DMsg>, tracer| {
                let rank = ctx.rank();
                if let Some(stage) = injector.crash_stage(rank) {
                    injector.log().crashed(rank, stage);
                    return Err(SubstrateError::RankCrashed { rank, stage }.into());
                }
                let id = decomp.id_of_rank(rank);
                let bar = decomp.subdomain(id);

                // Phase 1: read this shard's bar of every member file — a
                // full-width band, one contiguous segment, one disk
                // addressing operation per member (§4.1.2's bar argument,
                // here applied to the analysis decomposition itself).
                let order: Vec<usize> = match monitor {
                    Some(mon) => mon.view().reorder(&(0..setup.members).collect::<Vec<_>>()),
                    None => (0..setup.members).collect(),
                };
                let mut by_member: BTreeMap<usize, RegionData> = BTreeMap::new();
                for &k in &order {
                    match read_region_adaptive(
                        setup.store,
                        tracer,
                        None,
                        k,
                        &bar,
                        injector,
                        monitor,
                    ) {
                        Ok(d) => {
                            by_member.insert(k, d);
                        }
                        Err(_) if dropped.contains(&k) => {}
                        Err(e) => {
                            // Peers count on this shard's block: unblock
                            // them before bailing out.
                            for peer in 0..nranks {
                                if peer != rank {
                                    ctx.send(
                                        peer,
                                        rank as u64,
                                        DMsg::Abort {
                                            reason: format!("read failed: {e}"),
                                        },
                                    );
                                }
                            }
                            return Err(e.into());
                        }
                    }
                }
                let per_member: Vec<RegionData> = by_member.into_values().collect();
                let xb = region_to_matrix(&bar, &per_member);
                let n_alive = alive.len();

                // Local observation rows of this bar. `localize` and
                // `indices_in` enumerate the same ascending global order,
                // so `global_rows[r]` is the global index of local row `r`.
                let mut obs = setup.observations.localize(&bar);
                if !dropped.is_empty() {
                    obs = obs.select_members(alive);
                }
                let global_rows = setup.observations.operator().network().indices_in(&bar);
                debug_assert_eq!(global_rows.len(), obs.len());
                let m_loc = obs.len();

                // S_loc = H_loc Xᵇ − row means, D_loc = Yˢ_loc − H_loc Xᵇ.
                // Row means only mix within a row, so both are shard-local.
                let mut s_loc = Matrix::zeros(m_loc, n_alive);
                let mut d_loc = Matrix::zeros(m_loc, n_alive);
                for r in 0..m_loc {
                    let hx = xb.row(obs.local_rows[r]);
                    let mean = hx.iter().sum::<f64>() / n_alive as f64;
                    let yp = obs.perturbed.row(r);
                    for c in 0..n_alive {
                        s_loc[(r, c)] = hx[c] - mean;
                        d_loc[(r, c)] = yp[c] - hx[c];
                    }
                }

                // Phase 2: all-to-all exchange of the observation blocks
                // (never state rows — the payload is m_loc × N, independent
                // of the shard's state size).
                for peer in 0..nranks {
                    if peer == rank {
                        continue;
                    }
                    let delay = injector.send_delay(rank, peer);
                    let drop_msg = injector.message_dropped(rank, peer);
                    tracer.send(None, peer, exchange_bytes(m_loc, n_alive), || {
                        if delay > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(delay));
                        }
                        if !drop_msg {
                            ctx.send(
                                peer,
                                rank as u64,
                                DMsg::ObsBlock {
                                    rows: global_rows.clone(),
                                    s: s_loc.clone(),
                                    d: d_loc.clone(),
                                },
                            );
                        }
                    });
                }

                // Assemble the global S and D: own rows plus one block from
                // every peer. Bars partition the mesh, so the blocks cover
                // every observation row exactly once.
                let mut s_glob = Matrix::zeros(m_total, n_alive);
                let mut d_glob = Matrix::zeros(m_total, n_alive);
                let mut scatter = |rows: &[usize], s: &Matrix, d: &Matrix| {
                    for (r, &g) in rows.iter().enumerate() {
                        s_glob.row_mut(g).copy_from_slice(s.row(r));
                        d_glob.row_mut(g).copy_from_slice(d.row(r));
                    }
                };
                scatter(&global_rows, &s_loc, &d_loc);
                let received: Result<()> = tracer.wait(None, || {
                    for _ in 0..nranks - 1 {
                        let envelope = if use_timeout {
                            match ctx.recv_timeout(recv_timeout) {
                                Ok(env) => env,
                                Err(e) => return Err(e.into()),
                            }
                        } else {
                            match ctx.recv() {
                                Ok(env) => env,
                                Err(e) => return Err(e.into()),
                            }
                        };
                        match envelope.payload {
                            DMsg::ObsBlock { rows, s, d } => scatter(&rows, &s, &d),
                            DMsg::Abort { reason } => {
                                return Err(EnkfError::GeometryMismatch(format!(
                                    "peer aborted: {reason}"
                                )))
                            }
                        }
                    }
                    Ok(())
                });
                if let Err(e) = received {
                    // Unblock peers still waiting on this rank's block
                    // before bailing out (they already have our ObsBlock,
                    // but an abort must not strand anyone mid-collective on
                    // a *different* failure path).
                    for peer in 0..nranks {
                        if peer != rank {
                            ctx.send(
                                peer,
                                rank as u64,
                                DMsg::Abort {
                                    reason: e.to_string(),
                                },
                            );
                        }
                    }
                    return Err(e);
                }

                // Phase 3: the batched transform (identical on every rank)
                // and the shard-local update Xᵃ = Xᵇ + U_shard T.
                let dilation = injector.compute_dilation(rank);
                if let Some(mon) = monitor {
                    mon.observe_compute(rank, dilation);
                }
                let r_var = setup.observations.error_var();
                tracer
                    .compute(None, || {
                        let start = Instant::now();
                        let t = batched_transform(&s_glob, &d_glob, r_var, kernel)?;
                        let mut u = xb.clone();
                        let means = u.row_means();
                        u.subtract_row_vector(&means);
                        let mut xa = xb.clone();
                        xa.axpy(1.0, &u.matmul(&t)?)?;
                        dilate(start, dilation);
                        Ok(xa)
                    })
                    .map(|m| (bar, m))
            });

        let mut trace = Trace::new("denkf-real");
        let mut compute_ranks = PhaseBreakdown::default();
        let mut per_domain = Vec::with_capacity(nranks);
        for (res, spans) in results {
            compute_ranks.merge(&PhaseBreakdown::from_spans(&spans));
            trace.extend(spans);
            per_domain.push(res?);
        }
        let analysis = assemble_analysis(mesh, alive.len(), &decomp, per_domain);
        let report = ExecutionReport {
            compute_ranks,
            io_ranks: PhaseBreakdown::default(),
            num_compute_ranks: nranks,
            num_io_ranks: 0,
            wall_time: t0.elapsed().as_secs_f64(),
            dropped_members: dropped.clone(),
        };
        Ok((analysis, report, trace, prep.injector.into_log()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_core::{serial_denkf, LocalAnalysis};
    use enkf_data::{write_ensemble, ScenarioBuilder};
    use enkf_grid::{FileLayout, LocalizationRadius, Mesh};
    use enkf_pfs::{FileStore, ScratchDir};

    fn harness(
        mesh: Mesh,
        members: usize,
        seed: u64,
    ) -> (ScratchDir, FileStore, enkf_data::Scenario) {
        let scenario = ScenarioBuilder::new(mesh)
            .members(members)
            .seed(seed)
            .build();
        let scratch = ScratchDir::new("denkf").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        write_ensemble(&store, &scenario.ensemble).unwrap();
        (scratch, store, scenario)
    }

    fn setup<'a>(
        store: &'a FileStore,
        scenario: &'a enkf_data::Scenario,
        members: usize,
    ) -> AssimilationSetup<'a> {
        AssimilationSetup {
            store,
            members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
        }
    }

    #[test]
    fn matches_serial_batched_reference_exactly() {
        let mesh = Mesh::new(12, 8);
        let (_s, store, scenario) = harness(mesh, 6, 3);
        let st = setup(&store, &scenario, 6);
        for kernel in [BatchedKernel::Cholesky, BatchedKernel::ShermanMorrison] {
            let (analysis, report) = DEnkf { shards: 4, kernel }.run(&st).unwrap();
            let reference =
                serial_denkf(&scenario.ensemble, &scenario.observations, kernel).unwrap();
            assert!(
                analysis.states().approx_eq(reference.states(), 1e-12),
                "D-EnKF ({kernel:?}) must equal the serial batched reference"
            );
            assert_eq!(report.num_compute_ranks, 4);
            assert!(report.compute_ranks.read > 0.0);
            assert!(report.compute_ranks.comm > 0.0, "exchange must be traced");
            assert!(report.compute_ranks.compute > 0.0);
        }
    }

    #[test]
    fn shard_count_invariance_is_bitwise() {
        // The kernel GEMM accumulates over k in a fixed order regardless of
        // output shape, so resharding must not change a single bit.
        let mesh = Mesh::new(10, 12);
        let (_s, store, scenario) = harness(mesh, 8, 17);
        let st = setup(&store, &scenario, 8);
        let kernel = BatchedKernel::ShermanMorrison;
        let (one, _) = DEnkf { shards: 1, kernel }.run(&st).unwrap();
        for shards in [2, 3, 4, 6, 12] {
            let (sharded, _) = DEnkf { shards, kernel }.run(&st).unwrap();
            assert_eq!(
                sharded.states().as_slice(),
                one.states().as_slice(),
                "{shards} shards must be bit-identical to 1 shard"
            );
        }
    }

    #[test]
    fn invalid_shard_count_is_rejected() {
        let mesh = Mesh::new(12, 8);
        let (_s, store, scenario) = harness(mesh, 4, 1);
        let st = setup(&store, &scenario, 4);
        assert!(DEnkf {
            shards: 5,
            kernel: BatchedKernel::Cholesky
        }
        .run(&st)
        .is_err());
    }
}
