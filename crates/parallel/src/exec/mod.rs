//! Real (threaded) executors for the four parallel EnKF variants.

pub mod denkf;
pub mod lenkf;
pub mod penkf;
pub mod senkf;
pub mod setup;
pub mod writeback;

use enkf_core::Ensemble;
use enkf_fault::{FaultConfig, FaultInjector, SubstrateError};
use enkf_grid::{Decomposition, Mesh, RegionRect};
use enkf_linalg::Matrix;
use std::time::Instant;

/// The payload exchanged between ranks: a bundle of region blocks, one per
/// carried ensemble member, for one stage of the multi-stage workflow
/// (stage is always 0 for the single-stage variants).
#[derive(Debug, Clone)]
pub(crate) enum Msg {
    /// Blocks of several members covering one region.
    Blocks {
        /// Multi-stage index (`l`), 0-based.
        stage: usize,
        /// Global member indices, parallel to `data`.
        members: Vec<usize>,
        /// One region payload per member.
        data: Vec<enkf_pfs::RegionData>,
    },
    /// A sender hit a fatal error (e.g. an unreadable member file) and will
    /// produce no further blocks: receivers must stop waiting. Without this
    /// a failing reader would deadlock every rank blocked on its data.
    Abort {
        /// Human-readable failure description.
        reason: String,
    },
}

/// Pre-run fault resolution shared by the three real executors. All fields
/// are pure functions of the [`FaultConfig`], so every rank thread reaches
/// the same decisions without coordination.
pub(crate) struct FaultPrep {
    /// The injector (carries the shared [`enkf_fault::FaultLog`]).
    pub injector: FaultInjector,
    /// Sorted dropout set (empty on a fault-free run).
    pub dropped: Vec<usize>,
    /// Surviving members, ascending.
    pub alive: Vec<usize>,
    /// Receives must carry a timeout (the plan crashes ranks or drops
    /// messages, so a blocking receive could hang forever).
    pub use_timeout: bool,
}

/// Resolve the fault plan before any thread is spawned: build the injector,
/// compute the dropout set, and fail fast when degraded mode is not enabled
/// (or would leave fewer than two members).
pub(crate) fn prepare_faults(cfg: &FaultConfig, members: usize) -> enkf_core::Result<FaultPrep> {
    let injector = FaultInjector::new(cfg.clone());
    let dropped = injector.unrecoverable_members(members);
    if !dropped.is_empty() {
        if !cfg.degraded {
            return Err(enkf_core::EnkfError::Substrate(
                SubstrateError::Unrecoverable { members: dropped },
            ));
        }
        if members - dropped.len() < 2 {
            return Err(enkf_core::EnkfError::GeometryMismatch(format!(
                "degraded mode would leave {} member(s); at least 2 are required",
                members - dropped.len()
            )));
        }
        for &m in &dropped {
            injector.log().dropped(m);
        }
    }
    let alive: Vec<usize> = (0..members).filter(|m| !dropped.contains(m)).collect();
    let plan = &injector.config().plan;
    let use_timeout = !plan.crashes.is_empty() || plan.msg_faults.iter().any(|m| m.dropped);
    Ok(FaultPrep {
        injector,
        dropped,
        alive,
        use_timeout,
    })
}

/// Sleep `(factor − 1) × elapsed` so an operation started at `start` takes
/// `factor ×` its natural wall time (straggler dilation; no-op at 1.0).
pub(crate) fn dilate(start: Instant, factor: f64) {
    if factor > 1.0 {
        let elapsed = start.elapsed().as_secs_f64();
        std::thread::sleep(std::time::Duration::from_secs_f64(elapsed * (factor - 1.0)));
    }
}

/// Assemble the per-sub-domain analysis results returned by compute ranks
/// into a full analysis ensemble. `results` holds
/// `(sub-domain target region, local analysis matrix)` pairs covering every
/// sub-domain exactly once, so every point of the mesh is written.
pub(crate) fn assemble_analysis(
    mesh: Mesh,
    members: usize,
    decomp: &Decomposition,
    results: Vec<(RegionRect, Matrix)>,
) -> Ensemble {
    assert_eq!(
        results.len(),
        decomp.num_subdomains(),
        "missing sub-domain results"
    );
    let mut out = Ensemble::new(mesh, Matrix::zeros(mesh.n(), members));
    for (region, local) in results {
        out.assign(&region, &local);
    }
    out
}
