//! Real (threaded) executors for the three parallel EnKF variants.

pub mod lenkf;
pub mod penkf;
pub mod senkf;
pub mod setup;
pub mod writeback;

use enkf_core::Ensemble;
use enkf_grid::{Decomposition, Mesh, RegionRect};
use enkf_linalg::Matrix;

/// The payload exchanged between ranks: a bundle of region blocks, one per
/// carried ensemble member, for one stage of the multi-stage workflow
/// (stage is always 0 for the single-stage variants).
#[derive(Debug, Clone)]
pub(crate) enum Msg {
    /// Blocks of several members covering one region.
    Blocks {
        /// Multi-stage index (`l`), 0-based.
        stage: usize,
        /// Global member indices, parallel to `data`.
        members: Vec<usize>,
        /// One region payload per member.
        data: Vec<enkf_pfs::RegionData>,
    },
    /// A sender hit a fatal error (e.g. an unreadable member file) and will
    /// produce no further blocks: receivers must stop waiting. Without this
    /// a failing reader would deadlock every rank blocked on its data.
    Abort {
        /// Human-readable failure description.
        reason: String,
    },
}

/// Assemble the per-sub-domain analysis results returned by compute ranks
/// into a full analysis ensemble. `results` holds
/// `(sub-domain target region, local analysis matrix)` pairs covering every
/// sub-domain exactly once, so every point of the mesh is written.
pub(crate) fn assemble_analysis(
    mesh: Mesh,
    members: usize,
    decomp: &Decomposition,
    results: Vec<(RegionRect, Matrix)>,
) -> Ensemble {
    assert_eq!(
        results.len(),
        decomp.num_subdomains(),
        "missing sub-domain results"
    );
    let mut out = Ensemble::new(mesh, Matrix::zeros(mesh.n(), members));
    for (region, local) in results {
        out.assign(&region, &local);
    }
    out
}
