//! L-EnKF: the single-reader baseline (real executor).
//!
//! Rank 0 reads the member files one after another and scatters each rank's
//! expansion block over the network (§3.1, §6: "a single reader processor
//! communicates the data to the other processors, which can not make full
//! use of parallel file systems"). Every rank then runs the same local
//! analysis as the other variants.

use crate::exec::setup::AssimilationSetup;
use crate::exec::{assemble_analysis, dilate, prepare_faults, Msg};
use crate::report::{ExecutionReport, PhaseBreakdown};
use enkf_core::{Ensemble, Result};
use enkf_data::region_to_matrix;
use enkf_fault::{FaultConfig, FaultLog, SubstrateError};
use enkf_health::HealthMonitor;
use enkf_net::{Cluster, RankCtx};
use enkf_pfs::{read_full_adaptive, RegionData};
use enkf_trace::Trace;
use std::time::{Duration, Instant};

/// The L-EnKF variant: `n_sdx × n_sdy` ranks, rank 0 is the only reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LEnkf {
    /// Sub-domains (= ranks) along longitude.
    pub nsdx: usize,
    /// Sub-domains (= ranks) along latitude.
    pub nsdy: usize,
}

impl LEnkf {
    /// Run the assimilation; returns the analysis ensemble and the phase
    /// timings.
    pub fn run(&self, setup: &AssimilationSetup<'_>) -> Result<(Ensemble, ExecutionReport)> {
        self.run_traced(setup)
            .map(|(analysis, report, _)| (analysis, report))
    }

    /// [`LEnkf::run`], additionally returning the execution trace: rank 0
    /// emits one full-file read span per member plus one send span per
    /// (member, peer) scatter; every other rank emits wait spans for the
    /// blocked receives. The report is the per-rank projection of the spans.
    pub fn run_traced(
        &self,
        setup: &AssimilationSetup<'_>,
    ) -> Result<(Ensemble, ExecutionReport, Trace)> {
        self.run_faulted(setup, &FaultConfig::none())
            .map(|(analysis, report, trace, _)| (analysis, report, trace))
    }

    /// [`LEnkf::run_traced`] under a fault plan. With `FaultConfig::none()`
    /// this is behaviourally identical to `run_traced`. Under a seeded
    /// plan, rank 0's reads retry with backoff, unrecoverable members are
    /// dropped in degraded mode (peers then expect one bundle fewer),
    /// scheduled message delays stall the scatter sends, and crashes or
    /// message drops make peers receive with a timeout so they surface a
    /// typed error instead of hanging.
    pub fn run_faulted(
        &self,
        setup: &AssimilationSetup<'_>,
        cfg: &FaultConfig,
    ) -> Result<(Ensemble, ExecutionReport, Trace, FaultLog)> {
        self.run_adaptive(setup, cfg, None)
    }

    /// [`LEnkf::run_faulted`] with online health monitoring. Rank 0 (the
    /// only reader) reads members whose OST is blacklisted last and routes
    /// every read through [`read_full_adaptive`], so a degraded OST
    /// triggers a speculative duplicate against its replica. Receivers key
    /// incoming blocks by member index, so the reorder never changes the
    /// analysis input. Observed dilation ratios feed the monitor; the
    /// caller folds them with [`HealthMonitor::end_cycle`]. With
    /// `monitor: None` this is byte-identical to [`LEnkf::run_faulted`].
    pub fn run_adaptive(
        &self,
        setup: &AssimilationSetup<'_>,
        cfg: &FaultConfig,
        monitor: Option<&HealthMonitor>,
    ) -> Result<(Ensemble, ExecutionReport, Trace, FaultLog)> {
        setup.validate()?;
        let decomp = setup.decomposition(self.nsdx, self.nsdy)?;
        let mesh = setup.mesh();
        let radius = setup.analysis.radius;
        let nranks = decomp.num_subdomains();
        let prep = prepare_faults(cfg, setup.members)?;
        let injector = &prep.injector;
        let dropped = &prep.dropped;
        let alive = &prep.alive;
        let use_timeout = prep.use_timeout;
        let recv_timeout = cfg.recv_timeout;
        // Build the spatial observation index and perturbation cache once
        // per cycle, before the worker ranks start querying it.
        setup.observations.prepare();
        let t0 = Instant::now();

        type RankOut = Result<(enkf_grid::RegionRect, enkf_linalg::Matrix)>;
        let results: Vec<(RankOut, Vec<enkf_trace::Span>)> =
            Cluster::run_traced(nranks, |mut ctx: RankCtx<Msg>, tracer| {
                let rank = ctx.rank();
                if let Some(stage) = injector.crash_stage(rank) {
                    injector.log().crashed(rank, stage);
                    return Err(SubstrateError::RankCrashed { rank, stage }.into());
                }
                let id = decomp.id_of_rank(rank);
                let target = decomp.subdomain(id);
                let expansion = decomp.expansion(id, radius);
                let mut per_member: Vec<Option<RegionData>> =
                    (0..setup.members).map(|_| None).collect();

                if rank == 0 {
                    // The single reader: read each full member, carve out every
                    // rank's expansion block, send (keep own block locally).
                    // Dropped members burn their injected-failure spans but
                    // produce no scatter. Under a health monitor the read
                    // order moves blacklisted-OST members last; peers key
                    // blocks by member index, so the reorder is invisible
                    // to the numerics.
                    let order: Vec<usize> = match monitor {
                        Some(mon) => mon.view().reorder(&(0..setup.members).collect::<Vec<_>>()),
                        None => (0..setup.members).collect(),
                    };
                    for &k in &order {
                        let full = match read_full_adaptive(
                            setup.store,
                            tracer,
                            None,
                            k,
                            injector,
                            monitor,
                        ) {
                            Ok(d) => d,
                            Err(_) if dropped.contains(&k) => continue,
                            Err(e) => {
                                // Unblock every waiting rank before bailing out.
                                for peer in 1..ctx.size() {
                                    ctx.send(
                                        peer,
                                        k as u64,
                                        Msg::Abort {
                                            reason: format!("read failed: {e}"),
                                        },
                                    );
                                }
                                return Err(e.into());
                            }
                        };
                        for peer in 1..ctx.size() {
                            let peer_id = decomp.id_of_rank(peer);
                            let peer_exp = decomp.expansion(peer_id, radius);
                            let (_, block_bytes) = setup.store.op_cost(&peer_exp);
                            let delay = injector.send_delay(0, peer);
                            let drop_msg = injector.message_dropped(0, peer);
                            tracer.send(None, peer, block_bytes, || {
                                if delay > 0.0 {
                                    std::thread::sleep(Duration::from_secs_f64(delay));
                                }
                                let block = full.extract(&peer_exp);
                                if !drop_msg {
                                    ctx.send(
                                        peer,
                                        k as u64,
                                        Msg::Blocks {
                                            stage: 0,
                                            members: vec![k],
                                            data: vec![block],
                                        },
                                    );
                                }
                            });
                        }
                        per_member[k] = Some(full.extract(&expansion));
                    }
                } else {
                    // Receive the expansion blocks of all surviving members
                    // from rank 0.
                    let received: std::result::Result<(), enkf_core::EnkfError> =
                        tracer.wait(None, || {
                            for _ in 0..alive.len() {
                                let envelope = if use_timeout {
                                    match ctx.recv_timeout(recv_timeout) {
                                        Ok(env) => env,
                                        Err(e) => return Err(e.into()),
                                    }
                                } else {
                                    match ctx.recv() {
                                        Ok(env) => env,
                                        Err(e) => return Err(e.into()),
                                    }
                                };
                                match envelope.payload {
                                    Msg::Blocks {
                                        members, mut data, ..
                                    } => {
                                        let k = members[0];
                                        per_member[k] = Some(data.remove(0));
                                    }
                                    Msg::Abort { reason } => {
                                        return Err(enkf_core::EnkfError::GeometryMismatch(
                                            format!("reader aborted: {reason}"),
                                        ))
                                    }
                                }
                            }
                            Ok(())
                        });
                    received?;
                }

                // Typed, not a panic: a protocol violation (a duplicate
                // block shadowing another member within the counted
                // receive loop) must tear this rank down cleanly, like
                // every other substrate failure.
                let mut assembled: Vec<RegionData> = Vec::with_capacity(alive.len());
                for &k in alive {
                    match per_member[k].take() {
                        Some(d) => assembled.push(d),
                        None => {
                            return Err(SubstrateError::HelperFailed {
                                rank,
                                detail: format!("member {k} block missing after scatter"),
                            }
                            .into())
                        }
                    }
                }
                let per_member = assembled;
                let dilation = injector.compute_dilation(rank);
                let out = tracer.compute(None, || {
                    let start = Instant::now();
                    let xb = region_to_matrix(&expansion, &per_member);
                    let mut obs = setup.observations.localize(&expansion);
                    if !dropped.is_empty() {
                        obs = obs.select_members(alive);
                    }
                    let r = setup.analysis.analyze(mesh, &target, &expansion, &xb, &obs);
                    dilate(start, dilation);
                    r
                });
                if let Some(mon) = monitor {
                    mon.observe_compute(rank, dilation);
                }
                out.map(|m| (target, m))
            });

        let mut trace = Trace::new("lenkf-real");
        let mut compute_ranks = PhaseBreakdown::default();
        let mut per_domain = Vec::with_capacity(nranks);
        for (res, spans) in results {
            compute_ranks.merge(&PhaseBreakdown::from_spans(&spans));
            trace.extend(spans);
            per_domain.push(res?);
        }
        let analysis = assemble_analysis(mesh, alive.len(), &decomp, per_domain);
        let report = ExecutionReport {
            compute_ranks,
            io_ranks: PhaseBreakdown::default(),
            num_compute_ranks: nranks,
            num_io_ranks: 0,
            wall_time: t0.elapsed().as_secs_f64(),
            dropped_members: dropped.clone(),
        };
        Ok((analysis, report, trace, prep.injector.into_log()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PEnkf;
    use enkf_core::{serial_enkf, LocalAnalysis};
    use enkf_data::{write_ensemble, ScenarioBuilder};
    use enkf_grid::{FileLayout, LocalizationRadius, Mesh};
    use enkf_pfs::{FileStore, ScratchDir};

    #[test]
    fn lenkf_matches_serial_and_penkf() {
        let mesh = Mesh::new(12, 6);
        let members = 5;
        let scenario = ScenarioBuilder::new(mesh).members(members).seed(21).build();
        let scratch = ScratchDir::new("lenkf").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        write_ensemble(&store, &scenario.ensemble).unwrap();
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let setup = AssimilationSetup {
            store: &store,
            members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(radius),
        };
        let (l_analysis, l_report) = LEnkf { nsdx: 4, nsdy: 2 }.run(&setup).unwrap();
        let (p_analysis, _) = PEnkf { nsdx: 4, nsdy: 2 }.run(&setup).unwrap();
        let reference = serial_enkf(&scenario.ensemble, &scenario.observations, radius).unwrap();
        assert!(l_analysis.states().approx_eq(reference.states(), 1e-12));
        assert!(l_analysis.states().approx_eq(p_analysis.states(), 1e-12));
        // Rank 0 did all the reading and all the sending.
        assert!(l_report.compute_ranks.read > 0.0);
        assert!(l_report.compute_ranks.comm > 0.0);
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let mesh = Mesh::new(6, 6);
        let members = 4;
        let scenario = ScenarioBuilder::new(mesh).members(members).seed(2).build();
        let scratch = ScratchDir::new("lenkf1").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        write_ensemble(&store, &scenario.ensemble).unwrap();
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let setup = AssimilationSetup {
            store: &store,
            members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(radius),
        };
        let (analysis, _) = LEnkf { nsdx: 1, nsdy: 1 }.run(&setup).unwrap();
        let reference = serial_enkf(&scenario.ensemble, &scenario.observations, radius).unwrap();
        assert!(analysis.states().approx_eq(reference.states(), 1e-12));
    }
}
