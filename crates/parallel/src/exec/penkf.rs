//! P-EnKF: the block-reading state-of-the-art baseline (real executor).
//!
//! Every rank owns one sub-domain. For each of the `N` member files, it
//! reads its expansion block directly from the parallel file system
//! (Fig. 3: `O(height)` disk addressing operations per block because a
//! partial-width region is one segment per latitude row). Only after **all**
//! members are on-rank does the local analysis start — the strict
//! read-then-compute workflow of Fig. 4 whose lack of overlap the paper
//! attacks.

use crate::exec::setup::AssimilationSetup;
use crate::exec::{assemble_analysis, dilate, prepare_faults, Msg};
use crate::report::{ExecutionReport, PhaseBreakdown};
use enkf_core::{Ensemble, Result};
use enkf_data::region_to_matrix;
use enkf_fault::{FaultConfig, FaultLog, SubstrateError};
use enkf_health::HealthMonitor;
use enkf_net::{Cluster, RankCtx};
use enkf_pfs::{read_region_adaptive, RegionData};
use enkf_trace::Trace;
use std::collections::BTreeMap;
use std::time::Instant;

/// The P-EnKF variant: `n_sdx × n_sdy` ranks, block reading, sequential
/// phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PEnkf {
    /// Sub-domains (= ranks) along longitude.
    pub nsdx: usize,
    /// Sub-domains (= ranks) along latitude.
    pub nsdy: usize,
}

impl PEnkf {
    /// Run the assimilation; returns the analysis ensemble and the phase
    /// timings.
    pub fn run(&self, setup: &AssimilationSetup<'_>) -> Result<(Ensemble, ExecutionReport)> {
        self.run_traced(setup)
            .map(|(analysis, report, _)| (analysis, report))
    }

    /// [`PEnkf::run`], additionally returning the execution trace: one read
    /// span per member block (bytes/seeks from the file layout, matching
    /// what the DES model charges) and one compute span per rank. The
    /// report's `PhaseBreakdown` is the per-rank projection of these spans.
    pub fn run_traced(
        &self,
        setup: &AssimilationSetup<'_>,
    ) -> Result<(Ensemble, ExecutionReport, Trace)> {
        self.run_faulted(setup, &FaultConfig::none())
            .map(|(analysis, report, trace, _)| (analysis, report, trace))
    }

    /// [`PEnkf::run_traced`] under a fault plan. With `FaultConfig::none()`
    /// this is behaviourally identical to `run_traced` (byte-identical
    /// trace digests); under a seeded plan, reads retry with backoff,
    /// unrecoverable members are dropped when `cfg.degraded` is set (the
    /// cycle completes on the survivors), stragglers dilate compute, and
    /// every injected fault lands in the returned [`FaultLog`].
    pub fn run_faulted(
        &self,
        setup: &AssimilationSetup<'_>,
        cfg: &FaultConfig,
    ) -> Result<(Ensemble, ExecutionReport, Trace, FaultLog)> {
        self.run_adaptive(setup, cfg, None)
    }

    /// [`PEnkf::run_faulted`] with online health monitoring. When a
    /// [`HealthMonitor`] is supplied, each rank consults the monitor's
    /// frozen [`RouteView`](enkf_health::RouteView) before every member
    /// read: members on blacklisted OSTs are read last (the reorder is
    /// digest-neutral and, because blocks are keyed by member before the
    /// analysis, numerically invisible) and routed through
    /// [`read_region_adaptive`] so a degraded OST triggers a speculative
    /// duplicate read against its replica. Observed read-dilation and
    /// compute-dilation ratios are fed back into the monitor; the caller
    /// folds them at the cycle boundary with
    /// [`HealthMonitor::end_cycle`]. With `monitor: None` this is
    /// byte-identical to [`PEnkf::run_faulted`].
    pub fn run_adaptive(
        &self,
        setup: &AssimilationSetup<'_>,
        cfg: &FaultConfig,
        monitor: Option<&HealthMonitor>,
    ) -> Result<(Ensemble, ExecutionReport, Trace, FaultLog)> {
        setup.validate()?;
        let decomp = setup.decomposition(self.nsdx, self.nsdy)?;
        let mesh = setup.mesh();
        let radius = setup.analysis.radius;
        let nranks = decomp.num_subdomains();
        let prep = prepare_faults(cfg, setup.members)?;
        let injector = &prep.injector;
        let dropped = &prep.dropped;
        let alive = &prep.alive;
        // Build the spatial observation index and perturbation cache once
        // per cycle, before the worker ranks start querying it.
        setup.observations.prepare();
        let t0 = Instant::now();

        type RankOut = Result<(enkf_grid::RegionRect, enkf_linalg::Matrix)>;
        let results: Vec<(RankOut, Vec<enkf_trace::Span>)> =
            Cluster::run_traced(nranks, |ctx: RankCtx<Msg>, tracer| {
                let rank = ctx.rank();
                if let Some(stage) = injector.crash_stage(rank) {
                    injector.log().crashed(rank, stage);
                    return Err(SubstrateError::RankCrashed { rank, stage }.into());
                }
                let id = decomp.id_of_rank(rank);
                let target = decomp.subdomain(id);
                let expansion = decomp.expansion(id, radius);

                // Phase 1: block-read the expansion of every member file.
                // Dropped members still burn their (injected-failure) fault
                // spans before being skipped, so the wall cost of deciding
                // to drop is accounted for. Under a health monitor the read
                // *order* moves blacklisted-OST members last, but blocks are
                // collected keyed by member and re-assembled ascending, so
                // the analysis input is bit-identical either way.
                let order: Vec<usize> = match monitor {
                    Some(mon) => mon.view().reorder(&(0..setup.members).collect::<Vec<_>>()),
                    None => (0..setup.members).collect(),
                };
                let mut by_member: BTreeMap<usize, RegionData> = BTreeMap::new();
                for &k in &order {
                    match read_region_adaptive(
                        setup.store,
                        tracer,
                        None,
                        k,
                        &expansion,
                        injector,
                        monitor,
                    ) {
                        Ok(d) => {
                            by_member.insert(k, d);
                        }
                        Err(_) if dropped.contains(&k) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                let per_member: Vec<RegionData> = by_member.into_values().collect();

                // Phase 2: local analysis on the gathered data.
                let dilation = injector.compute_dilation(rank);
                let out = tracer.compute(None, || {
                    let start = Instant::now();
                    let xb = region_to_matrix(&expansion, &per_member);
                    let mut obs = setup.observations.localize(&expansion);
                    if !dropped.is_empty() {
                        obs = obs.select_members(alive);
                    }
                    let r = setup.analysis.analyze(mesh, &target, &expansion, &xb, &obs);
                    dilate(start, dilation);
                    r
                });
                if let Some(mon) = monitor {
                    mon.observe_compute(rank, dilation);
                }
                out.map(|m| (target, m))
            });

        let mut trace = Trace::new("penkf-real");
        let mut compute_ranks = PhaseBreakdown::default();
        let mut per_domain = Vec::with_capacity(nranks);
        for (res, spans) in results {
            compute_ranks.merge(&PhaseBreakdown::from_spans(&spans));
            trace.extend(spans);
            per_domain.push(res?);
        }
        let analysis = assemble_analysis(mesh, alive.len(), &decomp, per_domain);
        let report = ExecutionReport {
            compute_ranks,
            io_ranks: PhaseBreakdown::default(),
            num_compute_ranks: nranks,
            num_io_ranks: 0,
            wall_time: t0.elapsed().as_secs_f64(),
            dropped_members: dropped.clone(),
        };
        Ok((analysis, report, trace, prep.injector.into_log()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_core::{serial_enkf, LocalAnalysis};
    use enkf_data::{write_ensemble, ScenarioBuilder};
    use enkf_grid::{FileLayout, LocalizationRadius, Mesh};
    use enkf_pfs::{FileStore, ScratchDir};

    fn setup_files(
        mesh: Mesh,
        members: usize,
        seed: u64,
    ) -> (ScratchDir, FileStore, enkf_data::Scenario) {
        let scenario = ScenarioBuilder::new(mesh)
            .members(members)
            .seed(seed)
            .build();
        let scratch = ScratchDir::new("penkf").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        write_ensemble(&store, &scenario.ensemble).unwrap();
        (scratch, store, scenario)
    }

    #[test]
    fn matches_serial_reference_exactly() {
        let mesh = Mesh::new(12, 8);
        let (_s, store, scenario) = setup_files(mesh, 6, 3);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let setup = AssimilationSetup {
            store: &store,
            members: 6,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(radius),
        };
        let (analysis, report) = PEnkf { nsdx: 3, nsdy: 2 }.run(&setup).unwrap();
        let reference = serial_enkf(&scenario.ensemble, &scenario.observations, radius).unwrap();
        assert!(
            analysis.states().approx_eq(reference.states(), 1e-12),
            "P-EnKF must equal the serial point-wise reference"
        );
        assert_eq!(report.num_compute_ranks, 6);
        assert!(report.compute_ranks.read > 0.0);
        assert!(report.compute_ranks.compute > 0.0);
        assert_eq!(
            report.compute_ranks.comm, 0.0,
            "P-EnKF has no communication phase"
        );
    }

    #[test]
    fn different_decompositions_agree() {
        let mesh = Mesh::new(12, 12);
        let (_s, store, scenario) = setup_files(mesh, 5, 9);
        let radius = LocalizationRadius { xi: 2, eta: 1 };
        let setup = AssimilationSetup {
            store: &store,
            members: 5,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(radius),
        };
        let (a, _) = PEnkf { nsdx: 2, nsdy: 2 }.run(&setup).unwrap();
        let (b, _) = PEnkf { nsdx: 4, nsdy: 3 }.run(&setup).unwrap();
        assert!(a.states().approx_eq(b.states(), 1e-12));
    }

    #[test]
    fn invalid_decomposition_is_rejected() {
        let mesh = Mesh::new(12, 8);
        let (_s, store, scenario) = setup_files(mesh, 4, 1);
        let setup = AssimilationSetup {
            store: &store,
            members: 4,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
        };
        assert!(PEnkf { nsdx: 5, nsdy: 2 }.run(&setup).is_err());
    }
}
