//! Shared configuration for the real executors.

use enkf_core::{EnkfError, LocalAnalysis, Observations};
use enkf_grid::{Decomposition, Mesh};
use enkf_pfs::FileStore;

/// Everything a real parallel run needs besides the variant-specific
/// parameters: where the background member files live, how many there are,
/// the observations, and the local-analysis configuration.
#[derive(Debug)]
pub struct AssimilationSetup<'a> {
    /// Store holding the background ensemble member files.
    pub store: &'a FileStore,
    /// Number of ensemble members (files `0..members`).
    pub members: usize,
    /// Observation set.
    pub observations: &'a Observations,
    /// Local analysis configuration (radius, ridge, granularity).
    pub analysis: LocalAnalysis,
}

impl<'a> AssimilationSetup<'a> {
    /// The mesh (from the store layout).
    pub fn mesh(&self) -> Mesh {
        self.store.layout().mesh()
    }

    /// Validate a decomposition against this setup, mapping the error.
    pub fn decomposition(&self, nsdx: usize, nsdy: usize) -> Result<Decomposition, EnkfError> {
        Decomposition::new(self.mesh(), nsdx, nsdy)
            .map_err(|e| EnkfError::GeometryMismatch(e.to_string()))
    }

    /// Sanity checks shared by all variants.
    pub fn validate(&self) -> Result<(), EnkfError> {
        if self.members < 2 {
            return Err(EnkfError::GeometryMismatch(
                "need at least 2 ensemble members".into(),
            ));
        }
        if self.observations.operator().mesh() != self.mesh() {
            return Err(EnkfError::GeometryMismatch(
                "observation mesh differs from store mesh".into(),
            ));
        }
        if self.observations.perturbed().members() != self.members {
            return Err(EnkfError::GeometryMismatch(
                "perturbed-observation member count differs from ensemble size".into(),
            ));
        }
        Ok(())
    }
}
