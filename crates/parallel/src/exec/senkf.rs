//! S-EnKF: the paper's co-designed scalable EnKF (real executor).
//!
//! Processor roles (Fig. 8): `C₂ = n_sdx·n_sdy` **compute ranks** own one
//! sub-domain each; `C₁ = n_cg·n_sdy` **I/O ranks** form `n_cg` concurrent
//! groups of `n_sdy` readers. Work proceeds in `L` stages:
//!
//! * I/O rank `(g, j)` reads, for every member file of its group, the
//!   *small bar* of latitude-block `j`, stage `l` — a full-width band, one
//!   contiguous segment, one disk addressing operation (§4.1.2) — and sends
//!   each compute rank `(i, j)` its block (the layer expansion) bundled
//!   over the group's files.
//! * Compute rank `(i, j)` runs a **helper thread** that ingests blocks and
//!   hands the main thread a fully assembled `X̄ᵇ` per stage; the main
//!   thread analyzes layer `l` while the helper (and the I/O ranks) already
//!   work on stage `l+1` — the overlap of Figs. 7–8.

use crate::exec::setup::AssimilationSetup;
use crate::exec::{assemble_analysis, dilate, prepare_faults, Msg};
use crate::report::{ExecutionReport, PhaseBreakdown};
use enkf_core::{EnkfError, Ensemble, Result};
use enkf_fault::{FaultConfig, FaultLog, SubstrateError};
use enkf_grid::RegionRect;
use enkf_health::HealthMonitor;
use enkf_linalg::Matrix;
use enkf_net::{Cluster, RankCtx};
use enkf_pfs::{read_stages_ahead_adaptive, ReadAheadError, StageRead};
use enkf_trace::{Role, Trace};
use enkf_tuning::Params;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Helper-channel sentinel: an I/O rank aborted (sent `Msg::Abort`).
const ABORT_SENTINEL: usize = usize::MAX;
/// Helper-channel sentinel: a receive timed out (crashed/dropping peer).
const TIMEOUT_SENTINEL: usize = usize::MAX - 1;
/// Helper-channel sentinel: the helper's own bookkeeping failed (a stage it
/// believed complete was not present). Surfaced as
/// [`SubstrateError::HelperFailed`] instead of panicking the process.
const HELPER_ERR_SENTINEL: usize = usize::MAX - 2;

/// The S-EnKF variant, configured by the auto-tunable parameter set
/// `(n_sdx, n_sdy, L, n_cg)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SEnkf {
    /// Decomposition / overlap parameters (`enkf_tuning::Params`).
    pub params: Params,
}

impl SEnkf {
    /// Construct from a parameter set (e.g. the auto-tuner's output).
    pub fn new(params: Params) -> Self {
        SEnkf { params }
    }

    /// Run the assimilation; returns the analysis ensemble and the phase
    /// timings (compute ranks and I/O ranks reported separately).
    pub fn run(&self, setup: &AssimilationSetup<'_>) -> Result<(Ensemble, ExecutionReport)> {
        self.run_traced(setup)
            .map(|(analysis, report, _)| (analysis, report))
    }

    /// [`SEnkf::run`], additionally returning the execution trace: per I/O
    /// rank one read span per (stage, group file) — a single-seek bar — and
    /// one send span per (stage, compute peer); per compute rank one wait
    /// and one compute span per stage. The report's per-class
    /// `PhaseBreakdown`s are projections of these spans.
    pub fn run_traced(
        &self,
        setup: &AssimilationSetup<'_>,
    ) -> Result<(Ensemble, ExecutionReport, Trace)> {
        self.run_faulted(setup, &FaultConfig::none())
            .map(|(analysis, report, trace, _)| (analysis, report, trace))
    }

    /// [`SEnkf::run_traced`] under a fault plan. With `FaultConfig::none()`
    /// this is behaviourally identical to `run_traced`. Under a seeded
    /// plan, I/O-rank bar reads retry with backoff, unrecoverable members
    /// are dropped in degraded mode (bundles shrink to the group's
    /// survivors; compute ranks assemble `N − |dropped|` columns),
    /// stragglers dilate compute, message delays stall sends, and crashes
    /// or message drops switch receives to a timeout that surfaces
    /// [`SubstrateError::RecvTimeout`] instead of hanging.
    pub fn run_faulted(
        &self,
        setup: &AssimilationSetup<'_>,
        cfg: &FaultConfig,
    ) -> Result<(Ensemble, ExecutionReport, Trace, FaultLog)> {
        self.run_adaptive(setup, cfg, None)
    }

    /// [`SEnkf::run_faulted`] with online health monitoring. Each I/O rank
    /// reorders its group's member list so blacklisted-OST members are read
    /// last (bundles carry explicit member indices and the helper thread
    /// places columns by member, so the reorder never reaches the
    /// numerics), and every bar read goes through the adaptive route —
    /// a blacklisted OST triggers a deterministic speculative duplicate
    /// read against its replica. Observed read and compute dilation ratios
    /// feed the monitor; the caller folds them at the cycle boundary with
    /// [`HealthMonitor::end_cycle`]. With `monitor: None` this is
    /// byte-identical to [`SEnkf::run_faulted`].
    pub fn run_adaptive(
        &self,
        setup: &AssimilationSetup<'_>,
        cfg: &FaultConfig,
        monitor: Option<&HealthMonitor>,
    ) -> Result<(Ensemble, ExecutionReport, Trace, FaultLog)> {
        setup.validate()?;
        let p = self.params;
        let decomp = setup.decomposition(p.nsdx, p.nsdy)?;
        decomp
            .check_layers(p.layers)
            .map_err(|e| EnkfError::GeometryMismatch(e.to_string()))?;
        if p.ncg == 0 || !setup.members.is_multiple_of(p.ncg) {
            return Err(EnkfError::GeometryMismatch(format!(
                "members {} not divisible by n_cg {}",
                setup.members, p.ncg
            )));
        }
        let mesh = setup.mesh();
        let radius = setup.analysis.radius;
        let c2 = decomp.num_subdomains();
        let c1 = p.ncg * p.nsdy;
        let nranks = c1 + c2;
        let files_per_group = setup.members / p.ncg;
        let prep = prepare_faults(cfg, setup.members)?;
        let injector = &prep.injector;
        let dropped = &prep.dropped;
        let alive = &prep.alive;
        let use_timeout = prep.use_timeout;
        let recv_timeout = cfg.recv_timeout;
        // Global member index → column of the (possibly reduced) X̄ᵇ.
        let alive_cols: BTreeMap<usize, usize> =
            alive.iter().enumerate().map(|(c, &k)| (k, c)).collect();
        // Groups whose members all dropped send no bundles at all, so the
        // helper thread must expect `layers × groups_alive` of them.
        let groups_alive = (0..p.ncg)
            .filter(|g| {
                (g * files_per_group..(g + 1) * files_per_group).any(|k| !dropped.contains(&k))
            })
            .count();
        // Build the spatial observation index and perturbation cache once
        // per cycle, before the worker ranks start querying it.
        setup.observations.prepare();
        let t0 = Instant::now();

        type RankOut = (Result<Option<(RegionRect, Matrix)>>, /* is_io: */ bool);
        let results: Vec<(RankOut, Vec<enkf_trace::Span>)> =
            Cluster::run_traced(nranks, |mut ctx: RankCtx<Msg>, tracer| {
                let rank = ctx.rank();
                if rank >= c2 {
                    // ---- I/O rank (group g, latitude block j) ----
                    tracer.set_role(Role::Io);
                    let io_index = rank - c2;
                    let group = io_index / p.nsdy;
                    let j = io_index % p.nsdy;
                    // Under a health monitor, read blacklisted-OST members
                    // last. `alive_files` is derived from the *reordered*
                    // list, so bundle member order always matches the data
                    // order the pipeline delivers.
                    let files: Vec<usize> =
                        (group * files_per_group..(group + 1) * files_per_group).collect();
                    let files = match monitor {
                        Some(mon) => mon.view().reorder(&files),
                        None => files,
                    };
                    let alive_files: Vec<usize> = files
                        .iter()
                        .copied()
                        .filter(|k| !dropped.contains(k))
                        .collect();
                    // Read stages through the one-stage read-ahead pipeline:
                    // a prefetch thread reads stage l+1's bar while this
                    // thread scatters stage l's blocks. The plan is truncated
                    // at a planned crash stage so exactly the reads the
                    // sequential loop would perform happen — digests are
                    // order-insensitive, so prefetching cannot move them.
                    let crash = injector.crash_stage(rank);
                    let run_stages = crash.unwrap_or(p.layers);
                    let plan: Vec<StageRead> = (0..run_stages)
                        .map(|l| StageRead {
                            stage: l,
                            region: decomp.small_bar(j, l, p.layers, radius),
                            members: files.clone(),
                        })
                        .collect();
                    let outcome = read_stages_ahead_adaptive::<std::convert::Infallible>(
                        setup.store,
                        injector,
                        tracer,
                        &plan,
                        dropped,
                        monitor,
                        |sr, datas, tracer| {
                            let l = sr.stage;
                            if alive_files.is_empty() {
                                return Ok(()); // whole group dropped: nothing to send
                            }
                            debug_assert_eq!(datas.len(), alive_files.len());
                            for i in 0..p.nsdx {
                                let id = enkf_grid::SubDomainId { i, j };
                                let block = decomp.block_of_small_bar(id, l, p.layers, radius);
                                let (_, block_bytes) = setup.store.op_cost(&block);
                                let bundle_bytes = block_bytes * alive_files.len() as u64;
                                let target = decomp.rank_of(id);
                                let delay = injector.send_delay(rank, target);
                                let drop_msg = injector.message_dropped(rank, target);
                                // Serialization (block extraction) is charged to the
                                // send, mirroring the model's sender-side service.
                                // Extraction is O(1) per member: each block is a
                                // view sharing the bar's allocation.
                                tracer.send(Some(l), target, bundle_bytes, || {
                                    if delay > 0.0 {
                                        std::thread::sleep(Duration::from_secs_f64(delay));
                                    }
                                    let blocks: Vec<enkf_pfs::RegionData> =
                                        datas.iter().map(|d| d.extract(&block)).collect();
                                    if !drop_msg {
                                        ctx.send(
                                            target,
                                            l as u64,
                                            Msg::Blocks {
                                                stage: l,
                                                members: alive_files.clone(),
                                                data: blocks,
                                            },
                                        );
                                    }
                                });
                            }
                            Ok(())
                        },
                    );
                    match outcome {
                        Ok(()) => {}
                        Err(ReadAheadError::Read {
                            stage: l, error: e, ..
                        }) => {
                            // Unblock this latitude block's compute ranks
                            // before bailing out.
                            for i in 0..p.nsdx {
                                let id = enkf_grid::SubDomainId { i, j };
                                ctx.send(
                                    decomp.rank_of(id),
                                    l as u64,
                                    Msg::Abort {
                                        reason: format!("read failed: {e}"),
                                    },
                                );
                            }
                            return (Err(e.into()), true);
                        }
                        Err(ReadAheadError::Consume(never)) => match never {},
                        Err(ReadAheadError::ReaderPanicked { message }) => {
                            // Contained prefetch-thread panic: unblock this
                            // latitude block's compute ranks, then surface a
                            // typed substrate error instead of tearing down
                            // the executor.
                            let detail = format!("prefetch thread panicked: {message}");
                            for i in 0..p.nsdx {
                                let id = enkf_grid::SubDomainId { i, j };
                                ctx.send(
                                    decomp.rank_of(id),
                                    0,
                                    Msg::Abort {
                                        reason: detail.clone(),
                                    },
                                );
                            }
                            return (
                                Err(SubstrateError::HelperFailed { rank, detail }.into()),
                                true,
                            );
                        }
                    }
                    if let Some(l) = crash {
                        // The plan kills this rank at the start of stage l:
                        // it stops responding — peers must time out.
                        injector.log().crashed(rank, l);
                        return (
                            Err(SubstrateError::RankCrashed { rank, stage: l }.into()),
                            true,
                        );
                    }
                    return (Ok(None), true);
                }

                // ---- Compute rank (sub-domain id) ----
                if let Some(stage) = injector.crash_stage(rank) {
                    injector.log().crashed(rank, stage);
                    return (
                        Err(SubstrateError::RankCrashed { rank, stage }.into()),
                        false,
                    );
                }
                let id = decomp.id_of_rank(rank);
                let target = decomp.subdomain(id);

                // Offload reception to the helper thread (Fig. 8): it assembles
                // X̄ᵇ for each stage and signals the main thread.
                let (inbox, stash) = ctx.split_receiver();
                debug_assert!(stash.is_empty(), "no traffic before the helper starts");
                let (tx, rx) = std::sync::mpsc::channel::<(usize, Matrix)>();
                let alive_total = alive.len();
                let cols = alive_cols.clone();
                let layers = p.layers;
                let helper = std::thread::spawn(move || {
                    struct Stage {
                        matrix: Matrix,
                        filled: usize,
                    }
                    let mut stages: BTreeMap<usize, Stage> = BTreeMap::new();
                    for _ in 0..layers * groups_alive {
                        let env = if use_timeout {
                            match inbox.recv_timeout(Duration::from_secs_f64(recv_timeout)) {
                                Ok(env) => env,
                                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                                    let _ = tx.send((TIMEOUT_SENTINEL, Matrix::zeros(0, 2)));
                                    return;
                                }
                                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                            }
                        } else {
                            let Ok(env) = inbox.recv() else { return };
                            env
                        };
                        let (stage, members, data) = match env.payload {
                            Msg::Blocks {
                                stage,
                                members,
                                data,
                            } => (stage, members, data),
                            Msg::Abort { .. } => {
                                // Signal the main thread with a sentinel stage
                                // and stop ingesting.
                                let _ = tx.send((ABORT_SENTINEL, Matrix::zeros(0, 2)));
                                return;
                            }
                        };
                        let region = decomp.layer_expansion(id, stage, layers, radius);
                        let entry = stages.entry(stage).or_insert_with(|| Stage {
                            matrix: Matrix::zeros(region.npoints(), alive_total),
                            filled: 0,
                        });
                        for (&k, rd) in members.iter().zip(&data) {
                            debug_assert_eq!(rd.region(), region, "block region mismatch");
                            let col = cols[&k];
                            for (row, v) in rd.surface().enumerate() {
                                entry.matrix[(row, col)] = v;
                            }
                        }
                        entry.filled += members.len();
                        if entry.filled == alive_total {
                            let Some(done) = stages.remove(&stage) else {
                                // Unreachable in practice (the entry was just
                                // filled above), but a bookkeeping bug here
                                // must surface as a typed error on the main
                                // thread, not a helper panic.
                                let _ = tx.send((HELPER_ERR_SENTINEL, Matrix::zeros(0, 2)));
                                return;
                            };
                            if tx.send((stage, done.matrix)).is_err() {
                                return; // main thread bailed out
                            }
                        }
                    }
                });

                // Multi-stage local analysis: stage l computes while the helper
                // and the I/O ranks feed stage l+1.
                let sub_width = target.width();
                let layer_height = target.height() / p.layers;
                let dilation = injector.compute_dilation(rank);
                if let Some(mon) = monitor {
                    mon.observe_compute(rank, dilation);
                }
                let mut result = Matrix::zeros(target.npoints(), alive_total);
                let mut ready: BTreeMap<usize, Matrix> = BTreeMap::new();
                for l in 0..p.layers {
                    let xb = loop {
                        if let Some(m) = ready.remove(&l) {
                            break m;
                        }
                        match tracer.wait(Some(l), || rx.recv()) {
                            Ok((stage, m)) => {
                                if stage == ABORT_SENTINEL {
                                    return (
                                        Err(EnkfError::GeometryMismatch(
                                            "an I/O rank aborted (read failure)".into(),
                                        )),
                                        false,
                                    );
                                }
                                if stage == TIMEOUT_SENTINEL {
                                    return (
                                        Err(SubstrateError::RecvTimeout {
                                            rank,
                                            waited: recv_timeout,
                                        }
                                        .into()),
                                        false,
                                    );
                                }
                                if stage == HELPER_ERR_SENTINEL {
                                    return (
                                        Err(SubstrateError::HelperFailed {
                                            rank,
                                            detail: "stage bookkeeping lost a completed stage"
                                                .into(),
                                        }
                                        .into()),
                                        false,
                                    );
                                }
                                ready.insert(stage, m);
                            }
                            Err(_) => {
                                return (
                                    Err(SubstrateError::HelperFailed {
                                        rank,
                                        detail: "helper thread terminated early".into(),
                                    }
                                    .into()),
                                    false,
                                )
                            }
                        }
                    };
                    let layer = decomp.layer(id, l, p.layers);
                    let expansion = decomp.layer_expansion(id, l, p.layers, radius);
                    let analyzed = tracer.compute(Some(l), || {
                        let start = Instant::now();
                        let mut obs = setup.observations.localize(&expansion);
                        if !dropped.is_empty() {
                            obs = obs.select_members(alive);
                        }
                        let r = setup.analysis.analyze(mesh, &layer, &expansion, &xb, &obs);
                        dilate(start, dilation);
                        r
                    });
                    match analyzed {
                        Ok(xa) => {
                            // Layer rows are contiguous within the sub-domain's
                            // row-priority local ordering.
                            let row0 = l * layer_height * sub_width;
                            for r in 0..xa.nrows() {
                                result.row_mut(row0 + r).copy_from_slice(xa.row(r));
                            }
                        }
                        Err(e) => return (Err(e), false),
                    }
                }
                if helper.join().is_err() {
                    return (
                        Err(SubstrateError::HelperFailed {
                            rank,
                            detail: "helper thread panicked".into(),
                        }
                        .into()),
                        false,
                    );
                }
                (Ok(Some((target, result))), false)
            });

        let mut trace = Trace::new("senkf-real");
        let mut compute_ranks = PhaseBreakdown::default();
        let mut io_ranks = PhaseBreakdown::default();
        let mut per_domain = Vec::with_capacity(c2);
        for ((res, is_io), spans) in results {
            let phases = PhaseBreakdown::from_spans(&spans);
            trace.extend(spans);
            if is_io {
                io_ranks.merge(&phases);
                res?;
            } else {
                compute_ranks.merge(&phases);
                if let Some(pair) = res? {
                    per_domain.push(pair);
                }
            }
        }
        let analysis = assemble_analysis(mesh, alive.len(), &decomp, per_domain);
        let report = ExecutionReport {
            compute_ranks,
            io_ranks,
            num_compute_ranks: c2,
            num_io_ranks: c1,
            wall_time: t0.elapsed().as_secs_f64(),
            dropped_members: dropped.clone(),
        };
        Ok((analysis, report, trace, prep.injector.into_log()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PEnkf;
    use enkf_core::{serial_enkf, LocalAnalysis};
    use enkf_data::{write_ensemble, ScenarioBuilder};
    use enkf_grid::{FileLayout, LocalizationRadius, Mesh};
    use enkf_pfs::{FileStore, ScratchDir};

    fn harness(
        mesh: Mesh,
        members: usize,
        seed: u64,
    ) -> (ScratchDir, FileStore, enkf_data::Scenario) {
        let scenario = ScenarioBuilder::new(mesh)
            .members(members)
            .seed(seed)
            .build();
        let scratch = ScratchDir::new("senkf").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        write_ensemble(&store, &scenario.ensemble).unwrap();
        (scratch, store, scenario)
    }

    #[test]
    fn matches_serial_reference_exactly() {
        let mesh = Mesh::new(12, 8);
        let members = 6;
        let (_s, store, scenario) = harness(mesh, members, 31);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let setup = AssimilationSetup {
            store: &store,
            members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(radius),
        };
        let senkf = SEnkf::new(Params {
            nsdx: 3,
            nsdy: 2,
            layers: 2,
            ncg: 2,
        });
        let (analysis, report) = senkf.run(&setup).unwrap();
        let reference = serial_enkf(&scenario.ensemble, &scenario.observations, radius).unwrap();
        assert!(
            analysis.states().approx_eq(reference.states(), 1e-12),
            "S-EnKF must equal the serial point-wise reference"
        );
        assert_eq!(report.num_compute_ranks, 6);
        assert_eq!(report.num_io_ranks, 4);
        assert!(report.io_ranks.read > 0.0, "I/O ranks must do the reading");
        assert!(report.compute_ranks.compute > 0.0);
        assert_eq!(
            report.compute_ranks.read, 0.0,
            "compute ranks never touch disk"
        );
    }

    #[test]
    fn senkf_equals_penkf_across_parameterizations() {
        let mesh = Mesh::new(16, 12);
        let members = 8;
        let (_s, store, scenario) = harness(mesh, members, 5);
        let radius = LocalizationRadius { xi: 2, eta: 1 };
        let setup = AssimilationSetup {
            store: &store,
            members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(radius),
        };
        let (p_analysis, _) = PEnkf { nsdx: 4, nsdy: 3 }.run(&setup).unwrap();
        for (layers, ncg) in [(1, 1), (2, 2), (4, 4), (2, 8)] {
            let senkf = SEnkf::new(Params {
                nsdx: 4,
                nsdy: 3,
                layers,
                ncg,
            });
            let (analysis, _) = senkf.run(&setup).unwrap();
            assert!(
                analysis.states().approx_eq(p_analysis.states(), 1e-12),
                "S-EnKF(L={layers}, ncg={ncg}) differs from P-EnKF"
            );
        }
    }

    #[test]
    fn rejects_indivisible_group_count() {
        let mesh = Mesh::new(8, 8);
        let members = 6;
        let (_s, store, scenario) = harness(mesh, members, 7);
        let setup = AssimilationSetup {
            store: &store,
            members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
        };
        // 6 members cannot split into 4 groups.
        let senkf = SEnkf::new(Params {
            nsdx: 2,
            nsdy: 2,
            layers: 2,
            ncg: 4,
        });
        assert!(senkf.run(&setup).is_err());
    }

    #[test]
    fn rejects_indivisible_layer_count() {
        let mesh = Mesh::new(8, 8);
        let members = 4;
        let (_s, store, scenario) = harness(mesh, members, 8);
        let setup = AssimilationSetup {
            store: &store,
            members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
        };
        // Sub-domain height 4 does not divide into 3 layers.
        let senkf = SEnkf::new(Params {
            nsdx: 2,
            nsdy: 2,
            layers: 3,
            ncg: 2,
        });
        assert!(senkf.run(&setup).is_err());
    }
}
