//! S-EnKF: the paper's co-designed scalable EnKF (real executor).
//!
//! Processor roles (Fig. 8): `C₂ = n_sdx·n_sdy` **compute ranks** own one
//! sub-domain each; `C₁ = n_cg·n_sdy` **I/O ranks** form `n_cg` concurrent
//! groups of `n_sdy` readers. Work proceeds in `L` stages:
//!
//! * I/O rank `(g, j)` reads, for every member file of its group, the
//!   *small bar* of latitude-block `j`, stage `l` — a full-width band, one
//!   contiguous segment, one disk addressing operation (§4.1.2) — and sends
//!   each compute rank `(i, j)` its block (the layer expansion) bundled
//!   over the group's files.
//! * Compute rank `(i, j)` runs a **helper thread** that ingests blocks and
//!   hands the main thread a fully assembled `X̄ᵇ` per stage; the main
//!   thread analyzes layer `l` while the helper (and the I/O ranks) already
//!   work on stage `l+1` — the overlap of Figs. 7–8.

use crate::exec::setup::AssimilationSetup;
use crate::exec::{assemble_analysis, Msg};
use crate::report::{ExecutionReport, PhaseBreakdown};
use enkf_core::{EnkfError, Ensemble, Result};
use enkf_grid::RegionRect;
use enkf_linalg::Matrix;
use enkf_net::{Cluster, RankCtx};
use enkf_trace::{Role, Trace};
use enkf_tuning::Params;
use std::collections::BTreeMap;
use std::time::Instant;

/// The S-EnKF variant, configured by the auto-tunable parameter set
/// `(n_sdx, n_sdy, L, n_cg)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SEnkf {
    /// Decomposition / overlap parameters (`enkf_tuning::Params`).
    pub params: Params,
}

impl SEnkf {
    /// Construct from a parameter set (e.g. the auto-tuner's output).
    pub fn new(params: Params) -> Self {
        SEnkf { params }
    }

    /// Run the assimilation; returns the analysis ensemble and the phase
    /// timings (compute ranks and I/O ranks reported separately).
    pub fn run(&self, setup: &AssimilationSetup<'_>) -> Result<(Ensemble, ExecutionReport)> {
        self.run_traced(setup)
            .map(|(analysis, report, _)| (analysis, report))
    }

    /// [`SEnkf::run`], additionally returning the execution trace: per I/O
    /// rank one read span per (stage, group file) — a single-seek bar — and
    /// one send span per (stage, compute peer); per compute rank one wait
    /// and one compute span per stage. The report's per-class
    /// `PhaseBreakdown`s are projections of these spans.
    pub fn run_traced(
        &self,
        setup: &AssimilationSetup<'_>,
    ) -> Result<(Ensemble, ExecutionReport, Trace)> {
        setup.validate()?;
        let p = self.params;
        let decomp = setup.decomposition(p.nsdx, p.nsdy)?;
        decomp
            .check_layers(p.layers)
            .map_err(|e| EnkfError::GeometryMismatch(e.to_string()))?;
        if p.ncg == 0 || !setup.members.is_multiple_of(p.ncg) {
            return Err(EnkfError::GeometryMismatch(format!(
                "members {} not divisible by n_cg {}",
                setup.members, p.ncg
            )));
        }
        let mesh = setup.mesh();
        let radius = setup.analysis.radius;
        let c2 = decomp.num_subdomains();
        let c1 = p.ncg * p.nsdy;
        let nranks = c1 + c2;
        let files_per_group = setup.members / p.ncg;
        // Build the spatial observation index and perturbation cache once
        // per cycle, before the worker ranks start querying it.
        setup.observations.prepare();
        let t0 = Instant::now();

        type RankOut = (Result<Option<(RegionRect, Matrix)>>, /* is_io: */ bool);
        let results: Vec<(RankOut, Vec<enkf_trace::Span>)> =
            Cluster::run_traced(nranks, |mut ctx: RankCtx<Msg>, tracer| {
                if ctx.rank() >= c2 {
                    // ---- I/O rank (group g, latitude block j) ----
                    tracer.set_role(Role::Io);
                    let io_index = ctx.rank() - c2;
                    let group = io_index / p.nsdy;
                    let j = io_index % p.nsdy;
                    let files: Vec<usize> =
                        (group * files_per_group..(group + 1) * files_per_group).collect();
                    for l in 0..p.layers {
                        let bar = decomp.small_bar(j, l, p.layers, radius);
                        let (bar_seeks, bar_bytes) = setup.store.op_cost(&bar);
                        let mut datas: Vec<enkf_pfs::RegionData> = Vec::with_capacity(files.len());
                        let mut failed = None;
                        for &k in &files {
                            match tracer.read(Some(l), Some(k), bar_bytes, bar_seeks, || {
                                setup.store.read_region(k, &bar)
                            }) {
                                Ok(d) => datas.push(d),
                                Err(e) => {
                                    failed = Some(e);
                                    break;
                                }
                            }
                        }
                        if let Some(e) = failed {
                            // Unblock this latitude block's compute ranks
                            // before bailing out.
                            for i in 0..p.nsdx {
                                let id = enkf_grid::SubDomainId { i, j };
                                ctx.send(
                                    decomp.rank_of(id),
                                    l as u64,
                                    Msg::Abort {
                                        reason: format!("read failed: {e}"),
                                    },
                                );
                            }
                            return (
                                Err(EnkfError::GeometryMismatch(format!("read failed: {e}"))),
                                true,
                            );
                        }
                        for i in 0..p.nsdx {
                            let id = enkf_grid::SubDomainId { i, j };
                            let block = decomp.block_of_small_bar(id, l, p.layers, radius);
                            let (_, block_bytes) = setup.store.op_cost(&block);
                            let bundle_bytes = block_bytes * files_per_group as u64;
                            let target = decomp.rank_of(id);
                            // Serialization (block extraction) is charged to the
                            // send, mirroring the model's sender-side service.
                            tracer.send(Some(l), target, bundle_bytes, || {
                                let blocks: Vec<enkf_pfs::RegionData> =
                                    datas.iter().map(|d| d.extract(&block)).collect();
                                ctx.send(
                                    target,
                                    l as u64,
                                    Msg::Blocks {
                                        stage: l,
                                        members: files.clone(),
                                        data: blocks,
                                    },
                                );
                            });
                        }
                    }
                    return (Ok(None), true);
                }

                // ---- Compute rank (sub-domain id) ----
                let id = decomp.id_of_rank(ctx.rank());
                let target = decomp.subdomain(id);

                // Offload reception to the helper thread (Fig. 8): it assembles
                // X̄ᵇ for each stage and signals the main thread.
                let (inbox, stash) = ctx.split_receiver();
                debug_assert!(stash.is_empty(), "no traffic before the helper starts");
                let (tx, rx) = std::sync::mpsc::channel::<(usize, Matrix)>();
                let members_total = setup.members;
                let layers = p.layers;
                let ncg = p.ncg;
                let helper = std::thread::spawn(move || {
                    struct Stage {
                        matrix: Matrix,
                        filled: usize,
                    }
                    let mut stages: BTreeMap<usize, Stage> = BTreeMap::new();
                    for _ in 0..layers * ncg {
                        let Ok(env) = inbox.recv() else { return };
                        let (stage, members, data) = match env.payload {
                            Msg::Blocks {
                                stage,
                                members,
                                data,
                            } => (stage, members, data),
                            Msg::Abort { .. } => {
                                // Signal the main thread with a sentinel stage
                                // and stop ingesting.
                                let _ = tx.send((usize::MAX, Matrix::zeros(0, 2)));
                                return;
                            }
                        };
                        let region = decomp.layer_expansion(id, stage, layers, radius);
                        let entry = stages.entry(stage).or_insert_with(|| Stage {
                            matrix: Matrix::zeros(region.npoints(), members_total),
                            filled: 0,
                        });
                        for (&k, rd) in members.iter().zip(&data) {
                            debug_assert_eq!(rd.region, region, "block region mismatch");
                            for row in 0..region.npoints() {
                                entry.matrix[(row, k)] = rd.value(row, 0);
                            }
                        }
                        entry.filled += members.len();
                        if entry.filled == members_total {
                            let done = stages.remove(&stage).expect("stage present");
                            if tx.send((stage, done.matrix)).is_err() {
                                return; // main thread bailed out
                            }
                        }
                    }
                });

                // Multi-stage local analysis: stage l computes while the helper
                // and the I/O ranks feed stage l+1.
                let sub_width = target.width();
                let layer_height = target.height() / p.layers;
                let mut result = Matrix::zeros(target.npoints(), setup.members);
                let mut ready: BTreeMap<usize, Matrix> = BTreeMap::new();
                for l in 0..p.layers {
                    let xb = loop {
                        if let Some(m) = ready.remove(&l) {
                            break m;
                        }
                        match tracer.wait(Some(l), || rx.recv()) {
                            Ok((stage, m)) => {
                                if stage == usize::MAX {
                                    return (
                                        Err(EnkfError::GeometryMismatch(
                                            "an I/O rank aborted (read failure)".into(),
                                        )),
                                        false,
                                    );
                                }
                                ready.insert(stage, m);
                            }
                            Err(_) => {
                                return (
                                    Err(EnkfError::GeometryMismatch(
                                        "helper thread terminated early".into(),
                                    )),
                                    false,
                                )
                            }
                        }
                    };
                    let layer = decomp.layer(id, l, p.layers);
                    let expansion = decomp.layer_expansion(id, l, p.layers, radius);
                    let analyzed = tracer.compute(Some(l), || {
                        let obs = setup.observations.localize(&expansion);
                        setup.analysis.analyze(mesh, &layer, &expansion, &xb, &obs)
                    });
                    match analyzed {
                        Ok(xa) => {
                            // Layer rows are contiguous within the sub-domain's
                            // row-priority local ordering.
                            let row0 = l * layer_height * sub_width;
                            for r in 0..xa.nrows() {
                                result.row_mut(row0 + r).copy_from_slice(xa.row(r));
                            }
                        }
                        Err(e) => return (Err(e), false),
                    }
                }
                helper.join().expect("helper thread panicked");
                (Ok(Some((target, result))), false)
            });

        let mut trace = Trace::new("senkf-real");
        let mut compute_ranks = PhaseBreakdown::default();
        let mut io_ranks = PhaseBreakdown::default();
        let mut per_domain = Vec::with_capacity(c2);
        for ((res, is_io), spans) in results {
            let phases = PhaseBreakdown::from_spans(&spans);
            trace.extend(spans);
            if is_io {
                io_ranks.merge(&phases);
                res?;
            } else {
                compute_ranks.merge(&phases);
                if let Some(pair) = res? {
                    per_domain.push(pair);
                }
            }
        }
        let analysis = assemble_analysis(mesh, setup.members, &decomp, per_domain);
        let report = ExecutionReport {
            compute_ranks,
            io_ranks,
            num_compute_ranks: c2,
            num_io_ranks: c1,
            wall_time: t0.elapsed().as_secs_f64(),
        };
        Ok((analysis, report, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PEnkf;
    use enkf_core::{serial_enkf, LocalAnalysis};
    use enkf_data::{write_ensemble, ScenarioBuilder};
    use enkf_grid::{FileLayout, LocalizationRadius, Mesh};
    use enkf_pfs::{FileStore, ScratchDir};

    fn harness(
        mesh: Mesh,
        members: usize,
        seed: u64,
    ) -> (ScratchDir, FileStore, enkf_data::Scenario) {
        let scenario = ScenarioBuilder::new(mesh)
            .members(members)
            .seed(seed)
            .build();
        let scratch = ScratchDir::new("senkf").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        write_ensemble(&store, &scenario.ensemble).unwrap();
        (scratch, store, scenario)
    }

    #[test]
    fn matches_serial_reference_exactly() {
        let mesh = Mesh::new(12, 8);
        let members = 6;
        let (_s, store, scenario) = harness(mesh, members, 31);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let setup = AssimilationSetup {
            store: &store,
            members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(radius),
        };
        let senkf = SEnkf::new(Params {
            nsdx: 3,
            nsdy: 2,
            layers: 2,
            ncg: 2,
        });
        let (analysis, report) = senkf.run(&setup).unwrap();
        let reference = serial_enkf(&scenario.ensemble, &scenario.observations, radius).unwrap();
        assert!(
            analysis.states().approx_eq(reference.states(), 1e-12),
            "S-EnKF must equal the serial point-wise reference"
        );
        assert_eq!(report.num_compute_ranks, 6);
        assert_eq!(report.num_io_ranks, 4);
        assert!(report.io_ranks.read > 0.0, "I/O ranks must do the reading");
        assert!(report.compute_ranks.compute > 0.0);
        assert_eq!(
            report.compute_ranks.read, 0.0,
            "compute ranks never touch disk"
        );
    }

    #[test]
    fn senkf_equals_penkf_across_parameterizations() {
        let mesh = Mesh::new(16, 12);
        let members = 8;
        let (_s, store, scenario) = harness(mesh, members, 5);
        let radius = LocalizationRadius { xi: 2, eta: 1 };
        let setup = AssimilationSetup {
            store: &store,
            members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(radius),
        };
        let (p_analysis, _) = PEnkf { nsdx: 4, nsdy: 3 }.run(&setup).unwrap();
        for (layers, ncg) in [(1, 1), (2, 2), (4, 4), (2, 8)] {
            let senkf = SEnkf::new(Params {
                nsdx: 4,
                nsdy: 3,
                layers,
                ncg,
            });
            let (analysis, _) = senkf.run(&setup).unwrap();
            assert!(
                analysis.states().approx_eq(p_analysis.states(), 1e-12),
                "S-EnKF(L={layers}, ncg={ncg}) differs from P-EnKF"
            );
        }
    }

    #[test]
    fn rejects_indivisible_group_count() {
        let mesh = Mesh::new(8, 8);
        let members = 6;
        let (_s, store, scenario) = harness(mesh, members, 7);
        let setup = AssimilationSetup {
            store: &store,
            members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
        };
        // 6 members cannot split into 4 groups.
        let senkf = SEnkf::new(Params {
            nsdx: 2,
            nsdy: 2,
            layers: 2,
            ncg: 4,
        });
        assert!(senkf.run(&setup).is_err());
    }

    #[test]
    fn rejects_indivisible_layer_count() {
        let mesh = Mesh::new(8, 8);
        let members = 4;
        let (_s, store, scenario) = harness(mesh, members, 8);
        let setup = AssimilationSetup {
            store: &store,
            members,
            observations: &scenario.observations,
            analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
        };
        // Sub-domain height 4 does not divide into 3 layers.
        let senkf = SEnkf::new(Params {
            nsdx: 2,
            nsdy: 2,
            layers: 3,
            ncg: 2,
        });
        assert!(senkf.run(&setup).is_err());
    }
}
