//! Parallel write-back of the analysis ensemble.
//!
//! The assimilation's product — the analysis `X^a` — must land back on the
//! parallel file system to serve as the model's initial condition. The
//! write side mirrors the bar-reading co-design: each writer owns a set of
//! full-width latitude bars (single-segment, one addressing operation per
//! bar per member) instead of scattering per-rank blocks.

use crate::report::PhaseBreakdown;
use enkf_core::{EnkfError, Ensemble, Result};
use enkf_grid::{Decomposition, RegionRect};
use enkf_pfs::FileStore;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Test failpoint: the next writer thread panics mid-write. The panic must
/// surface as a typed error from [`parallel_write_back`], never tear down
/// the caller. Self-clearing.
pub static FAIL_WRITER_PANIC: AtomicBool = AtomicBool::new(false);

/// Write every member of `analysis` into `store` using `writers` parallel
/// bar writers. Member files are created (zero-filled) first; each writer
/// then writes its latitude bars of every member. Returns the accumulated
/// write-phase timing.
pub fn parallel_write_back(
    store: &FileStore,
    analysis: &Ensemble,
    writers: usize,
) -> Result<PhaseBreakdown> {
    let mesh = analysis.mesh();
    if store.layout().mesh() != mesh {
        return Err(EnkfError::GeometryMismatch(
            "store layout mesh differs from analysis mesh".into(),
        ));
    }
    if writers == 0 || !mesh.ny().is_multiple_of(writers) {
        return Err(EnkfError::GeometryMismatch(format!(
            "ny = {} is not divisible into {writers} writer bars",
            mesh.ny()
        )));
    }
    let levels = store.levels();
    // Preallocate the member files serially (cheap, one pass).
    for k in 0..analysis.size() {
        store
            .create_member(k)
            .map_err(|e| EnkfError::GeometryMismatch(format!("create failed: {e}")))?;
    }
    let decomp = Decomposition::new(mesh, 1, writers)
        .map_err(|e| EnkfError::GeometryMismatch(e.to_string()))?;

    let t0 = Instant::now();
    let errors: Vec<Option<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..writers)
            .map(|j| {
                let decomp = &decomp;
                scope.spawn(move || {
                    if FAIL_WRITER_PANIC.swap(false, Ordering::SeqCst) {
                        panic!("injected write-back writer panic (failpoint)");
                    }
                    let bar: RegionRect = decomp.bar(j);
                    let local = analysis.restrict(&bar);
                    // One staging vector per writer, reused across members —
                    // the pooled write path serializes straight from it.
                    let mut values = vec![0.0f64; bar.npoints() * levels];
                    for k in 0..analysis.size() {
                        for row in 0..bar.npoints() {
                            let v = local[(row, k)];
                            for level in 0..levels {
                                values[row * levels + level] =
                                    v - enkf_data::LEVEL_LAPSE * level as f64;
                            }
                        }
                        if let Err(e) = store.write_region_values(k, &bar, &values) {
                            return Some(format!("bar {j}, member {k}: {e}"));
                        }
                    }
                    None
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(j, h)| match h.join() {
                Ok(err) => err,
                // Contain a panicking writer: the caller gets a typed
                // error, not a propagated panic from a worker thread.
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "writer panicked".into());
                    Some(format!("writer {j} panicked: {msg}"))
                }
            })
            .collect()
    });
    if let Some(msg) = errors.into_iter().flatten().next() {
        return Err(EnkfError::GeometryMismatch(format!(
            "write-back failed: {msg}"
        )));
    }
    Ok(PhaseBreakdown {
        read: 0.0,
        comm: 0.0,
        compute: 0.0,
        wait: t0.elapsed().as_secs_f64(),
        fault: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_data::{read_ensemble, ScenarioBuilder};
    use enkf_grid::{FileLayout, Mesh};
    use enkf_pfs::ScratchDir;

    #[test]
    fn write_back_roundtrips_through_read() {
        let mesh = Mesh::new(16, 8);
        let members = 5;
        let scenario = ScenarioBuilder::new(mesh).members(members).seed(2).build();
        let scratch = ScratchDir::new("writeback").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        parallel_write_back(&store, &scenario.ensemble, 4).unwrap();
        let back = read_ensemble(&store, members).unwrap();
        assert_eq!(back.states(), scenario.ensemble.states());
    }

    #[test]
    fn panicking_writer_is_a_typed_error_not_a_process_panic() {
        let mesh = Mesh::new(16, 8);
        let members = 3;
        let scenario = ScenarioBuilder::new(mesh).members(members).seed(5).build();
        let scratch = ScratchDir::new("wb-panic").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        FAIL_WRITER_PANIC.store(true, Ordering::SeqCst);
        let err = parallel_write_back(&store, &scenario.ensemble, 2)
            .expect_err("a panicking writer must surface as an error");
        let msg = err.to_string();
        assert!(msg.contains("panicked"), "typed containment: {msg}");
        assert!(msg.contains("failpoint"), "payload preserved: {msg}");
        assert!(
            !FAIL_WRITER_PANIC.load(Ordering::SeqCst),
            "failpoint clears itself"
        );
        // The store is still usable after containment.
        parallel_write_back(&store, &scenario.ensemble, 2).unwrap();
    }

    #[test]
    fn writer_count_does_not_change_the_files() {
        let mesh = Mesh::new(12, 12);
        let members = 3;
        let scenario = ScenarioBuilder::new(mesh).members(members).seed(7).build();
        let scratch_a = ScratchDir::new("wb-a").unwrap();
        let scratch_b = ScratchDir::new("wb-b").unwrap();
        let store_a = FileStore::open(scratch_a.path(), FileLayout::new(mesh, 16)).unwrap();
        let store_b = FileStore::open(scratch_b.path(), FileLayout::new(mesh, 16)).unwrap();
        parallel_write_back(&store_a, &scenario.ensemble, 1).unwrap();
        parallel_write_back(&store_b, &scenario.ensemble, 6).unwrap();
        for k in 0..members {
            let a = std::fs::read(store_a.member_path(k)).unwrap();
            let b = std::fs::read(store_b.member_path(k)).unwrap();
            assert_eq!(a, b, "member {k} differs between writer counts");
        }
    }

    #[test]
    fn invalid_writer_count_rejected() {
        let mesh = Mesh::new(8, 8);
        let scenario = ScenarioBuilder::new(mesh).members(3).seed(1).build();
        let scratch = ScratchDir::new("wb-bad").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
        assert!(parallel_write_back(&store, &scenario.ensemble, 3).is_err());
        assert!(parallel_write_back(&store, &scenario.ensemble, 0).is_err());
    }

    #[test]
    fn mesh_mismatch_rejected() {
        let scenario = ScenarioBuilder::new(Mesh::new(8, 8))
            .members(3)
            .seed(1)
            .build();
        let scratch = ScratchDir::new("wb-mesh").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(Mesh::new(8, 4), 8)).unwrap();
        assert!(parallel_write_back(&store, &scenario.ensemble, 2).is_err());
    }
}
