//! DES model of a supervised, checkpointed campaign.
//!
//! The real supervisor ([`crate::campaign::run_campaign`]) interleaves
//! three kinds of work on the virtual timeline: assimilation cycles
//! (already modeled by the per-variant DES executors), checkpoint I/O (the
//! analysis members written back through the PFS after every cycle), and
//! recovery (the partial work a crashed attempt throws away, the restart
//! backoff, and the restore reads). This module stitches those into one
//! modeled campaign without re-running the cycle DES K times: a cycle's
//! operation structure is configuration-determined — every cycle of a
//! campaign has the identical span multiset, only time-shifted — so one
//! single-cycle simulation is computed and replayed along a running clock.
//!
//! Checkpoint and restore I/O is costed through the same OST service
//! function the modeled PFS uses ([`PfsParams::read_service`]): one seek
//! plus `8·n` bytes per member, serial on the supervisor agent (matching
//! the real supervisor, which writes members through the `FileStore`
//! pooled path one at a time). A crashed attempt contributes one
//! [`Op::Recovery`] span covering the partial cycle (`stage/L` of the
//! cycle makespan), the receive-timeout detection latency, and the restart
//! backoff.
//!
//! With `checkpoint: false` the model reproduces the no-recovery-line
//! baseline: a crash throws away *all* completed cycles, which is the
//! comparison the Fig. 14-style MTTR sweep in `scripts/bench.sh` plots.

use super::penkf::model_penkf_adaptive;
use super::senkf::{model_senkf_adaptive_opts, SEnkfModelOptions};
use super::{ModelConfig, ModelOutcome};
use enkf_ckpt::fnv64;
use enkf_fault::{FaultConfig, RetryPolicy};
use enkf_health::{HealthMonitor, HealthSnapshot};
use enkf_trace::{Op, Role, Span, Trace};
use enkf_tuning::Params;
use std::collections::BTreeSet;

/// Which modeled executor the campaign drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelVariant {
    /// Single-reader baseline.
    LEnkf {
        /// Sub-domains along longitude.
        nsdx: usize,
        /// Sub-domains along latitude.
        nsdy: usize,
    },
    /// Block-reading baseline.
    PEnkf {
        /// Sub-domains along longitude.
        nsdx: usize,
        /// Sub-domains along latitude.
        nsdy: usize,
    },
    /// The co-designed variant.
    SEnkf(Params),
    /// The distributed-array non-sequential executor.
    DEnkf {
        /// State shards (= ranks).
        shards: usize,
    },
}

impl ModelVariant {
    fn layers(&self) -> usize {
        match *self {
            ModelVariant::LEnkf { .. }
            | ModelVariant::PEnkf { .. }
            | ModelVariant::DEnkf { .. } => 1,
            ModelVariant::SEnkf(p) => p.layers,
        }
    }
}

/// Campaign-level plan for the model.
#[derive(Debug, Clone, Copy)]
pub struct CampaignModelPlan {
    /// Cycles to complete.
    pub cycles: usize,
    /// Whether the supervisor checkpoints after every cycle. `false`
    /// models the no-recovery-line baseline: a crash restarts the whole
    /// campaign from cycle 0.
    pub checkpoint: bool,
    /// Whether checkpoint writes overlap the next cycle
    /// ([`crate::CkptMode::Pipelined`]). Ignored without `checkpoint`.
    pub pipelined: bool,
    /// Restart backoff policy (mirrors `CampaignConfig::restart`).
    pub restart: RetryPolicy,
}

/// What the modeled campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignModelOutcome {
    /// Virtual end-to-end campaign runtime, seconds.
    pub makespan: f64,
    /// Virtual runtime of one clean assimilation cycle.
    pub cycle_makespan: f64,
    /// Virtual seconds one checkpoint set costs (serial member writes).
    pub checkpoint_time: f64,
    /// Virtual seconds one restore costs (serial member reads).
    pub restore_time: f64,
    /// Recoveries performed.
    pub restarts: u32,
    /// Virtual seconds lost to failed attempts, backoff and re-done
    /// cycles (everything a fault-free campaign would not have spent,
    /// excluding checkpoint I/O itself).
    pub lost_time: f64,
    /// Checkpoint seconds on the critical path: time the campaign is
    /// longer than it would be with free durability. Synchronous
    /// campaigns expose every sweep; pipelined campaigns expose only the
    /// initial/final sweeps, OST contention dilation, and backpressure
    /// tails.
    pub ckpt_exposed: f64,
    /// Checkpoint seconds hidden behind overlapped cycle work (zero for
    /// synchronous campaigns).
    pub ckpt_hidden: f64,
    /// The single-cycle model outcome the campaign was stitched from (the
    /// baseline, monitor-free cycle in adaptive campaigns).
    pub cycle: ModelOutcome,
    /// FNV-64 hash of each completed cycle's trace digest, in cycle order
    /// — comparable entry for entry with the real supervisor's
    /// `CampaignReport::cycle_digests`. Without a monitor every entry is
    /// the same replayed cycle; with one, cycles re-model under the
    /// evolving routing view.
    pub cycle_digests: Vec<u64>,
    /// One [`HealthSnapshot`] per completed cycle when a monitor was
    /// attached; empty otherwise.
    pub health_snapshots: Vec<HealthSnapshot>,
}

/// Model a K-cycle supervised campaign under `fcfg`. Cycle-scoped crashes
/// (`FaultPlan::with_crash_at_cycle`) fire on the first attempt of their
/// cycle, exactly like the real supervisor; all other faults apply to
/// every cycle (the per-cycle DES handles them). Returns the outcome plus
/// a campaign trace whose per-cycle digests equal the real supervisor's.
pub fn model_campaign(
    cfg: &ModelConfig,
    variant: &ModelVariant,
    camp: &CampaignModelPlan,
    fcfg: &FaultConfig,
) -> Result<(CampaignModelOutcome, Trace), String> {
    model_campaign_adaptive(cfg, variant, camp, fcfg, None)
}

/// [`model_campaign`] with online health monitoring: the mirror of
/// [`crate::run_campaign_ctx`] under [`crate::CampaignCtx::health`]. With a
/// monitor the one-cycle-replayed-K-times shortcut is no longer sound —
/// the frozen routing view evolves at every cycle boundary, reshaping the
/// next cycle's reads — so each completed cycle re-runs the per-variant
/// adaptive DES against the current view and then steps the detectors,
/// exactly the real supervisor's boundary fold. Crashed attempts feed no
/// observations on either side (the real supervisor discards the partial
/// attempt's accumulator), and their partial work is priced at the
/// baseline cycle makespan. Under a common seeded plan the returned
/// per-cycle digests and the monitor's decision log are byte-identical to
/// the real adaptive campaign's.
pub fn model_campaign_adaptive(
    cfg: &ModelConfig,
    variant: &ModelVariant,
    camp: &CampaignModelPlan,
    fcfg: &FaultConfig,
    mut monitor: Option<&mut HealthMonitor>,
) -> Result<(CampaignModelOutcome, Trace), String> {
    // The steady-state cycle: the campaign plan's non-cycle faults apply
    // to every cycle, while cycle-scoped crashes are orchestrated here at
    // the supervisor level (the per-cycle DES rejects crash plans).
    let cycle_fcfg = FaultConfig {
        plan: fcfg.plan.for_cycle_attempt(0, 1),
        retry: fcfg.retry,
        degraded: fcfg.degraded,
        recv_timeout: fcfg.recv_timeout,
    };
    let run_cycle_model = |cfg: &ModelConfig,
                           mon: Option<&HealthMonitor>|
     -> Result<(ModelOutcome, Trace), String> {
        let (out, tr, _log) = match *variant {
            ModelVariant::LEnkf { nsdx, nsdy } => {
                super::lenkf::model_lenkf_adaptive(cfg, nsdx, nsdy, &cycle_fcfg, mon)?
            }
            ModelVariant::PEnkf { nsdx, nsdy } => {
                model_penkf_adaptive(cfg, nsdx, nsdy, &cycle_fcfg, mon)?
            }
            ModelVariant::SEnkf(p) => {
                model_senkf_adaptive_opts(cfg, p, SEnkfModelOptions::default(), &cycle_fcfg, mon)?
            }
            ModelVariant::DEnkf { shards } => {
                super::denkf::model_denkf_adaptive(cfg, shards, &cycle_fcfg, mon)?
            }
        };
        Ok((out, tr))
    };
    // The baseline cycle prices checkpoint overlap and crashed partial
    // attempts in both modes; it is also the replayed cycle when no
    // monitor is attached. Run monitor-free so pricing feeds no
    // observations.
    let (cycle, cycle_trace) = run_cycle_model(cfg, None)?;
    let base_digest = fnv64(cycle_trace.digest().as_bytes());

    let n = (cfg.workload.nx * cfg.workload.ny) as u64;
    let member_bytes = 8 * n;
    let members = cfg.workload.members;
    let member_service = cfg.pfs.read_service(1, member_bytes);
    let checkpoint_time = member_service * members as f64;
    let restore_time = checkpoint_time;
    let sup_rank = cycle.total_ranks();
    let layers = variant.layers();

    // Pipelined pricing: the background writer steals one of the machine's
    // `S = num_osts · streams_per_ost` PFS streams while it drains, so the
    // overlapped cycle runs against an `(S−1)/S` substrate. The per-cycle
    // checkpoint cost that *stays* on the critical path is the contention
    // dilation `Δ` (the cycle slowdown, prorated by how long the write
    // actually overlaps) plus the backpressure tail `E = max(0, C − M)`
    // (the write outlasting the cycle it hides behind). Overlap stops
    // being free exactly when `Δ + E` approaches `C`.
    let pipelined = camp.pipelined && camp.checkpoint;
    let (ckpt_dilation, ckpt_tail) = if pipelined {
        let streams = cfg.pfs.num_osts * cfg.pfs.streams_per_ost;
        let m = cycle.makespan;
        if streams > 1 {
            let share = (streams - 1) as f64 / streams as f64;
            let (shared, _tr) = run_cycle_model(&cfg.with_bandwidth_share(share), None)?;
            let dilation =
                (shared.makespan - m).max(0.0) * checkpoint_time.min(m) / m.max(f64::MIN_POSITIVE);
            (dilation, (checkpoint_time - m).max(0.0))
        } else {
            // A single stream: the writer and the cycle fully serialize,
            // overlap buys nothing — the pipelined campaign degenerates to
            // the synchronous cost.
            (checkpoint_time.min(m), (checkpoint_time - m).max(0.0))
        }
    } else {
        (0.0, 0.0)
    };

    let mut trace = Trace::new("campaign-model");
    let mut t = 0.0f64;
    let mut lost = 0.0f64;
    let mut restarts = 0u32;

    let sup_span =
        |op: Op, start: f64, dur: f64, bytes: u64, seeks: u64, member: Option<usize>| Span {
            rank: sup_rank,
            role: Role::Io,
            stage: None,
            op,
            start,
            dur,
            bytes,
            seeks,
            peer: None,
            member,
            res: None,
            tenant: None,
            job: None,
        };
    let emit_cycle = |trace: &mut Trace, t: &mut f64| {
        trace.extend(cycle_trace.spans().iter().cloned().map(|mut s| {
            s.start += *t;
            s
        }));
        *t += cycle.makespan;
    };
    let emit_io = |trace: &mut Trace, t: &mut f64, op: Op| {
        for k in 0..members {
            trace.push(sup_span(op, *t, member_service, member_bytes, 1, Some(k)));
            *t += member_service;
        }
    };

    let mut ckpt_exposed = 0.0f64;
    let mut ckpt_sweeps = 0usize;
    let mut cycle_digests: Vec<u64> = Vec::new();
    let mut health_snapshots: Vec<HealthSnapshot> = Vec::new();
    // Pipelined: whether the previous cycle's checkpoint write is still
    // draining in the background (at most one, mirroring the real
    // supervisor's backpressure bound).
    let mut inflight = false;

    if camp.checkpoint {
        // The initial state is committed before any cycle runs — the
        // recovery line for a crash in cycle 0. Synchronous in both modes.
        emit_io(&mut trace, &mut t, Op::Ckpt);
        ckpt_exposed += checkpoint_time;
        ckpt_sweeps += 1;
    }
    let mut fired: BTreeSet<usize> = BTreeSet::new();
    let mut c = 0usize;
    while c < camp.cycles {
        let crash = fcfg
            .plan
            .cycle_crashes
            .iter()
            .filter(|cc| cc.cycle == c && !fired.contains(&c))
            .map(|cc| cc.stage)
            .min();
        if let Some(stage) = crash {
            fired.insert(c);
            restarts += 1;
            // The partial attempt: the cycle dies entering stage `stage`,
            // peers detect it after the receive timeout, then the
            // supervisor sleeps the restart backoff.
            let frac = (stage as f64 / layers as f64).min(1.0);
            let partial = cycle.makespan * frac + fcfg.recv_timeout;
            let backoff = camp.restart.backoff(0);
            // Pipelined: the drain barrier before the restore waits out
            // whatever part of the in-flight write the partial cycle did
            // not already hide.
            let drain = if inflight {
                (checkpoint_time - cycle.makespan * frac).max(0.0)
            } else {
                0.0
            };
            inflight = false;
            trace.push(sup_span(
                Op::Recovery,
                t,
                partial + backoff + drain,
                0,
                0,
                None,
            ));
            t += partial + backoff + drain;
            lost += partial + backoff;
            ckpt_exposed += drain;
            if camp.checkpoint {
                emit_io(&mut trace, &mut t, Op::Restore);
                // Re-attempt the same cycle (crash consumed).
            } else {
                // No recovery line: everything completed so far is thrown
                // away and the campaign restarts from cycle 0.
                lost += t - (partial + backoff);
                cycle_digests.clear();
                c = 0;
            }
            continue;
        }
        // An in-flight write from the previous cycle contends for OST
        // streams (dilation) and must finish before this cycle's commit
        // can be handed over (backpressure tail).
        let dilation = if inflight { ckpt_dilation } else { 0.0 };
        match monitor.as_deref_mut() {
            None => {
                emit_cycle(&mut trace, &mut t);
                cycle_digests.push(base_digest);
            }
            Some(mon) => {
                // Adaptive: this cycle's reads follow the current frozen
                // view, so the DES must be rebuilt, and the boundary fold
                // refreezes the view for the next cycle.
                let (out, tr) = run_cycle_model(cfg, Some(mon))?;
                cycle_digests.push(fnv64(tr.digest().as_bytes()));
                trace.extend(tr.spans().iter().cloned().map(|mut s| {
                    s.start += t;
                    s
                }));
                t += out.makespan;
                health_snapshots.push(mon.end_cycle());
            }
        }
        t += dilation;
        if inflight {
            t += ckpt_tail;
            ckpt_exposed += dilation + ckpt_tail;
            inflight = false;
        }
        if camp.checkpoint {
            if pipelined {
                // The write is queued now and drains behind the next
                // cycle; its spans sit on the overlapped timeline without
                // advancing the supervisor clock.
                let mut tt = t;
                emit_io(&mut trace, &mut tt, Op::Ckpt);
                inflight = true;
            } else {
                emit_io(&mut trace, &mut t, Op::Ckpt);
                ckpt_exposed += checkpoint_time;
            }
            ckpt_sweeps += 1;
        }
        c += 1;
    }
    if inflight {
        // End-of-campaign drain barrier: the final cycle's write has
        // nothing left to hide behind.
        t += checkpoint_time;
        ckpt_exposed += checkpoint_time;
    }
    let ckpt_hidden = if camp.checkpoint {
        (ckpt_sweeps as f64 * checkpoint_time - ckpt_exposed).max(0.0)
    } else {
        0.0
    };

    Ok((
        CampaignModelOutcome {
            makespan: t,
            cycle_makespan: cycle.makespan,
            checkpoint_time,
            restore_time,
            restarts,
            lost_time: lost,
            ckpt_exposed,
            ckpt_hidden,
            cycle,
            cycle_digests,
            health_snapshots,
        },
        trace,
    ))
}
