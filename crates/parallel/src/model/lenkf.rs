//! Modeled L-EnKF: the single-reader baseline, at paper scale.
//!
//! The DES mirrors the real executor's operation structure task for task:
//! rank 0 reads each full member file in order (woven through the same
//! attempt/backoff loop as the real resilient read path) and then sends
//! every other rank its expansion block — one `Kind::Comm` task per
//! (member, peer), charged the same block bytes the real tracer records.
//! Each peer's single local analysis is gated on all of its incoming
//! blocks; rank 0's analysis follows its own sends in program order. The
//! receivers' blocked waits surface as DES wait time, not as tasks —
//! matching the real executor, whose wait spans are excluded from the
//! operation digest.

use crate::model::{read_order, weave_member_read, ModelConfig, ModelOutcome};
use crate::report::PhaseBreakdown;
use enkf_fault::{FaultConfig, FaultInjector, FaultLog};
use enkf_grid::{Decomposition, FileLayout, LocalizationRadius, Mesh, RegionRect};
use enkf_health::HealthMonitor;
use enkf_net::ModeledNet;
use enkf_pfs::ModeledPfs;
use enkf_sim::{Kind, Simulation, Task, TaskId};
use enkf_trace::{OpTag, Trace};

/// Build and run the DES for an L-EnKF assimilation with an
/// `n_sdx × n_sdy` decomposition (rank 0 is the only reader).
pub fn model_lenkf(cfg: &ModelConfig, nsdx: usize, nsdy: usize) -> Result<ModelOutcome, String> {
    model_lenkf_traced(cfg, nsdx, nsdy).map(|(out, _)| out)
}

/// [`model_lenkf`], additionally returning the virtual-time execution
/// trace, whose operation digest matches the real [`crate::LEnkf`]'s.
pub fn model_lenkf_traced(
    cfg: &ModelConfig,
    nsdx: usize,
    nsdy: usize,
) -> Result<(ModelOutcome, Trace), String> {
    model_lenkf_faulted(cfg, nsdx, nsdy, &FaultConfig::none()).map(|(out, trace, _)| (out, trace))
}

/// [`model_lenkf_traced`] under a fault plan: rank 0's reads are woven
/// through the resilient attempt/backoff loop, dropped members contribute
/// only their failed attempts (and no scatter), stragglers dilate compute
/// and message delays stall the scatter sends. Crash and message-drop
/// plans are rejected — the real executor's peers time out under them, so
/// a "completed" model would lie.
pub fn model_lenkf_faulted(
    cfg: &ModelConfig,
    nsdx: usize,
    nsdy: usize,
    fcfg: &FaultConfig,
) -> Result<(ModelOutcome, Trace, FaultLog), String> {
    model_lenkf_adaptive(cfg, nsdx, nsdy, fcfg, None)
}

/// [`model_lenkf_faulted`] with online health monitoring: rank 0 reads
/// blacklisted-OST members last and routes every read through the shared
/// [`crate::model::weave_member_read`] decision procedure (speculative
/// duplicates marked and charged at the race winner's OST and factor),
/// with identical `(ost, member, ratio)` observations fed back — real and
/// modeled trace, fault and health digests are byte-identical under a
/// common seed. With `monitor: None` this is [`model_lenkf_faulted`].
pub fn model_lenkf_adaptive(
    cfg: &ModelConfig,
    nsdx: usize,
    nsdy: usize,
    fcfg: &FaultConfig,
    monitor: Option<&HealthMonitor>,
) -> Result<(ModelOutcome, Trace, FaultLog), String> {
    let w = &cfg.workload;
    let mesh = Mesh::new(w.nx, w.ny);
    let decomp = Decomposition::new(mesh, nsdx, nsdy).map_err(|e| e.to_string())?;
    let radius = LocalizationRadius {
        xi: w.xi,
        eta: w.eta,
    };
    let layout = FileLayout::new(mesh, w.h);
    let injector = FaultInjector::new(fcfg.clone());
    if injector.has_crashes() {
        return Err("modeled L-EnKF cannot complete: the plan crashes a rank".into());
    }
    if fcfg.plan.msg_faults.iter().any(|m| m.dropped) {
        return Err("modeled L-EnKF cannot complete: the plan drops a message".into());
    }
    let dropped = injector.unrecoverable_members(w.members);
    if !dropped.is_empty() {
        if !fcfg.degraded {
            return Err(format!(
                "unrecoverable members {dropped:?} and degraded mode is off"
            ));
        }
        if w.members - dropped.len() < 2 {
            return Err("degraded ensemble too small".into());
        }
        for &m in &dropped {
            injector.log().dropped(m);
        }
    }

    let ranks = decomp.num_subdomains();
    let mut sim = Simulation::new();
    let pfs = ModeledPfs::register(&mut sim, cfg.pfs);
    let net = ModeledNet::register(&mut sim, cfg.net, ranks);
    let agents = sim.add_agents(ranks);

    // Rank 0: one full-file read per member, then the per-peer scatter.
    // Program order on agent 0 serializes read(k) → sends(k) → read(k+1),
    // exactly the real reader's loop.
    let full = RegionRect::full(mesh);
    let full_seeks = layout.seek_count(&full) as u64;
    let full_bytes = layout.region_bytes(&full);
    let mut sends_to: Vec<Vec<TaskId>> = vec![Vec::new(); ranks];
    let order = read_order(&(0..w.members).collect::<Vec<_>>(), monitor);
    for &k in &order {
        weave_member_read(
            &mut sim, &pfs, &injector, monitor, agents[0], 0, None, false, k, full_seeks,
            full_bytes,
        )?;
        if dropped.contains(&k) {
            continue; // failed members produce no scatter
        }
        for (peer, peer_id) in decomp.iter_ids().enumerate().skip(1) {
            let peer_exp = decomp.expansion(peer_id, radius);
            let block_bytes = layout.region_bytes(&peer_exp);
            let service = cfg.net.p2p(block_bytes) + injector.send_delay(0, peer);
            let t = sim
                .add_task(
                    Task::new(agents[0], Kind::Comm, service)
                        .with_resources(vec![net.nic(peer)])
                        .with_op(OpTag {
                            bytes: block_bytes,
                            peer: Some(peer),
                            ..OpTag::default()
                        }),
                )
                .map_err(|e| e.to_string())?;
            sends_to[peer].push(t);
        }
    }

    // One local analysis per rank: peers gate on every block addressed to
    // them; rank 0 follows its own reads and sends in program order.
    let mut compute_tasks = Vec::with_capacity(ranks);
    for (r, id) in decomp.iter_ids().enumerate() {
        let dilation = injector.compute_dilation(r);
        if let Some(mon) = monitor {
            mon.observe_compute(r, dilation);
        }
        let comp = cfg.compute_cost_per_point * decomp.subdomain(id).npoints() as f64 * dilation;
        let t = sim
            .add_task(
                Task::new(agents[r], Kind::Compute, comp)
                    .with_deps(sends_to[r].clone())
                    .with_op(OpTag::default()),
            )
            .map_err(|e| e.to_string())?;
        compute_tasks.push(t);
    }

    let report = sim.run().map_err(|e| e.to_string())?;
    let trace = sim.export_trace("lenkf-model");
    let mut total = enkf_trace::PhaseTotals::default();
    for t in trace.per_rank_phases().values() {
        total.read += t.read;
        total.comm += t.comm;
        total.compute += t.compute;
        total.wait += t.wait;
        total.fault += t.fault;
    }
    let compute_mean = PhaseBreakdown::from(total).scaled(1.0 / ranks as f64);
    let first_compute_start = compute_tasks
        .iter()
        .map(|&t| sim.task_times(t).1)
        .fold(f64::INFINITY, f64::min);
    Ok((
        ModelOutcome {
            makespan: report.makespan,
            compute_mean,
            io_mean: PhaseBreakdown::default(),
            num_compute_ranks: ranks,
            num_io_ranks: 0,
            first_compute_start,
            dropped_members: dropped,
        },
        trace,
        injector.into_log(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::penkf::model_penkf;
    use enkf_tuning::Workload;

    fn small_cfg() -> ModelConfig {
        ModelConfig {
            workload: Workload {
                nx: 240,
                ny: 120,
                members: 8,
                h: 80,
                xi: 2,
                eta: 2,
            },
            ..ModelConfig::paper()
        }
    }

    #[test]
    fn produces_sane_phases() {
        let cfg = small_cfg();
        let out = model_lenkf(&cfg, 8, 6).unwrap();
        assert!(out.makespan > 0.0);
        assert!(out.compute_mean.read > 0.0, "rank 0 reads");
        assert!(out.compute_mean.comm > 0.0, "the scatter must be modeled");
        assert!(out.compute_mean.compute > 0.0);
        assert_eq!(out.num_compute_ranks, 48);
        assert_eq!(out.num_io_ranks, 0);
    }

    #[test]
    fn single_reader_loses_to_block_reading_at_scale() {
        // §3.1/§6: one reader cannot use the parallel file system, so the
        // serialized reads must dominate P-EnKF's parallel block reads.
        let cfg = small_cfg();
        let l = model_lenkf(&cfg, 8, 6).unwrap();
        let p = model_penkf(&cfg, 8, 6).unwrap();
        assert!(
            l.makespan > p.makespan,
            "L-EnKF {} must exceed P-EnKF {}",
            l.makespan,
            p.makespan
        );
    }

    #[test]
    fn invalid_decomposition_errors() {
        let cfg = small_cfg();
        assert!(model_lenkf(&cfg, 7, 5).is_err());
    }
}
