//! Modeled P-EnKF: block reading then compute, at paper scale.

use crate::model::{read_order, weave_member_read, ModelConfig, ModelOutcome};
use crate::report::PhaseBreakdown;
use enkf_fault::{FaultConfig, FaultInjector, FaultLog};
use enkf_grid::{Decomposition, FileLayout, LocalizationRadius, Mesh};
use enkf_health::HealthMonitor;
use enkf_pfs::ModeledPfs;
use enkf_sim::{Kind, Simulation, Task};
use enkf_trace::{OpTag, Trace};

/// Build and run the DES for a P-EnKF assimilation with an
/// `n_sdx × n_sdy` decomposition.
///
/// Every rank issues one block read per member file (partial-width region:
/// one disk addressing operation per latitude row — the `O(n_y · n_sdx)`
/// pattern of §4.1.1) and then a single local-analysis task.
pub fn model_penkf(cfg: &ModelConfig, nsdx: usize, nsdy: usize) -> Result<ModelOutcome, String> {
    model_penkf_traced(cfg, nsdx, nsdy).map(|(out, _)| out)
}

/// [`model_penkf`], additionally returning the virtual-time execution trace.
///
/// Every DES task carries an [`OpTag`] describing the operation it models
/// (member read with its layout-derived bytes/seeks, or local analysis), so
/// the exported trace is directly comparable with the real executor's: the
/// operation digests must match line for line.
pub fn model_penkf_traced(
    cfg: &ModelConfig,
    nsdx: usize,
    nsdy: usize,
) -> Result<(ModelOutcome, Trace), String> {
    model_penkf_faulted(cfg, nsdx, nsdy, &FaultConfig::none()).map(|(out, trace, _)| (out, trace))
}

/// [`model_penkf_traced`] under a fault plan: the same attempt/backoff
/// weave the real executor performs is built into the DES graph (injected
/// failures become `Kind::Fault` tasks holding the member's OST, backoffs
/// agent-local `Kind::Fault` tasks), OST slowdowns dilate read services,
/// stragglers dilate compute, and dropped members contribute only their
/// failed attempts. Under the same seeded plan, the exported trace's
/// operation digest and the returned [`FaultLog`]'s digest match the real
/// executor's.
pub fn model_penkf_faulted(
    cfg: &ModelConfig,
    nsdx: usize,
    nsdy: usize,
    fcfg: &FaultConfig,
) -> Result<(ModelOutcome, Trace, FaultLog), String> {
    model_penkf_adaptive(cfg, nsdx, nsdy, fcfg, None)
}

/// [`model_penkf_faulted`] with online health monitoring: the DES weaves
/// the *same* routing decisions the real adaptive executor makes from the
/// monitor's frozen view — blacklisted-OST members read last, speculative
/// duplicates marked and charged at the race winner's OST and factor, and
/// identical `(ost, member, ratio)` observations fed back. Under a common
/// seed and view, real and modeled trace, fault and health digests are
/// byte-identical. With `monitor: None` this is [`model_penkf_faulted`].
pub fn model_penkf_adaptive(
    cfg: &ModelConfig,
    nsdx: usize,
    nsdy: usize,
    fcfg: &FaultConfig,
    monitor: Option<&HealthMonitor>,
) -> Result<(ModelOutcome, Trace, FaultLog), String> {
    let w = &cfg.workload;
    let mesh = Mesh::new(w.nx, w.ny);
    let decomp = Decomposition::new(mesh, nsdx, nsdy).map_err(|e| e.to_string())?;
    let radius = LocalizationRadius {
        xi: w.xi,
        eta: w.eta,
    };
    let layout = FileLayout::new(mesh, w.h);
    let injector = FaultInjector::new(fcfg.clone());
    if injector.has_crashes() {
        return Err("modeled P-EnKF cannot complete: the plan crashes a rank".into());
    }
    let dropped = injector.unrecoverable_members(w.members);
    if !dropped.is_empty() {
        if !fcfg.degraded {
            return Err(format!(
                "unrecoverable members {dropped:?} and degraded mode is off"
            ));
        }
        if w.members - dropped.len() < 2 {
            return Err("degraded ensemble too small".into());
        }
        for &m in &dropped {
            injector.log().dropped(m);
        }
    }

    let mut sim = Simulation::new();
    let pfs = ModeledPfs::register(&mut sim, cfg.pfs);
    let ranks = decomp.num_subdomains();
    let agents = sim.add_agents(ranks);
    let mut compute_tasks = Vec::with_capacity(ranks);

    for (r, id) in decomp.iter_ids().enumerate() {
        let expansion = decomp.expansion(id, radius);
        let seeks = layout.seek_count(&expansion) as u64;
        let bytes = layout.region_bytes(&expansion);
        let order = read_order(&(0..w.members).collect::<Vec<_>>(), monitor);
        for &k in &order {
            weave_member_read(
                &mut sim, &pfs, &injector, monitor, agents[r], r, None, false, k, seeks, bytes,
            )?;
        }
        let dilation = injector.compute_dilation(r);
        if let Some(mon) = monitor {
            mon.observe_compute(r, dilation);
        }
        let comp = cfg.compute_cost_per_point * decomp.subdomain(id).npoints() as f64 * dilation;
        let t = sim
            .add_task(Task::new(agents[r], Kind::Compute, comp).with_op(OpTag::default()))
            .map_err(|e| e.to_string())?;
        compute_tasks.push(t);
    }

    let report = sim.run().map_err(|e| e.to_string())?;
    let trace = sim.export_trace("penkf-model");
    // The report is now *derived from* the trace: per-rank span sums are an
    // exact projection of the DES busy/wait accounting (see `export_trace`).
    let mut total = enkf_trace::PhaseTotals::default();
    for t in trace.per_rank_phases().values() {
        total.read += t.read;
        total.comm += t.comm;
        total.compute += t.compute;
        total.wait += t.wait;
        total.fault += t.fault;
    }
    let compute_mean = PhaseBreakdown::from(total).scaled(1.0 / ranks as f64);
    let makespan = report.makespan;
    let first_compute_start = compute_tasks
        .iter()
        .map(|&t| sim.task_times(t).1)
        .fold(f64::INFINITY, f64::min);
    Ok((
        ModelOutcome {
            makespan,
            compute_mean,
            io_mean: PhaseBreakdown::default(),
            num_compute_ranks: ranks,
            num_io_ranks: 0,
            first_compute_start,
            dropped_members: dropped,
        },
        trace,
        injector.into_log(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_tuning::Workload;

    fn small_cfg() -> ModelConfig {
        ModelConfig {
            workload: Workload {
                nx: 240,
                ny: 120,
                members: 8,
                h: 80,
                xi: 2,
                eta: 2,
            },
            ..ModelConfig::paper()
        }
    }

    #[test]
    fn produces_sane_phases() {
        let cfg = small_cfg();
        let out = model_penkf(&cfg, 8, 6).unwrap();
        assert!(out.makespan > 0.0);
        assert!(out.compute_mean.read > 0.0);
        assert!(out.compute_mean.compute > 0.0);
        assert_eq!(out.num_compute_ranks, 48);
        assert_eq!(out.num_io_ranks, 0);
        // Sequential phases: the first compute cannot start before every
        // read of some rank finished, so it starts after the reads' span.
        assert!(out.first_compute_start > 0.0);
    }

    #[test]
    fn read_time_grows_with_nsdx() {
        // The block-reading seek count is O(n_y · n_sdx): doubling nsdx at
        // fixed rank count must increase the mean read time (Fig. 5).
        let cfg = small_cfg();
        let narrow = model_penkf(&cfg, 6, 8).unwrap();
        let wide = model_penkf(&cfg, 24, 2).unwrap();
        assert!(
            wide.compute_mean.read > narrow.compute_mean.read,
            "wide {} vs narrow {}",
            wide.compute_mean.read,
            narrow.compute_mean.read
        );
    }

    #[test]
    fn compute_shrinks_with_more_ranks() {
        let cfg = small_cfg();
        let few = model_penkf(&cfg, 4, 3).unwrap();
        let many = model_penkf(&cfg, 8, 6).unwrap();
        assert!(many.compute_mean.compute < few.compute_mean.compute);
    }

    #[test]
    fn invalid_decomposition_errors() {
        let cfg = small_cfg();
        assert!(model_penkf(&cfg, 7, 6).is_err());
    }
}
