//! Modeled read-only workloads: the reading-strategy comparisons of
//! Figures 5 and 10.

use crate::model::ModelConfig;
use enkf_grid::{Decomposition, FileLayout, LocalizationRadius, Mesh};
use enkf_pfs::ModeledPfs;
use enkf_sim::{Kind, Simulation, Task};

/// Virtual time to read `files` members with the **block reading** approach
/// (Fig. 3): all `n_sdx · n_sdy` ranks read their own expansion block of
/// every file. This is Figure 5's workload.
pub fn model_block_read(
    cfg: &ModelConfig,
    nsdx: usize,
    nsdy: usize,
    files: usize,
) -> Result<f64, String> {
    let w = &cfg.workload;
    let mesh = Mesh::new(w.nx, w.ny);
    let decomp = Decomposition::new(mesh, nsdx, nsdy).map_err(|e| e.to_string())?;
    let radius = LocalizationRadius {
        xi: w.xi,
        eta: w.eta,
    };
    let layout = FileLayout::new(mesh, w.h);
    let mut sim = Simulation::new();
    let pfs = ModeledPfs::register(&mut sim, cfg.pfs);
    for id in decomp.iter_ids() {
        let agent = sim.add_agent();
        let expansion = decomp.expansion(id, radius);
        let service = pfs.read_service(
            layout.seek_count(&expansion) as u64,
            layout.region_bytes(&expansion),
        );
        for k in 0..files {
            sim.add_task(
                Task::new(agent, Kind::Read, service).with_resources(vec![pfs.ost_of_file(k)]),
            )
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(sim.run().map_err(|e| e.to_string())?.makespan)
}

/// Virtual time to read `files` members with the **concurrent access**
/// approach (§4.1.3): `n_cg` groups of `n_sdy` bar readers, each group
/// owning `files / n_cg` files, whole bars (no layering). This is
/// Figure 10's workload; `n_cg = 1` degenerates to plain bar reading
/// (§4.1.2).
pub fn model_concurrent_read(
    cfg: &ModelConfig,
    nsdy: usize,
    ncg: usize,
    files: usize,
) -> Result<f64, String> {
    model_concurrent_read_detail(cfg, nsdy, ncg, files).map(|d| d.makespan)
}

/// Detailed outcome of a concurrent-access read: makespan plus per-OST
/// utilization (the saturation diagnostic behind Figure 10's knee).
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrentReadDetail {
    /// Virtual time to read all files.
    pub makespan: f64,
    /// Utilization of each OST (busy / capacity·makespan).
    pub ost_utilization: Vec<f64>,
}

impl ConcurrentReadDetail {
    /// Mean utilization over all OSTs.
    pub fn mean_utilization(&self) -> f64 {
        if self.ost_utilization.is_empty() {
            0.0
        } else {
            self.ost_utilization.iter().sum::<f64>() / self.ost_utilization.len() as f64
        }
    }
}

/// [`model_concurrent_read`] with per-OST utilization.
pub fn model_concurrent_read_detail(
    cfg: &ModelConfig,
    nsdy: usize,
    ncg: usize,
    files: usize,
) -> Result<ConcurrentReadDetail, String> {
    let w = &cfg.workload;
    let mesh = Mesh::new(w.nx, w.ny);
    if ncg == 0 || !files.is_multiple_of(ncg) {
        return Err(format!("files {files} not divisible by n_cg {ncg}"));
    }
    let decomp = Decomposition::new(mesh, 1, nsdy).map_err(|e| e.to_string())?;
    let layout = FileLayout::new(mesh, w.h);
    let files_per_group = files / ncg;
    let mut sim = Simulation::new();
    let pfs = ModeledPfs::register(&mut sim, cfg.pfs);
    for g in 0..ncg {
        for j in 0..nsdy {
            let agent = sim.add_agent();
            let bar = decomp.bar(j);
            let service =
                pfs.read_service(layout.seek_count(&bar) as u64, layout.region_bytes(&bar));
            for f in 0..files_per_group {
                let file = g * files_per_group + f;
                sim.add_task(
                    Task::new(agent, Kind::Read, service)
                        .with_resources(vec![pfs.ost_of_file(file)]),
                )
                .map_err(|e| e.to_string())?;
            }
        }
    }
    let report = sim.run().map_err(|e| e.to_string())?;
    let ost_utilization = pfs
        .osts()
        .iter()
        .map(|&r| report.resource_utilization(r.0, cfg.pfs.streams_per_ost))
        .collect();
    Ok(ConcurrentReadDetail {
        makespan: report.makespan,
        ost_utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_tuning::Workload;

    fn cfg() -> ModelConfig {
        ModelConfig {
            workload: Workload {
                nx: 360,
                ny: 180,
                members: 12,
                h: 80,
                xi: 2,
                eta: 2,
            },
            ..ModelConfig::paper()
        }
    }

    #[test]
    fn block_read_time_grows_with_nsdx() {
        // Figure 5's shape: more longitudinal subdivisions, more seeks,
        // longer reads (rank count held fixed).
        let c = cfg();
        let t1 = model_block_read(&c, 10, 6, 12).unwrap();
        let t2 = model_block_read(&c, 20, 3, 12).unwrap();
        let t3 = model_block_read(&c, 40, 3, 12).unwrap();
        assert!(t1 < t2, "{t1} < {t2}");
        assert!(t2 < t3, "{t2} < {t3}");
    }

    #[test]
    fn concurrent_groups_speed_up_until_saturation() {
        // Figure 10's shape: adding groups helps while they map to idle
        // OSTs, then flattens.
        let c = cfg();
        let t1 = model_concurrent_read(&c, 6, 1, 12).unwrap();
        let t2 = model_concurrent_read(&c, 6, 2, 12).unwrap();
        let t4 = model_concurrent_read(&c, 6, 4, 12).unwrap();
        let t12 = model_concurrent_read(&c, 6, 12, 12).unwrap();
        assert!(t2 < t1, "{t2} < {t1}");
        assert!(t4 < t2, "{t4} < {t2}");
        // Beyond the OST count (6), the gain collapses.
        assert!(t12 > t4 * 0.5, "saturation: t12 {t12} vs t4 {t4}");
    }

    #[test]
    fn bar_reading_beats_block_reading() {
        // Same total data, same number of readers: bars are single-seek,
        // blocks are one seek per row.
        let c = cfg();
        let block = model_block_read(&c, 10, 6, 12).unwrap();
        let bar = model_concurrent_read(&c, 6, 1, 12).unwrap();
        assert!(bar < block, "bar {bar} vs block {block}");
    }

    #[test]
    fn utilization_rises_toward_saturation() {
        use super::model_concurrent_read_detail;
        let c = cfg();
        let low = model_concurrent_read_detail(&c, 6, 1, 12).unwrap();
        let high = model_concurrent_read_detail(&c, 6, 6, 12).unwrap();
        assert!(high.mean_utilization() > low.mean_utilization());
        assert!(high.mean_utilization() <= 1.0 + 1e-9);
        assert_eq!(low.ost_utilization.len(), c.pfs.num_osts);
    }

    #[test]
    fn indivisible_files_rejected() {
        let c = cfg();
        assert!(model_concurrent_read(&c, 6, 5, 12).is_err());
    }
}
