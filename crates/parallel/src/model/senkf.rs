//! Modeled S-EnKF: concurrent-group bar reading, multi-stage overlap.

use crate::model::{read_order, weave_member_read, ModelConfig, ModelOutcome};
use crate::report::PhaseBreakdown;
use enkf_fault::{FaultConfig, FaultInjector, FaultLog};
use enkf_grid::{Decomposition, FileLayout, LocalizationRadius, Mesh, SubDomainId};
use enkf_health::HealthMonitor;
use enkf_net::ModeledNet;
use enkf_pfs::ModeledPfs;
use enkf_sim::{Kind, Simulation, Task, TaskId};
use enkf_trace::{OpTag, Trace};
use enkf_tuning::Params;

/// Build and run the DES for an S-EnKF assimilation with parameters
/// `(n_sdx, n_sdy, L, n_cg)`.
///
/// Agents: `C₂` compute ranks plus `C₁ = n_cg · n_sdy` I/O ranks. Per stage
/// `l`, I/O rank `(g, j)` reads one single-seek small bar per group file and
/// then sends each compute rank `(·, j)` its block bundle (serialized on the
/// sender, queued on the receiver's NIC — the natural origin of Eq. 8's
/// `n_sdx` and tree factors). Compute rank `(i, j)`'s stage-`l` analysis
/// depends only on the `n_cg` bundles for stage `l`, so stage `l+1` I/O
/// overlaps stage `l` computation exactly as in Fig. 7.
pub fn model_senkf(cfg: &ModelConfig, params: Params) -> Result<ModelOutcome, String> {
    model_senkf_opts(cfg, params, SEnkfModelOptions::default())
}

/// Ablation switches for the modeled S-EnKF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SEnkfModelOptions {
    /// With the helper thread (the paper's design, default) block ingestion
    /// proceeds concurrently with the main thread's local analyses. Without
    /// it, each stage's communication is ingested *on the compute agent*
    /// before that stage's analysis — communication is no longer hidden.
    pub helper_thread: bool,
}

impl Default for SEnkfModelOptions {
    fn default() -> Self {
        SEnkfModelOptions {
            helper_thread: true,
        }
    }
}

/// [`model_senkf`] with ablation options.
pub fn model_senkf_opts(
    cfg: &ModelConfig,
    params: Params,
    opts: SEnkfModelOptions,
) -> Result<ModelOutcome, String> {
    model_senkf_opts_traced(cfg, params, opts).map(|(out, _)| out)
}

/// [`model_senkf`] with the default options, additionally returning the
/// virtual-time execution trace.
pub fn model_senkf_traced(
    cfg: &ModelConfig,
    params: Params,
) -> Result<(ModelOutcome, Trace), String> {
    model_senkf_opts_traced(cfg, params, SEnkfModelOptions::default())
}

/// [`model_senkf_opts`], additionally returning the execution trace. Every
/// DES task carries an [`OpTag`] (bar read with layout-derived bytes/seeks,
/// bundled send with its destination rank, per-stage analysis), so the
/// trace's operation digest is directly comparable with the real
/// executor's.
pub fn model_senkf_opts_traced(
    cfg: &ModelConfig,
    params: Params,
    opts: SEnkfModelOptions,
) -> Result<(ModelOutcome, Trace), String> {
    model_senkf_faulted_opts(cfg, params, opts, &FaultConfig::none())
        .map(|(out, trace, _)| (out, trace))
}

/// [`model_senkf_traced`] under a fault plan (default options): the real
/// executor's attempt/backoff weave becomes `Kind::Fault` tasks, OST
/// slowdowns and stragglers dilate services, message delays extend the
/// matching send services, and dropped members shrink the bundles to each
/// group's survivors. Under the same seeded plan, the trace's operation
/// digest and the [`FaultLog`] digest match the real executor's.
pub fn model_senkf_faulted(
    cfg: &ModelConfig,
    params: Params,
    fcfg: &FaultConfig,
) -> Result<(ModelOutcome, Trace, FaultLog), String> {
    model_senkf_faulted_opts(cfg, params, SEnkfModelOptions::default(), fcfg)
}

/// [`model_senkf_faulted`] with ablation options.
pub fn model_senkf_faulted_opts(
    cfg: &ModelConfig,
    params: Params,
    opts: SEnkfModelOptions,
    fcfg: &FaultConfig,
) -> Result<(ModelOutcome, Trace, FaultLog), String> {
    model_senkf_adaptive_opts(cfg, params, opts, fcfg, None)
}

/// [`model_senkf_faulted`] with online health monitoring (default options):
/// each I/O rank's group file list is reordered on the monitor's frozen
/// view exactly as the real adaptive executor reorders its read plan, every
/// bar read is routed/speculated/observed through the shared
/// [`crate::model::weave_member_read`] decision procedure, and compute
/// dilations are reported per rank — so real and modeled trace, fault and
/// health digests stay byte-identical under a common seed. With
/// `monitor: None` this is [`model_senkf_faulted`].
pub fn model_senkf_adaptive(
    cfg: &ModelConfig,
    params: Params,
    fcfg: &FaultConfig,
    monitor: Option<&HealthMonitor>,
) -> Result<(ModelOutcome, Trace, FaultLog), String> {
    model_senkf_adaptive_opts(cfg, params, SEnkfModelOptions::default(), fcfg, monitor)
}

/// [`model_senkf_adaptive`] with ablation options.
pub fn model_senkf_adaptive_opts(
    cfg: &ModelConfig,
    params: Params,
    opts: SEnkfModelOptions,
    fcfg: &FaultConfig,
    monitor: Option<&HealthMonitor>,
) -> Result<(ModelOutcome, Trace, FaultLog), String> {
    let w = &cfg.workload;
    let mesh = Mesh::new(w.nx, w.ny);
    let decomp = Decomposition::new(mesh, params.nsdx, params.nsdy).map_err(|e| e.to_string())?;
    decomp
        .check_layers(params.layers)
        .map_err(|e| e.to_string())?;
    if params.ncg == 0 || !w.members.is_multiple_of(params.ncg) {
        return Err(format!(
            "members {} not divisible by n_cg {}",
            w.members, params.ncg
        ));
    }
    let radius = LocalizationRadius {
        xi: w.xi,
        eta: w.eta,
    };
    let layout = FileLayout::new(mesh, w.h);
    let c2 = decomp.num_subdomains();
    let c1 = params.ncg * params.nsdy;
    let files_per_group = w.members / params.ncg;
    let injector = FaultInjector::new(fcfg.clone());
    if injector.has_crashes() {
        return Err("modeled S-EnKF cannot complete: the plan crashes a rank".into());
    }
    if fcfg.plan.msg_faults.iter().any(|m| m.dropped) {
        return Err("modeled S-EnKF cannot complete: the plan drops a message".into());
    }
    let dropped = injector.unrecoverable_members(w.members);
    if !dropped.is_empty() {
        if !fcfg.degraded {
            return Err(format!(
                "unrecoverable members {dropped:?} and degraded mode is off"
            ));
        }
        if w.members - dropped.len() < 2 {
            return Err("degraded ensemble too small".into());
        }
        for &m in &dropped {
            injector.log().dropped(m);
        }
    }
    // Guard the DES against degenerate parameterizations: the task graph
    // has roughly ncg·C2·L send tasks plus reads and computes.
    let est_tasks =
        params.ncg * c2 * params.layers + c1 * params.layers * files_per_group + c2 * params.layers;
    const MAX_TASKS: usize = 30_000_000;
    if est_tasks > MAX_TASKS {
        return Err(format!(
            "parameterization would create ~{est_tasks} DES tasks (> {MAX_TASKS}); \
             choose smaller L / n_cg"
        ));
    }

    let mut sim = Simulation::new();
    let pfs = ModeledPfs::register(&mut sim, cfg.pfs);
    let compute_agents = sim.add_agents(c2);
    let io_agents = sim.add_agents(c1);
    // NICs: one ingestion port per compute rank (the helper thread).
    let net = ModeledNet::register(&mut sim, cfg.net, c2);

    // sends[stage][compute rank] -> the send tasks the rank's stage needs.
    let mut sends: Vec<Vec<Vec<TaskId>>> = vec![vec![Vec::new(); c2]; params.layers];

    #[allow(clippy::needless_range_loop)] // `l` is the semantic stage number
    for l in 0..params.layers {
        for g in 0..params.ncg {
            for j in 0..params.nsdy {
                let io_agent = io_agents[g * params.nsdy + j];
                // Agent ids coincide with the real executor's rank numbering
                // (compute ranks 0..c2, I/O ranks c2..c2+c1), so FaultLog
                // rank fields compare across executors.
                let io_rank = c2 + g * params.nsdy + j;
                let bar = decomp.small_bar(j, l, params.layers, radius);
                let bar_bytes = layout.region_bytes(&bar);
                let bar_seeks = layout.seek_count(&bar) as u64;
                let alive_in_group = (g * files_per_group..(g + 1) * files_per_group)
                    .filter(|file| !dropped.contains(file))
                    .count();
                // One read per group file (program order serializes them on
                // the I/O rank; the OST limits cross-rank concurrency),
                // woven through the same attempt/backoff loop as the real
                // resilient read path.
                let group_files: Vec<usize> =
                    (g * files_per_group..(g + 1) * files_per_group).collect();
                for &file in &read_order(&group_files, monitor) {
                    weave_member_read(
                        &mut sim,
                        &pfs,
                        &injector,
                        monitor,
                        io_agent,
                        io_rank,
                        Some(l),
                        true,
                        file,
                        bar_seeks,
                        bar_bytes,
                    )?;
                }
                if alive_in_group == 0 {
                    continue; // whole group dropped: no bundles at all
                }
                // One bundled send per compute rank in this latitude block,
                // shrunk to the group's surviving members.
                for i in 0..params.nsdx {
                    let id = SubDomainId { i, j };
                    let block = decomp.block_of_small_bar(id, l, params.layers, radius);
                    let bytes = layout.region_bytes(&block) * alive_in_group as u64;
                    let target = decomp.rank_of(id);
                    let service = cfg.net.p2p(bytes) + injector.send_delay(io_rank, target);
                    let t = sim
                        .add_task(
                            Task::new(io_agent, Kind::Comm, service)
                                .with_resources(vec![net.nic(target)])
                                .with_op(OpTag {
                                    io: true,
                                    stage: Some(l),
                                    bytes,
                                    peer: Some(target),
                                    ..OpTag::default()
                                }),
                        )
                        .map_err(|e| e.to_string())?;
                    sends[l][target].push(t);
                }
            }
        }
    }

    // Compute ranks: one analysis task per stage, gated on that stage's
    // bundles only. Without the helper thread, an explicit ingestion task
    // on the compute agent serializes communication with computation.
    let mut compute_tasks = Vec::with_capacity(c2 * params.layers);
    for (r, id) in decomp.iter_ids().enumerate() {
        let dilation = injector.compute_dilation(r);
        if let Some(mon) = monitor {
            mon.observe_compute(r, dilation);
        }
        for (l, stage_sends) in sends.iter().enumerate() {
            let layer = decomp.layer(id, l, params.layers);
            let service = cfg.compute_cost_per_point * layer.npoints() as f64 * dilation;
            let deps = if opts.helper_thread {
                stage_sends[r].clone()
            } else {
                let block = decomp.block_of_small_bar(id, l, params.layers, radius);
                let bytes = layout.region_bytes(&block) * files_per_group as u64;
                let ingest = params.ncg as f64 * cfg.net.p2p(bytes);
                let t = sim
                    .add_task(
                        Task::new(compute_agents[r], Kind::Comm, ingest)
                            .with_deps(stage_sends[r].clone())
                            .with_op(OpTag {
                                stage: Some(l),
                                bytes,
                                ..OpTag::default()
                            }),
                    )
                    .map_err(|e| e.to_string())?;
                vec![t]
            };
            let t = sim
                .add_task(
                    Task::new(compute_agents[r], Kind::Compute, service)
                        .with_deps(deps)
                        .with_op(OpTag {
                            stage: Some(l),
                            ..OpTag::default()
                        }),
                )
                .map_err(|e| e.to_string())?;
            compute_tasks.push(t);
        }
    }

    let report = sim.run().map_err(|e| e.to_string())?;
    let trace = sim.export_trace("senkf-model");
    // The report is now *derived from* the trace: per-rank span sums are an
    // exact projection of the DES busy/wait accounting (see `export_trace`).
    let phases = trace.per_rank_phases();
    let mut cagg = enkf_trace::PhaseTotals::default();
    let mut iagg = enkf_trace::PhaseTotals::default();
    for (rank, t) in &phases {
        let agg = if *rank < c2 { &mut cagg } else { &mut iagg };
        agg.read += t.read;
        agg.comm += t.comm;
        agg.compute += t.compute;
        agg.wait += t.wait;
        agg.fault += t.fault;
    }
    let compute_mean = PhaseBreakdown::from(cagg).scaled(1.0 / c2 as f64);
    let io_mean = PhaseBreakdown::from(iagg).scaled(1.0 / c1 as f64);
    let first_compute_start = compute_tasks
        .iter()
        .map(|&t| sim.task_times(t).1)
        .fold(f64::INFINITY, f64::min);
    Ok((
        ModelOutcome {
            makespan: report.makespan,
            compute_mean,
            io_mean,
            num_compute_ranks: c2,
            num_io_ranks: c1,
            first_compute_start,
            dropped_members: dropped,
        },
        trace,
        injector.into_log(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::penkf::model_penkf;
    use enkf_tuning::Workload;

    fn small_cfg() -> ModelConfig {
        ModelConfig {
            workload: Workload {
                nx: 240,
                ny: 120,
                members: 8,
                h: 80,
                xi: 2,
                eta: 2,
            },
            ..ModelConfig::paper()
        }
    }

    #[test]
    fn produces_sane_phases() {
        let cfg = small_cfg();
        let out = model_senkf(
            &cfg,
            Params {
                nsdx: 8,
                nsdy: 6,
                layers: 4,
                ncg: 2,
            },
        )
        .unwrap();
        assert!(out.makespan > 0.0);
        assert_eq!(out.num_compute_ranks, 48);
        assert_eq!(out.num_io_ranks, 12);
        assert!(out.io_mean.read > 0.0);
        assert!(out.io_mean.comm > 0.0);
        assert!(out.compute_mean.compute > 0.0);
        assert_eq!(out.compute_mean.read, 0.0, "compute ranks never read");
    }

    #[test]
    fn overlap_beats_penkf_at_scale() {
        // With matched compute resources, S-EnKF's makespan must be well
        // below P-EnKF's once reads dominate.
        let cfg = small_cfg();
        let p = model_penkf(&cfg, 24, 12).unwrap();
        let s = model_senkf(
            &cfg,
            Params {
                nsdx: 24,
                nsdy: 12,
                layers: 5,
                ncg: 4,
            },
        )
        .unwrap();
        assert!(
            s.makespan < p.makespan,
            "S-EnKF {} vs P-EnKF {}",
            s.makespan,
            p.makespan
        );
    }

    #[test]
    fn multi_stage_overlaps_io_with_compute() {
        // With L > 1, the first compute must start well before all reads
        // finish (overlap); the exposed prefix is roughly 1/L of total I/O.
        let cfg = small_cfg();
        let out = model_senkf(
            &cfg,
            Params {
                nsdx: 8,
                nsdy: 6,
                layers: 4,
                ncg: 2,
            },
        )
        .unwrap();
        assert!(
            out.first_compute_start < out.makespan * 0.8,
            "first compute at {} of {}",
            out.first_compute_start,
            out.makespan
        );
        assert!(out.overlapped_fraction() > 0.0);
    }

    #[test]
    fn more_layers_reduce_exposed_prefix() {
        let cfg = small_cfg();
        let one = model_senkf(
            &cfg,
            Params {
                nsdx: 8,
                nsdy: 6,
                layers: 1,
                ncg: 2,
            },
        )
        .unwrap();
        let four = model_senkf(
            &cfg,
            Params {
                nsdx: 8,
                nsdy: 6,
                layers: 4,
                ncg: 2,
            },
        )
        .unwrap();
        assert!(
            four.first_compute_start < one.first_compute_start,
            "L=4 prefix {} vs L=1 prefix {}",
            four.first_compute_start,
            one.first_compute_start
        );
    }

    #[test]
    fn indivisible_parameters_rejected() {
        let cfg = small_cfg();
        assert!(model_senkf(
            &cfg,
            Params {
                nsdx: 8,
                nsdy: 6,
                layers: 3,
                ncg: 2
            }
        )
        .is_err());
        assert!(model_senkf(
            &cfg,
            Params {
                nsdx: 8,
                nsdy: 6,
                layers: 2,
                ncg: 3
            }
        )
        .is_err());
    }
}
