//! Modeled (discrete-event) executors for paper-scale experiments.

pub mod campaign;
pub mod denkf;
pub mod lenkf;
pub mod penkf;
pub mod reading;
pub mod senkf;

use crate::report::PhaseBreakdown;
use enkf_fault::FaultInjector;
use enkf_health::{HealthMonitor, ReadRoute};
use enkf_net::NetParams;
use enkf_pfs::{ModeledPfs, PfsParams};
use enkf_sim::{AgentId, Kind, ResourceId, Simulation, Task};
use enkf_trace::OpTag;
use enkf_tuning::Workload;

/// The OST resource hosting OST index `ost` (mirrors the real side's
/// `member % num_osts` striping — `ModeledPfs::ost_of_file` is this very
/// modulus applied to a member index).
fn ost_resource(pfs: &ModeledPfs, ost: usize) -> ResourceId {
    pfs.osts()[ost % pfs.osts().len()]
}

/// Weave one member read into the DES graph — the model-side mirror of the
/// real executors' `read_region_adaptive` call, shared by every variant.
///
/// Without a monitor this is the classic resilient weave: per attempt of
/// the *deadline-capped* schedule, a backoff `Fault` task (attempt > 0), an
/// injected-failure `Fault` task occupying the member's OST for a full
/// service, or the successful `Read`; the fault log records
/// backoff/injected/recovered exactly as the real retry loop does.
///
/// With a monitor, the same frozen [`enkf_health::RouteView`] the real rank
/// consults picks the route first: a blacklisted primary OST adds the
/// zero-service cancelled-duplicate `Fault` marker (carrying the region's
/// bytes/seeks, mirroring the real marker span) and charges the weave at
/// the deterministic race winner's OST and slowdown factor; the served read
/// reports the same `(ost, member, ratio)` observation to the monitor. This
/// shared decision procedure is what keeps real and modeled trace, fault
/// *and* health digests byte-identical under a common seed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn weave_member_read(
    sim: &mut Simulation,
    pfs: &ModeledPfs,
    injector: &FaultInjector,
    monitor: Option<&HealthMonitor>,
    agent: AgentId,
    rank: usize,
    stage: Option<usize>,
    io: bool,
    member: usize,
    seeks: u64,
    bytes: u64,
) -> Result<(), String> {
    let retry = *injector.retry();
    let fails = injector.read_fail_attempts(member);
    let base = pfs.read_service(seeks, bytes);
    let tag = OpTag {
        io,
        stage,
        bytes,
        seeks,
        member: Some(member),
        ..OpTag::default()
    };
    let (resource, service, observed) = match monitor {
        None => (
            pfs.ost_of_file(member),
            base * injector.file_slowdown(member),
            None,
        ),
        Some(mon) => {
            let view = mon.view();
            let ost = view.ost_of(member);
            let primary_factor = injector.ost_factor(ost);
            let replica_factor = injector.ost_factor(view.replica_of(ost));
            match view.route(member, primary_factor, replica_factor) {
                ReadRoute::Primary => (
                    ost_resource(pfs, ost),
                    base * primary_factor,
                    Some((mon, ost, primary_factor)),
                ),
                ReadRoute::Speculate {
                    replica,
                    replica_wins,
                } => {
                    mon.speculated(rank, stage, member, ost, replica, replica_wins);
                    let (winner_ost, winner_factor) = if replica_wins {
                        (replica, replica_factor)
                    } else {
                        (ost, primary_factor)
                    };
                    // The losing duplicate, cancelled at first completion:
                    // a zero-service marker with the region's footprint.
                    sim.add_task(Task::new(agent, Kind::Fault, 0.0).with_op(tag))
                        .map_err(|e| e.to_string())?;
                    (
                        ost_resource(pfs, winner_ost),
                        base * winner_factor,
                        Some((mon, winner_ost, winner_factor)),
                    )
                }
            }
        }
    };
    for attempt in 0..retry.scheduled_attempts() {
        if attempt > 0 {
            injector.log().backoff(rank, stage, member, attempt - 1);
            sim.add_task(
                Task::new(agent, Kind::Fault, retry.backoff(attempt - 1)).with_op(OpTag {
                    io,
                    stage,
                    member: Some(member),
                    ..OpTag::default()
                }),
            )
            .map_err(|e| e.to_string())?;
        }
        if attempt < fails {
            // Injected failure: the attempt still occupies the OST for a
            // full service, mirroring the real read-and-discard.
            injector.log().injected(rank, stage, member, attempt);
            sim.add_task(
                Task::new(agent, Kind::Fault, service)
                    .with_resources(vec![resource])
                    .with_op(tag),
            )
            .map_err(|e| e.to_string())?;
            continue;
        }
        sim.add_task(
            Task::new(agent, Kind::Read, service)
                .with_resources(vec![resource])
                .with_op(tag),
        )
        .map_err(|e| e.to_string())?;
        if attempt > 0 {
            injector.log().recovered(rank, stage, member, attempt);
        }
        if let Some((mon, obs_ost, factor)) = observed {
            mon.observe_read(obs_ost, member, factor);
        }
        break;
    }
    Ok(())
}

/// The member order a health-aware rank reads in: blacklisted-OST members
/// last (stable within each class), exactly [`enkf_health::RouteView::reorder`]
/// on the monitor's frozen view; plan order when no monitor is attached.
pub(crate) fn read_order(members: &[usize], monitor: Option<&HealthMonitor>) -> Vec<usize> {
    match monitor {
        Some(mon) => mon.view().reorder(members),
        None => members.to_vec(),
    }
}

/// Configuration of a modeled run: workload geometry plus substrate
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Problem geometry (mesh, members, bytes per point, radii).
    pub workload: Workload,
    /// The modeled parallel file system.
    pub pfs: PfsParams,
    /// The modeled interconnect.
    pub net: NetParams,
    /// Local-analysis cost per grid point, seconds (`c` in Table 1).
    pub compute_cost_per_point: f64,
    /// Observation network stride (every `obs_stride`-th point in each
    /// direction is observed — `ScenarioBuilder`'s uniform network). The
    /// batched D-EnKF model needs it to recompute each shard's observed
    /// row count, which sizes the exchanged observation blocks.
    pub obs_stride: usize,
}

impl ModelConfig {
    /// The paper-scale configuration: 0.1° ocean workload on the
    /// Tianhe-2-like substrate.
    pub fn paper() -> Self {
        let machine = enkf_tuning::MachineParams::tianhe2_like();
        ModelConfig {
            workload: Workload::paper_ocean(),
            pfs: PfsParams::tianhe2_like(),
            net: NetParams {
                alpha: machine.a,
                beta: machine.b,
            },
            compute_cost_per_point: machine.c,
            obs_stride: 3,
        }
    }

    /// This configuration as seen by a campaign granted a fair-share slice
    /// of the machine: the PFS and interconnect both deliver `share` of
    /// their bandwidth (seek cost and message startup unchanged). The
    /// multi-tenant scheduler re-models a campaign's cycles through this
    /// whenever its allocation changes, so contention shows up as a
    /// reshaped DES — different overlap, different queueing — rather than
    /// a scalar correction.
    pub fn with_bandwidth_share(&self, share: f64) -> ModelConfig {
        ModelConfig {
            pfs: self.pfs.with_bandwidth_share(share),
            net: self.net.with_bandwidth_share(share),
            ..*self
        }
    }

    /// The equivalent closed-form cost parameters (for model-vs-DES
    /// comparisons like Figure 12).
    pub fn cost_params(&self) -> enkf_tuning::CostParams {
        enkf_tuning::CostParams {
            workload: self.workload,
            machine: enkf_tuning::MachineParams {
                a: self.net.alpha,
                b: self.net.beta,
                c: self.compute_cost_per_point,
                theta: self.pfs.byte_time,
            },
        }
    }
}

/// The result of one modeled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOutcome {
    /// Virtual end-to-end runtime, seconds.
    pub makespan: f64,
    /// Mean phases per compute rank.
    pub compute_mean: PhaseBreakdown,
    /// Mean phases per I/O rank (zero for variants without I/O ranks).
    pub io_mean: PhaseBreakdown,
    /// Number of compute ranks.
    pub num_compute_ranks: usize,
    /// Number of dedicated I/O ranks.
    pub num_io_ranks: usize,
    /// Virtual time at which the first local-analysis task started — the
    /// exposed (un-overlapped) read+comm prefix of Fig. 9/13's discussion.
    pub first_compute_start: f64,
    /// Ensemble members dropped by degraded-mode execution (ascending;
    /// empty on a fault-free run).
    pub dropped_members: Vec<usize>,
}

impl ModelOutcome {
    /// Total processors used.
    pub fn total_ranks(&self) -> usize {
        self.num_compute_ranks + self.num_io_ranks
    }

    /// The fraction of the runtime during which data obtaining (reads,
    /// communication, and the I/O side's waiting) is hidden behind local
    /// computation — Figure 11's overlapped-time share. Only the first
    /// stage's acquisition is exposed ("the only part in the algorithm that
    /// could not be overlapped is the first file reading and data
    /// communication", §5.4), so the share is
    /// `1 − first_compute_start / makespan`.
    pub fn overlapped_fraction(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        (1.0 - self.first_compute_start / self.makespan).clamp(0.0, 1.0)
    }
}
