//! Modeled (discrete-event) executors for paper-scale experiments.

pub mod campaign;
pub mod denkf;
pub mod penkf;
pub mod reading;
pub mod senkf;

use crate::report::PhaseBreakdown;
use enkf_net::NetParams;
use enkf_pfs::PfsParams;
use enkf_tuning::Workload;

/// Configuration of a modeled run: workload geometry plus substrate
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Problem geometry (mesh, members, bytes per point, radii).
    pub workload: Workload,
    /// The modeled parallel file system.
    pub pfs: PfsParams,
    /// The modeled interconnect.
    pub net: NetParams,
    /// Local-analysis cost per grid point, seconds (`c` in Table 1).
    pub compute_cost_per_point: f64,
    /// Observation network stride (every `obs_stride`-th point in each
    /// direction is observed — `ScenarioBuilder`'s uniform network). The
    /// batched D-EnKF model needs it to recompute each shard's observed
    /// row count, which sizes the exchanged observation blocks.
    pub obs_stride: usize,
}

impl ModelConfig {
    /// The paper-scale configuration: 0.1° ocean workload on the
    /// Tianhe-2-like substrate.
    pub fn paper() -> Self {
        let machine = enkf_tuning::MachineParams::tianhe2_like();
        ModelConfig {
            workload: Workload::paper_ocean(),
            pfs: PfsParams::tianhe2_like(),
            net: NetParams {
                alpha: machine.a,
                beta: machine.b,
            },
            compute_cost_per_point: machine.c,
            obs_stride: 3,
        }
    }

    /// This configuration as seen by a campaign granted a fair-share slice
    /// of the machine: the PFS and interconnect both deliver `share` of
    /// their bandwidth (seek cost and message startup unchanged). The
    /// multi-tenant scheduler re-models a campaign's cycles through this
    /// whenever its allocation changes, so contention shows up as a
    /// reshaped DES — different overlap, different queueing — rather than
    /// a scalar correction.
    pub fn with_bandwidth_share(&self, share: f64) -> ModelConfig {
        ModelConfig {
            pfs: self.pfs.with_bandwidth_share(share),
            net: self.net.with_bandwidth_share(share),
            ..*self
        }
    }

    /// The equivalent closed-form cost parameters (for model-vs-DES
    /// comparisons like Figure 12).
    pub fn cost_params(&self) -> enkf_tuning::CostParams {
        enkf_tuning::CostParams {
            workload: self.workload,
            machine: enkf_tuning::MachineParams {
                a: self.net.alpha,
                b: self.net.beta,
                c: self.compute_cost_per_point,
                theta: self.pfs.byte_time,
            },
        }
    }
}

/// The result of one modeled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOutcome {
    /// Virtual end-to-end runtime, seconds.
    pub makespan: f64,
    /// Mean phases per compute rank.
    pub compute_mean: PhaseBreakdown,
    /// Mean phases per I/O rank (zero for variants without I/O ranks).
    pub io_mean: PhaseBreakdown,
    /// Number of compute ranks.
    pub num_compute_ranks: usize,
    /// Number of dedicated I/O ranks.
    pub num_io_ranks: usize,
    /// Virtual time at which the first local-analysis task started — the
    /// exposed (un-overlapped) read+comm prefix of Fig. 9/13's discussion.
    pub first_compute_start: f64,
    /// Ensemble members dropped by degraded-mode execution (ascending;
    /// empty on a fault-free run).
    pub dropped_members: Vec<usize>,
}

impl ModelOutcome {
    /// Total processors used.
    pub fn total_ranks(&self) -> usize {
        self.num_compute_ranks + self.num_io_ranks
    }

    /// The fraction of the runtime during which data obtaining (reads,
    /// communication, and the I/O side's waiting) is hidden behind local
    /// computation — Figure 11's overlapped-time share. Only the first
    /// stage's acquisition is exposed ("the only part in the algorithm that
    /// could not be overlapped is the first file reading and data
    /// communication", §5.4), so the share is
    /// `1 − first_compute_start / makespan`.
    pub fn overlapped_fraction(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        (1.0 - self.first_compute_start / self.makespan).clamp(0.0, 1.0)
    }
}
