//! Modeled D-EnKF: distributed-array batched assimilation, at paper scale.
//!
//! The DES mirrors the real executor's operation structure task for task:
//! per rank one bar read per member file (full-width band — one disk
//! addressing operation), one observation-block send per peer (sized by
//! [`super::super::exec::denkf::exchange_bytes`], the same formula the real
//! tracer charges, which is what makes the trace digests byte-identical),
//! and one batched-transform compute gated on every peer's block.

use crate::exec::denkf::exchange_bytes;
use crate::model::{read_order, weave_member_read, ModelConfig, ModelOutcome};
use crate::report::PhaseBreakdown;
use enkf_fault::{FaultConfig, FaultInjector, FaultLog};
use enkf_grid::{Decomposition, FileLayout, Mesh, ObservationNetwork};
use enkf_health::HealthMonitor;
use enkf_net::ModeledNet;
use enkf_pfs::ModeledPfs;
use enkf_sim::{Kind, Simulation, Task, TaskId};
use enkf_trace::{OpTag, Trace};

/// Build and run the DES for a D-EnKF assimilation with `shards` state
/// shards (= ranks).
pub fn model_denkf(cfg: &ModelConfig, shards: usize) -> Result<ModelOutcome, String> {
    model_denkf_traced(cfg, shards).map(|(out, _)| out)
}

/// [`model_denkf`], additionally returning the virtual-time execution
/// trace, whose operation digest matches the real [`crate::DEnkf`]'s.
pub fn model_denkf_traced(
    cfg: &ModelConfig,
    shards: usize,
) -> Result<(ModelOutcome, Trace), String> {
    model_denkf_faulted(cfg, shards, &FaultConfig::none()).map(|(out, trace, _)| (out, trace))
}

/// [`model_denkf_traced`] under a fault plan: reads are woven through the
/// same attempt/backoff loop as the real resilient read path, dropped
/// members shrink the exchanged blocks to the survivors, stragglers dilate
/// compute, and message delays stall the exchange sends. Crash and
/// message-drop plans are rejected — the real executor cannot complete
/// them either (peers time out), so a "completed" model would lie.
pub fn model_denkf_faulted(
    cfg: &ModelConfig,
    shards: usize,
    fcfg: &FaultConfig,
) -> Result<(ModelOutcome, Trace, FaultLog), String> {
    model_denkf_adaptive(cfg, shards, fcfg, None)
}

/// [`model_denkf_faulted`] with online health monitoring: every shard's bar
/// reads are routed through the same frozen view the real adaptive executor
/// consults (blacklisted-OST members last, speculative duplicates marked
/// and charged at the race winner's OST and factor), with identical
/// `(ost, member, ratio)` observations fed back — real and modeled trace,
/// fault and health digests are byte-identical under a common seed. With
/// `monitor: None` this is [`model_denkf_faulted`].
pub fn model_denkf_adaptive(
    cfg: &ModelConfig,
    shards: usize,
    fcfg: &FaultConfig,
    monitor: Option<&HealthMonitor>,
) -> Result<(ModelOutcome, Trace, FaultLog), String> {
    let w = &cfg.workload;
    let mesh = Mesh::new(w.nx, w.ny);
    let decomp = Decomposition::new(mesh, 1, shards).map_err(|e| e.to_string())?;
    let layout = FileLayout::new(mesh, w.h);
    let obs_net = ObservationNetwork::uniform(mesh, cfg.obs_stride);
    let injector = FaultInjector::new(fcfg.clone());
    if injector.has_crashes() {
        return Err("modeled D-EnKF cannot complete: the plan crashes a rank".into());
    }
    if fcfg.plan.msg_faults.iter().any(|m| m.dropped) {
        return Err("modeled D-EnKF cannot complete: the plan drops a message".into());
    }
    let dropped = injector.unrecoverable_members(w.members);
    if !dropped.is_empty() {
        if !fcfg.degraded {
            return Err(format!(
                "unrecoverable members {dropped:?} and degraded mode is off"
            ));
        }
        if w.members - dropped.len() < 2 {
            return Err("degraded ensemble too small".into());
        }
        for &m in &dropped {
            injector.log().dropped(m);
        }
    }
    let alive = w.members - dropped.len();

    let mut sim = Simulation::new();
    let pfs = ModeledPfs::register(&mut sim, cfg.pfs);
    let net = ModeledNet::register(&mut sim, cfg.net, shards);
    let agents = sim.add_agents(shards);

    // Per-rank observed row counts (the shard's rows of the network) and
    // the total — every rank's compute works on the full m_total system.
    let obs_rows: Vec<usize> = decomp
        .iter_ids()
        .map(|id| obs_net.indices_in(&decomp.subdomain(id)).len())
        .collect();
    let m_total: usize = obs_rows.iter().sum();

    // Phase 1 + 2: bar reads and the all-to-all observation-block
    // exchange. `sends_to[r]` collects every peer's send targeting rank r —
    // the dependencies of r's batched compute.
    let mut sends_to: Vec<Vec<TaskId>> = vec![Vec::new(); shards];
    for (r, id) in decomp.iter_ids().enumerate() {
        let bar = decomp.subdomain(id);
        let seeks = layout.seek_count(&bar) as u64;
        let bytes = layout.region_bytes(&bar);
        let order = read_order(&(0..w.members).collect::<Vec<_>>(), monitor);
        for &k in &order {
            weave_member_read(
                &mut sim, &pfs, &injector, monitor, agents[r], r, None, false, k, seeks, bytes,
            )?;
        }
        // One observation-block send per peer. Program order on the agent
        // already places these after the rank's reads.
        let block_bytes = exchange_bytes(obs_rows[r], alive);
        // Indexed loop: `peer` also names the NIC resource and the op tag.
        #[allow(clippy::needless_range_loop)]
        for peer in 0..shards {
            if peer == r {
                continue;
            }
            let service = cfg.net.p2p(block_bytes) + injector.send_delay(r, peer);
            let t = sim
                .add_task(
                    Task::new(agents[r], Kind::Comm, service)
                        .with_resources(vec![net.nic(peer)])
                        .with_op(OpTag {
                            bytes: block_bytes,
                            peer: Some(peer),
                            ..OpTag::default()
                        }),
                )
                .map_err(|e| e.to_string())?;
            sends_to[peer].push(t);
        }
    }

    // Phase 3: the batched transform plus the shard update, gated on every
    // peer's block. The transform works the full m_total × N system; the
    // shard update touches the rank's own bar points.
    let mut compute_tasks = Vec::with_capacity(shards);
    for (r, id) in decomp.iter_ids().enumerate() {
        let bar = decomp.subdomain(id);
        let dilation = injector.compute_dilation(r);
        if let Some(mon) = monitor {
            mon.observe_compute(r, dilation);
        }
        let service = cfg.compute_cost_per_point * (bar.npoints() + m_total) as f64 * dilation;
        let t = sim
            .add_task(
                Task::new(agents[r], Kind::Compute, service)
                    .with_deps(sends_to[r].clone())
                    .with_op(OpTag::default()),
            )
            .map_err(|e| e.to_string())?;
        compute_tasks.push(t);
    }

    let report = sim.run().map_err(|e| e.to_string())?;
    let trace = sim.export_trace("denkf-model");
    let mut total = enkf_trace::PhaseTotals::default();
    for t in trace.per_rank_phases().values() {
        total.read += t.read;
        total.comm += t.comm;
        total.compute += t.compute;
        total.wait += t.wait;
        total.fault += t.fault;
    }
    let compute_mean = PhaseBreakdown::from(total).scaled(1.0 / shards as f64);
    let makespan = report.makespan;
    let first_compute_start = compute_tasks
        .iter()
        .map(|&t| sim.task_times(t).1)
        .fold(f64::INFINITY, f64::min);
    Ok((
        ModelOutcome {
            makespan,
            compute_mean,
            io_mean: PhaseBreakdown::default(),
            num_compute_ranks: shards,
            num_io_ranks: 0,
            first_compute_start,
            dropped_members: dropped,
        },
        trace,
        injector.into_log(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_tuning::Workload;

    fn small_cfg() -> ModelConfig {
        ModelConfig {
            workload: Workload {
                nx: 240,
                ny: 120,
                members: 8,
                h: 80,
                xi: 2,
                eta: 2,
            },
            ..ModelConfig::paper()
        }
    }

    #[test]
    fn produces_sane_phases() {
        let cfg = small_cfg();
        let out = model_denkf(&cfg, 8).unwrap();
        assert!(out.makespan > 0.0);
        assert!(out.compute_mean.read > 0.0);
        assert!(out.compute_mean.comm > 0.0, "the exchange must be modeled");
        assert!(out.compute_mean.compute > 0.0);
        assert_eq!(out.num_compute_ranks, 8);
        assert_eq!(out.num_io_ranks, 0);
    }

    #[test]
    fn bar_reads_keep_seek_count_flat_across_shards() {
        // Full-width bars are contiguous: per-rank read time must not blow
        // up with shard count the way P-EnKF's partial-width blocks do.
        let cfg = small_cfg();
        let few = model_denkf(&cfg, 4).unwrap();
        let many = model_denkf(&cfg, 24).unwrap();
        // Each of the 24 shards reads 1/6 the bytes of each of the 4.
        assert!(many.compute_mean.read < few.compute_mean.read);
    }

    #[test]
    fn exchange_grows_with_shard_count() {
        let cfg = small_cfg();
        let few = model_denkf(&cfg, 2).unwrap();
        let many = model_denkf(&cfg, 12).unwrap();
        // More peers → more blocks on the wire (total comm grows even as
        // each block shrinks).
        assert!(many.compute_mean.comm * 12.0 > few.compute_mean.comm * 2.0);
    }

    #[test]
    fn invalid_shard_count_errors() {
        let cfg = small_cfg();
        assert!(model_denkf(&cfg, 7).is_err());
    }
}
