//! The parallel EnKF implementations: L-EnKF, P-EnKF, S-EnKF and D-EnKF.
//!
//! Every variant exists in two interchangeable forms that share one
//! algorithmic description (the co-design described in DESIGN.md):
//!
//! * [`exec`] — **real executors**: ranks are OS threads
//!   ([`enkf_net::Cluster`]), ensemble members are real files
//!   ([`enkf_pfs::FileStore`]), block data travels over channels, and the
//!   S-EnKF helper thread genuinely overlaps reception with the main
//!   thread's local analyses (Fig. 8). Produces a bit-exact analysis
//!   ensemble plus wall-clock phase timings. Used for correctness and
//!   small-scale measurements.
//! * [`model`] — **modeled executors**: the same operation structure is
//!   emitted as a task DAG into the discrete-event engine
//!   ([`enkf_sim::Simulation`]) against modeled OSTs and NICs, which is how
//!   the paper-scale (12,000-processor) experiments of Figures 1, 5, 9–13
//!   are regenerated.
//!
//! The variants:
//!
//! * **L-EnKF** (`LEnkf`) — single reader: rank 0 reads members one by one
//!   and scatters expansion blocks (§6, the Keppenne-style baseline).
//! * **P-EnKF** (`PEnkf`) — block reading: all ranks read their own block
//!   of every file directly (Fig. 3), then analyze; phases strictly
//!   sequential. The state-of-the-art baseline the paper compares against.
//! * **S-EnKF** (`SEnkf`) — the paper's contribution: bar reading by
//!   dedicated I/O processors in `n_cg` concurrent groups (Figs. 6–7),
//!   multi-stage layered analysis overlapping I/O and communication with
//!   computation via helper threads (Fig. 8), parameters chosen by the
//!   auto-tuner (`enkf_tuning`).
//! * **D-EnKF** (`DEnkf`) — distributed-array non-sequential executor:
//!   every rank owns one full-width bar of the state, ranks all-to-all
//!   exchange observation-space blocks, and the whole network is
//!   assimilated in one batched covariance-form update whose `C⁻¹` kernel
//!   is selectable (dense Cholesky or the iterative Sherman-Morrison of
//!   arXiv 1302.3876).

pub mod campaign;
pub mod exec;
pub mod model;
pub mod report;

pub use campaign::{
    run_campaign, run_campaign_ctx, BackoffClock, CampaignConfig, CampaignCtx, CampaignError,
    CampaignExecutor, CampaignReport, CkptMode, RecoveryEvent,
};
pub use exec::denkf::DEnkf;
pub use exec::lenkf::LEnkf;
pub use exec::penkf::PEnkf;
pub use exec::senkf::SEnkf;
pub use exec::setup::AssimilationSetup;
pub use exec::writeback::parallel_write_back;
pub use model::campaign::{
    model_campaign, model_campaign_adaptive, CampaignModelOutcome, CampaignModelPlan, ModelVariant,
};
pub use model::denkf::{
    model_denkf, model_denkf_adaptive, model_denkf_faulted, model_denkf_traced,
};
pub use model::lenkf::{
    model_lenkf, model_lenkf_adaptive, model_lenkf_faulted, model_lenkf_traced,
};
pub use model::penkf::{
    model_penkf, model_penkf_adaptive, model_penkf_faulted, model_penkf_traced,
};
pub use model::senkf::{
    model_senkf, model_senkf_adaptive, model_senkf_adaptive_opts, model_senkf_faulted,
    model_senkf_faulted_opts, model_senkf_opts, model_senkf_opts_traced, model_senkf_traced,
    SEnkfModelOptions,
};
pub use model::{ModelConfig, ModelOutcome};
pub use report::{ExecutionReport, PhaseBreakdown};
