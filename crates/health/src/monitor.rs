//! The failure detector: EWMA baselines + phi-accrual-style suspicion.

use crate::log::{HealthEvent, HealthLog};
use crate::route::RouteView;
use std::collections::BTreeMap;
use std::f64::consts::LN_10;
use std::sync::Mutex;

/// Detector tuning. Defaults are chosen so a ≥ 2× dilation blacklists after
/// one cycle of evidence and a mild ~1.5× dilation needs two consecutive
/// anomalous cycles (suspicion *accrues*, phi-accrual style), while healthy
/// jitter below `suspect_ratio` never trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthParams {
    /// File→OST striping modulus (must match `FaultPlan::num_osts` /
    /// `PfsParams::num_osts` for routing to mean anything).
    pub num_osts: usize,
    /// Replica placement shift: replica of OST `o` is `(o + shift) % num_osts`.
    pub replica_shift: usize,
    /// EWMA weight of the newest cycle mean in the baseline.
    pub ewma_alpha: f64,
    /// Cycle mean / baseline ratio above which a cycle is anomalous and
    /// accrues suspicion.
    pub suspect_ratio: f64,
    /// Floor of the deviation estimate, keeping φ finite on a quiet
    /// baseline (the substrate's injected ratios have zero variance when
    /// healthy).
    pub dev_floor: f64,
    /// Accrued suspicion (φ units) at which a target is blacklisted.
    pub suspicion_threshold: f64,
    /// Cycles a blacklisted OST sits out before a probation probe.
    pub probation_cycles: u32,
}

impl Default for HealthParams {
    fn default() -> Self {
        HealthParams {
            num_osts: 6, // PfsParams::tianhe2_like striping
            replica_shift: 1,
            ewma_alpha: 0.3,
            suspect_ratio: 1.4,
            dev_floor: 0.25,
            suspicion_threshold: 1.0,
            probation_cycles: 1,
        }
    }
}

impl HealthParams {
    /// Defaults with an explicit striping modulus.
    pub fn with_num_osts(num_osts: usize) -> Self {
        HealthParams {
            num_osts,
            ..HealthParams::default()
        }
    }
}

/// Where a monitored target currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetStatus {
    /// In rotation.
    Healthy,
    /// Out of rotation for `remaining` more cycles.
    Blacklisted {
        /// Cycles left before probation.
        remaining: u32,
    },
    /// Back in rotation on probe duty: one healthy cycle reintegrates, one
    /// anomalous cycle re-blacklists.
    Probation,
}

/// Per-target detector state. All arithmetic is plain f64 on
/// plan-determined ratios folded in sorted key order, so two detectors fed
/// the same observation multiset are bit-identical — the property the
/// chaos-soak conformance suite pins.
#[derive(Debug, Clone)]
struct Detector {
    /// EWMA baseline of the cycle-mean dilation ratio.
    mu: f64,
    /// EWMA of the absolute deviation from the baseline.
    dev: f64,
    /// Accrued suspicion, φ units.
    susp: f64,
    status: TargetStatus,
    /// Whether suspicion ever crossed the threshold without a clearing
    /// cycle since (drives rank suspected/cleared events).
    suspected: bool,
}

impl Detector {
    fn new() -> Self {
        Detector {
            mu: 1.0,
            dev: 0.0,
            susp: 0.0,
            status: TargetStatus::Healthy,
            suspected: false,
        }
    }

    /// The phi-accrual-style instantaneous suspicion of cycle mean `m`:
    /// `φ = (m − μ) / (max(dev, floor) · ln 10)` — the anomaly's z-like
    /// deviation expressed as "orders of magnitude of surprise", matching
    /// the −log₁₀ P scaling of the classic accrual detector under an
    /// exponential tail.
    fn phi(&self, m: f64, p: &HealthParams) -> f64 {
        (m - self.mu) / (self.dev.max(p.dev_floor) * LN_10)
    }

    /// Fold one cycle mean (or its absence) into the detector. Returns the
    /// detection transitions to log.
    fn step(&mut self, m: Option<f64>, p: &HealthParams) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        if let TargetStatus::Blacklisted { remaining } = self.status {
            // Out of rotation: no observations to judge, just serve the term.
            if remaining > 1 {
                self.status = TargetStatus::Blacklisted {
                    remaining: remaining - 1,
                };
            } else {
                self.status = TargetStatus::Probation;
                events.push(HealthEvent::OstProbation);
            }
            return events;
        }
        let Some(m) = m else {
            return events; // nothing observed this cycle: no verdict
        };
        if m > self.mu * p.suspect_ratio {
            self.susp += self.phi(m, p).max(0.0);
            events.push(HealthEvent::OstSuspected);
            if self.status == TargetStatus::Probation || self.susp >= p.suspicion_threshold {
                // A failed probe re-blacklists immediately; a fresh target
                // needs accrued suspicion past the threshold.
                self.status = TargetStatus::Blacklisted {
                    remaining: p.probation_cycles,
                };
                self.suspected = true;
                events.push(HealthEvent::OstBlacklisted);
            }
        } else {
            if self.status == TargetStatus::Probation {
                self.status = TargetStatus::Healthy;
                events.push(HealthEvent::OstReintegrated);
            }
            if self.suspected {
                self.suspected = false;
                events.push(HealthEvent::RankCleared); // relabelled for ranks below
            }
            self.susp = 0.0;
            // Only healthy cycles update the baseline: degraded samples must
            // not poison μ (or the detector would acclimatize to the fault).
            self.dev = (1.0 - p.ewma_alpha) * self.dev + p.ewma_alpha * (m - self.mu).abs();
            self.mu = (1.0 - p.ewma_alpha) * self.mu + p.ewma_alpha * m;
        }
        events
    }
}

/// A frozen summary of the detector state at a cycle boundary — what the
/// scheduler consumes at rebalance to reprice SLAs against degraded
/// capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Cycle the snapshot closes.
    pub cycle: u32,
    /// OSTs out of rotation.
    pub blacklisted_osts: Vec<usize>,
    /// OSTs on probe duty next cycle.
    pub probation_osts: Vec<usize>,
    /// Ranks whose compute dilation is past the suspicion threshold.
    pub suspected_ranks: Vec<usize>,
    /// Striping modulus (for capacity math).
    pub num_osts: usize,
}

impl HealthSnapshot {
    /// Nothing degraded.
    pub fn is_clean(&self) -> bool {
        self.blacklisted_osts.is_empty()
            && self.probation_osts.is_empty()
            && self.suspected_ranks.is_empty()
    }

    /// Fraction of OST bandwidth still in rotation — the factor the
    /// scheduler multiplies into its bandwidth pool when repricing SLAs.
    pub fn capacity_factor(&self) -> f64 {
        if self.num_osts == 0 {
            return 1.0;
        }
        (self.num_osts - self.blacklisted_osts.len()) as f64 / self.num_osts as f64
    }
}

/// The online health monitor: per-OST and per-rank detectors, an
/// order-insensitive per-cycle observation accumulator, the decision log,
/// and the frozen routing view executors consult.
///
/// Thread contract: `observe_*` and the log take `&self` (rank threads feed
/// concurrently mid-cycle); `end_cycle` takes `&mut self` (the supervisor
/// folds at the cycle boundary). Within a cycle the view never changes.
#[derive(Debug)]
pub struct HealthMonitor {
    params: HealthParams,
    cycle: u32,
    osts: BTreeMap<usize, Detector>,
    ranks: BTreeMap<usize, Detector>,
    /// (target, member)-keyed sums — keyed, not running, so the fold order
    /// is canonical no matter how rank threads interleave.
    acc: Mutex<CycleAcc>,
    log: HealthLog,
    view: RouteView,
}

#[derive(Debug, Default)]
struct CycleAcc {
    /// (ost, member) → (count, dilation ratio).
    reads: BTreeMap<(usize, usize), (u64, f64)>,
    /// rank → (count, dilation ratio).
    computes: BTreeMap<usize, (u64, f64)>,
}

impl HealthMonitor {
    /// A monitor with all targets healthy.
    pub fn new(params: HealthParams) -> Self {
        let view = RouteView::healthy(params.num_osts, params.replica_shift);
        HealthMonitor {
            params,
            cycle: 0,
            osts: BTreeMap::new(),
            ranks: BTreeMap::new(),
            acc: Mutex::new(CycleAcc::default()),
            log: HealthLog::new(),
            view,
        }
    }

    /// The detector tuning.
    pub fn params(&self) -> &HealthParams {
        &self.params
    }

    /// The cycle observations currently accumulate into.
    pub fn cycle(&self) -> u32 {
        self.cycle
    }

    /// The frozen routing table for the current cycle.
    pub fn view(&self) -> &RouteView {
        &self.view
    }

    /// The decision log.
    pub fn log(&self) -> &HealthLog {
        &self.log
    }

    /// Canonical digest of every decision so far.
    pub fn digest(&self) -> String {
        self.log.digest()
    }

    /// Record one read service observation: `member`'s read was served by
    /// `ost` at `ratio`× the healthy service time.
    pub fn observe_read(&self, ost: usize, member: usize, ratio: f64) {
        let mut acc = self.acc.lock().expect("health accumulator poisoned");
        let e = acc.reads.entry((ost, member)).or_insert((0, ratio));
        e.0 += 1;
        e.1 = ratio;
    }

    /// Record one compute observation: `rank` computed at `ratio`× its
    /// healthy cost.
    pub fn observe_compute(&self, rank: usize, ratio: f64) {
        let mut acc = self.acc.lock().expect("health accumulator poisoned");
        let e = acc.computes.entry(rank).or_insert((0, ratio));
        e.0 += 1;
        e.1 = ratio;
    }

    /// Log a speculative read decision (called by the adaptive read path on
    /// both executors).
    pub fn speculated(
        &self,
        rank: usize,
        stage: Option<usize>,
        member: usize,
        ost: usize,
        replica: usize,
        replica_won: bool,
    ) {
        self.log
            .speculated(self.cycle, rank, stage, member, ost, replica, replica_won);
    }

    /// Discard the current cycle's accumulated observations without
    /// stepping the detectors or advancing the cycle. The campaign
    /// supervisor calls this when a cycle attempt fails and will be
    /// re-run from a checkpoint: the partial attempt's observations must
    /// not bias the detectors, and the re-run re-observes the full cycle,
    /// so recovery keeps detection a pure function of *completed* cycles.
    pub fn abort_cycle(&self) {
        let mut acc = self.acc.lock().expect("health accumulator poisoned");
        *acc = CycleAcc::default();
    }

    /// Close the cycle: fold the accumulated observations into the
    /// detectors in sorted key order, step every tracked target, refreeze
    /// the routing view, log the transitions, and return the snapshot.
    pub fn end_cycle(&mut self) -> HealthSnapshot {
        let acc = {
            let mut acc = self.acc.lock().expect("health accumulator poisoned");
            std::mem::take(&mut *acc)
        };
        // Per-OST cycle means: Σ count·ratio / Σ count over sorted members.
        let mut ost_means: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
        for (&(ost, _member), &(count, ratio)) in &acc.reads {
            let e = ost_means.entry(ost).or_insert((0.0, 0.0));
            e.0 += count as f64 * ratio;
            e.1 += count as f64;
        }
        for &ost in ost_means.keys() {
            self.osts.entry(ost).or_insert_with(Detector::new);
        }
        let cycle = self.cycle;
        for (&ost, det) in self.osts.iter_mut() {
            let m = ost_means.get(&ost).map(|&(sum, n)| sum / n);
            for ev in det.step(m, &self.params) {
                // Detectors are target-agnostic; OstSuspected/... labels are
                // already OST-flavoured, and the clearing event is not
                // emitted for OSTs (reintegration covers it).
                if ev != HealthEvent::RankCleared {
                    self.log.ost_event(cycle, ost, ev);
                }
            }
        }
        for &rank in acc.computes.keys() {
            self.ranks.entry(rank).or_insert_with(Detector::new);
        }
        for (&rank, det) in self.ranks.iter_mut() {
            let m = acc.computes.get(&rank).map(|&(_, ratio)| ratio);
            for ev in det.step(m, &self.params) {
                let ev = match ev {
                    HealthEvent::OstSuspected | HealthEvent::OstBlacklisted => {
                        HealthEvent::RankSuspected
                    }
                    HealthEvent::RankCleared => HealthEvent::RankCleared,
                    // Ranks are not routed around, so the probation ladder
                    // collapses onto suspected/cleared.
                    _ => continue,
                };
                // A rank crossing the threshold logs one RankSuspected per
                // anomalous cycle; dedup the double-fire on the blacklist
                // transition cycle.
                if ev == HealthEvent::RankSuspected {
                    self.log.rank_event(cycle, rank, ev);
                    break;
                }
                self.log.rank_event(cycle, rank, ev);
            }
        }
        self.view.blacklisted = self
            .osts
            .iter()
            .filter(|(_, d)| matches!(d.status, TargetStatus::Blacklisted { .. }))
            .map(|(&o, _)| o)
            .collect();
        let snap = self.snapshot_at(cycle);
        self.cycle += 1;
        snap
    }

    /// The current detector state as a snapshot (without closing a cycle).
    pub fn snapshot(&self) -> HealthSnapshot {
        self.snapshot_at(self.cycle)
    }

    fn snapshot_at(&self, cycle: u32) -> HealthSnapshot {
        HealthSnapshot {
            cycle,
            blacklisted_osts: self
                .osts
                .iter()
                .filter(|(_, d)| matches!(d.status, TargetStatus::Blacklisted { .. }))
                .map(|(&o, _)| o)
                .collect(),
            probation_osts: self
                .osts
                .iter()
                .filter(|(_, d)| d.status == TargetStatus::Probation)
                .map(|(&o, _)| o)
                .collect(),
            suspected_ranks: self
                .ranks
                .iter()
                .filter(|(_, d)| d.suspected)
                .map(|(&r, _)| r)
                .collect(),
            num_osts: self.params.num_osts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HealthParams {
        HealthParams::with_num_osts(4)
    }

    /// Feed one cycle of reads: every OST observes `members_per_ost`
    /// members at the given ratios (index = ost).
    fn feed(mon: &HealthMonitor, ratios: &[f64]) {
        for (ost, &r) in ratios.iter().enumerate() {
            mon.observe_read(ost, ost, r); // member = ost for simplicity
        }
    }

    #[test]
    fn healthy_cycles_never_trip() {
        let mut mon = HealthMonitor::new(params());
        for _ in 0..6 {
            feed(&mon, &[1.0, 1.0, 1.0, 1.0]);
            let snap = mon.end_cycle();
            assert!(snap.is_clean(), "healthy substrate must stay clean");
        }
        assert!(mon.log().is_empty());
        assert_eq!(mon.snapshot().capacity_factor(), 1.0);
    }

    #[test]
    fn severe_slowdown_blacklists_in_one_cycle() {
        let mut mon = HealthMonitor::new(params());
        feed(&mon, &[1.0, 4.0, 1.0, 1.0]);
        let snap = mon.end_cycle();
        assert_eq!(snap.blacklisted_osts, vec![1]);
        assert!(mon.view().blacklisted.contains(&1));
        assert_eq!(snap.capacity_factor(), 0.75);
        let d = mon.digest();
        assert!(d.contains("ost=1") && d.contains("event=ost-blacklisted"));
    }

    #[test]
    fn mild_slowdown_needs_accrued_evidence() {
        let mut mon = HealthMonitor::new(params());
        feed(&mon, &[1.0, 1.5, 1.0, 1.0]);
        let snap = mon.end_cycle();
        assert!(
            snap.blacklisted_osts.is_empty(),
            "one mild cycle: suspect only"
        );
        assert!(mon.digest().contains("event=ost-suspected"));
        feed(&mon, &[1.0, 1.5, 1.0, 1.0]);
        let snap = mon.end_cycle();
        assert_eq!(
            snap.blacklisted_osts,
            vec![1],
            "accrual crosses the threshold"
        );
    }

    #[test]
    fn probation_and_reintegration_round_trip() {
        let mut mon = HealthMonitor::new(params());
        feed(&mon, &[1.0, 6.0, 1.0, 1.0]);
        assert_eq!(mon.end_cycle().blacklisted_osts, vec![1]);
        // Term served (probation_cycles = 1): next boundary moves to probe.
        feed(&mon, &[1.0, 1.0, 1.0, 1.0]); // OST 1 routed away: no reads for it
        let snap = mon.end_cycle();
        assert!(snap.blacklisted_osts.is_empty());
        assert_eq!(snap.probation_osts, vec![1]);
        assert!(!mon.view().blacklisted.contains(&1), "probe reads allowed");
        // The probe comes back healthy: reintegrated.
        feed(&mon, &[1.0, 1.0, 1.0, 1.0]);
        let snap = mon.end_cycle();
        assert!(snap.is_clean());
        assert!(mon.digest().contains("event=ost-reintegrated"));
    }

    #[test]
    fn failed_probe_reblacklists() {
        let mut mon = HealthMonitor::new(params());
        feed(&mon, &[1.0, 6.0, 1.0, 1.0]);
        mon.end_cycle();
        feed(&mon, &[1.0, 1.0, 1.0, 1.0]);
        mon.end_cycle(); // → probation
        feed(&mon, &[1.0, 6.0, 1.0, 1.0]); // probe still degraded
        let snap = mon.end_cycle();
        assert_eq!(snap.blacklisted_osts, vec![1]);
    }

    #[test]
    fn straggling_rank_is_suspected_then_cleared() {
        let mut mon = HealthMonitor::new(params());
        mon.observe_compute(2, 3.0);
        let snap = mon.end_cycle();
        assert_eq!(snap.suspected_ranks, vec![2]);
        assert!(mon.digest().contains("event=rank-suspected"));
        mon.observe_compute(2, 1.0);
        // The rank detector enters the blacklist ladder internally; walk it
        // out: blacklist term, probe, healthy.
        mon.end_cycle();
        mon.observe_compute(2, 1.0);
        mon.end_cycle();
        mon.observe_compute(2, 1.0);
        let snap = mon.end_cycle();
        assert!(snap.suspected_ranks.is_empty());
        assert!(mon.digest().contains("event=rank-cleared"));
    }

    #[test]
    fn detection_is_a_pure_function_of_the_observation_multiset() {
        let run = |order_flip: bool| {
            let mut mon = HealthMonitor::new(params());
            for c in 0..5 {
                let members: Vec<usize> = if order_flip {
                    (0..8).rev().collect()
                } else {
                    (0..8).collect()
                };
                for m in members {
                    let ost = m % 4;
                    let ratio = if ost == 2 && c >= 1 { 3.0 } else { 1.0 };
                    mon.observe_read(ost, m, ratio);
                }
                mon.end_cycle();
            }
            mon.digest()
        };
        assert_eq!(run(false), run(true), "feed order must not matter");
        assert!(run(false).contains("event=ost-blacklisted"));
    }

    #[test]
    fn speculation_events_carry_the_route() {
        let mon = HealthMonitor::new(params());
        mon.speculated(3, Some(1), 5, 1, 2, true);
        let d = mon.digest();
        assert!(d.contains("member=5"));
        assert!(d.contains("replica=2"));
        assert!(d.contains("event=replica-won"));
    }
}
