//! The frozen per-cycle routing decision table.

use std::collections::BTreeSet;

/// How a member's read should be issued this cycle. Decided once per
/// (member, view) — a pure function, so the real executor and the DES weave
/// agree without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadRoute {
    /// The member's OST is in rotation: read exactly like the resilient
    /// path (byte-identical spans — the no-fault parity guarantee).
    Primary,
    /// The member stripes to a blacklisted OST: a speculative duplicate is
    /// issued on the replica path. `replica_wins` is the deterministic
    /// first-completion tie-break: the path with the smaller expected
    /// dilation wins (ties go to the replica, which is the healthier bet by
    /// construction); the loser is cancelled and charged as a zero-cost
    /// marker span.
    Speculate {
        /// OST index of the replica path.
        replica: usize,
        /// Whether the replica read wins the race.
        replica_wins: bool,
    },
}

/// The blacklist as the executors consume it: which OSTs are out of
/// rotation this cycle, and how replicas are assigned. Frozen between cycle
/// boundaries — within a cycle every rank (and the model weave) routes from
/// the same table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteView {
    /// File→OST striping modulus (must match `FaultPlan::num_osts`).
    pub num_osts: usize,
    /// Replica placement: the replica of OST `o` is `(o + shift) % num_osts`.
    pub replica_shift: usize,
    /// OSTs currently out of rotation.
    pub blacklisted: BTreeSet<usize>,
}

impl RouteView {
    /// An all-healthy view: every route is [`ReadRoute::Primary`].
    pub fn healthy(num_osts: usize, replica_shift: usize) -> Self {
        RouteView {
            num_osts,
            replica_shift,
            blacklisted: BTreeSet::new(),
        }
    }

    /// Whether no OST is blacklisted (the passthrough fast path).
    pub fn is_clean(&self) -> bool {
        self.blacklisted.is_empty()
    }

    /// The OST member `member`'s file stripes to.
    pub fn ost_of(&self, member: usize) -> usize {
        member % self.num_osts
    }

    /// The replica OST of `ost`.
    pub fn replica_of(&self, ost: usize) -> usize {
        (ost + self.replica_shift) % self.num_osts
    }

    /// Route a read of `member`, given the expected service dilation of the
    /// primary and replica paths (from the fault plan via
    /// `FaultInjector::ost_factor`). Pure: both executors call this with
    /// identical arguments and get identical routes.
    pub fn route(&self, member: usize, primary_factor: f64, replica_factor: f64) -> ReadRoute {
        let ost = self.ost_of(member);
        if !self.blacklisted.contains(&ost) {
            return ReadRoute::Primary;
        }
        let replica = self.replica_of(ost);
        let replica_wins = !self.blacklisted.contains(&replica) && replica_factor <= primary_factor;
        ReadRoute::Speculate {
            replica,
            replica_wins,
        }
    }

    /// Stable reorder of a member schedule away from hot OSTs: members on
    /// healthy OSTs first, members on blacklisted OSTs last, original order
    /// preserved within each class. The trace digest is an order-free
    /// multiset, so this is conformance-neutral; in time (wall or virtual)
    /// it moves the slow tail where speculation and pipelining can hide it.
    pub fn reorder(&self, members: &[usize]) -> Vec<usize> {
        if self.is_clean() {
            return members.to_vec();
        }
        let (cool, hot): (Vec<usize>, Vec<usize>) = members
            .iter()
            .copied()
            .partition(|&m| !self.blacklisted.contains(&self.ost_of(m)));
        let mut out = cool;
        out.extend(hot);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(blacklisted: &[usize]) -> RouteView {
        RouteView {
            num_osts: 4,
            replica_shift: 1,
            blacklisted: blacklisted.iter().copied().collect(),
        }
    }

    #[test]
    fn clean_view_routes_everything_primary() {
        let v = view(&[]);
        assert!(v.is_clean());
        for m in 0..8 {
            assert_eq!(v.route(m, 5.0, 1.0), ReadRoute::Primary);
        }
        assert_eq!(v.reorder(&[3, 1, 2]), vec![3, 1, 2]);
    }

    #[test]
    fn blacklisted_ost_speculates_and_replica_wins_ties() {
        let v = view(&[1]);
        // Member 1 stripes to OST 1 (blacklisted), replica is OST 2.
        assert_eq!(
            v.route(1, 4.0, 1.0),
            ReadRoute::Speculate {
                replica: 2,
                replica_wins: true
            }
        );
        // Tie goes to the replica.
        assert_eq!(
            v.route(1, 1.0, 1.0),
            ReadRoute::Speculate {
                replica: 2,
                replica_wins: true
            }
        );
        // A slower replica loses the race.
        assert_eq!(
            v.route(1, 2.0, 3.0),
            ReadRoute::Speculate {
                replica: 2,
                replica_wins: false
            }
        );
        // Members on other OSTs are untouched.
        assert_eq!(v.route(0, 1.0, 1.0), ReadRoute::Primary);
    }

    #[test]
    fn blacklisted_replica_loses_the_race() {
        let v = view(&[1, 2]);
        assert_eq!(
            v.route(5, 4.0, 1.0),
            ReadRoute::Speculate {
                replica: 2,
                replica_wins: false
            }
        );
    }

    #[test]
    fn reorder_is_stable_and_moves_hot_members_last() {
        let v = view(&[1]);
        // OST of member = member % 4; members 1 and 5 are hot.
        assert_eq!(v.reorder(&[0, 1, 2, 3, 4, 5]), vec![0, 2, 3, 4, 1, 5]);
    }
}
