//! Online health monitoring and adaptive degradation.
//!
//! The fault subsystem (`enkf-fault`) made failures *injectable and
//! deterministic*; this crate makes the response *adaptive* while keeping
//! the same determinism contract. Three pieces:
//!
//! * **Detection** ([`HealthMonitor`]): per-OST and per-rank trackers fed
//!   with the dilation ratios of observed read/compute spans. Within a
//!   cycle, observations accumulate into an order-insensitive keyed table;
//!   at the cycle boundary each target's cycle mean is folded into an EWMA
//!   baseline and a phi-accrual-style suspicion score. Every decision is a
//!   pure function of the observation multiset — never of wall-clock time
//!   or thread interleaving — so the real executors and the DES models
//!   reach bit-identical verdicts.
//! * **Routing** ([`RouteView`]): the frozen per-cycle decision table.
//!   Suspected-degraded OSTs are blacklisted with probation and
//!   reintegration; members striped to a blacklisted OST get a speculative
//!   duplicate read whose winner is decided by a deterministic tie-break,
//!   and member schedules are stably reordered away from hot OSTs (the
//!   trace digest is an order-free multiset, so reordering is
//!   conformance-neutral by construction).
//! * **Evidence** ([`HealthLog`]): every detection and failover decision is
//!   logged; the canonical sorted digest is part of the chaos-soak
//!   conformance surface next to the trace and fault-log digests.
//!
//! Determinism argument, in one paragraph: the real substrate *injects*
//! degradation (OST slowdowns, stragglers) through `enkf-fault`, so the
//! dilation ratio of every observed span is itself a pure plan function.
//! The monitor consumes those ratios — not noisy wall-clock durations — and
//! folds them in sorted key order, so the per-cycle means, the EWMA
//! baselines, the suspicion scores, and hence the blacklist/speculation
//! decisions are byte-reproducible across reruns and identical between the
//! threaded executors and the single-threaded DES weave. A production
//! deployment would feed measured ratios instead; the detector math is
//! agnostic, and the bench drives it with measured wall-clock spans to show
//! the math holds up under noise.

mod log;
mod monitor;
mod route;

pub use crate::log::{HealthEvent, HealthLog, HealthRecord};
pub use monitor::{HealthMonitor, HealthParams, HealthSnapshot, TargetStatus};
pub use route::{ReadRoute, RouteView};
