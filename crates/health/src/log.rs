//! The shared record of detection and failover decisions.

use std::sync::Mutex;

/// What the health layer decided. Ordered so sorted record lists read
/// naturally: detection transitions first, then routing actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthEvent {
    /// An OST's cycle mean crossed the suspect ratio; suspicion accrued.
    OstSuspected,
    /// Accrued suspicion crossed the threshold: the OST is blacklisted.
    OstBlacklisted,
    /// The blacklist term expired: the OST serves probe reads next cycle.
    OstProbation,
    /// The probe came back healthy: the OST rejoins the rotation.
    OstReintegrated,
    /// A rank's compute dilation accrued suspicion.
    RankSuspected,
    /// A previously suspected rank went back to baseline.
    RankCleared,
    /// A member striped to a blacklisted OST got a speculative duplicate
    /// read on its replica path.
    SpeculatedRead,
    /// The speculative replica read won the race (deterministic tie-break);
    /// the primary duplicate was cancelled.
    ReplicaWon,
}

impl HealthEvent {
    /// Lower-case label used in digests.
    pub fn label(self) -> &'static str {
        match self {
            HealthEvent::OstSuspected => "ost-suspected",
            HealthEvent::OstBlacklisted => "ost-blacklisted",
            HealthEvent::OstProbation => "ost-probation",
            HealthEvent::OstReintegrated => "ost-reintegrated",
            HealthEvent::RankSuspected => "rank-suspected",
            HealthEvent::RankCleared => "rank-cleared",
            HealthEvent::SpeculatedRead => "speculated",
            HealthEvent::ReplicaWon => "replica-won",
        }
    }
}

/// One health decision. The derived `Ord` (cycle, ost, rank, stage, member,
/// event) is the canonical sort used by [`HealthLog::digest`], so
/// multi-threaded real runs and single-threaded model construction produce
/// the same digest for the same observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct HealthRecord {
    /// Assimilation cycle the decision belongs to.
    pub cycle: u32,
    /// OST the decision targets (detection transitions, speculation
    /// primaries).
    pub ost: Option<usize>,
    /// Rank involved (rank detection, the reader of a speculative read).
    pub rank: Option<usize>,
    /// Stage (layer) for multi-stage variants.
    pub stage: Option<usize>,
    /// Ensemble member involved (speculation).
    pub member: Option<usize>,
    /// Replica OST of a speculative read.
    pub replica: Option<usize>,
    /// The decision.
    pub event: HealthEvent,
}

/// Append-only, thread-shared log of health decisions, mirroring
/// `enkf_fault::FaultLog`: the real executors feed it from rank threads,
/// the DES models while weaving the decision sequence into virtual time.
/// The sorted [`HealthLog::digest`] must be identical on both sides.
#[derive(Debug, Default)]
pub struct HealthLog {
    records: Mutex<Vec<HealthRecord>>,
}

impl HealthLog {
    /// An empty log.
    pub fn new() -> Self {
        HealthLog::default()
    }

    /// Append a record.
    pub fn push(&self, rec: HealthRecord) {
        self.records.lock().expect("health log poisoned").push(rec);
    }

    /// Record a detection transition for OST `ost` at `cycle`.
    pub fn ost_event(&self, cycle: u32, ost: usize, event: HealthEvent) {
        self.push(HealthRecord {
            cycle,
            ost: Some(ost),
            rank: None,
            stage: None,
            member: None,
            replica: None,
            event,
        });
    }

    /// Record a detection transition for rank `rank` at `cycle`.
    pub fn rank_event(&self, cycle: u32, rank: usize, event: HealthEvent) {
        self.push(HealthRecord {
            cycle,
            ost: None,
            rank: Some(rank),
            stage: None,
            member: None,
            replica: None,
            event,
        });
    }

    /// Record a speculative duplicate read of `member` (primary OST
    /// `ost`, replica `replica`) issued by `rank`, and whether the replica
    /// won the deterministic race.
    #[allow(clippy::too_many_arguments)]
    pub fn speculated(
        &self,
        cycle: u32,
        rank: usize,
        stage: Option<usize>,
        member: usize,
        ost: usize,
        replica: usize,
        replica_won: bool,
    ) {
        let rec = |event| HealthRecord {
            cycle,
            ost: Some(ost),
            rank: Some(rank),
            stage,
            member: Some(member),
            replica: Some(replica),
            event,
        };
        self.push(rec(HealthEvent::SpeculatedRead));
        if replica_won {
            self.push(rec(HealthEvent::ReplicaWon));
        }
    }

    /// Snapshot of the records in insertion order.
    pub fn records(&self) -> Vec<HealthRecord> {
        self.records.lock().expect("health log poisoned").clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.lock().expect("health log poisoned").len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append every record of `other` (used when a per-cycle log folds into
    /// a campaign-level one).
    pub fn absorb(&self, other: &HealthLog) {
        let mut recs = self.records.lock().expect("health log poisoned");
        recs.extend(other.records());
    }

    /// The canonical decision-sequence digest: records sorted by (cycle,
    /// ost, rank, stage, member, event), one text line each. Sorting
    /// removes thread-interleaving nondeterminism while preserving
    /// per-target cycle order, so real-vs-model comparison is a string
    /// equality.
    pub fn digest(&self) -> String {
        let mut recs = self.records();
        recs.sort_unstable();
        let opt = |v: Option<usize>| v.map_or("-".to_string(), |x| x.to_string());
        let mut out = String::new();
        for r in recs {
            use std::fmt::Write as _;
            writeln!(
                out,
                "cycle={} ost={} rank={} stage={} member={} replica={} event={}",
                r.cycle,
                opt(r.ost),
                opt(r.rank),
                opt(r.stage),
                opt(r.member),
                opt(r.replica),
                r.event.label()
            )
            .expect("writing to a String cannot fail");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_insertion_order_independent() {
        let a = HealthLog::new();
        a.ost_event(0, 2, HealthEvent::OstSuspected);
        a.ost_event(1, 2, HealthEvent::OstBlacklisted);
        a.speculated(2, 0, None, 4, 2, 3, true);
        let b = HealthLog::new();
        b.speculated(2, 0, None, 4, 2, 3, true);
        b.ost_event(1, 2, HealthEvent::OstBlacklisted);
        b.ost_event(0, 2, HealthEvent::OstSuspected);
        assert_eq!(a.digest(), b.digest());
        assert!(a.digest().contains("event=ost-blacklisted"));
        assert!(a.digest().contains("event=replica-won"));
    }

    #[test]
    fn digest_distinguishes_cycles_and_targets() {
        let a = HealthLog::new();
        a.ost_event(0, 1, HealthEvent::OstBlacklisted);
        let b = HealthLog::new();
        b.ost_event(1, 1, HealthEvent::OstBlacklisted);
        assert_ne!(a.digest(), b.digest());
        let c = HealthLog::new();
        c.ost_event(0, 2, HealthEvent::OstBlacklisted);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn log_is_shareable_across_threads() {
        let log = HealthLog::new();
        std::thread::scope(|s| {
            for rank in 0..4 {
                let log = &log;
                s.spawn(move || log.speculated(0, rank, None, rank, 0, 1, false));
            }
        });
        assert_eq!(log.len(), 4);
    }
}
