//! Point-wise LETKF kernel microbenchmark over a mesh-size × obs-density
//! grid — the workload behind the PR 2 `BENCH_PR2.json` perf-trajectory
//! entry. Each case runs the full pointwise analysis (per-point local box,
//! observation sub-localization, ensemble-space eigensolve) on one
//! sub-domain-sized target.

use criterion::{criterion_group, criterion_main, Criterion};
use enkf_core::{LetkfAnalysis, ObservationOperator, Observations, PerturbedObservations};
use enkf_grid::{LocalizationRadius, Mesh, ObservationNetwork, RegionRect};
use enkf_linalg::{GaussianSampler, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_matrix(n: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gs = GaussianSampler::new();
    Matrix::from_fn(n, m, |_, _| gs.sample(&mut rng))
}

fn bench_letkf_pointwise(c: &mut Criterion) {
    let mut g = c.benchmark_group("letkf_pointwise");
    let nens = 20;
    let radius = LocalizationRadius { xi: 2, eta: 2 };
    for (side, stride) in [(16usize, 2usize), (16, 4), (32, 2), (32, 4)] {
        let mesh = Mesh::new(side, side);
        let target = RegionRect::full(mesh);
        let expansion = target;
        let xb = random_matrix(expansion.npoints(), nens, 11);
        let net = ObservationNetwork::uniform(mesh, stride);
        let op = ObservationOperator::new(net);
        let m = op.len();
        let values: Vec<f64> = (0..m).map(|k| (k as f64 * 0.17).sin()).collect();
        let obs = Observations::new(
            op,
            values,
            vec![0.04; m],
            PerturbedObservations::new(3, nens),
        );
        let local = obs.localize(&expansion);
        let letkf = LetkfAnalysis::new(radius);
        g.bench_function(format!("mesh{side}x{side}_stride{stride}"), |bench| {
            bench.iter(|| {
                letkf
                    .analyze(mesh, &target, &expansion, &xb, &local)
                    .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_letkf_pointwise);
criterion_main!(benches);
