//! Data-plane microbenchmarks: the three legs of the PR 4 zero-copy
//! refactor, each measured against its pre-refactor baseline.
//!
//! * `pooled_read` vs `fresh_read` — the pooled/bulk-converted/handle-cached
//!   region read against the old fresh-allocation scalar-conversion path
//!   (kept verbatim as [`enkf_pfs::FileStore::read_region_fresh`]).
//! * `view_split` vs `owned_split` — O(1) `extract` views against the old
//!   deep-copy split when a bar is fanned out to its sub-domain blocks.
//! * `readahead_on` vs `readahead_off` — the staged bar-read loop with the
//!   prefetch pipeline against the same plan read sequentially, with a
//!   simulated per-stage consume cost (the scatter work the pipeline hides
//!   reads behind).

use criterion::{criterion_group, criterion_main, Criterion};
use enkf_fault::{FaultConfig, FaultInjector, FaultPlan};
use enkf_grid::{FileLayout, Mesh, RegionRect};
use enkf_pfs::{read_region_resilient, read_stages_ahead, FileStore, ScratchDir, StageRead};
use enkf_trace::RankTracer;
use std::time::Instant;

const LEVELS: u64 = 4;

fn store(mesh: Mesh, members: usize, label: &str) -> (ScratchDir, FileStore) {
    let scratch = ScratchDir::new(label).unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8 * LEVELS)).unwrap();
    let n = mesh.n() * LEVELS as usize;
    for k in 0..members {
        let v: Vec<f64> = (0..n).map(|i| ((i + 17 * k) as f64 * 0.13).sin()).collect();
        store.write_member(k, &v).unwrap();
    }
    (scratch, store)
}

fn bench_pooled_vs_fresh(c: &mut Criterion) {
    let mesh = Mesh::new(128, 64);
    let (_s, st) = store(mesh, 1, "bench-read");
    // A full-width bar: single-seek, the S-EnKF reading-group shape.
    let bar = RegionRect::new(0, 128, 16, 48);
    let mut g = c.benchmark_group("pfs_reading");
    g.bench_function("pooled_read", |bench| {
        bench.iter(|| st.read_region(0, &bar).unwrap().len())
    });
    g.bench_function("fresh_read", |bench| {
        bench.iter(|| st.read_region_fresh(0, &bar).unwrap().len())
    });
    g.finish();
}

fn bench_view_vs_owned_split(c: &mut Criterion) {
    let mesh = Mesh::new(256, 64);
    let (_s, st) = store(mesh, 1, "bench-split");
    let bar = RegionRect::new(0, 256, 0, 64);
    let data = st.read_region(0, &bar).unwrap();
    // Fan the bar out to 16 sub-domain blocks, as an I/O rank does per send.
    let blocks: Vec<RegionRect> = (0..16)
        .map(|i| RegionRect::new(i * 16, (i + 1) * 16, 0, 64))
        .collect();
    let mut g = c.benchmark_group("pfs_reading");
    g.bench_function("view_split", |bench| {
        bench.iter(|| blocks.iter().map(|b| data.extract(b).len()).sum::<usize>())
    });
    g.bench_function("owned_split", |bench| {
        bench.iter(|| {
            blocks
                .iter()
                .map(|b| data.extract_owned(b).len())
                .sum::<usize>()
        })
    });
    g.finish();
}

/// Per-stage consume cost stand-in: the scatter/send work the read-ahead
/// pipeline overlaps with the next stage's disk reads.
fn consume_cost(bars: &[enkf_pfs::RegionData]) -> f64 {
    let mut acc = 0.0;
    for data in bars {
        for r in 0..data.region().height() {
            for &v in data.row(r) {
                acc += v * 1.0000001;
            }
        }
    }
    acc
}

fn bench_readahead(c: &mut Criterion) {
    // Read-ahead hides *I/O latency* behind the consumer's scatter work, so
    // the benchmark must run in the I/O-bound regime the paper's reading
    // groups live in: a page-cache-hot read on this machine never blocks,
    // and a prefetch thread cannot beat it on CPU alone. The fault plan's
    // OST slowdown dilates every read's wall time with a blocking sleep —
    // the same mechanism fig14 uses to model a degraded Lustre OST — which
    // the pipeline genuinely overlaps with the per-stage consume.
    let mesh = Mesh::new(512, 128);
    let members = 4;
    let layers = 16;
    let (_s, st) = store(mesh, members, "bench-ra");
    let slow_ost = FaultPlan::new(1).with_ost_slowdown(0, 2.0);
    let inj = FaultInjector::new(FaultConfig::degraded(slow_ost));
    let stages: Vec<StageRead> = (0..layers)
        .map(|l| StageRead {
            stage: l,
            region: RegionRect::new(0, 512, l * 8, (l + 1) * 8),
            members: (0..members).collect(),
        })
        .collect();
    let mut g = c.benchmark_group("pfs_reading");
    g.bench_function("readahead_on", |bench| {
        bench.iter(|| {
            let mut tracer = RankTracer::new(0, Instant::now());
            let mut acc = 0.0;
            read_stages_ahead::<std::convert::Infallible>(
                &st,
                &inj,
                &mut tracer,
                &stages,
                &[],
                |_, bars, _| {
                    acc += consume_cost(&bars);
                    Ok(())
                },
            )
            .unwrap();
            acc
        })
    });
    g.bench_function("readahead_off", |bench| {
        bench.iter(|| {
            let mut tracer = RankTracer::new(0, Instant::now());
            let mut acc = 0.0;
            for sr in &stages {
                let bars: Vec<enkf_pfs::RegionData> = sr
                    .members
                    .iter()
                    .map(|&m| {
                        read_region_resilient(&st, &mut tracer, Some(sr.stage), m, &sr.region, &inj)
                            .unwrap()
                    })
                    .collect();
                acc += consume_cost(&bars);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pooled_vs_fresh,
    bench_view_vs_owned_split,
    bench_readahead
);
criterion_main!(benches);
