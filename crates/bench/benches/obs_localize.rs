//! Observation-localization microbenchmark: restricting the global network
//! to an expansion (`Observations::localize`) and re-restricting an
//! expansion's observations to a point's local box
//! (`LocalObservations::sub_localize`) — the per-grid-point localization
//! cost the bucket-grid spatial index attacks.

use criterion::{criterion_group, criterion_main, Criterion};
use enkf_core::{
    LocalObsIndex, LocalObservations, ObservationOperator, Observations, PerturbedObservations,
};
use enkf_grid::{LocalizationRadius, Mesh, ObservationNetwork, RegionRect};

fn obs_set(mesh: Mesh, stride: usize, nens: usize) -> Observations {
    let net = ObservationNetwork::uniform(mesh, stride);
    let op = ObservationOperator::new(net);
    let m = op.len();
    let values: Vec<f64> = (0..m).map(|k| (k as f64 * 0.31).cos()).collect();
    Observations::new(
        op,
        values,
        vec![0.09; m],
        PerturbedObservations::new(5, nens),
    )
}

fn bench_localize(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_localize");
    let nens = 20;
    for (side, stride) in [(64usize, 2usize), (64, 4), (128, 2)] {
        let mesh = Mesh::new(side, side);
        let obs = obs_set(mesh, stride, nens);
        // A sub-domain-sized expansion in the interior.
        let expansion = RegionRect::new(side / 4, 3 * side / 4, side / 4, 3 * side / 4);
        g.bench_function(format!("localize_mesh{side}_stride{stride}"), |bench| {
            bench.iter(|| obs.localize(&expansion));
        });

        let local = obs.localize(&expansion);
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let boxes: Vec<RegionRect> = expansion
            .iter_points()
            .map(|p| {
                RegionRect::new(p.ix, p.ix + 1, p.iy, p.iy + 1)
                    .expand(radius, mesh)
                    .intersect(&expansion)
            })
            .collect();
        g.bench_function(format!("sub_localize_mesh{side}_stride{stride}"), |bench| {
            bench.iter(|| {
                let mut total = 0usize;
                for b in &boxes {
                    total += local.sub_localize(&expansion, b).len();
                }
                total
            });
        });

        // The bucket-indexed variant the per-point LETKF hot loop uses,
        // including the once-per-cycle index build.
        let cell = radius.xi.max(radius.eta).max(1);
        g.bench_function(
            format!("sub_localize_indexed_mesh{side}_stride{stride}"),
            |bench| {
                bench.iter(|| {
                    let index = LocalObsIndex::build(&local, &expansion, cell);
                    let mut scratch = Vec::new();
                    let mut out = LocalObservations {
                        local_rows: Vec::new(),
                        values: Vec::new(),
                        error_var: Vec::new(),
                        perturbed: enkf_linalg::Matrix::zeros(0, 0),
                    };
                    let mut total = 0usize;
                    for b in &boxes {
                        index.sub_localize_into(&local, b, &mut scratch, &mut out);
                        total += out.len();
                    }
                    total
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_localize);
criterion_main!(benches);
