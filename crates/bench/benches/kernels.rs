//! Criterion micro-benchmarks of the computational kernels behind Table 1's
//! constant `c` (local-analysis cost per grid point) and the substrates'
//! hot paths.
//!
//! These complement the fig* binaries: the figures regenerate the paper's
//! evaluation on the modeled cluster; the benches measure the real kernels
//! this reproduction executes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use enkf_core::{LocalAnalysis, ObservationOperator, Observations, PerturbedObservations};
use enkf_data::ScenarioBuilder;
use enkf_grid::{
    Decomposition, FileLayout, LocalizationRadius, Mesh, ObservationNetwork, RegionRect,
};
use enkf_linalg::{Cholesky, GaussianSampler, Matrix, ModifiedCholesky};
use enkf_pfs::{FileStore, ScratchDir};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_matrix(n: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gs = GaussianSampler::new();
    Matrix::from_fn(n, m, |_, _| gs.sample(&mut rng))
}

fn spd(n: usize, seed: u64) -> Matrix {
    let m = random_matrix(n, n, seed);
    let mut a = m.matmul_tr(&m).unwrap().scale(1.0 / n as f64);
    for i in 0..n {
        a[(i, i)] += 2.0;
    }
    a
}

fn bench_linalg(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    for n in [64usize, 128, 256] {
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        g.bench_function(format!("gemm_{n}"), |bench| {
            bench.iter(|| a.matmul(&b).unwrap());
        });
        let s = spd(n, 3);
        g.bench_function(format!("cholesky_{n}"), |bench| {
            bench.iter(|| Cholesky::factor(&s).unwrap());
        });
    }
    // Modified Cholesky over a typical local box (17x17 = 289 points was
    // the paper-scale box; 9x9 here keeps the bench fast).
    let rect = RegionRect::new(0, 9, 0, 9);
    let radius = LocalizationRadius { xi: 2, eta: 2 };
    let u = random_matrix(81, 40, 4);
    g.bench_function("modified_cholesky_81x40", |bench| {
        bench.iter(|| {
            ModifiedCholesky::estimate(&u, enkf_core::local::box_predecessors(&rect, radius), 1e-4)
                .unwrap()
        });
    });
    g.finish();
}

fn bench_local_analysis(c: &mut Criterion) {
    let mesh = Mesh::new(24, 24);
    let nens = 24;
    let radius = LocalizationRadius { xi: 2, eta: 2 };
    let decomp = Decomposition::new(mesh, 2, 2).unwrap();
    let target = decomp.subdomain(enkf_grid::SubDomainId { i: 0, j: 0 });
    let expansion = decomp.expansion(enkf_grid::SubDomainId { i: 0, j: 0 }, radius);
    let xb = random_matrix(expansion.npoints(), nens, 5);
    let net = ObservationNetwork::uniform(mesh, 3);
    let op = ObservationOperator::new(net);
    let m = op.len();
    let values = vec![0.1; m];
    let obs = Observations::new(
        op,
        values,
        vec![0.04; m],
        PerturbedObservations::new(8, nens),
    );
    let local = obs.localize(&expansion);

    let mut g = c.benchmark_group("local_analysis");
    let pointwise = LocalAnalysis::new(radius);
    g.bench_function("pointwise_12x12_subdomain", |bench| {
        bench.iter(|| {
            pointwise
                .analyze(mesh, &target, &expansion, &xb, &local)
                .unwrap()
        });
    });
    let blocked = LocalAnalysis::blocked(radius);
    g.bench_function("blocked_12x12_subdomain", |bench| {
        bench.iter(|| {
            blocked
                .analyze(mesh, &target, &expansion, &xb, &local)
                .unwrap()
        });
    });
    g.finish();
}

fn bench_reading(c: &mut Criterion) {
    // Real-file reading strategies: the bar's single segment vs the block's
    // one-segment-per-row on identical data volumes.
    let mesh = Mesh::new(256, 128);
    let scenario = ScenarioBuilder::new(mesh).members(2).seed(1).build();
    let scratch = ScratchDir::new("bench-read").unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).unwrap();
    enkf_data::write_ensemble(&store, &scenario.ensemble).unwrap();

    // 32 rows of full width (a bar) vs 128 rows of quarter width (a block):
    // same point count, very different seek counts.
    let bar = RegionRect::new(0, 256, 0, 32);
    let block = RegionRect::new(0, 64, 0, 128);
    assert_eq!(bar.npoints(), block.npoints());

    let mut g = c.benchmark_group("pfs_reading");
    g.bench_function("bar_single_seek", |bench| {
        bench.iter(|| store.read_region(0, &bar).unwrap());
    });
    g.bench_function("block_many_seeks", |bench| {
        bench.iter(|| store.read_region(0, &block).unwrap());
    });
    g.finish();
    drop(scratch);
}

fn bench_des_engine(c: &mut Criterion) {
    use enkf_sim::{Kind, Simulation, Task};
    let mut g = c.benchmark_group("des_engine");
    g.bench_function("fan_out_10k_tasks", |bench| {
        bench.iter_batched(
            || {
                let mut sim = Simulation::new();
                let r = sim.add_resource(4);
                for _ in 0..100 {
                    let a = sim.add_agent();
                    for _ in 0..100 {
                        sim.add_task(Task::new(a, Kind::Read, 0.001).with_resources(vec![r]))
                            .unwrap();
                    }
                }
                sim
            },
            |mut sim| sim.run().unwrap(),
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_linalg,
    bench_local_analysis,
    bench_reading,
    bench_des_engine
);
criterion_main!(benches);
