//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every `fig*` binary prints its series as an aligned text table and also
//! writes `target/figures/figNN.csv` so the data can be re-plotted. The
//! paper-scale processor counts and decompositions used across figures are
//! centralized here.

use std::io::Write;
use std::path::PathBuf;

/// Directory the CSV outputs are written to (`target/figures`).
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    std::fs::create_dir_all(&dir).expect("create figures dir");
    dir
}

/// Write a CSV file into [`figures_dir`].
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = figures_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("\n[wrote {}]", path.display());
}

/// Print an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The strong-scaling processor counts of Figures 1, 9, 11 and 13, with the
/// P-EnKF decompositions used at each count (all divisor-compatible with
/// the 3600 × 1800 paper mesh).
pub fn paper_scaling_points() -> Vec<(usize, usize, usize)> {
    // (n_p, nsdx, nsdy)
    vec![
        (2000, 50, 40),
        (4000, 100, 40),
        (6000, 100, 60),
        (8000, 80, 100),
        (10000, 100, 100),
        (12000, 120, 100),
    ]
}

/// True if the process was invoked with the given command-line flag.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Directory Chrome-trace exports are written to (`target/traces`).
pub fn traces_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/traces");
    std::fs::create_dir_all(&dir).expect("create traces dir");
    dir
}

/// The `--tiny` workload: the same code paths as the paper-scale sweeps on
/// a 240 × 120 mesh with 8 members, so smoke tests finish in seconds.
pub fn tiny_workload() -> enkf_tuning::Workload {
    enkf_tuning::Workload {
        nx: 240,
        ny: 120,
        members: 8,
        h: 80,
        xi: 2,
        eta: 2,
    }
}

/// The `--tiny` strong-scaling points (divisor-compatible with the
/// [`tiny_workload`] mesh): `(n_p, nsdx, nsdy)`.
pub fn tiny_scaling_points() -> Vec<(usize, usize, usize)> {
    vec![(12, 4, 3), (24, 6, 4), (48, 8, 6)]
}

/// Format seconds at full precision (shortest round-trip representation)
/// for machine-checked CSV outputs.
pub fn secs_exact(v: f64) -> String {
    format!("{v}")
}

/// Format seconds with 3 significant decimals.
pub fn secs(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}
