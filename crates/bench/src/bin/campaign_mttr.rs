//! **Fig. 14 extension** — mean-time-to-recovery of a supervised campaign:
//! virtual time-to-completion of a K-cycle assimilation campaign versus
//! injected crash count, across three durability arms:
//!
//! * `ckpt` — synchronous checkpointing (the PR 5 recovery line: every
//!   commit on the critical path);
//! * `pipe` — pipelined checkpointing (PR 9: commits handed to a
//!   background writer and overlapped with the next cycle, at most one in
//!   flight);
//! * `nockpt` — no recovery line (a crash restarts the campaign from
//!   cycle 0).
//!
//! With a recovery line, each crash costs the partial attempt (detection
//! latency + the work the dead cycle threw away), the restart backoff, and
//! one serial restore sweep; without it a crash throws away *every*
//! completed cycle. The sweep places crashes at seeded, evenly spread
//! cycles so all arms see the identical fault plan.
//!
//! Checkpoint overhead is reported **explicitly** at every crash count —
//! `ckpt_overhead_s` is the durability time on the critical path
//! (`CampaignModelOutcome::ckpt_exposed`) and `ckpt_overhead_ratio` is its
//! share of the rest of the campaign — rather than burying it in a < 1
//! no-crash slowdown ratio. The pipelined arm additionally reports the
//! hidden/exposed split measured from the DES trace
//! ([`enkf_trace::Trace::ckpt_overlap`]).
//!
//! Emits machine-readable lines for `scripts/bench.sh`:
//!
//! ```text
//! MTTR crashes=2 cycles=16 clean_s=... ckpt_s=... nockpt_s=... \
//!      ckpt_lost_s=... nockpt_lost_s=... nockpt_over_ckpt=... \
//!      ckpt_overhead_s=... ckpt_overhead_ratio=...
//! PIPE crashes=2 cycles=16 sync_s=... pipe_s=... sync_overhead_s=... \
//!      pipe_overhead_s=... overhead_cut=... hidden_s=... exposed_s=... \
//!      trace_hidden_frac=... sync_lost_s=... pipe_lost_s=...
//! ```
//!
//! Flags: `--tiny` shrinks the workload for smoke runs.

use enkf_bench::{has_flag, print_table, secs, tiny_workload};
use enkf_fault::{FaultConfig, FaultPlan, RetryPolicy};
use enkf_parallel::{model_campaign, CampaignModelPlan, ModelConfig, ModelVariant};
use enkf_tuning::Params;

const SEED: u64 = 15;
const CYCLES: usize = 16;

/// `m` crashes spread over the campaign: crash j lands in cycle
/// `(2j+1)·K/(2m)` at a seeded stage, so later crashes cost the
/// no-recovery baseline progressively more.
fn plan_with_crashes(m: usize, layers: usize) -> FaultPlan {
    let mut plan = FaultPlan::new(SEED);
    for j in 0..m {
        let cycle = ((2 * j + 1) * CYCLES) / (2 * m.max(1));
        let stage = (SEED as usize + 3 * j) % layers.max(1);
        plan = plan.with_crash_at_cycle(0, cycle, stage);
    }
    plan
}

/// Exposed-durability share of the non-durability campaign time.
fn overhead_ratio(makespan: f64, exposed: f64) -> f64 {
    exposed / (makespan - exposed).max(f64::MIN_POSITIVE)
}

fn main() {
    let mut cfg = ModelConfig::paper();
    let params = if has_flag("--tiny") {
        cfg.workload = tiny_workload();
        Params {
            nsdx: 6,
            nsdy: 4,
            layers: 2,
            ncg: 2,
        }
    } else {
        enkf_tuning::autotune(&cfg.cost_params(), 8000, 2e-2)
            .expect("tunable")
            .params
    };
    let variant = ModelVariant::SEnkf(params);
    let restart = RetryPolicy {
        max_retries: 3,
        base_backoff: 0.5,
        multiplier: 2.0,
        ..RetryPolicy::default()
    };
    let sync = CampaignModelPlan {
        cycles: CYCLES,
        checkpoint: true,
        pipelined: false,
        restart,
    };
    let pipe = CampaignModelPlan {
        pipelined: true,
        ..sync
    };
    let without = CampaignModelPlan {
        checkpoint: false,
        ..sync
    };

    let (clean, _) = model_campaign(&cfg, &variant, &sync, &FaultConfig::none()).expect("feasible");

    let mut rows = Vec::new();
    for crashes in [0usize, 1, 2, 4, 8] {
        let mut fcfg = FaultConfig::none();
        fcfg.plan = plan_with_crashes(crashes, params.layers);
        fcfg.recv_timeout = 1.0;
        let (ck, _) = model_campaign(&cfg, &variant, &sync, &fcfg).expect("feasible");
        let (pk, pk_trace) = model_campaign(&cfg, &variant, &pipe, &fcfg).expect("feasible");
        let (nk, _) = model_campaign(&cfg, &variant, &without, &fcfg).expect("feasible");
        println!(
            "MTTR crashes={crashes} cycles={CYCLES} clean_s={:.3} ckpt_s={:.3} \
             nockpt_s={:.3} ckpt_lost_s={:.3} nockpt_lost_s={:.3} nockpt_over_ckpt={:.3} \
             ckpt_overhead_s={:.3} ckpt_overhead_ratio={:.4}",
            clean.makespan,
            ck.makespan,
            nk.makespan,
            ck.lost_time,
            nk.lost_time,
            nk.makespan / ck.makespan,
            ck.ckpt_exposed,
            overhead_ratio(ck.makespan, ck.ckpt_exposed),
        );
        let overlap = pk_trace.ckpt_overlap();
        println!(
            "PIPE crashes={crashes} cycles={CYCLES} sync_s={:.3} pipe_s={:.3} \
             sync_overhead_s={:.3} pipe_overhead_s={:.3} overhead_cut={:.2} \
             hidden_s={:.3} exposed_s={:.3} trace_hidden_frac={:.4} \
             sync_lost_s={:.3} pipe_lost_s={:.3}",
            ck.makespan,
            pk.makespan,
            ck.ckpt_exposed,
            pk.ckpt_exposed,
            ck.ckpt_exposed / pk.ckpt_exposed.max(f64::MIN_POSITIVE),
            pk.ckpt_hidden,
            pk.ckpt_exposed,
            overlap.hidden_fraction(),
            ck.lost_time,
            pk.lost_time,
        );
        rows.push(vec![
            crashes.to_string(),
            secs(ck.makespan),
            secs(pk.makespan),
            secs(nk.makespan),
            secs(ck.ckpt_exposed),
            secs(pk.ckpt_exposed),
            secs(ck.lost_time),
            secs(pk.lost_time),
            format!("{:.2}x", nk.makespan / ck.makespan),
        ]);
    }
    let header = [
        "crashes",
        "sync",
        "pipe",
        "no-ckpt",
        "sync ovh",
        "pipe ovh",
        "sync lost",
        "pipe lost",
        "no-ckpt/sync",
    ];
    print_table(
        &format!(
            "Campaign MTTR sweep: {CYCLES} cycles, cycle={}, ckpt sweep={}",
            secs(clean.cycle_makespan),
            secs(clean.checkpoint_time)
        ),
        &header,
        &rows,
    );
    println!(
        "\nShape: both recovery-line arms lose a bounded slice per crash\n\
         (partial cycle + backoff + one restore sweep); the no-recovery-line\n\
         baseline re-runs everything before the crash point, so its\n\
         time-to-completion diverges as crashes accumulate. The pipelined\n\
         arm pays durability only where overlap cannot hide it — the\n\
         initial and final sweeps, OST contention dilation, drain barriers\n\
         before crash restores — cutting the clean-campaign checkpoint\n\
         overhead while preserving the crash-loss bound."
    );
}
