//! **Fig. 14 extension** — mean-time-to-recovery of a supervised campaign:
//! virtual time-to-completion of a K-cycle assimilation campaign versus
//! injected crash count, with and without the checkpoint recovery line.
//!
//! With checkpointing, each crash costs the partial attempt (detection
//! latency + the work the dead cycle threw away), the restart backoff, and
//! one serial restore sweep; without it, a crash throws away *every*
//! completed cycle — the classic no-recovery-line baseline whose loss grows
//! with where in the campaign the crash lands. The sweep places crashes at
//! seeded, evenly spread cycles so both arms see the identical fault plan.
//!
//! Emits one machine-readable line per sweep point for `scripts/bench.sh`:
//!
//! ```text
//! MTTR crashes=2 cycles=16 clean_s=... ckpt_s=... nockpt_s=... \
//!      ckpt_lost_s=... nockpt_lost_s=... nockpt_over_ckpt=...
//! ```
//!
//! Flags: `--tiny` shrinks the workload for smoke runs.

use enkf_bench::{has_flag, print_table, secs, tiny_workload};
use enkf_fault::{FaultConfig, FaultPlan, RetryPolicy};
use enkf_parallel::{model_campaign, CampaignModelPlan, ModelConfig, ModelVariant};
use enkf_tuning::Params;

const SEED: u64 = 15;
const CYCLES: usize = 16;

/// `m` crashes spread over the campaign: crash j lands in cycle
/// `(2j+1)·K/(2m)` at a seeded stage, so later crashes cost the
/// no-recovery baseline progressively more.
fn plan_with_crashes(m: usize, layers: usize) -> FaultPlan {
    let mut plan = FaultPlan::new(SEED);
    for j in 0..m {
        let cycle = ((2 * j + 1) * CYCLES) / (2 * m.max(1));
        let stage = (SEED as usize + 3 * j) % layers.max(1);
        plan = plan.with_crash_at_cycle(0, cycle, stage);
    }
    plan
}

fn main() {
    let mut cfg = ModelConfig::paper();
    let params = if has_flag("--tiny") {
        cfg.workload = tiny_workload();
        Params {
            nsdx: 6,
            nsdy: 4,
            layers: 2,
            ncg: 2,
        }
    } else {
        enkf_tuning::autotune(&cfg.cost_params(), 8000, 2e-2)
            .expect("tunable")
            .params
    };
    let variant = ModelVariant::SEnkf(params);
    let restart = RetryPolicy {
        max_retries: 3,
        base_backoff: 0.5,
        multiplier: 2.0,
    };
    let with = CampaignModelPlan {
        cycles: CYCLES,
        checkpoint: true,
        restart,
    };
    let without = CampaignModelPlan {
        checkpoint: false,
        ..with
    };

    let (clean, _) = model_campaign(&cfg, &variant, &with, &FaultConfig::none()).expect("feasible");

    let mut rows = Vec::new();
    for crashes in [0usize, 1, 2, 4, 8] {
        let mut fcfg = FaultConfig::none();
        fcfg.plan = plan_with_crashes(crashes, params.layers);
        fcfg.recv_timeout = 1.0;
        let (ck, _) = model_campaign(&cfg, &variant, &with, &fcfg).expect("feasible");
        let (nk, _) = model_campaign(&cfg, &variant, &without, &fcfg).expect("feasible");
        println!(
            "MTTR crashes={crashes} cycles={CYCLES} clean_s={:.3} ckpt_s={:.3} \
             nockpt_s={:.3} ckpt_lost_s={:.3} nockpt_lost_s={:.3} nockpt_over_ckpt={:.3}",
            clean.makespan,
            ck.makespan,
            nk.makespan,
            ck.lost_time,
            nk.lost_time,
            nk.makespan / ck.makespan,
        );
        rows.push(vec![
            crashes.to_string(),
            secs(ck.makespan),
            secs(ck.lost_time),
            secs(nk.makespan),
            secs(nk.lost_time),
            format!("{:.2}x", nk.makespan / ck.makespan),
        ]);
    }
    let header = [
        "crashes",
        "ckpt",
        "ckpt lost",
        "no-ckpt",
        "no-ckpt lost",
        "no-ckpt/ckpt",
    ];
    print_table(
        &format!(
            "Campaign MTTR sweep: {CYCLES} cycles, cycle={}, ckpt={}",
            secs(clean.cycle_makespan),
            secs(clean.checkpoint_time)
        ),
        &header,
        &rows,
    );
    println!(
        "\nShape: the checkpointed campaign loses a bounded slice per crash\n\
         (partial cycle + backoff + one restore sweep); the no-recovery-line\n\
         baseline re-runs everything before the crash point, so its\n\
         time-to-completion diverges as crashes accumulate."
    );
}
