//! Calibration probe: prints the paper-scale P-EnKF and S-EnKF phase
//! summaries at fixed (hand-picked) parameters. Used while calibrating the
//! substrate constants (see EXPERIMENTS.md); the fig* binaries are the
//! polished outputs.
use enkf_parallel::model::penkf::model_penkf;
use enkf_parallel::model::senkf::model_senkf;
use enkf_parallel::ModelConfig;
use enkf_tuning::Params;

fn main() {
    let cfg = ModelConfig::paper();
    for (np, nsdx, nsdy) in [
        (2000usize, 50, 40),
        (4000, 100, 40),
        (6000, 100, 60),
        (8000, 80, 100),
        (10000, 100, 100),
        (12000, 120, 100),
    ] {
        let p = model_penkf(&cfg, nsdx, nsdy).unwrap();
        let io = p.compute_mean.read + p.compute_mean.comm + p.compute_mean.wait;
        println!(
            "P-EnKF np={np:>6}: makespan {:8.1}s io(r+w) {:8.1} comp {:8.1} iofrac {:.2}",
            p.makespan,
            io,
            p.compute_mean.compute,
            io / (io + p.compute_mean.compute)
        );
    }
    for (c2, nsdx, nsdy, layers, ncg) in [
        (2000usize, 50, 40, 5, 6),
        (4000, 100, 40, 5, 6),
        (6000, 100, 60, 5, 6),
        (8000, 80, 100, 2, 6),
        (10000, 100, 100, 2, 6),
        (12000, 120, 100, 2, 6),
    ] {
        let s = model_senkf(
            &cfg,
            Params {
                nsdx,
                nsdy,
                layers,
                ncg,
            },
        )
        .unwrap();
        println!(
            "S-EnKF c2={c2:>6}: makespan {:8.1}s ioread {:8.1} iocomm {:8.1} comp {:8.1} cwait {:8.1} first {:6.1} ovl {:.2}",
            s.makespan, s.io_mean.read, s.io_mean.comm, s.compute_mean.compute, s.compute_mean.wait,
            s.first_compute_start, s.overlapped_fraction()
        );
    }
}
