//! Ablations of the S-EnKF co-designs (DESIGN.md §3): what each design
//! choice buys on the paper-scale modeled cluster.
//!
//! 1. **Reading strategy** — block (Fig. 3) vs bar/concurrent (Fig. 6):
//!    the seek-count reduction.
//! 2. **Multi-stage layering** — `L = 1` (no overlap) vs increasing `L`.
//! 3. **Concurrent groups** — `n_cg = 1` vs more groups.
//! 4. **Helper thread** — communication offloaded (Fig. 8) vs ingested on
//!    the compute ranks.

use enkf_bench::{print_table, secs, write_csv};
use enkf_parallel::model::reading::{model_block_read, model_concurrent_read};
use enkf_parallel::model::senkf::{model_senkf_opts, SEnkfModelOptions};
use enkf_parallel::ModelConfig;
use enkf_tuning::Params;

fn main() {
    let cfg = ModelConfig::paper();

    // 1. Reading strategies, 120 members, 100 readers.
    let mut rows = Vec::new();
    let block = model_block_read(&cfg, 10, 10, 120).expect("block");
    let bar = model_concurrent_read(&cfg, 100, 1, 120).expect("bar");
    let conc = model_concurrent_read(&cfg, 20, 5, 120).expect("concurrent");
    rows.push(vec!["block (10x10 ranks)".into(), secs(block)]);
    rows.push(vec!["bar (1 group x 100)".into(), secs(bar)]);
    rows.push(vec!["concurrent (5 groups x 20)".into(), secs(conc)]);
    print_table(
        "Ablation 1: reading strategy (120 members, 100 readers)",
        &["strategy", "read_s"],
        &rows,
    );
    write_csv("ablation_reading.csv", &["strategy", "read_s"], &rows);

    // 2. Layer count at fixed decomposition (C2 = 7,500).
    let mut rows = Vec::new();
    for layers in [1usize, 2, 3, 6, 9, 18] {
        let p = Params {
            nsdx: 300,
            nsdy: 25,
            layers,
            ncg: 5,
        };
        let out = model_senkf_opts(&cfg, p, SEnkfModelOptions::default()).expect("feasible");
        rows.push(vec![
            layers.to_string(),
            secs(out.first_compute_start),
            secs(out.makespan),
            format!("{:.1}%", out.overlapped_fraction() * 100.0),
        ]);
    }
    print_table(
        "Ablation 2: multi-stage layer count (nsdx=300, nsdy=25, ncg=5)",
        &["L", "exposed_s", "makespan_s", "overlapped"],
        &rows,
    );
    write_csv(
        "ablation_layers.csv",
        &["L", "exposed_s", "makespan_s", "overlapped"],
        &rows,
    );

    // 3. Concurrent group count at fixed decomposition.
    let mut rows = Vec::new();
    for ncg in [1usize, 2, 3, 5, 6, 10] {
        let p = Params {
            nsdx: 300,
            nsdy: 25,
            layers: 6,
            ncg,
        };
        let out = model_senkf_opts(&cfg, p, SEnkfModelOptions::default()).expect("feasible");
        rows.push(vec![
            ncg.to_string(),
            secs(out.first_compute_start),
            secs(out.makespan),
        ]);
    }
    print_table(
        "Ablation 3: concurrent groups (nsdx=300, nsdy=25, L=6)",
        &["ncg", "exposed_s", "makespan_s"],
        &rows,
    );
    write_csv(
        "ablation_groups.csv",
        &["ncg", "exposed_s", "makespan_s"],
        &rows,
    );

    // 4. Helper thread on/off.
    let mut rows = Vec::new();
    let p = Params {
        nsdx: 300,
        nsdy: 25,
        layers: 6,
        ncg: 5,
    };
    for (label, helper) in [("helper thread (paper)", true), ("no helper thread", false)] {
        let out = model_senkf_opts(
            &cfg,
            p,
            SEnkfModelOptions {
                helper_thread: helper,
            },
        )
        .expect("feasible");
        rows.push(vec![
            label.into(),
            secs(out.compute_mean.comm),
            secs(out.makespan),
            format!("{:.1}%", out.overlapped_fraction() * 100.0),
        ]);
    }
    print_table(
        "Ablation 4: helper-thread communication offload (C2=7500)",
        &["variant", "compute-rank comm_s", "makespan_s", "overlapped"],
        &rows,
    );
    write_csv(
        "ablation_helper.csv",
        &["variant", "compute_rank_comm_s", "makespan_s", "overlapped"],
        &rows,
    );
}
