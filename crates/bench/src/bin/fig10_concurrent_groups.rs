//! **Figure 10** — Time for reading 120 background ensemble members with
//! the concurrent access approach.
//!
//! Sweeping the number of concurrent groups `n_cg` for two I/O-group widths
//! `n_sdy`. Reading time drops while extra groups map to idle OSTs and
//! flattens once the file system's aggregate bandwidth is saturated
//! (6 modeled OSTs: the knee sits at `n_cg ≈ 4–6`, exactly the optimum the
//! auto-tuner picks).

use enkf_bench::{print_table, secs, write_csv};
use enkf_parallel::model::reading::model_concurrent_read_detail;
use enkf_parallel::ModelConfig;

fn main() {
    let cfg = ModelConfig::paper();
    let files = 120;
    let ncg_values = [1usize, 2, 3, 4, 6, 8, 10, 12];
    let nsdy_values = [10usize, 20];
    let mut rows = Vec::new();
    for &ncg in &ncg_values {
        let mut row = vec![ncg.to_string()];
        let mut util = String::new();
        for &nsdy in &nsdy_values {
            let d = model_concurrent_read_detail(&cfg, nsdy, ncg, files).expect("feasible");
            row.push(secs(d.makespan));
            if nsdy == nsdy_values[0] {
                util = format!("{:.0}%", d.mean_utilization() * 100.0);
            }
        }
        row.push(util);
        rows.push(row);
    }
    let header = [
        "ncg",
        "read_s (nsdy=10)",
        "read_s (nsdy=20)",
        "OST util (nsdy=10)",
    ];
    print_table(
        "Figure 10: concurrent-access reading time vs n_cg (120 members)",
        &header,
        &rows,
    );
    write_csv("fig10.csv", &header, &rows);
    println!(
        "\nPaper shape: monotone decrease up to ~4 groups, little change beyond ~6\n\
         (total I/O bandwidth fully used)."
    );
}
