//! **Figure 9** — Time for different phases in P-EnKF and S-EnKF.
//!
//! Per-rank mean time in each phase (file reading, communication, local
//! analysis, waiting) at several processor counts. For S-EnKF the I/O
//! processors and computation processors are reported separately, as in the
//! paper's stacked bars; the compute side's idle time (waiting for the
//! exposed first stage plus any stage stalls) is `makespan − busy`.
//!
//! Flags: `--tiny` runs one reduced configuration (smoke tests); `--trace`
//! exports a Chrome-trace JSON per run into `target/traces/` together with
//! `target/figures/fig09_trace_check.csv`, the full-precision per-rank span
//! sums the printed table is derived from (so external tooling can verify
//! the JSON reproduces the phase breakdown to 1e-9 rather than to the three
//! printed decimals).

use enkf_bench::{
    has_flag, paper_scaling_points, print_table, secs, secs_exact, tiny_workload, traces_dir,
    write_csv,
};
use enkf_parallel::model::penkf::model_penkf_traced;
use enkf_parallel::model::senkf::model_senkf_traced;
use enkf_parallel::ModelConfig;
use enkf_trace::Trace;
use enkf_tuning::{autotune, Params};

fn tuned_params(cfg: &ModelConfig, np: usize) -> Params {
    autotune(&cfg.cost_params(), np, 2e-2)
        .expect("tunable at paper scale")
        .params
}

/// One `(label, rank, read, comm, compute, wait)` row per rank, at full
/// precision — the machine-checkable counterpart of the printed table.
fn check_rows(trace: &Trace, rows: &mut Vec<Vec<String>>) {
    for (rank, t) in trace.per_rank_phases() {
        rows.push(vec![
            trace.label().to_string(),
            rank.to_string(),
            secs_exact(t.read),
            secs_exact(t.comm),
            secs_exact(t.compute),
            secs_exact(t.wait),
        ]);
    }
}

fn main() {
    let tiny = has_flag("--tiny");
    let trace_on = has_flag("--trace");
    let mut cfg = ModelConfig::paper();
    let points: Vec<(usize, usize, usize, Params)> = if tiny {
        cfg.workload = tiny_workload();
        // Fixed parameters: the auto-tuner targets paper scale.
        vec![(
            24,
            6,
            4,
            Params {
                nsdx: 6,
                nsdy: 4,
                layers: 2,
                ncg: 2,
            },
        )]
    } else {
        paper_scaling_points()
            .into_iter()
            .map(|(np, nsdx, nsdy)| (np, nsdx, nsdy, tuned_params(&cfg, np)))
            .collect()
    };

    let mut rows = Vec::new();
    let mut check = Vec::new();
    for (np, nsdx, nsdy, params) in points {
        // P-EnKF at np ranks.
        let (p, mut p_trace) = model_penkf_traced(&cfg, nsdx, nsdy).expect("feasible");
        rows.push(vec![
            format!("P-EnKF@{np}"),
            "compute".into(),
            secs(p.compute_mean.read),
            secs(p.compute_mean.comm),
            secs(p.compute_mean.compute),
            secs(p.compute_mean.wait),
            secs(p.makespan),
        ]);
        // S-EnKF with parameters within the same budget.
        let (s, mut s_trace) = model_senkf_traced(&cfg, params).expect("feasible");
        let compute_idle = (s.makespan - s.compute_mean.total()).max(0.0);
        rows.push(vec![
            format!("S-EnKF@{np}"),
            format!("compute(C2={})", params.c2()),
            secs(s.compute_mean.read),
            secs(s.compute_mean.comm),
            secs(s.compute_mean.compute),
            secs(compute_idle),
            secs(s.makespan),
        ]);
        let io_idle = (s.makespan - s.io_mean.total() - s.io_mean.wait).max(0.0);
        rows.push(vec![
            format!("S-EnKF@{np}"),
            format!("io(C1={})", params.c1()),
            secs(s.io_mean.read),
            secs(s.io_mean.comm),
            secs(s.io_mean.compute),
            secs(s.io_mean.wait + io_idle),
            secs(s.makespan),
        ]);
        if trace_on {
            p_trace.set_label(format!("fig09-penkf-{np}"));
            s_trace.set_label(format!("fig09-senkf-{np}"));
            for trace in [&p_trace, &s_trace] {
                let path = trace.write_chrome_json(traces_dir()).expect("write trace");
                println!("[trace {}]", path.display());
                check_rows(trace, &mut check);
            }
        }
    }
    let header = [
        "config",
        "rank class",
        "read_s",
        "comm_s",
        "compute_s",
        "wait_s",
        "runtime_s",
    ];
    print_table("Figure 9: per-rank phase breakdown", &header, &rows);
    write_csv("fig09.csv", &header, &rows);
    if trace_on {
        write_csv(
            "fig09_trace_check.csv",
            &["label", "rank", "read_s", "comm_s", "compute_s", "wait_s"],
            &check,
        );
    }
    println!(
        "\nPaper shape: P-EnKF's read(+wait) share grows with processors while its\n\
         compute shrinks; in S-EnKF file reading and communication on the I/O side\n\
         are hidden behind the compute side's local analyses, and the wait time\n\
         shrinks as processors increase."
    );
}
