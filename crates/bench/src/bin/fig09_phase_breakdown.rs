//! **Figure 9** — Time for different phases in P-EnKF and S-EnKF.
//!
//! Per-rank mean time in each phase (file reading, communication, local
//! analysis, waiting) at several processor counts. For S-EnKF the I/O
//! processors and computation processors are reported separately, as in the
//! paper's stacked bars; the compute side's idle time (waiting for the
//! exposed first stage plus any stage stalls) is `makespan − busy`.

use enkf_bench::{paper_scaling_points, print_table, secs, write_csv};
use enkf_parallel::model::penkf::model_penkf;
use enkf_parallel::model::senkf::model_senkf;
use enkf_parallel::ModelConfig;
use enkf_tuning::{autotune, Params};

fn tuned_params(cfg: &ModelConfig, np: usize) -> Params {
    autotune(&cfg.cost_params(), np, 2e-2).expect("tunable at paper scale").params
}

fn main() {
    let cfg = ModelConfig::paper();
    let mut rows = Vec::new();
    for (np, nsdx, nsdy) in paper_scaling_points() {
        // P-EnKF at np ranks.
        let p = model_penkf(&cfg, nsdx, nsdy).expect("feasible");
        rows.push(vec![
            format!("P-EnKF@{np}"),
            "compute".into(),
            secs(p.compute_mean.read),
            secs(p.compute_mean.comm),
            secs(p.compute_mean.compute),
            secs(p.compute_mean.wait),
            secs(p.makespan),
        ]);
        // S-EnKF with auto-tuned parameters within the same budget.
        let params = tuned_params(&cfg, np);
        let s = model_senkf(&cfg, params).expect("feasible");
        let compute_idle = (s.makespan - s.compute_mean.total()).max(0.0);
        rows.push(vec![
            format!("S-EnKF@{np}"),
            format!("compute(C2={})", params.c2()),
            secs(s.compute_mean.read),
            secs(s.compute_mean.comm),
            secs(s.compute_mean.compute),
            secs(compute_idle),
            secs(s.makespan),
        ]);
        let io_idle = (s.makespan - s.io_mean.total() - s.io_mean.wait).max(0.0);
        rows.push(vec![
            format!("S-EnKF@{np}"),
            format!("io(C1={})", params.c1()),
            secs(s.io_mean.read),
            secs(s.io_mean.comm),
            secs(s.io_mean.compute),
            secs(s.io_mean.wait + io_idle),
            secs(s.makespan),
        ]);
    }
    let header =
        ["config", "rank class", "read_s", "comm_s", "compute_s", "wait_s", "runtime_s"];
    print_table("Figure 9: per-rank phase breakdown", &header, &rows);
    write_csv("fig09.csv", &header, &rows);
    println!(
        "\nPaper shape: P-EnKF's read(+wait) share grows with processors while its\n\
         compute shrinks; in S-EnKF file reading and communication on the I/O side\n\
         are hidden behind the compute side's local analyses, and the wait time\n\
         shrinks as processors increase."
    );
}
