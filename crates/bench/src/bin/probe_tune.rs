//! Tuning probe: prints Algorithm 2's choice (and the implied DES task-graph
//! size) for each paper-scale processor budget. A quick check that the
//! auto-tuner's picks stay within the model-scale guard.
use enkf_parallel::ModelConfig;
use enkf_tuning::autotune;
fn main() {
    let cost = ModelConfig::paper().cost_params();
    for np in [2000usize, 4000, 6000, 8000, 10000, 12000] {
        let t = autotune(&cost, np, 2e-2).unwrap();
        let p = t.params;
        let tasks = p.ncg * p.c2() * p.layers
            + p.c1() * p.layers * (cost.workload.members / p.ncg)
            + p.c2() * p.layers;
        println!(
            "np={np}: {:?} c1={} c2={} t1={:.1} ttotal={:.1} est_tasks={}",
            p,
            p.c1(),
            p.c2(),
            t.t1,
            t.t_total,
            tasks
        );
    }
}
