//! **Figure 5** — Time for file reading using the block reading approach.
//!
//! `n_sdy = 10` fixed, `n_sdx` swept, 100 background ensemble members. The
//! seek count is `O(n_y · n_sdx)` per member, so the reading time grows
//! almost linearly with the number of longitudinal subdivisions.

use enkf_bench::{print_table, secs, write_csv};
use enkf_parallel::model::reading::model_block_read;
use enkf_parallel::ModelConfig;

fn main() {
    let cfg = ModelConfig::paper();
    let nsdy = 10;
    let files = 100;
    // Divisor-compatible n_sdx values spanning the paper's 100..500 sweep.
    let nsdx_values = [100usize, 150, 200, 240, 300, 360, 400, 450];
    let mut rows = Vec::new();
    for &nsdx in &nsdx_values {
        let t = model_block_read(&cfg, nsdx, nsdy, files).expect("feasible");
        rows.push(vec![nsdx.to_string(), (nsdx * nsdy).to_string(), secs(t)]);
    }
    print_table(
        "Figure 5: block-reading time vs n_sdx (n_sdy = 10, 100 members)",
        &["nsdx", "processors", "read_time_s"],
        &rows,
    );
    write_csv("fig05.csv", &["nsdx", "processors", "read_time_s"], &rows);

    // Linearity check: correlation of read time with n_sdx.
    let first = rows
        .first()
        .map(|r| r[2].parse::<f64>().unwrap())
        .unwrap_or(0.0);
    let last = rows
        .last()
        .map(|r| r[2].parse::<f64>().unwrap())
        .unwrap_or(0.0);
    println!(
        "\nPaper shape: near-linear growth with n_sdx. Measured growth factor over the\n\
         sweep: {:.2}x for a {:.2}x increase in n_sdx.",
        last / first,
        450.0 / 100.0
    );
}
