//! **Data plane** — before/after read-phase comparison on the real backend,
//! shaped after the paper's reading figures:
//!
//! * a **fig05-shaped** sweep: block reading (`n_sdx` swept, `n_sdy`
//!   fixed), every rank's block of every member read through the
//!   pre-refactor fresh-allocation path versus the pooled zero-copy path;
//! * a **fig10-shaped** sweep: one concurrent-group reader walking the
//!   vertical stages (bar per stage per member), sequential reads versus
//!   the read-ahead pipeline, under a slow-OST plan so reads have genuine
//!   I/O latency to hide (this container's page cache has none).
//!
//! Figures 5 and 10 themselves are DES-model outputs and are untouched by
//! this PR (the digests pin that); this binary measures the *real
//! executor's* read phase, which is where the zero-copy work lands.
//!
//! Prints `DATAPLANE figNN key=value ...` lines for `scripts/bench.sh`.

use enkf_bench::{print_table, write_csv};
use enkf_fault::{FaultConfig, FaultInjector, FaultPlan};
use enkf_grid::{FileLayout, Mesh, RegionRect};
use enkf_pfs::{read_region_resilient, read_stages_ahead, FileStore, ScratchDir, StageRead};
use enkf_trace::RankTracer;
use std::time::Instant;

const LEVELS: u64 = 4;

fn build_store(mesh: Mesh, members: usize, label: &str) -> (ScratchDir, FileStore) {
    let scratch = ScratchDir::new(label).unwrap();
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8 * LEVELS)).unwrap();
    let n = mesh.n() * LEVELS as usize;
    for k in 0..members {
        let v: Vec<f64> = (0..n).map(|i| ((i + 11 * k) as f64 * 0.21).sin()).collect();
        store.write_member(k, &v).unwrap();
    }
    (scratch, store)
}

/// Best-of-`reps` wall time of `f` in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Fig05 shape: block reading, `n_sdx` swept. Every sub-domain block of
/// every member is read; before = fresh path, after = pooled path.
fn fig05_shaped() {
    let mesh = Mesh::new(256, 64);
    let members = 10;
    let nsdy = 2;
    let (_s, store) = build_store(mesh, members, "dataplane-f05");
    let mut rows = Vec::new();
    for nsdx in [2usize, 4, 8, 16] {
        let bw = mesh.nx() / nsdx;
        let bh = mesh.ny() / nsdy;
        let blocks: Vec<RegionRect> = (0..nsdx)
            .flat_map(|i| {
                (0..nsdy).map(move |j| RegionRect::new(i * bw, (i + 1) * bw, j * bh, (j + 1) * bh))
            })
            .collect();
        let mut sink = 0usize;
        let before = time_ms(3, || {
            for b in &blocks {
                for k in 0..members {
                    sink += store.read_region_fresh(k, b).unwrap().len();
                }
            }
        });
        let after = time_ms(3, || {
            for b in &blocks {
                for k in 0..members {
                    sink += store.read_region(k, b).unwrap().len();
                }
            }
        });
        assert!(sink > 0);
        let speedup = before / after;
        println!(
            "DATAPLANE fig05 nsdx={nsdx} before_ms={before:.3} after_ms={after:.3} speedup={speedup:.2}"
        );
        rows.push(vec![
            nsdx.to_string(),
            format!("{before:.3}"),
            format!("{after:.3}"),
            format!("{speedup:.2}"),
        ]);
    }
    print_table(
        "Data plane, fig05 shape: block-reading read phase, fresh vs pooled",
        &["nsdx", "before_ms", "after_ms", "speedup"],
        &rows,
    );
    write_csv(
        "dataplane_fig05.csv",
        &["nsdx", "before_ms", "after_ms", "speedup"],
        &rows,
    );
}

/// The scatter work a reading-group rank does per stage (stand-in for
/// block extraction + sends), overlapped by the read-ahead pipeline.
fn consume_cost(bars: &[enkf_pfs::RegionData]) -> f64 {
    let mut acc = 0.0;
    for data in bars {
        for r in 0..data.region().height() {
            for &v in data.row(r) {
                acc += v * 1.0000001;
            }
        }
    }
    acc
}

/// Fig10 shape: one group reader, staged bar reads, `L` swept. Before =
/// sequential read-then-consume; after = read-ahead pipeline. A slow-OST
/// plan gives reads real blocking latency, as on a shared PFS.
fn fig10_shaped() {
    let mesh = Mesh::new(512, 128);
    let members = 4;
    let (_s, store) = build_store(mesh, members, "dataplane-f10");
    let slow = FaultPlan::new(1).with_ost_slowdown(0, 2.0);
    let inj = FaultInjector::new(FaultConfig::degraded(slow));
    let mut rows = Vec::new();
    for layers in [4usize, 8, 16] {
        let bh = mesh.ny() / layers;
        let stages: Vec<StageRead> = (0..layers)
            .map(|l| StageRead {
                stage: l,
                region: RegionRect::new(0, mesh.nx(), l * bh, (l + 1) * bh),
                members: (0..members).collect(),
            })
            .collect();
        let mut sink = 0.0;
        let before = time_ms(5, || {
            let mut tracer = RankTracer::new(0, Instant::now());
            for sr in &stages {
                let bars: Vec<enkf_pfs::RegionData> = sr
                    .members
                    .iter()
                    .map(|&m| {
                        read_region_resilient(
                            &store,
                            &mut tracer,
                            Some(sr.stage),
                            m,
                            &sr.region,
                            &inj,
                        )
                        .unwrap()
                    })
                    .collect();
                sink += consume_cost(&bars);
            }
        });
        let after = time_ms(5, || {
            let mut tracer = RankTracer::new(0, Instant::now());
            read_stages_ahead::<std::convert::Infallible>(
                &store,
                &inj,
                &mut tracer,
                &stages,
                &[],
                |_, bars, _| {
                    sink += consume_cost(&bars);
                    Ok(())
                },
            )
            .unwrap();
        });
        assert!(sink.is_finite());
        let speedup = before / after;
        println!(
            "DATAPLANE fig10 layers={layers} before_ms={before:.3} after_ms={after:.3} speedup={speedup:.2}"
        );
        rows.push(vec![
            layers.to_string(),
            format!("{before:.3}"),
            format!("{after:.3}"),
            format!("{speedup:.2}"),
        ]);
    }
    print_table(
        "Data plane, fig10 shape: staged group reading, sequential vs read-ahead",
        &["layers", "before_ms", "after_ms", "speedup"],
        &rows,
    );
    write_csv(
        "dataplane_fig10.csv",
        &["layers", "before_ms", "after_ms", "speedup"],
        &rows,
    );
}

fn main() {
    fig05_shaped();
    fig10_shaped();
}
