//! **Figure 14** (extension) — resilience under deterministic fault
//! injection: how much injected jitter each variant absorbs.
//!
//! Sweeps a severity knob that (a) slows every OST by `severity` —
//! degraded storage servers, the dominant jitter source on shared
//! parallel file systems — and (b) dilates each rank's compute by a
//! seeded per-rank factor in `[1, 1 + (severity−1)/4]`
//! ([`FaultPlan::jitter`]). P-EnKF's strictly sequential phases pay the
//! slowed reads in full before any analysis starts; S-EnKF's overlapped
//! pipeline hides them behind computation until I/O becomes the critical
//! path, so its makespan degrades much more slowly.
//!
//! Flags: `--tiny` runs the reduced workload (smoke tests);
//! `--check-overhead` additionally runs the real executors on a small
//! scenario and verifies the no-fault fault path is free: byte-identical
//! operation digests and wall-clock parity between `run_traced` and
//! `run_faulted(FaultConfig::none())`.

use enkf_bench::{has_flag, pct, print_table, secs, tiny_workload, write_csv};
use enkf_core::LocalAnalysis;
use enkf_data::{write_ensemble, ScenarioBuilder};
use enkf_fault::{FaultConfig, FaultPlan, RetryPolicy};
use enkf_grid::{FileLayout, LocalizationRadius, Mesh};
use enkf_parallel::{
    model_penkf_faulted, model_senkf_faulted, AssimilationSetup, ModelConfig, PEnkf, SEnkf,
};
use enkf_pfs::{FileStore, ScratchDir};
use enkf_tuning::{autotune, Params};

const SEED: u64 = 14;

/// Severity s → a plan that slows every OST by `s` and dilates compute on
/// `ranks` ranks by seeded per-rank factors in `[1, 1 + (s−1)/4]`.
fn plan_for(severity: f64, ranks: usize) -> FaultPlan {
    let mut plan = FaultPlan::jitter(SEED, ranks, 1.0 + (severity - 1.0) / 4.0);
    for ost in 0..plan.num_osts {
        plan = plan.with_ost_slowdown(ost, severity);
    }
    plan
}

fn sweep(cfg: &ModelConfig, np: usize, nsdx: usize, nsdy: usize, s_params: Params) {
    let severities = [1.0, 1.25, 1.5, 2.0, 3.0];
    let ranks = np.max(s_params.total_processors());
    let clean = FaultConfig::none();
    let (p0, _, _) = model_penkf_faulted(cfg, nsdx, nsdy, &clean).expect("feasible");
    let (s0, _, _) = model_senkf_faulted(cfg, s_params, &clean).expect("feasible");

    let mut rows = Vec::new();
    for severity in severities {
        let mut fcfg = FaultConfig::degraded(plan_for(severity, ranks));
        fcfg.retry = RetryPolicy::none();
        let (p, _, _) = model_penkf_faulted(cfg, nsdx, nsdy, &fcfg).expect("feasible");
        let (s, _, _) = model_senkf_faulted(cfg, s_params, &fcfg).expect("feasible");
        rows.push(vec![
            format!("{severity:.2}"),
            secs(p.makespan),
            format!("{:.2}x", p.makespan / p0.makespan),
            secs(s.makespan),
            format!("{:.2}x", s.makespan / s0.makespan),
            format!("{:.2}x", p.makespan / s.makespan),
        ]);
    }
    let header = [
        "severity",
        "P-EnKF_s",
        "P degr.",
        "S-EnKF_s",
        "S degr.",
        "S advantage",
    ];
    print_table(
        &format!("Figure 14: fault resilience at {np} processors ({s_params:?})"),
        &header,
        &rows,
    );
    write_csv("fig14.csv", &header, &rows);
}

/// The no-fault fault path must be free: same digests, same wall time.
fn check_overhead() {
    let mesh = Mesh::new(24, 12);
    let members = 4;
    let scenario = ScenarioBuilder::new(mesh)
        .members(members)
        .seed(SEED)
        .build();
    let scratch = ScratchDir::new("fig14-overhead").expect("scratch");
    let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8)).expect("store");
    write_ensemble(&store, &scenario.ensemble).expect("write");
    let setup = AssimilationSetup {
        store: &store,
        members,
        observations: &scenario.observations,
        analysis: LocalAnalysis::new(LocalizationRadius { xi: 1, eta: 1 }),
    };
    let senkf = SEnkf::new(Params {
        nsdx: 2,
        nsdy: 2,
        layers: 2,
        ncg: 2,
    });
    let penkf = PEnkf { nsdx: 2, nsdy: 2 };
    let none = FaultConfig::none();
    let reps = 5;

    let mut plain = f64::INFINITY;
    let mut faulted = f64::INFINITY;
    let mut equal = true;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        let (_, _, tp) = penkf.run_traced(&setup).expect("plain P-EnKF");
        let (_, _, ts) = senkf.run_traced(&setup).expect("plain S-EnKF");
        plain = plain.min(t.elapsed().as_secs_f64());

        let t = std::time::Instant::now();
        let (_, _, tpf, _) = penkf.run_faulted(&setup, &none).expect("faulted P-EnKF");
        let (_, _, tsf, _) = senkf.run_faulted(&setup, &none).expect("faulted S-EnKF");
        faulted = faulted.min(t.elapsed().as_secs_f64());

        equal &= tp.digest() == tpf.digest() && ts.digest() == tsf.digest();
    }
    let overhead = faulted / plain - 1.0;
    println!(
        "zero_overhead digests_equal={equal} plain_ms={:.3} faulted_ms={:.3} overhead={}",
        plain * 1e3,
        faulted * 1e3,
        pct(overhead)
    );
    assert!(equal, "no-fault digests must be byte-identical");
}

fn main() {
    let mut cfg = ModelConfig::paper();
    if has_flag("--tiny") {
        cfg.workload = tiny_workload();
        let s_params = Params {
            nsdx: 6,
            nsdy: 4,
            layers: 2,
            ncg: 2,
        };
        sweep(&cfg, 24, 6, 4, s_params);
    } else {
        let np = 8000;
        let (nsdx, nsdy) = (80, 100);
        let tuned = autotune(&cfg.cost_params(), np, 2e-2).expect("tunable");
        sweep(&cfg, np, nsdx, nsdy, tuned.params);
    }
    if has_flag("--check-overhead") {
        check_overhead();
    }
    println!(
        "\nShape: both variants degrade as injected jitter grows, but P-EnKF's\n\
         serialized phases inherit the slowest rank and the slow OST directly,\n\
         while S-EnKF's I/O/compute overlap absorbs part of the same jitter —\n\
         its relative advantage widens with severity."
    );
}
