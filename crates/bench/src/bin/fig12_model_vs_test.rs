//! **Figure 12** — The minimal value of `T₁` (model) against test data, for
//! `C₂ = 2,000`.
//!
//! The solid curve is Algorithm 1's minimal `T₁ = T_read + T_comm` at each
//! I/O cost `C₁`; the crosses are "test data" — here, discrete-event runs of
//! the same parameter combinations, measuring the exposed first-stage
//! acquisition time (which is what `T₁` models). The square marks are the
//! economic choices of Eq. (14) computed independently from the model curve
//! and from the test data; the paper's claim is that they coincide.

use enkf_bench::{print_table, secs, write_csv};
use enkf_parallel::model::senkf::model_senkf;
use enkf_parallel::ModelConfig;
use enkf_tuning::{algorithm1, economic_choice, CurvePoint, Params};

fn main() {
    let cfg = ModelConfig::paper();
    let cost = cfg.cost_params();
    let c2 = 2_000; // n_sdx * n_sdy, e.g. 50 x 40
    let epsilon = 5e-2;

    // Candidate C1 values: multiples of feasible n_sdy with n_cg | 120.
    let c1_values = [5usize, 10, 15, 20, 30, 40, 60, 120, 200, 300, 600];

    let mut model_curve: Vec<CurvePoint> = Vec::new();
    let mut test_curve: Vec<CurvePoint> = Vec::new();
    let mut rows = Vec::new();
    let mut cross_rows = Vec::new();
    for &c1 in &c1_values {
        let Some(best) = algorithm1(&cost, c1, c2) else {
            continue;
        };
        // Test data: run the DES at every feasible parameter combination
        // with this (C1, C2) and record the exposed acquisition time.
        let mut best_test: Option<(f64, Params)> = None;
        for combo in feasible_combos(&cost, c1, c2) {
            let out = model_senkf(&cfg, combo).expect("feasible");
            let t_test = out.first_compute_start;
            cross_rows.push(vec![c1.to_string(), format!("{combo:?}"), secs(t_test)]);
            if best_test.is_none_or(|(t, _)| t_test < t) {
                best_test = Some((t_test, combo));
            }
        }
        let (t_test, test_params) = best_test.expect("at least one combo");
        model_curve.push(CurvePoint {
            c1,
            t1: best.t1,
            params: best.params,
        });
        test_curve.push(CurvePoint {
            c1,
            t1: t_test,
            params: test_params,
        });
        rows.push(vec![
            c1.to_string(),
            secs(best.t1),
            secs(t_test),
            format!("{:?}", best.params),
        ]);
    }

    let header = ["C1", "model_minT1_s", "test_min_s", "model params"];
    print_table(
        "Figure 12: model min T1 vs DES test data (C2 = 2000)",
        &header,
        &rows,
    );
    write_csv("fig12.csv", &header, &rows);
    write_csv(
        "fig12_crosses.csv",
        &["C1", "params", "test_s"],
        &cross_rows,
    );

    // Algorithm 2 walks only strictly-improving points; filter both curves
    // the same way before applying the earnings-rate rule.
    let improving = |curve: &[CurvePoint]| {
        let mut out: Vec<CurvePoint> = Vec::new();
        for &pt in curve {
            if out.last().is_none_or(|last| pt.t1 < last.t1) {
                out.push(pt);
            }
        }
        out
    };
    let model_pick = economic_choice(&improving(&model_curve), epsilon).expect("non-empty");
    let test_pick = economic_choice(&improving(&test_curve), epsilon).expect("non-empty");
    println!(
        "\nEconomic choice (eps = {epsilon}):\n  from the model: C1 = {} ({:?})\n  from test data: C1 = {} ({:?})",
        model_pick.c1, model_pick.params, test_pick.c1, test_pick.params
    );
    println!(
        "\nPaper shape: the model curve tracks the minimum of the test data at every\n\
         C1, and the two economic choices are consistent."
    );
}

/// All feasible `(n_sdy, n_cg, L)` combinations under the constraints of
/// optimization problem (12) for the given costs.
fn feasible_combos(cost: &enkf_tuning::CostParams, c1: usize, c2: usize) -> Vec<Params> {
    let w = &cost.workload;
    let mut out = Vec::new();
    for nsdy in 1..=c1.min(c2).min(w.ny) {
        if !c1.is_multiple_of(nsdy) || !c2.is_multiple_of(nsdy) || !w.ny.is_multiple_of(nsdy) {
            continue;
        }
        let ncg = c1 / nsdy;
        let nsdx = c2 / nsdy;
        if !w.nx.is_multiple_of(nsdx) || !w.members.is_multiple_of(ncg) {
            continue;
        }
        let sub_height = w.ny / nsdy;
        // Keep the cross set plottable: a few representative layer counts.
        for layers in [1usize, 2, 3, 5, 6, 9, 10, 15].iter().copied() {
            if layers <= sub_height && sub_height.is_multiple_of(layers) {
                out.push(Params {
                    nsdx,
                    nsdy,
                    layers,
                    ncg,
                });
            }
        }
    }
    out
}
