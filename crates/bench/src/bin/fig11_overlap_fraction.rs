//! **Figure 11** — Percentage of the overlapped time over total runtime in
//! S-EnKF.
//!
//! The overlapped time is the data-obtaining work (file reading, data
//! communication, and the waiting they induce) hidden behind local
//! computation; only the first stage's acquisition is exposed. The share
//! stays high and roughly flat as the processor count grows — the
//! multi-stage co-design does not degrade at scale.

use enkf_bench::{paper_scaling_points, pct, print_table, secs, write_csv};
use enkf_parallel::model::senkf::model_senkf;
use enkf_parallel::ModelConfig;
use enkf_tuning::autotune;

fn main() {
    let cfg = ModelConfig::paper();
    let mut rows = Vec::new();
    for (np, _, _) in paper_scaling_points() {
        let tuned = autotune(&cfg.cost_params(), np, 2e-2).expect("tunable");
        let s = model_senkf(&cfg, tuned.params).expect("feasible");
        rows.push(vec![
            np.to_string(),
            format!("{:?}", tuned.params),
            pct(s.overlapped_fraction()),
            secs(s.first_compute_start),
            secs(s.makespan),
        ]);
    }
    let header = [
        "processors",
        "tuned params",
        "overlapped",
        "exposed_s",
        "runtime_s",
    ];
    print_table("Figure 11: overlapped-time share in S-EnKF", &header, &rows);
    write_csv("fig11.csv", &header, &rows);
    println!(
        "\nPaper shape: the overlapped share is sustained (high and roughly flat)\n\
         as the processor count grows; the exposed first acquisition stays a small\n\
         fraction of the total runtime."
    );
}
