//! **Figure 1** — Percentage of times for I/O and computation in P-EnKF.
//!
//! The paper's motivating observation: as the processor count grows on the
//! 0.1°/120-member workload, the share of P-EnKF's runtime spent obtaining
//! data (block reads plus the disk-queue waiting they cause) grows until it
//! dominates. Regenerated on the modeled Tianhe-2-like substrate.
//!
//! Flags: `--tiny` runs the reduced smoke-test geometry; `--trace` exports
//! a Chrome-trace JSON per point into `target/traces/`.

use enkf_bench::{
    has_flag, paper_scaling_points, pct, print_table, secs, tiny_scaling_points, tiny_workload,
    traces_dir, write_csv,
};
use enkf_parallel::model::penkf::model_penkf_traced;
use enkf_parallel::ModelConfig;

fn main() {
    let tiny = has_flag("--tiny");
    let trace_on = has_flag("--trace");
    let mut cfg = ModelConfig::paper();
    let points = if tiny {
        cfg.workload = tiny_workload();
        tiny_scaling_points()
    } else {
        paper_scaling_points()
    };
    let mut rows = Vec::new();
    for (np, nsdx, nsdy) in points {
        let (out, mut trace) =
            model_penkf_traced(&cfg, nsdx, nsdy).expect("feasible decomposition");
        let m = out.compute_mean;
        // I/O time = read service + the waiting it induces (disk queues);
        // in P-EnKF every wait is a disk-queue wait.
        let io = m.read + m.comm + m.wait;
        let total = io + m.compute;
        rows.push(vec![
            np.to_string(),
            pct(io / total),
            pct(m.compute / total),
            secs(out.makespan),
        ]);
        if trace_on {
            trace.set_label(format!("fig01-penkf-{np}"));
            let path = trace.write_chrome_json(traces_dir()).expect("write trace");
            println!("[trace {}]", path.display());
        }
    }
    print_table(
        "Figure 1: P-EnKF I/O vs computation share",
        &["processors", "io_share", "compute_share", "runtime_s"],
        &rows,
    );
    write_csv(
        "fig01.csv",
        &["processors", "io_share", "compute_share", "runtime_s"],
        &rows,
    );
    println!(
        "\nPaper shape: I/O share grows monotonically with processor count and\n\
         dominates at high counts; computation share shrinks correspondingly."
    );
}
