//! **Figure 1** — Percentage of times for I/O and computation in P-EnKF.
//!
//! The paper's motivating observation: as the processor count grows on the
//! 0.1°/120-member workload, the share of P-EnKF's runtime spent obtaining
//! data (block reads plus the disk-queue waiting they cause) grows until it
//! dominates. Regenerated on the modeled Tianhe-2-like substrate.

use enkf_bench::{paper_scaling_points, pct, print_table, secs, write_csv};
use enkf_parallel::model::penkf::model_penkf;
use enkf_parallel::ModelConfig;

fn main() {
    let cfg = ModelConfig::paper();
    let mut rows = Vec::new();
    for (np, nsdx, nsdy) in paper_scaling_points() {
        let out = model_penkf(&cfg, nsdx, nsdy).expect("feasible decomposition");
        let m = out.compute_mean;
        // I/O time = read service + the waiting it induces (disk queues);
        // in P-EnKF every wait is a disk-queue wait.
        let io = m.read + m.comm + m.wait;
        let total = io + m.compute;
        rows.push(vec![
            np.to_string(),
            pct(io / total),
            pct(m.compute / total),
            secs(out.makespan),
        ]);
    }
    print_table(
        "Figure 1: P-EnKF I/O vs computation share",
        &["processors", "io_share", "compute_share", "runtime_s"],
        &rows,
    );
    write_csv("fig01.csv", &["processors", "io_share", "compute_share", "runtime_s"], &rows);
    println!(
        "\nPaper shape: I/O share grows monotonically with processor count and\n\
         dominates at high counts; computation share shrinks correspondingly."
    );
}
