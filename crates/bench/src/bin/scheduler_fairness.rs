//! **Scheduler fairness sweep** — aggregate throughput and p99 campaign
//! latency versus tenant count, with fair-share admission on and off.
//!
//! Every tenant submits two S-EnKF campaigns at t=0, each carrying an SLA
//! of **2× its solo DES prediction**. Under `FairShare` the scheduler
//! gates admission on guaranteed min-share floors, so every admitted
//! campaign completes within its deadline by construction; under
//! `EqualSplit` (the fair-share-off baseline) everything rank-fitting is
//! packed immediately and the machine is split evenly, so deadlines blow
//! up as tenants pile in. The sweep quantifies that contrast.
//!
//! Emits one machine-readable line per sweep point for `scripts/bench.sh`:
//!
//! ```text
//! SCHED tenants=4 policy=fair jobs=8 completed=8 rejected=0 queued_rejects=0 \
//!       makespan_s=... throughput_cph=... p99_service_s=... p99_over_solo=...
//! ```
//!
//! Flags: `--tiny` shrinks the workload for smoke runs.

use enkf_bench::{has_flag, print_table, secs, tiny_workload};
use enkf_core::LocalAnalysis;
use enkf_data::CycleConfig;
use enkf_fault::RetryPolicy;
use enkf_grid::{LocalizationRadius, Mesh};
use enkf_parallel::{CampaignConfig, CampaignExecutor, ModelConfig};
use enkf_sched::{
    simulate, ClusterCapacity, DesPlanner, JobModel, JobSpec, MixOutcome, SchedConfig, SharePolicy,
    TenantSpec,
};
use enkf_tuning::Params;

const CYCLES: usize = 4;
const JOBS_PER_TENANT: usize = 2;
const SLA_FACTOR: f64 = 2.0;

fn job_spec(cfg: &ModelConfig, params: Params) -> (JobSpec, f64) {
    let w = cfg.workload;
    let campaign = CampaignConfig {
        mesh: Mesh::new(w.nx, w.ny),
        cycles: CYCLES,
        members: w.members,
        cycle: CycleConfig::default(),
        seed: 29,
        analysis: LocalAnalysis::new(LocalizationRadius {
            xi: w.xi,
            eta: w.eta,
        }),
        inflation: 1.0,
        restart: RetryPolicy::none(),
    };
    let mut spec = JobSpec::best_effort(CampaignExecutor::SEnkf(params), campaign);
    spec.model = Some(JobModel {
        cfg: *cfg,
        variant: JobSpec::variant_of(&spec.exec).expect("S-EnKF has a model"),
        checkpoint: true,
    });
    let step = DesPlanner::price(&spec, 1.0);
    let solo = step.init + CYCLES as f64 * step.cycle;
    spec.sla = Some(solo * SLA_FACTOR);
    (spec, solo)
}

fn p99(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((values.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
    values[idx]
}

fn run_mix(
    ranks: usize,
    policy: SharePolicy,
    tenants: usize,
    spec: &JobSpec,
    solo: f64,
) -> (MixOutcome, f64, f64) {
    let tenant_specs: Vec<TenantSpec> = (0..tenants as u32)
        .map(|i| TenantSpec::new(i, 1.0))
        .collect();
    let mut arrivals = Vec::new();
    for t in &tenant_specs {
        for _ in 0..JOBS_PER_TENANT {
            arrivals.push((0.0, t.id, spec.clone()));
        }
    }
    let cfg = SchedConfig {
        capacity: ClusterCapacity::tianhe2_like(ranks),
        policy,
        seed: 23,
    };
    let out = simulate(&cfg, &tenant_specs, &arrivals, DesPlanner::new());
    let mut services: Vec<f64> = out.records.iter().map(|r| r.service).collect();
    let p99_service = p99(&mut services);
    (out, p99_service, p99_service / solo)
}

fn main() {
    let mut cfg = ModelConfig::paper();
    // Paper-scale autotuned campaigns are the interesting regime: at ~8000
    // processors per campaign the cycle is I/O-heavy enough that the
    // bandwidth share a campaign holds visibly reshapes its cycle time
    // (quarter share ≈ 1.8x, eighth share ≈ 3.5x the solo cycle).
    let params = if has_flag("--tiny") {
        cfg.workload = tiny_workload();
        Params {
            nsdx: 6,
            nsdy: 4,
            layers: 2,
            ncg: 2,
        }
    } else {
        enkf_tuning::autotune(&cfg.cost_params(), 8000, 2e-2)
            .expect("tunable")
            .params
    };
    // The machine fits eight campaigns side by side: the equal-split
    // baseline happily packs all eight at an eighth of the bandwidth
    // each, while fair-share admission queues what would break SLAs.
    let ranks = 8 * (params.c2() + params.c1());
    let (spec, solo) = job_spec(&cfg, params);
    let sla = spec.sla.expect("spec carries an SLA");

    let mut rows = Vec::new();
    for tenants in [1usize, 2, 4, 8] {
        for (policy, label) in [
            (SharePolicy::FairShare, "fair"),
            (SharePolicy::EqualSplit, "equal"),
        ] {
            let (out, p99_service, p99_ratio) = run_mix(ranks, policy, tenants, &spec, solo);
            let jobs = tenants * JOBS_PER_TENANT;
            let throughput_cph = if out.makespan > 0.0 {
                out.records.len() as f64 * 3600.0 / out.makespan
            } else {
                0.0
            };
            if policy == SharePolicy::FairShare {
                // The acceptance invariant: fair-share admission gates on
                // guaranteed floors, so no admitted campaign's completion
                // may exceed its SLA of 2x the solo prediction.
                for r in &out.records {
                    assert!(
                        r.service <= sla + 1e-6,
                        "fair-share SLA violated: job {} took {} > {}",
                        r.id,
                        r.service,
                        sla
                    );
                }
            }
            println!(
                "SCHED tenants={tenants} policy={label} jobs={jobs} completed={} \
                 rejected={} makespan_s={:.3} throughput_cph={:.4} \
                 p99_service_s={:.3} p99_over_solo={:.4}",
                out.records.len(),
                out.rejected.len(),
                out.makespan,
                throughput_cph,
                p99_service,
                p99_ratio,
            );
            rows.push(vec![
                tenants.to_string(),
                label.to_string(),
                format!("{}/{jobs}", out.records.len()),
                secs(out.makespan),
                format!("{throughput_cph:.2}"),
                secs(p99_service),
                format!("{p99_ratio:.2}x"),
            ]);
        }
    }

    let header = [
        "tenants", "policy", "done", "makespan", "camp/h", "p99 svc", "p99/solo",
    ];
    print_table(
        &format!(
            "Scheduler fairness sweep: {CYCLES}-cycle S-EnKF campaigns, \
             {JOBS_PER_TENANT}/tenant, {ranks}-rank machine, solo={} sla={}",
            secs(solo),
            secs(sla)
        ),
        &header,
        &rows,
    );
    println!(
        "\nShape: fair-share admission keeps every admitted campaign within\n\
         2x its solo prediction (it queues rather than overcommit); the\n\
         equal-split baseline packs the machine and lets p99 latency blow\n\
         past the deadline as tenants pile in."
    );
}
