//! Roofline sweep for the kernel layer (DESIGN.md §11): GFLOP/s of each
//! GEMM flavour at LETKF-relevant sizes, for the legacy blocked loops
//! (`kernel::reference`, the exact pre-refactor code) and the
//! cache-oblivious + SIMD kernel layer; plus matvec, the bulk LE↔f64
//! conversion, the Gram eigensolve (serial cyclic vs parallel-ordering),
//! and the end-to-end pointwise LETKF case tracked since `BENCH_PR2.json`.
//!
//! Prints one machine-readable `ROOF key=value ...` line per measurement
//! for `scripts/bench.sh` to assemble into `BENCH_PR7.json`.

use enkf_bench::print_table;
use enkf_core::{LetkfAnalysis, ObservationOperator, Observations, PerturbedObservations};
use enkf_grid::{LocalizationRadius, Mesh, ObservationNetwork, RegionRect};
use enkf_linalg::kernel::{self, convert, gemm, reference};
use enkf_linalg::{EigenWorkspace, GaussianSampler, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn random_matrix(n: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gs = GaussianSampler::new();
    Matrix::from_fn(n, m, |_, _| gs.sample(&mut rng))
}

/// Median-of-repeats wall time in microseconds for `f`, warmed once and
/// batched so each sample runs at least ~20ms.
fn time_us<F: FnMut()>(mut f: F) -> f64 {
    f();
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    let batch = ((0.02 / once).ceil() as usize).clamp(1, 100_000);
    let mut samples = [0.0f64; 5];
    for s in &mut samples {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        *s = t.elapsed().as_secs_f64() / batch as f64;
    }
    samples.sort_by(f64::total_cmp);
    samples[2] * 1e6
}

fn gflops(flops: f64, us: f64) -> f64 {
    flops / (us * 1e-6) / 1e9
}

fn main() {
    println!(
        "kernel layer: isa={} fma_active={} threads={}",
        kernel::active_isa().name(),
        kernel::fma_active(),
        rayon::current_num_threads()
    );
    println!(
        "ROOF kind=isa name={} fma={} threads={}",
        kernel::active_isa().name(),
        kernel::fma_active(),
        rayon::current_num_threads()
    );

    // --- GEMM roofline: legacy blocked loops vs kernel layer -------------
    let mut rows = Vec::new();
    // Square sizes bracketing the LETKF shapes (the Gram build is
    // nens×npoints-ish TN/NT products; 64–384 covers sub-domain scale).
    for &n in &[64usize, 128, 256, 384] {
        let a = random_matrix(n, n, 3);
        let b = random_matrix(n, n, 4);
        let flops = 2.0 * (n as f64).powi(3);
        for (flavour, legacy_fn, kernel_fn) in [
            (
                "nn",
                reference::nn as fn(&[f64], &[f64], &mut [f64], usize, usize, usize),
                gemm::nn as fn(&[f64], &[f64], &mut [f64], usize, usize, usize),
            ),
            ("tn", reference::tn, gemm::tn),
            ("nt", reference::nt, gemm::nt),
        ] {
            let mut out = vec![0.0; n * n];
            let legacy_us = time_us(|| {
                out.iter_mut().for_each(|x| *x = 0.0);
                legacy_fn(a.as_slice(), b.as_slice(), &mut out, n, n, n);
            });
            let kernel_us = time_us(|| {
                out.iter_mut().for_each(|x| *x = 0.0);
                kernel_fn(a.as_slice(), b.as_slice(), &mut out, n, n, n);
            });
            let lg = gflops(flops, legacy_us);
            let kg = gflops(flops, kernel_us);
            println!(
                "ROOF kind=gemm flavour={flavour} n={n} legacy_us={legacy_us:.1} kernel_us={kernel_us:.1} \
                 legacy_gflops={lg:.3} kernel_gflops={kg:.3} speedup={:.3}",
                legacy_us / kernel_us
            );
            rows.push(vec![
                format!("{flavour} {n}"),
                format!("{lg:.2}"),
                format!("{kg:.2}"),
                format!("{:.2}x", legacy_us / kernel_us),
            ]);
        }
    }
    print_table(
        "GEMM roofline (GFLOP/s, square sizes)",
        &["kernel", "legacy", "kernel-layer", "speedup"],
        &rows,
    );

    // --- matvec ----------------------------------------------------------
    let (m, k) = (4096usize, 256usize);
    let a = random_matrix(m, k, 5);
    let x: Vec<f64> = (0..k).map(|i| (i as f64 * 0.11).sin()).collect();
    let mut out = Vec::new();
    let legacy_us = time_us(|| reference::matvec(a.as_slice(), &x, &mut out, m, k));
    let kernel_us = time_us(|| gemm::matvec(a.as_slice(), &x, &mut out, m, k));
    let flops = 2.0 * m as f64 * k as f64;
    println!(
        "ROOF kind=matvec m={m} k={k} legacy_us={legacy_us:.1} kernel_us={kernel_us:.1} \
         legacy_gflops={:.3} kernel_gflops={:.3} speedup={:.3}",
        gflops(flops, legacy_us),
        gflops(flops, kernel_us),
        legacy_us / kernel_us
    );

    // --- bulk LE→f64 conversion (the read-phase decode) ------------------
    let nvals = 1 << 20;
    let mut bytes = Vec::with_capacity(nvals * 8);
    for i in 0..nvals {
        bytes.extend_from_slice(&(i as f64 * 0.37).to_le_bytes());
    }
    let mut decoded = Vec::new();
    let legacy_us = time_us(|| {
        decoded.clear();
        decoded.extend(
            bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap())),
        );
    });
    let kernel_us = time_us(|| convert::le_bytes_to_f64_into(&bytes, &mut decoded));
    println!(
        "ROOF kind=convert nvals={nvals} legacy_us={legacy_us:.1} kernel_us={kernel_us:.1} \
         legacy_gbps={:.3} kernel_gbps={:.3} speedup={:.3}",
        bytes.len() as f64 / (legacy_us * 1e-6) / 1e9,
        bytes.len() as f64 / (kernel_us * 1e-6) / 1e9,
        legacy_us / kernel_us
    );

    // --- Gram eigensolve: serial cyclic vs parallel-ordering -------------
    for &n in &[24usize, 48, 96] {
        let mut sym = random_matrix(n, n, 6);
        sym.symmetrize();
        let mut ws = EigenWorkspace::new();
        let serial_us = time_us(|| ws.decompose(&sym).unwrap());
        let parallel_us = time_us(|| ws.decompose_parallel(&sym).unwrap());
        println!(
            "ROOF kind=eigen n={n} serial_us={serial_us:.1} parallel_us={parallel_us:.1} speedup={:.3}",
            serial_us / parallel_us
        );
    }

    // --- end-to-end pointwise LETKF (BENCH_PR2 geometry) -----------------
    let nens = 20;
    let radius = LocalizationRadius { xi: 2, eta: 2 };
    for (side, stride) in [(32usize, 2usize), (32, 4)] {
        let mesh = Mesh::new(side, side);
        let target = RegionRect::full(mesh);
        let expansion = target;
        let xb = random_matrix(expansion.npoints(), nens, 11);
        let net = ObservationNetwork::uniform(mesh, stride);
        let op = ObservationOperator::new(net);
        let m = op.len();
        let values: Vec<f64> = (0..m).map(|k| (k as f64 * 0.17).sin()).collect();
        let obs = Observations::new(
            op,
            values,
            vec![0.04; m],
            PerturbedObservations::new(3, nens),
        );
        let local = obs.localize(&expansion);
        let letkf = LetkfAnalysis::new(radius);
        let us = time_us(|| {
            letkf
                .analyze(mesh, &target, &expansion, &xb, &local)
                .unwrap();
        });
        println!("ROOF kind=letkf case=mesh{side}x{side}_stride{stride} time_us={us:.1}");
    }
}
