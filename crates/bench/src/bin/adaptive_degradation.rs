//! **Fig. 14 extension** — static versus adaptive degradation under OST
//! storms: what online health monitoring buys a multi-cycle assimilation.
//!
//! Sweeps a severity knob `s ∈ {0, 1, 2, 3}` that slows two of the six
//! OSTs by `1 + s` while a K-cycle S-EnKF campaign reads through them,
//! and compares two arms on the DES model:
//!
//! * `static` — the PR-pre-10 resilient path: seeded retries and degraded
//!   mode, but every cycle keeps reading the slowed OSTs at full dilation
//!   (no monitor, `monitor: None`);
//! * `adaptive` — a [`HealthMonitor`] carried across cycles: cycle 0 pays
//!   the storm and feeds the detectors, the end-of-cycle fold blacklists
//!   the hot OSTs, and from cycle 1 reads route/speculate to the replica
//!   OSTs, taking the slowed servers off the critical path.
//!
//! Two invariants are asserted, not just reported: at severity 0 the arms
//! are *identical* (`adaptive_s == static_s` to the bit — a clean monitor
//! never perturbs the schedule), and at severity ≥ 2 the adaptive arm is
//! strictly faster. Emits machine-readable lines for `scripts/bench.sh`:
//!
//! ```text
//! ADAPT severity=2 cycles=6 static_s=... adaptive_s=... speedup=... \
//!       first_cycle_s=... steady_cycle_s=... blacklisted=2
//! ```
//!
//! Flags: `--tiny` shrinks the workload for smoke runs.

use enkf_bench::{has_flag, print_table, secs, secs_exact, tiny_workload};
use enkf_fault::{FaultConfig, FaultPlan, RetryPolicy};
use enkf_health::{HealthMonitor, HealthParams};
use enkf_parallel::{model_senkf_adaptive, ModelConfig};
use enkf_tuning::Params;

const SEED: u64 = 10;
const CYCLES: usize = 6;
/// The OSTs the storm degrades. Their replicas (shift 1: OSTs 2 and 5)
/// stay healthy, so speculation has somewhere useful to go.
const SLOWED_OSTS: [usize; 2] = [1, 4];

fn storm(severity: f64) -> FaultConfig {
    let mut plan = FaultPlan::new(SEED);
    if severity > 0.0 {
        for ost in SLOWED_OSTS {
            plan = plan.with_ost_slowdown(ost, 1.0 + severity);
        }
    }
    FaultConfig::degraded(plan).with_retry(RetryPolicy {
        max_retries: 3,
        base_backoff: 1e-6,
        multiplier: 2.0,
        ..RetryPolicy::default()
    })
}

/// Total K-cycle virtual makespan plus the first/steady per-cycle split.
struct Arm {
    total: f64,
    first: f64,
    steady_last: f64,
}

fn run_arm(
    cfg: &ModelConfig,
    params: Params,
    fcfg: &FaultConfig,
    mut monitor: Option<&mut HealthMonitor>,
) -> (Arm, usize) {
    let mut total = 0.0;
    let mut first = 0.0;
    let mut last = 0.0;
    let mut blacklisted = 0usize;
    for cycle in 0..CYCLES {
        let (out, _, _) = model_senkf_adaptive(cfg, params, fcfg, monitor.as_deref())
            .expect("feasible adaptive S-EnKF model");
        total += out.makespan;
        if cycle == 0 {
            first = out.makespan;
        }
        last = out.makespan;
        if let Some(mon) = monitor.as_deref_mut() {
            let snap = mon.end_cycle();
            blacklisted = blacklisted.max(snap.blacklisted_osts.len());
        }
    }
    (
        Arm {
            total,
            first,
            steady_last: last,
        },
        blacklisted,
    )
}

fn main() {
    let mut cfg = ModelConfig::paper();
    let params = if has_flag("--tiny") {
        cfg.workload = tiny_workload();
        Params {
            nsdx: 6,
            nsdy: 4,
            layers: 2,
            ncg: 2,
        }
    } else {
        enkf_tuning::autotune(&cfg.cost_params(), 8000, 2e-2)
            .expect("tunable")
            .params
    };

    let mut rows = Vec::new();
    for severity in [0.0f64, 1.0, 2.0, 3.0] {
        let fcfg = storm(severity);
        let (stat, _) = run_arm(&cfg, params, &fcfg, None);
        let mut mon = HealthMonitor::new(HealthParams::default());
        let (adap, blacklisted) = run_arm(&cfg, params, &fcfg, Some(&mut mon));
        let speedup = stat.total / adap.total;

        if severity == 0.0 {
            assert_eq!(
                stat.total.to_bits(),
                adap.total.to_bits(),
                "a clean monitor must not perturb the schedule"
            );
            assert_eq!(blacklisted, 0, "nothing to blacklist at severity 0");
        }
        if severity >= 2.0 {
            assert!(
                adap.total < stat.total,
                "adaptive must beat static at severity {severity}: \
                 {} vs {}",
                adap.total,
                stat.total
            );
        }

        println!(
            "ADAPT severity={severity} cycles={CYCLES} static_s={} adaptive_s={} \
             speedup={speedup:.6} first_cycle_s={} steady_cycle_s={} blacklisted={blacklisted}",
            secs_exact(stat.total),
            secs_exact(adap.total),
            secs_exact(adap.first),
            secs_exact(adap.steady_last),
        );
        rows.push(vec![
            format!("{severity:.0}"),
            secs(stat.total),
            secs(adap.total),
            format!("{speedup:.2}x"),
            secs(adap.first),
            secs(adap.steady_last),
            blacklisted.to_string(),
        ]);
    }
    print_table(
        &format!("Adaptive degradation: {CYCLES}-cycle S-EnKF campaign ({params:?})"),
        &[
            "severity",
            "static_s",
            "adaptive_s",
            "speedup",
            "adapt cycle0",
            "adapt steady",
            "blacklisted",
        ],
        &rows,
    );
}
