//! **PR 8** — batched (D-EnKF) vs sequential (P-EnKF) assimilation on the
//! DES substrate, sweeping observation count × shard count at paper scale.
//!
//! Both arms run the same substrate (Tianhe-2-like OSTs and interconnect)
//! on the same rank count. The sequential arm is the P-EnKF block-reading
//! executor: every rank reads its block of every member file and runs the
//! point-local analysis, whose cost is observation-independent by
//! construction (each point solves its own localized system). The batched
//! arm is the D-EnKF distributed-array executor: full-width bar reads, an
//! all-to-all observation-block exchange, and one covariance-form
//! transform over the full `m × N` system — so its communication and
//! compute both scale with the observation count. The sweep locates the
//! regimes: at paper scale the batched arm approaches parity as the
//! network thins (bar reads amortize seeks to one per member) but the
//! un-sharded full-system transform keeps it above 1.0× — quantitative
//! support for the paper's premise that dense-network assimilation needs
//! the localized, observation-independent analysis.
//!
//! Emits one machine-readable line per sweep point for `scripts/bench.sh`:
//!
//! ```text
//! BATCH stride=3 obs=720000 shards=40 batched_s=... sequential_s=... \
//!       batched_over_sequential=... batched_overlap=...
//! ```
//!
//! Flags: `--tiny` shrinks the workload for smoke runs.

use enkf_bench::{has_flag, print_table, secs, tiny_workload};
use enkf_parallel::{model_denkf, model_penkf, ModelConfig};

fn main() {
    let mut cfg = ModelConfig::paper();
    // (shards, equal-rank P-EnKF decomposition) pairs: shard counts divide
    // n_y (full-width bars), the decompositions tile the same mesh with
    // the same processor count.
    let (points, strides): (Vec<(usize, usize, usize)>, Vec<usize>) = if has_flag("--tiny") {
        cfg.workload = tiny_workload();
        (vec![(8, 4, 2), (12, 4, 3), (24, 6, 4)], vec![24, 6, 2])
    } else {
        (vec![(40, 8, 5), (90, 10, 9), (180, 15, 12)], vec![24, 6, 2])
    };

    let mut rows = Vec::new();
    for &stride in &strides {
        cfg.obs_stride = stride;
        let w = &cfg.workload;
        let obs = w.nx.div_ceil(stride) * w.ny.div_ceil(stride);
        for &(shards, nsdx, nsdy) in &points {
            let batched = model_denkf(&cfg, shards).expect("batched model feasible");
            let sequential = model_penkf(&cfg, nsdx, nsdy).expect("sequential model feasible");
            let ratio = batched.makespan / sequential.makespan;
            println!(
                "BATCH stride={stride} obs={obs} shards={shards} batched_s={} sequential_s={} \
                 batched_over_sequential={} batched_overlap={}",
                batched.makespan,
                sequential.makespan,
                ratio,
                batched.overlapped_fraction(),
            );
            rows.push(vec![
                stride.to_string(),
                obs.to_string(),
                shards.to_string(),
                secs(batched.makespan),
                secs(sequential.makespan),
                format!("{ratio:.3}"),
            ]);
        }
    }

    print_table(
        "Batched (D-EnKF) vs sequential (P-EnKF) assimilation, equal rank counts",
        &[
            "stride",
            "obs",
            "shards",
            "batched_s",
            "sequential_s",
            "batched/sequential",
        ],
        &rows,
    );
    println!(
        "\nThe sequential arm's analysis is point-local, so its runtime is flat across\n\
         the observation sweep; the batched arm trades seek-free bar reads against an\n\
         exchange+transform that grows with m — the ratio column shows batched nearing\n\
         parity on sparse networks and falling behind as the network densifies."
    );
}
