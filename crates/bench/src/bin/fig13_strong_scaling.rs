//! **Figure 13** — Total runtime of P-EnKF and S-EnKF (strong scaling).
//!
//! Fixed problem size (0.1° mesh, 120 members), processor count swept to
//! 12,000. P-EnKF scales to about 8,000 processors, then its runtime grows
//! again as block-reading I/O dominates. S-EnKF (auto-tuned, total
//! processors `C₁ + C₂ ≤ n_p`) sustains near-ideal strong scaling, reaching
//! ~3× over P-EnKF at 12,000.

use enkf_bench::{paper_scaling_points, print_table, secs, write_csv};
use enkf_parallel::model::penkf::model_penkf;
use enkf_parallel::model::senkf::model_senkf;
use enkf_parallel::ModelConfig;
use enkf_tuning::autotune;

fn main() {
    let cfg = ModelConfig::paper();
    let mut rows = Vec::new();
    let mut s_first: Option<(usize, f64)> = None;
    for (np, nsdx, nsdy) in paper_scaling_points() {
        let p = model_penkf(&cfg, nsdx, nsdy).expect("feasible");
        let tuned = autotune(&cfg.cost_params(), np, 2e-2).expect("tunable");
        let s = model_senkf(&cfg, tuned.params).expect("feasible");
        let (np0, t0) = *s_first.get_or_insert((np, s.makespan));
        let ideal = t0 * np0 as f64 / np as f64;
        rows.push(vec![
            np.to_string(),
            secs(p.makespan),
            secs(s.makespan),
            secs(ideal),
            format!("{:.2}x", p.makespan / s.makespan),
            format!(
                "{:?} (uses {} of {np})",
                tuned.params,
                tuned.params.total_processors()
            ),
        ]);
    }
    let header = [
        "processors",
        "P-EnKF_s",
        "S-EnKF_s",
        "S ideal_s",
        "speedup",
        "tuned params",
    ];
    print_table(
        "Figure 13: strong scaling, P-EnKF vs S-EnKF",
        &header,
        &rows,
    );
    write_csv("fig13.csv", &header, &rows);
    println!(
        "\nPaper shape: P-EnKF stops scaling near 8,000 processors and regresses\n\
         beyond 10,000; S-EnKF stays near the ideal strong-scaling line through\n\
         12,000 processors and sustains ~3x over P-EnKF at the largest run."
    );
}
