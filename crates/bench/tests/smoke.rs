//! Smoke tests for the figure-regeneration binaries: run the `--tiny`
//! sweeps end to end and check the CSV artifacts have the expected header
//! and the paper-consistent shape. The fig09 test additionally validates
//! the `--trace` Chrome-trace export against the binary's own
//! full-precision per-rank check CSV.

use enkf_trace::json;
use std::path::PathBuf;
use std::process::Command;

fn figures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures")
}

fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/traces")
}

fn run(bin: &str, args: &[&str]) {
    let status = Command::new(bin)
        .args(args)
        .status()
        .expect("spawn fig binary");
    assert!(status.success(), "{bin} {args:?} exited with {status}");
}

fn read_csv(name: &str) -> (String, Vec<Vec<String>>) {
    let text = std::fs::read_to_string(figures_dir().join(name)).expect("read csv");
    let mut lines = text.lines();
    let header = lines.next().expect("csv header").to_string();
    let rows = lines
        .map(|l| l.split(',').map(str::to_string).collect::<Vec<_>>())
        .collect::<Vec<_>>();
    (header, rows)
}

#[test]
fn fig01_tiny_writes_monotone_io_share() {
    run(env!("CARGO_BIN_EXE_fig01_penkf_io_fraction"), &["--tiny"]);
    let (header, rows) = read_csv("fig01.csv");
    assert_eq!(header, "processors,io_share,compute_share,runtime_s");
    assert_eq!(rows.len(), 3, "three tiny scaling points");
    let shares: Vec<f64> = rows
        .iter()
        .map(|r| r[1].trim_end_matches('%').parse::<f64>().expect("io share"))
        .collect();
    for w in shares.windows(2) {
        assert!(
            w[1] >= w[0],
            "Figure 1 shape: I/O share must be monotone non-decreasing in n_p, got {shares:?}"
        );
    }
}

/// Sum a Chrome-trace JSON's spans per rank into the four phase categories
/// (seconds), keyed by rank.
fn per_rank_sums(trace_path: &std::path::Path) -> std::collections::BTreeMap<usize, [f64; 4]> {
    let text = std::fs::read_to_string(trace_path).expect("read trace json");
    let top = json::parse(&text).expect("trace file must be valid JSON");
    let events = top
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let mut sums: std::collections::BTreeMap<usize, [f64; 4]> = Default::default();
    for ev in events {
        let name = ev.get("name").and_then(|n| n.as_str()).expect("event name");
        let rank = ev.get("tid").and_then(|t| t.as_f64()).expect("event tid") as usize;
        let dur_s = ev.get("dur").and_then(|d| d.as_f64()).expect("event dur") / 1e6;
        let slot = match name.split(' ').next().unwrap() {
            "read" | "write" => 0,
            "send" => 1,
            "compute" => 2,
            "wait" => 3,
            other => panic!("unexpected event name {other:?}"),
        };
        sums.entry(rank).or_default()[slot] += dur_s;
    }
    sums
}

#[test]
fn fig09_tiny_trace_reproduces_phase_breakdown() {
    run(
        env!("CARGO_BIN_EXE_fig09_phase_breakdown"),
        &["--tiny", "--trace"],
    );
    let (header, rows) = read_csv("fig09.csv");
    assert_eq!(
        header,
        "config,rank class,read_s,comm_s,compute_s,wait_s,runtime_s"
    );
    assert_eq!(rows.len(), 3, "P compute + S compute + S io rows");
    assert!(rows[0][0].starts_with("P-EnKF@") && rows[1][0].starts_with("S-EnKF@"));

    // The full-precision per-rank sums the binary printed its table from.
    let (check_header, check_rows) = read_csv("fig09_trace_check.csv");
    assert_eq!(check_header, "label,rank,read_s,comm_s,compute_s,wait_s");
    assert!(!check_rows.is_empty());

    // The exported Chrome traces must reproduce them within 1e-9.
    for label in ["fig09-penkf-24", "fig09-senkf-24"] {
        let sums = per_rank_sums(&traces_dir().join(format!("{label}.json")));
        let expected: Vec<&Vec<String>> = check_rows.iter().filter(|r| r[0] == label).collect();
        assert_eq!(sums.len(), expected.len(), "{label}: rank count");
        for row in expected {
            let rank: usize = row[1].parse().unwrap();
            let got = sums
                .get(&rank)
                .unwrap_or_else(|| panic!("{label}: no spans for rank {rank}"));
            for (i, cell) in row[2..].iter().enumerate() {
                let want: f64 = cell.parse().unwrap();
                assert!(
                    (got[i] - want).abs() < 1e-9,
                    "{label} rank {rank} phase {i}: trace {} vs report {}",
                    got[i],
                    want
                );
            }
        }
    }
}
