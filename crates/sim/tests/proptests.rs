//! Property-based tests of the DES engine's scheduling invariants.

use enkf_sim::{Kind, Simulation, Task, TaskId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomWorkload {
    agents: usize,
    resources: Vec<usize>,                       // capacities
    tasks: Vec<(usize, usize, f64, Vec<usize>)>, // (agent, resource?, service, dep offsets)
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (1usize..6, proptest::collection::vec(1usize..4, 1..4)).prop_flat_map(|(agents, resources)| {
        let nres = resources.len();
        proptest::collection::vec(
            (
                0..agents,
                0..=nres, // == nres means "no resource"
                0.0f64..2.0,
                proptest::collection::vec(1usize..8, 0..3),
            ),
            1..40,
        )
        .prop_map(move |tasks| RandomWorkload {
            agents,
            resources: resources.clone(),
            tasks,
        })
    })
}

fn build_and_run(w: &RandomWorkload) -> (Simulation, Vec<TaskId>, enkf_sim::SimReport) {
    let mut sim = Simulation::new();
    let agents = sim.add_agents(w.agents);
    let resources: Vec<_> = w.resources.iter().map(|&c| sim.add_resource(c)).collect();
    let mut ids = Vec::new();
    for (agent, res, service, dep_offsets) in &w.tasks {
        let mut t = Task::new(agents[*agent], Kind::Compute, *service);
        if *res < resources.len() {
            t = t.with_resources(vec![resources[*res]]);
        }
        // Dependencies reach back by the given offsets (valid back-edges).
        let deps: Vec<TaskId> = dep_offsets
            .iter()
            .filter_map(|&off| ids.len().checked_sub(off))
            .collect();
        t = t.with_deps(deps);
        ids.push(sim.add_task(t).unwrap());
    }
    let report = sim.run().unwrap();
    (sim, ids, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_task_runs_and_times_are_ordered(w in workload_strategy()) {
        let (sim, ids, report) = build_and_run(&w);
        prop_assert_eq!(report.tasks_executed, ids.len());
        for &id in &ids {
            let (ready, start, finish) = sim.task_times(id);
            prop_assert!(ready >= 0.0);
            prop_assert!(start >= ready, "start before ready");
            prop_assert!(finish >= start, "finish before start");
            prop_assert!(finish <= report.makespan + 1e-12);
        }
    }

    #[test]
    fn agents_never_overlap_their_own_tasks(w in workload_strategy()) {
        let (sim, ids, _) = build_and_run(&w);
        // Group intervals by agent and check pairwise disjointness.
        let mut by_agent: std::collections::HashMap<usize, Vec<(f64, f64)>> = Default::default();
        for (k, &id) in ids.iter().enumerate() {
            let (_, start, finish) = sim.task_times(id);
            by_agent.entry(w.tasks[k].0).or_default().push((start, finish));
        }
        for intervals in by_agent.values_mut() {
            intervals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for pair in intervals.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0 + 1e-12, "agent overlap: {pair:?}");
            }
        }
    }

    #[test]
    fn dependencies_precede_dependents(w in workload_strategy()) {
        let (sim, ids, _) = build_and_run(&w);
        for (k, (_, _, _, dep_offsets)) in w.tasks.iter().enumerate() {
            let (_, start, _) = sim.task_times(ids[k]);
            for &off in dep_offsets {
                if let Some(dep_idx) = k.checked_sub(off) {
                    let (_, _, dep_finish) = sim.task_times(ids[dep_idx]);
                    prop_assert!(dep_finish <= start + 1e-12, "dep finished after dependent start");
                }
            }
        }
    }

    #[test]
    fn capacity_is_never_exceeded(w in workload_strategy()) {
        let (sim, ids, _) = build_and_run(&w);
        for (r, &cap) in w.resources.iter().enumerate() {
            // Collect intervals of tasks holding resource r and sweep.
            let mut events: Vec<(f64, i64)> = Vec::new();
            for (k, &id) in ids.iter().enumerate() {
                if w.tasks[k].1 == r && w.tasks[k].2 > 0.0 {
                    let (_, start, finish) = sim.task_times(id);
                    events.push((start, 1));
                    events.push((finish, -1));
                }
            }
            events.sort_by(|a, b| {
                a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
            });
            let mut in_use = 0i64;
            for (_, delta) in events {
                in_use += delta;
                prop_assert!(in_use <= cap as i64, "capacity exceeded on resource {r}");
            }
        }
    }

    #[test]
    fn makespan_bounded_by_total_and_critical_work(w in workload_strategy()) {
        let (_, _, report) = build_and_run(&w);
        let total: f64 = w.tasks.iter().map(|t| t.2).sum();
        prop_assert!(report.makespan <= total + 1e-9, "makespan beyond serial bound");
        let longest = w.tasks.iter().map(|t| t.2).fold(0.0f64, f64::max);
        prop_assert!(report.makespan >= longest - 1e-12);
    }

    #[test]
    fn deterministic_across_runs(w in workload_strategy()) {
        let (sim_a, ids_a, rep_a) = build_and_run(&w);
        let (sim_b, ids_b, rep_b) = build_and_run(&w);
        prop_assert_eq!(rep_a.makespan, rep_b.makespan);
        for (&a, &b) in ids_a.iter().zip(&ids_b) {
            prop_assert_eq!(sim_a.task_times(a), sim_b.task_times(b));
        }
    }

    #[test]
    fn busy_time_equals_service_sum(w in workload_strategy()) {
        let (_, _, report) = build_and_run(&w);
        let total: f64 = w.tasks.iter().map(|t| t.2).sum();
        let busy: f64 = report.agents.iter().map(|a| a.busy.total()).sum();
        prop_assert!((busy - total).abs() < 1e-9 * (1.0 + total));
    }
}
