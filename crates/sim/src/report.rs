//! Per-agent phase accounting produced by a simulation run.

use crate::task::Kind;

/// Busy time split by work kind (virtual seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KindTotals {
    /// Time spent in file reads.
    pub read: f64,
    /// Time spent in communication.
    pub comm: f64,
    /// Time spent in local analysis computation.
    pub compute: f64,
    /// Time spent in injected faults and recovery actions.
    pub fault: f64,
}

impl KindTotals {
    /// Accumulate a task's service time under its kind. `Control` tasks are
    /// bookkeeping and not counted.
    pub fn add(&mut self, kind: Kind, service: f64) {
        match kind {
            Kind::Read => self.read += service,
            Kind::Comm => self.comm += service,
            Kind::Compute => self.compute += service,
            Kind::Fault => self.fault += service,
            Kind::Control => {}
        }
    }

    /// Sum over all kinds.
    pub fn total(&self) -> f64 {
        self.read + self.comm + self.compute + self.fault
    }

    /// Elementwise sum of two totals.
    pub fn merged(&self, other: &KindTotals) -> KindTotals {
        KindTotals {
            read: self.read + other.read,
            comm: self.comm + other.comm,
            compute: self.compute + other.compute,
            fault: self.fault + other.fault,
        }
    }
}

/// Phase totals for one agent.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AgentReport {
    /// Busy time by kind.
    pub busy: KindTotals,
    /// Total time between readiness and service start (dependency stalls
    /// plus resource queueing) — the paper's "time for waiting".
    pub wait: f64,
    /// Completion time of the agent's last task.
    pub finish: f64,
}

/// The result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Virtual time at which the last task finished.
    pub makespan: f64,
    /// Per-agent phase totals, indexed by `AgentId.0`.
    pub agents: Vec<AgentReport>,
    /// Number of tasks executed (equals the task count on success).
    pub tasks_executed: usize,
    /// Busy time per resource (sum of the service times of the tasks that
    /// held it), indexed by `ResourceId.0`.
    pub resource_busy: Vec<f64>,
}

impl SimReport {
    /// Aggregate busy totals and wait over a subset of agents.
    pub fn aggregate<'a>(&self, agents: impl IntoIterator<Item = &'a usize>) -> AgentReport {
        let mut out = AgentReport::default();
        for &a in agents {
            let r = &self.agents[a];
            out.busy = out.busy.merged(&r.busy);
            out.wait += r.wait;
            out.finish = out.finish.max(r.finish);
        }
        out
    }

    /// Aggregate busy totals and wait over all agents.
    pub fn aggregate_all(&self) -> AgentReport {
        let ids: Vec<usize> = (0..self.agents.len()).collect();
        self.aggregate(ids.iter())
    }

    /// Utilization of a resource: busy time divided by `capacity × makespan`
    /// (1.0 = every slot occupied for the whole run).
    pub fn resource_utilization(&self, resource: usize, capacity: usize) -> f64 {
        if self.makespan <= 0.0 || capacity == 0 {
            return 0.0;
        }
        self.resource_busy[resource] / (capacity as f64 * self.makespan)
    }

    /// Mean of a per-agent statistic over a subset of agents.
    pub fn mean_over<'a>(
        &self,
        agents: impl IntoIterator<Item = &'a usize>,
        f: impl Fn(&AgentReport) -> f64,
    ) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for &a in agents {
            sum += f(&self.agents[a]);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_totals_accumulate_and_ignore_control() {
        let mut k = KindTotals::default();
        k.add(Kind::Read, 1.0);
        k.add(Kind::Comm, 2.0);
        k.add(Kind::Compute, 3.0);
        k.add(Kind::Control, 100.0);
        assert_eq!(k.total(), 6.0);
        assert_eq!(k.read, 1.0);
    }

    #[test]
    fn merged_adds_elementwise() {
        let a = KindTotals {
            read: 1.0,
            comm: 2.0,
            compute: 3.0,
            fault: 0.25,
        };
        let b = KindTotals {
            read: 0.5,
            comm: 0.5,
            compute: 0.5,
            fault: 0.25,
        };
        let m = a.merged(&b);
        assert_eq!(m.read, 1.5);
        assert_eq!(m.fault, 0.5);
        assert_eq!(m.total(), 8.0);
    }

    #[test]
    fn aggregate_subsets() {
        let rep = SimReport {
            makespan: 10.0,
            agents: vec![
                AgentReport {
                    busy: KindTotals {
                        read: 1.0,
                        ..Default::default()
                    },
                    wait: 1.0,
                    finish: 5.0,
                },
                AgentReport {
                    busy: KindTotals {
                        compute: 2.0,
                        ..Default::default()
                    },
                    wait: 0.5,
                    finish: 10.0,
                },
            ],
            tasks_executed: 2,
            resource_busy: vec![],
        };
        let io = rep.aggregate([0usize].iter());
        assert_eq!(io.busy.read, 1.0);
        assert_eq!(io.wait, 1.0);
        let all = rep.aggregate_all();
        assert_eq!(all.busy.total(), 3.0);
        assert_eq!(all.finish, 10.0);
        assert_eq!(rep.mean_over([0usize, 1].iter(), |a| a.wait), 0.75);
    }
}

#[cfg(test)]
mod utilization_tests {
    use crate::{Kind, Simulation, Task};

    #[test]
    fn utilization_reflects_contention() {
        let mut sim = Simulation::new();
        let r = sim.add_resource(2);
        // 4 tasks x 1s on a 2-slot resource: makespan 2, busy 4 -> 100%.
        for _ in 0..4 {
            let a = sim.add_agent();
            sim.add_task(Task::new(a, Kind::Read, 1.0).with_resources(vec![r]))
                .unwrap();
        }
        let rep = sim.run().unwrap();
        assert!((rep.resource_utilization(0, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_resource_has_zero_utilization() {
        let mut sim = Simulation::new();
        let _r = sim.add_resource(4);
        let a = sim.add_agent();
        sim.add_task(Task::new(a, Kind::Compute, 1.0)).unwrap();
        let rep = sim.run().unwrap();
        assert_eq!(rep.resource_utilization(0, 4), 0.0);
        assert_eq!(rep.resource_busy.len(), 1);
    }
}
