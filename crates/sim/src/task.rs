//! Task, agent and resource identifiers for the DES.

/// Index of a task within a simulation.
pub type TaskId = usize;

/// Index of an agent (serial execution context) within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub usize);

/// Index of a finite-capacity resource within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub usize);

/// Work classification used for phase accounting (Figures 1, 9, 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Parallel-file-system reads (occupies OST slots).
    Read,
    /// Message passing (occupies NIC slots).
    Comm,
    /// Local analysis computation.
    Compute,
    /// An injected fault or recovery action: a failed read attempt
    /// (occupying its OST slot) or a retry backoff (agent-local virtual
    /// sleep). Mirrors the real executors' `Op::Fault` spans.
    Fault,
    /// Synchronization / bookkeeping with no physical phase (barriers);
    /// excluded from busy-time accounting.
    Control,
}

/// One node of the simulated task DAG. Build via [`crate::Simulation::add_task`].
#[derive(Debug, Clone)]
pub struct Task {
    /// Serial execution context this task runs on.
    pub agent: AgentId,
    /// Phase classification.
    pub kind: Kind,
    /// Virtual service duration in seconds once all resources are held.
    pub service: f64,
    /// Resources to hold for the duration of the service. Order does not
    /// matter; the engine acquires in ascending id order.
    pub resources: Vec<ResourceId>,
    /// Explicit dependencies (in addition to the implicit program-order
    /// dependency on the agent's previous task).
    pub deps: Vec<TaskId>,
    /// Operation metadata (role, stage, bytes, seeks, peer, member) carried
    /// into the exported execution trace
    /// ([`crate::Simulation::export_trace`]). Untagged tasks still appear
    /// in the trace with defaults derived from their kind.
    pub op: Option<enkf_trace::OpTag>,
}

impl Task {
    /// Convenience constructor for a task with no resources or deps.
    pub fn new(agent: AgentId, kind: Kind, service: f64) -> Self {
        Task {
            agent,
            kind,
            service,
            resources: Vec::new(),
            deps: Vec::new(),
            op: None,
        }
    }

    /// Builder-style: add resource requirements.
    pub fn with_resources(mut self, resources: Vec<ResourceId>) -> Self {
        self.resources = resources;
        self
    }

    /// Builder-style: add explicit dependencies.
    pub fn with_deps(mut self, deps: Vec<TaskId>) -> Self {
        self.deps = deps;
        self
    }

    /// Builder-style: attach operation metadata for the execution trace.
    pub fn with_op(mut self, op: enkf_trace::OpTag) -> Self {
        self.op = Some(op);
        self
    }
}
