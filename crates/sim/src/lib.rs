//! A discrete-event simulation (DES) engine for modeling parallel EnKF runs
//! at scales (12,000 ranks) far beyond what can be executed as real threads.
//!
//! ## Model
//!
//! A simulated workload is a DAG of [`Task`]s. Each task
//!
//! * belongs to an **agent** — a serial execution context (a rank's main
//!   thread, a rank's helper thread, an I/O processor). Tasks of one agent
//!   run in insertion (program) order: the engine adds an implicit
//!   dependency on the agent's previous task.
//! * may name **resources** — contention points with finite capacity (an
//!   OST of the parallel file system, a NIC). A task acquires its resources
//!   in ascending id order (deadlock-free) with FIFO queueing per resource,
//!   holds them for its service time, then releases them all.
//! * has a **service time** (virtual seconds once all resources are held)
//!   and a [`Kind`] used for per-phase accounting (read / communication /
//!   computation), the quantities plotted in the paper's Figures 1, 9 and 11.
//!
//! The engine records, per agent, busy time by kind and *wait* time (from
//! the moment a task's dependencies finish until its service starts —
//! dependency stalls plus resource queueing), which is exactly the "time for
//! waiting" of Figure 9.
//!
//! The engine is deterministic: ties in the event queue are broken by
//! insertion sequence.
//!
//! After a run, [`Simulation::export_trace`](engine::Simulation::export_trace)
//! yields the execution as `enkf_trace` spans in virtual time — the same
//! vocabulary the real executors record in wall time — so real-vs-modeled
//! operation structure can be compared digest-for-digest.

pub mod engine;
pub mod report;
pub mod task;

pub use engine::Simulation;
pub use report::{AgentReport, KindTotals, SimReport};
pub use task::{AgentId, Kind, ResourceId, Task, TaskId};
