//! The discrete-event scheduler.

use crate::report::{AgentReport, SimReport};
use crate::task::{AgentId, Kind, ResourceId, Task, TaskId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Errors from running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The task graph never ran some tasks (dependency cycle or a
    /// dependency on a task id that was never satisfiable).
    Stuck {
        /// Number of tasks that never started.
        unfinished: usize,
    },
    /// A task named a resource id that was never registered.
    UnknownResource(ResourceId),
    /// A task named a dependency id that does not exist (forward edges are
    /// not allowed: dependencies must be created before dependents).
    UnknownDependency(TaskId),
    /// A service time was negative or non-finite.
    BadService(TaskId),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stuck { unfinished } => {
                write!(f, "simulation stuck: {unfinished} tasks never ran (cycle?)")
            }
            SimError::UnknownResource(r) => write!(f, "unknown resource id {:?}", r),
            SimError::UnknownDependency(t) => write!(f, "unknown dependency task id {t}"),
            SimError::BadService(t) => write!(f, "task {t} has a negative/non-finite service time"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    WaitingDeps,
    Acquiring,
    Running,
    Done,
}

struct TaskState {
    agent: AgentId,
    kind: Kind,
    service: f64,
    resources: Vec<ResourceId>, // sorted ascending
    acquired: usize,
    remaining_deps: usize,
    dependents: Vec<TaskId>,
    state: State,
    ready: f64,
    start: f64,
    finish: f64,
    op: Option<enkf_trace::OpTag>,
}

struct ResourceState {
    capacity: usize,
    free: usize,
    queue: VecDeque<TaskId>,
}

/// Event-queue key with a total order on finite times.
#[derive(PartialEq, PartialOrd)]
struct EventKey(f64, u64);

impl Eq for EventKey {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other)
            .expect("simulation times must be finite")
    }
}

/// A discrete-event simulation under construction (and, after [`Simulation::run`],
/// its recorded timings).
///
/// ```
/// use enkf_sim::{Kind, Simulation, Task};
///
/// // Two readers contend for a single-slot disk; a consumer computes after
/// // the first read completes.
/// let mut sim = Simulation::new();
/// let disk = sim.add_resource(1);
/// let reader_a = sim.add_agent();
/// let reader_b = sim.add_agent();
/// let consumer = sim.add_agent();
/// let ra = sim.add_task(Task::new(reader_a, Kind::Read, 1.0).with_resources(vec![disk])).unwrap();
/// sim.add_task(Task::new(reader_b, Kind::Read, 1.0).with_resources(vec![disk])).unwrap();
/// sim.add_task(Task::new(consumer, Kind::Compute, 0.5).with_deps(vec![ra])).unwrap();
/// let report = sim.run().unwrap();
/// assert_eq!(report.makespan, 2.0); // reads serialize; compute hides behind read B
/// ```
pub struct Simulation {
    tasks: Vec<TaskState>,
    resources: Vec<ResourceState>,
    num_agents: usize,
    last_task_of_agent: Vec<Option<TaskId>>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Create an empty simulation.
    pub fn new() -> Self {
        Simulation {
            tasks: Vec::new(),
            resources: Vec::new(),
            num_agents: 0,
            last_task_of_agent: Vec::new(),
        }
    }

    /// Register a serial execution context (rank thread, helper thread,
    /// I/O processor).
    pub fn add_agent(&mut self) -> AgentId {
        let id = AgentId(self.num_agents);
        self.num_agents += 1;
        self.last_task_of_agent.push(None);
        id
    }

    /// Register `n` agents, returning their ids in order.
    pub fn add_agents(&mut self, n: usize) -> Vec<AgentId> {
        (0..n).map(|_| self.add_agent()).collect()
    }

    /// Register a finite-capacity resource (OST, NIC). `capacity` is the
    /// number of tasks that may hold the resource simultaneously.
    pub fn add_resource(&mut self, capacity: usize) -> ResourceId {
        assert!(capacity > 0, "resource capacity must be positive");
        let id = ResourceId(self.resources.len());
        self.resources.push(ResourceState {
            capacity,
            free: capacity,
            queue: VecDeque::new(),
        });
        id
    }

    /// Number of tasks added so far.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Capacity a resource was registered with.
    pub fn resource_capacity(&self, r: ResourceId) -> usize {
        self.resources[r.0].capacity
    }

    /// Add a task; returns its id. Dependencies must already exist. An
    /// implicit dependency on the agent's previous task enforces program
    /// order.
    pub fn add_task(&mut self, task: Task) -> Result<TaskId, SimError> {
        let id = self.tasks.len();
        if !(task.service >= 0.0 && task.service.is_finite()) {
            return Err(SimError::BadService(id));
        }
        for &r in &task.resources {
            if r.0 >= self.resources.len() {
                return Err(SimError::UnknownResource(r));
            }
        }
        let mut deps = task.deps;
        for &d in &deps {
            if d >= id {
                return Err(SimError::UnknownDependency(d));
            }
        }
        assert!(task.agent.0 < self.num_agents, "unknown agent");
        if let Some(prev) = self.last_task_of_agent[task.agent.0] {
            if !deps.contains(&prev) {
                deps.push(prev);
            }
        }
        self.last_task_of_agent[task.agent.0] = Some(id);
        let mut resources = task.resources;
        resources.sort_unstable();
        resources.dedup();
        for &d in &deps {
            self.tasks[d].dependents.push(id);
        }
        self.tasks.push(TaskState {
            agent: task.agent,
            kind: task.kind,
            service: task.service,
            resources,
            acquired: 0,
            remaining_deps: deps.len(),
            dependents: Vec::new(),
            state: State::WaitingDeps,
            ready: 0.0,
            start: 0.0,
            finish: 0.0,
            op: task.op,
        });
        Ok(id)
    }

    /// Run to completion and return the per-agent phase report.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        let mut events: BinaryHeap<Reverse<(EventKey, TaskId)>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut started: Vec<TaskId> = Vec::new();

        // Seed: tasks with no dependencies are ready at t = 0.
        let initially_ready: Vec<TaskId> = (0..self.tasks.len())
            .filter(|&t| self.tasks[t].remaining_deps == 0)
            .collect();
        for t in initially_ready {
            self.mark_ready(t, 0.0, &mut started);
        }
        Self::flush_started(&mut started, &mut events, &mut seq, &self.tasks, 0.0);

        let mut finished = 0usize;
        let mut makespan = 0.0f64;
        while let Some(Reverse((EventKey(now, _), tid))) = events.pop() {
            // Task `tid` finishes at `now`.
            debug_assert_eq!(self.tasks[tid].state, State::Running);
            self.tasks[tid].state = State::Done;
            self.tasks[tid].finish = now;
            makespan = makespan.max(now);
            finished += 1;

            // Release resources and wake queued tasks (FIFO).
            let held: Vec<ResourceId> = self.tasks[tid].resources.clone();
            for r in held {
                self.resources[r.0].free += 1;
                loop {
                    let rs = &mut self.resources[r.0];
                    if rs.free == 0 || rs.queue.is_empty() {
                        break;
                    }
                    let next = rs.queue.pop_front().expect("checked non-empty");
                    rs.free -= 1;
                    self.tasks[next].acquired += 1;
                    self.try_advance(next, now, &mut started);
                }
            }

            // Notify dependents.
            let deps = std::mem::take(&mut self.tasks[tid].dependents);
            for d in &deps {
                self.tasks[*d].remaining_deps -= 1;
                if self.tasks[*d].remaining_deps == 0 {
                    self.mark_ready(*d, now, &mut started);
                }
            }
            self.tasks[tid].dependents = deps;

            Self::flush_started(&mut started, &mut events, &mut seq, &self.tasks, now);
        }

        if finished != self.tasks.len() {
            return Err(SimError::Stuck {
                unfinished: self.tasks.len() - finished,
            });
        }

        let mut agents = vec![AgentReport::default(); self.num_agents];
        let mut resource_busy = vec![0.0; self.resources.len()];
        for t in &self.tasks {
            let a = &mut agents[t.agent.0];
            a.busy.add(t.kind, t.service);
            a.wait += t.start - t.ready;
            a.finish = a.finish.max(t.finish);
            for r in &t.resources {
                resource_busy[r.0] += t.service;
            }
        }
        Ok(SimReport {
            makespan,
            agents,
            tasks_executed: finished,
            resource_busy,
        })
    }

    /// `(ready, start, finish)` times of a task — valid after [`Simulation::run`].
    pub fn task_times(&self, id: TaskId) -> (f64, f64, f64) {
        let t = &self.tasks[id];
        (t.ready, t.start, t.finish)
    }

    /// Export the run as an execution trace — valid after
    /// [`Simulation::run`]. Every task becomes one span in virtual time
    /// (`Read` → read, `Comm` → send, `Compute` → compute; `Control` tasks
    /// emit no operation span), plus a wait span covering `ready → start`
    /// whenever the task stalled on program order, dependencies or resource
    /// queues. [`SimReport`](crate::SimReport)'s busy/wait totals are exact
    /// projections of these spans: per agent, busy time by kind equals the
    /// span durations by operation and wait time equals the wait-span sum.
    pub fn export_trace(&self, label: &str) -> enkf_trace::Trace {
        use enkf_trace::{Op, Role, Span};
        let mut trace = enkf_trace::Trace::new(label);
        for t in &self.tasks {
            debug_assert_eq!(
                t.state,
                State::Done,
                "export_trace requires a completed run"
            );
            let tag = t.op.unwrap_or_default();
            let rank = t.agent.0;
            let role = if tag.io { Role::Io } else { Role::Compute };
            let wait = t.start - t.ready;
            if wait > 0.0 {
                trace.push(Span {
                    rank,
                    role,
                    stage: tag.stage,
                    op: Op::Wait,
                    start: t.ready,
                    dur: wait,
                    bytes: 0,
                    seeks: 0,
                    peer: None,
                    member: None,
                    res: None,
                    tenant: None,
                    job: None,
                });
            }
            let op = match t.kind {
                Kind::Read => Op::Read,
                Kind::Comm => Op::Send,
                Kind::Compute => Op::Compute,
                Kind::Fault => Op::Fault,
                Kind::Control => continue,
            };
            trace.push(Span {
                rank,
                role,
                stage: tag.stage,
                op,
                start: t.start,
                // The service, not `finish - start`: identical by
                // construction, but the service is what busy accounting
                // sums, keeping the projection exact.
                dur: t.service,
                bytes: tag.bytes,
                seeks: tag.seeks,
                peer: tag.peer,
                member: tag.member,
                res: t.resources.first().map(|r| r.0),
                tenant: None,
                job: None,
            });
        }
        trace
    }

    fn mark_ready(&mut self, tid: TaskId, now: f64, started: &mut Vec<TaskId>) {
        let t = &mut self.tasks[tid];
        debug_assert_eq!(t.state, State::WaitingDeps);
        t.state = State::Acquiring;
        t.ready = now;
        // Acquire the first resource (or start immediately when none).
        self.try_advance(tid, now, started);
    }

    /// Advance a task through its (sorted) resource list. The task has
    /// already acquired `acquired` resources; try to take the rest. Blocks
    /// (enqueues) on the first resource without a free slot. When all
    /// resources are held, records the start time and pushes to `started`.
    fn try_advance(&mut self, tid: TaskId, now: f64, started: &mut Vec<TaskId>) {
        loop {
            let next_idx = self.tasks[tid].acquired;
            if next_idx == self.tasks[tid].resources.len() {
                let t = &mut self.tasks[tid];
                t.state = State::Running;
                t.start = now;
                started.push(tid);
                return;
            }
            let r = self.tasks[tid].resources[next_idx];
            let rs = &mut self.resources[r.0];
            if rs.free > 0 && rs.queue.is_empty() {
                rs.free -= 1;
                self.tasks[tid].acquired += 1;
            } else {
                rs.queue.push_back(tid);
                return;
            }
        }
    }

    fn flush_started(
        started: &mut Vec<TaskId>,
        events: &mut BinaryHeap<Reverse<(EventKey, TaskId)>>,
        seq: &mut u64,
        tasks: &[TaskState],
        now: f64,
    ) {
        for tid in started.drain(..) {
            let finish = now + tasks[tid].service;
            events.push(Reverse((EventKey(finish, *seq), tid)));
            *seq += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_runs_at_zero() {
        let mut sim = Simulation::new();
        let a = sim.add_agent();
        let t = sim.add_task(Task::new(a, Kind::Compute, 2.5)).unwrap();
        let rep = sim.run().unwrap();
        assert_eq!(rep.makespan, 2.5);
        assert_eq!(sim.task_times(t), (0.0, 0.0, 2.5));
        assert_eq!(rep.agents[0].busy.compute, 2.5);
        assert_eq!(rep.agents[0].wait, 0.0);
    }

    #[test]
    fn program_order_serializes_an_agent() {
        let mut sim = Simulation::new();
        let a = sim.add_agent();
        let t1 = sim.add_task(Task::new(a, Kind::Read, 1.0)).unwrap();
        let t2 = sim.add_task(Task::new(a, Kind::Compute, 2.0)).unwrap();
        let rep = sim.run().unwrap();
        assert_eq!(rep.makespan, 3.0);
        assert_eq!(sim.task_times(t1).2, 1.0);
        assert_eq!(sim.task_times(t2).1, 1.0);
    }

    #[test]
    fn independent_agents_run_in_parallel() {
        let mut sim = Simulation::new();
        for _ in 0..4 {
            let a = sim.add_agent();
            sim.add_task(Task::new(a, Kind::Compute, 5.0)).unwrap();
        }
        let rep = sim.run().unwrap();
        assert_eq!(rep.makespan, 5.0);
        assert_eq!(rep.tasks_executed, 4);
    }

    #[test]
    fn explicit_dependency_across_agents() {
        let mut sim = Simulation::new();
        let a = sim.add_agent();
        let b = sim.add_agent();
        let t1 = sim.add_task(Task::new(a, Kind::Read, 3.0)).unwrap();
        let t2 = sim
            .add_task(Task::new(b, Kind::Compute, 1.0).with_deps(vec![t1]))
            .unwrap();
        let rep = sim.run().unwrap();
        assert_eq!(sim.task_times(t2).0, 3.0, "ready when dep finishes");
        assert_eq!(rep.makespan, 4.0);
        assert_eq!(rep.agents[b.0].wait, 0.0, "started as soon as ready");
    }

    #[test]
    fn capacity_one_resource_serializes_contenders() {
        let mut sim = Simulation::new();
        let r = sim.add_resource(1);
        for _ in 0..3 {
            let a = sim.add_agent();
            sim.add_task(Task::new(a, Kind::Read, 2.0).with_resources(vec![r]))
                .unwrap();
        }
        let rep = sim.run().unwrap();
        assert_eq!(rep.makespan, 6.0);
        // Total wait = 0 + 2 + 4.
        let wait: f64 = rep.agents.iter().map(|a| a.wait).sum();
        assert_eq!(wait, 6.0);
    }

    #[test]
    fn capacity_two_resource_allows_two_at_once() {
        let mut sim = Simulation::new();
        let r = sim.add_resource(2);
        for _ in 0..4 {
            let a = sim.add_agent();
            sim.add_task(Task::new(a, Kind::Read, 2.0).with_resources(vec![r]))
                .unwrap();
        }
        let rep = sim.run().unwrap();
        assert_eq!(rep.makespan, 4.0);
    }

    #[test]
    fn fifo_order_on_contended_resource() {
        let mut sim = Simulation::new();
        let r = sim.add_resource(1);
        let mut ids = Vec::new();
        for _ in 0..3 {
            let a = sim.add_agent();
            ids.push(
                sim.add_task(Task::new(a, Kind::Read, 1.0).with_resources(vec![r]))
                    .unwrap(),
            );
        }
        sim.run().unwrap();
        let starts: Vec<f64> = ids.iter().map(|&t| sim.task_times(t).1).collect();
        assert_eq!(starts, vec![0.0, 1.0, 2.0], "grants follow arrival order");
    }

    #[test]
    fn multi_resource_task_holds_both() {
        let mut sim = Simulation::new();
        let r1 = sim.add_resource(1);
        let r2 = sim.add_resource(1);
        let a = sim.add_agent();
        let b = sim.add_agent();
        let c = sim.add_agent();
        // Task A holds both for 2s; B wants r1, C wants r2: both must wait.
        sim.add_task(Task::new(a, Kind::Comm, 2.0).with_resources(vec![r1, r2]))
            .unwrap();
        let tb = sim
            .add_task(Task::new(b, Kind::Read, 1.0).with_resources(vec![r1]))
            .unwrap();
        let tc = sim
            .add_task(Task::new(c, Kind::Read, 1.0).with_resources(vec![r2]))
            .unwrap();
        sim.run().unwrap();
        assert_eq!(sim.task_times(tb).1, 2.0);
        assert_eq!(sim.task_times(tc).1, 2.0);
    }

    #[test]
    fn overlap_io_and_compute_on_separate_agents() {
        // The essence of the multi-stage design: reads for stage l+1 proceed
        // while stage l computes.
        let mut sim = Simulation::new();
        let ost = sim.add_resource(1);
        let io = sim.add_agent();
        let cpu = sim.add_agent();
        let read0 = sim
            .add_task(Task::new(io, Kind::Read, 1.0).with_resources(vec![ost]))
            .unwrap();
        let read1 = sim
            .add_task(Task::new(io, Kind::Read, 1.0).with_resources(vec![ost]))
            .unwrap();
        let _comp0 = sim
            .add_task(Task::new(cpu, Kind::Compute, 1.5).with_deps(vec![read0]))
            .unwrap();
        let comp1 = sim
            .add_task(Task::new(cpu, Kind::Compute, 1.5).with_deps(vec![read1]))
            .unwrap();
        let rep = sim.run().unwrap();
        // read1 (1..2) overlaps comp0 (1..2.5); comp1 runs 2.5..4.
        assert_eq!(sim.task_times(comp1).1, 2.5);
        assert_eq!(rep.makespan, 4.0);
    }

    #[test]
    fn zero_service_barrier() {
        let mut sim = Simulation::new();
        let a = sim.add_agent();
        let b = sim.add_agent();
        let ctrl = sim.add_agent();
        let t1 = sim.add_task(Task::new(a, Kind::Compute, 1.0)).unwrap();
        let t2 = sim.add_task(Task::new(b, Kind::Compute, 2.0)).unwrap();
        let bar = sim
            .add_task(Task::new(ctrl, Kind::Control, 0.0).with_deps(vec![t1, t2]))
            .unwrap();
        let after = sim
            .add_task(Task::new(a, Kind::Compute, 1.0).with_deps(vec![bar]))
            .unwrap();
        let rep = sim.run().unwrap();
        assert_eq!(sim.task_times(after).1, 2.0);
        assert_eq!(rep.makespan, 3.0);
        assert_eq!(
            rep.agents[ctrl.0].busy.total(),
            0.0,
            "control excluded from busy totals"
        );
    }

    #[test]
    fn forward_dependency_rejected() {
        let mut sim = Simulation::new();
        let a = sim.add_agent();
        let err = sim
            .add_task(Task::new(a, Kind::Compute, 1.0).with_deps(vec![5]))
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownDependency(5)));
    }

    #[test]
    fn unknown_resource_rejected() {
        let mut sim = Simulation::new();
        let a = sim.add_agent();
        let err = sim
            .add_task(Task::new(a, Kind::Read, 1.0).with_resources(vec![ResourceId(3)]))
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownResource(ResourceId(3))));
    }

    #[test]
    fn bad_service_rejected() {
        let mut sim = Simulation::new();
        let a = sim.add_agent();
        assert!(matches!(
            sim.add_task(Task::new(a, Kind::Compute, f64::NAN)),
            Err(SimError::BadService(0))
        ));
        assert!(matches!(
            sim.add_task(Task::new(a, Kind::Compute, -1.0)),
            Err(SimError::BadService(0))
        ));
    }

    #[test]
    fn wait_time_includes_resource_queueing() {
        let mut sim = Simulation::new();
        let r = sim.add_resource(1);
        let a = sim.add_agent();
        let b = sim.add_agent();
        sim.add_task(Task::new(a, Kind::Read, 4.0).with_resources(vec![r]))
            .unwrap();
        let t = sim
            .add_task(Task::new(b, Kind::Read, 1.0).with_resources(vec![r]))
            .unwrap();
        let rep = sim.run().unwrap();
        let (ready, start, finish) = sim.task_times(t);
        assert_eq!(ready, 0.0);
        assert_eq!(start, 4.0);
        assert_eq!(finish, 5.0);
        assert_eq!(rep.agents[b.0].wait, 4.0);
    }

    #[test]
    fn exported_trace_projects_report_exactly() {
        use enkf_trace::OpTag;
        let mut sim = Simulation::new();
        let r = sim.add_resource(1);
        let a = sim.add_agent();
        let b = sim.add_agent();
        sim.add_task(
            Task::new(a, Kind::Read, 2.0)
                .with_resources(vec![r])
                .with_op(OpTag {
                    io: true,
                    bytes: 64,
                    seeks: 4,
                    ..OpTag::default()
                }),
        )
        .unwrap();
        sim.add_task(
            Task::new(b, Kind::Read, 1.0)
                .with_resources(vec![r])
                .with_op(OpTag {
                    bytes: 32,
                    seeks: 2,
                    ..OpTag::default()
                }),
        )
        .unwrap();
        sim.add_task(Task::new(b, Kind::Compute, 0.5)).unwrap();
        let rep = sim.run().unwrap();
        let trace = sim.export_trace("unit");
        let phases = trace.per_rank_phases();
        for (agent, report) in rep.agents.iter().enumerate() {
            let p = phases[&agent];
            assert_eq!(p.read, report.busy.read);
            assert_eq!(p.comm, report.busy.comm);
            assert_eq!(p.compute, report.busy.compute);
            assert_eq!(p.wait, report.wait);
        }
        // Rank b queued 2.0s on the disk: a wait span precedes its read.
        assert!(trace
            .spans()
            .iter()
            .any(|s| s.rank == 1 && s.op == enkf_trace::Op::Wait && s.dur == 2.0));
        // Tags survive into spans; the digest sees both reads.
        assert!(trace.digest().contains("role=io"));
        assert!(trace.digest().contains("bytes=32 seeks=2"));
    }

    #[test]
    fn fault_tasks_project_to_fault_spans_and_busy() {
        use enkf_trace::OpTag;
        let mut sim = Simulation::new();
        let ost = sim.add_resource(1);
        let a = sim.add_agent();
        // Failed attempt on the OST, backoff off-resource, then the read.
        sim.add_task(
            Task::new(a, Kind::Fault, 2.0)
                .with_resources(vec![ost])
                .with_op(OpTag {
                    bytes: 64,
                    seeks: 4,
                    member: Some(1),
                    ..OpTag::default()
                }),
        )
        .unwrap();
        sim.add_task(Task::new(a, Kind::Fault, 0.5).with_op(OpTag {
            member: Some(1),
            ..OpTag::default()
        }))
        .unwrap();
        sim.add_task(
            Task::new(a, Kind::Read, 1.0)
                .with_resources(vec![ost])
                .with_op(OpTag {
                    bytes: 64,
                    seeks: 4,
                    member: Some(1),
                    ..OpTag::default()
                }),
        )
        .unwrap();
        let rep = sim.run().unwrap();
        assert_eq!(rep.makespan, 3.5);
        assert_eq!(rep.agents[0].busy.fault, 2.5);
        assert_eq!(rep.agents[0].busy.read, 1.0);
        let trace = sim.export_trace("faulted");
        let p = trace.per_rank_phases()[&0];
        assert_eq!(p.fault, rep.agents[0].busy.fault, "exact projection");
        assert!(trace.digest().contains("op=fault"));
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two identical runs give identical timings.
        let build = || {
            let mut sim = Simulation::new();
            let r = sim.add_resource(2);
            let mut ids = Vec::new();
            for _ in 0..6 {
                let a = sim.add_agent();
                ids.push(
                    sim.add_task(Task::new(a, Kind::Read, 1.0).with_resources(vec![r]))
                        .unwrap(),
                );
            }
            sim.run().unwrap();
            ids.iter().map(|&t| sim.task_times(t)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
