//! Counting-allocator proof that the steady-state per-grid-point LETKF
//! loop performs no heap allocation.
//!
//! The workspace buffers grow to their high-water mark during a warm pass
//! over every grid point; a second pass over the same points must then
//! complete without a single call into the global allocator.

use enkf_core::{
    LetkfAnalysis, LetkfWorkspace, LocalObsIndex, ObservationOperator, Observations,
    PerturbedObservations,
};
use enkf_grid::{LocalizationRadius, Mesh, ObservationNetwork, RegionRect};
use enkf_linalg::Matrix;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper counting every allocation-side call.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn letkf_point_loop_is_allocation_free_at_steady_state() {
    let mesh = Mesh::new(12, 12);
    let nens = 8;
    let radius = LocalizationRadius { xi: 2, eta: 2 };
    let states = Matrix::from_fn(mesh.n(), nens, |i, k| {
        let p = mesh.point(i);
        (p.ix as f64 * 0.4).sin() + (p.iy as f64 * 0.3).cos() + 0.01 * k as f64
    });
    let net = ObservationNetwork::uniform(mesh, 3);
    let op = ObservationOperator::new(net);
    let m = op.len();
    let values: Vec<f64> = (0..m).map(|k| (k as f64 * 0.23).cos()).collect();
    let observations = Observations::new(
        op,
        values,
        vec![0.1; m],
        PerturbedObservations::new(0x5EED, nens),
    );

    let full = RegionRect::full(mesh);
    let obs = observations.localize(&full);
    let analysis = LetkfAnalysis::new(radius);
    let cell = radius.xi.max(radius.eta).max(1);
    let index = LocalObsIndex::build(&obs, &full, cell);
    let mut ws = LetkfWorkspace::new();
    let mut out_row = vec![0.0; nens];

    // Warm pass: every buffer reaches its high-water capacity (box sizes
    // vary with edge clamping, so every point must be visited).
    for p in full.iter_points() {
        analysis
            .analyze_point_into(mesh, p, &full, &states, &obs, &index, &mut ws, &mut out_row)
            .unwrap();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut checksum = 0.0;
    for p in full.iter_points() {
        analysis
            .analyze_point_into(mesh, p, &full, &states, &obs, &index, &mut ws, &mut out_row)
            .unwrap();
        checksum += out_row[0];
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state per-point loop allocated {} times",
        after - before
    );
}
