//! Property-based tests of the analysis kernels' invariants.

use enkf_core::{
    serial_enkf, serial_enkf_decomposed, serial_letkf, AnalysisGranularity, LetkfAnalysis,
    LocalAnalysis, ObservationOperator, Observations, PerturbedObservations,
};
use enkf_grid::{
    Decomposition, GridPoint, LocalizationRadius, Mesh, ObservationNetwork, RegionRect,
};
use enkf_linalg::{GaussianSampler, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
struct Problem {
    ensemble: enkf_core::Ensemble,
    observations: Observations,
    radius: LocalizationRadius,
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (
        2usize..=4,
        2usize..=3,
        4usize..=10,
        1usize..=2,
        1usize..=2,
        2usize..=3,
        any::<u64>(),
    )
        .prop_map(|(mx, my, nens, xi, eta, stride, seed)| {
            let mesh = Mesh::new(mx * 3, my * 3);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut gs = GaussianSampler::new();
            let states = Matrix::from_fn(mesh.n(), nens, |i, _| {
                let p = mesh.point(i);
                (p.ix as f64 * 0.5).sin() + 0.5 * gs.sample(&mut rng)
            });
            let ensemble = enkf_core::Ensemble::new(mesh, states);
            let net = ObservationNetwork::uniform(mesh, stride);
            let op = ObservationOperator::new(net);
            let m = op.len();
            let values: Vec<f64> = (0..m).map(|k| (k as f64 * 0.23).cos()).collect();
            let observations = Observations::new(
                op,
                values,
                vec![0.1; m],
                PerturbedObservations::new(seed ^ 0xBEEF, nens),
            );
            Problem {
                ensemble,
                observations,
                radius: LocalizationRadius { xi, eta },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pointwise_analysis_is_decomposition_invariant(p in problem_strategy()) {
        let mesh = p.ensemble.mesh();
        let reference = serial_enkf(&p.ensemble, &p.observations, p.radius).unwrap();
        // Any divisor-compatible decomposition must reproduce it.
        let divx: Vec<usize> = (1..=mesh.nx()).filter(|d| mesh.nx().is_multiple_of(*d)).collect();
        let divy: Vec<usize> = (1..=mesh.ny()).filter(|d| mesh.ny().is_multiple_of(*d)).collect();
        let sx = divx[divx.len() / 2];
        let sy = divy[divy.len() / 2];
        let d = Decomposition::new(mesh, sx, sy).unwrap();
        let got =
            serial_enkf_decomposed(&p.ensemble, &p.observations, LocalAnalysis::new(p.radius), &d)
                .unwrap();
        prop_assert!(
            got.states().approx_eq(reference.states(), 1e-10),
            "decomposition {sx}x{sy} changed the analysis"
        );
    }

    #[test]
    fn analysis_preserves_geometry_and_finiteness(p in problem_strategy()) {
        let analysis = serial_enkf(&p.ensemble, &p.observations, p.radius).unwrap();
        prop_assert_eq!(analysis.mesh(), p.ensemble.mesh());
        prop_assert_eq!(analysis.size(), p.ensemble.size());
        prop_assert!(analysis.states().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn letkf_contracts_total_spread(p in problem_strategy()) {
        let analysis = serial_letkf(&p.ensemble, &p.observations, p.radius).unwrap();
        let before = p.ensemble.anomalies().frobenius_norm();
        let after = analysis.anomalies().frobenius_norm();
        prop_assert!(after <= before * 1.0001, "spread grew: {before} -> {after}");
    }

    #[test]
    fn points_outside_every_local_box_are_untouched(p in problem_strategy()) {
        // Identify points with no observation in their local box; the
        // point-wise analysis must leave them bit-identical.
        let mesh = p.ensemble.mesh();
        let analysis = serial_enkf(&p.ensemble, &p.observations, p.radius).unwrap();
        let obs_points: Vec<GridPoint> =
            p.observations.operator().network().points().to_vec();
        for gp in mesh.iter_points() {
            let has_obs = obs_points
                .iter()
                .any(|&o| mesh.in_local_box(gp, o, p.radius));
            if !has_obs {
                let i = mesh.index(gp);
                for k in 0..p.ensemble.size() {
                    prop_assert_eq!(
                        analysis.states()[(i, k)],
                        p.ensemble.states()[(i, k)],
                        "unobserved point {:?} changed", gp
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_localize_matches_linear_scan_on_random_networks(
        mx in 2usize..=5,
        my in 2usize..=5,
        mask in proptest::collection::vec(any::<bool>(), 1..200),
        rect in (any::<usize>(), any::<usize>(), any::<usize>(), any::<usize>()),
        seed in any::<u64>(),
    ) {
        // A random sparse network: keep point k iff mask[k % mask.len()].
        let mesh = Mesh::new(mx * 3, my * 3);
        let points: Vec<GridPoint> = RegionRect::full(mesh)
            .iter_points()
            .enumerate()
            .filter(|(k, _)| mask[k % mask.len()])
            .map(|(_, p)| p)
            .collect();
        let net = ObservationNetwork::from_points(mesh, points);
        let op = ObservationOperator::new(net);
        let m = op.len();
        let values: Vec<f64> = (0..m).map(|k| (k as f64 * 0.31).sin()).collect();
        let observations = Observations::new(
            op,
            values,
            vec![0.2; m],
            PerturbedObservations::new(seed, 4),
        );
        // A random (possibly empty) region plus the edge cases: degenerate
        // and full-mesh.
        let x0 = rect.0 % (mesh.nx() + 1);
        let x1 = x0 + rect.1 % (mesh.nx() + 1 - x0);
        let y0 = rect.2 % (mesh.ny() + 1);
        let y1 = y0 + rect.3 % (mesh.ny() + 1 - y0);
        for region in [
            RegionRect::new(x0, x1, y0, y1),
            RegionRect::new(x0, x0, y0, y1),
            RegionRect::full(mesh),
        ] {
            prop_assert_eq!(
                observations.localize(&region),
                observations.localize_linear(&region),
                "region {:?}", region
            );
        }
    }

    #[test]
    fn pointwise_letkf_matches_per_point_region_kernel(p in problem_strategy()) {
        // Before/after bit-identity for the workspace rewrite: the batched
        // point-wise driver must reproduce, bit for bit, the old
        // implementation's path — one Region-granularity solve per grid
        // point's local box.
        let mesh = p.ensemble.mesh();
        let full = RegionRect::full(mesh);
        let obs = p.observations.localize(&full);
        let pointwise = LetkfAnalysis::new(p.radius);
        let xa = pointwise
            .analyze(mesh, &full, &full, p.ensemble.states(), &obs)
            .unwrap();
        let blocked = LetkfAnalysis {
            granularity: AnalysisGranularity::Region,
            ..pointwise
        };
        for gp in full.iter_points() {
            let single = RegionRect::new(gp.ix, gp.ix + 1, gp.iy, gp.iy + 1);
            let boxr = single.expand(p.radius, mesh);
            let box_rows = full.local_indices_of(&boxr);
            let xb_box = p.ensemble.states().select_rows(&box_rows);
            let obs_box = obs.sub_localize(&full, &boxr);
            let row = blocked
                .analyze(mesh, &single, &boxr, &xb_box, &obs_box)
                .unwrap();
            prop_assert_eq!(
                xa.row(full.local_index(gp)),
                row.row(0),
                "point {:?} diverged from the per-point kernel", gp
            );
        }
    }

    #[test]
    fn perturbed_rows_have_requested_moments(seed in any::<u64>(), nens in 50usize..200) {
        let p = PerturbedObservations::new(seed, nens);
        let row = p.row(3, 2.0, 0.5);
        let mean = row.iter().sum::<f64>() / nens as f64;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (nens - 1) as f64;
        // Loose sampling bounds: the point is distributional sanity.
        prop_assert!((mean - 2.0).abs() < 0.5, "mean {mean}");
        prop_assert!(var > 0.01 && var < 1.5, "var {var}");
    }
}
