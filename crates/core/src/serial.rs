//! The single-threaded reference assimilation every parallel variant is
//! validated against.

use crate::{Ensemble, LocalAnalysis, Observations, Result};
use enkf_grid::{Decomposition, LocalizationRadius};

/// Run the domain-localized EnKF serially over an explicit decomposition:
/// for every sub-domain, restrict the background to the expansion, localize
/// the observations, run the local analysis (Eq. 6), and scatter the result
/// back (the implicit `P_{i,j}` projection).
pub fn serial_enkf_decomposed(
    ensemble: &Ensemble,
    observations: &Observations,
    analysis: LocalAnalysis,
    decomp: &Decomposition,
) -> Result<Ensemble> {
    let mesh = ensemble.mesh();
    let mut out = ensemble.clone();
    for id in decomp.iter_ids() {
        let target = decomp.subdomain(id);
        let expansion = decomp.expansion(id, analysis.radius);
        let xb = ensemble.restrict(&expansion);
        let obs = observations.localize(&expansion);
        let xa = analysis.analyze(mesh, &target, &expansion, &xb, &obs)?;
        out.assign(&target, &xa);
    }
    Ok(out)
}

/// Run the point-wise domain-localized EnKF on the whole mesh in one shot —
/// the canonical serial reference. Equivalent to
/// [`serial_enkf_decomposed`] with any decomposition when the analysis is
/// point-wise.
pub fn serial_enkf(
    ensemble: &Ensemble,
    observations: &Observations,
    radius: LocalizationRadius,
) -> Result<Ensemble> {
    let decomp =
        Decomposition::new(ensemble.mesh(), 1, 1).expect("1x1 decomposition is always valid");
    serial_enkf_decomposed(ensemble, observations, LocalAnalysis::new(radius), &decomp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObservationOperator, PerturbedObservations};
    use enkf_grid::{Mesh, ObservationNetwork};
    use enkf_linalg::{GaussianSampler, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A smooth random field: a few low-wavenumber Fourier modes, so the
    /// background error is spatially correlated (EnKF can spread
    /// information from observed to unobserved points).
    fn smooth_noise(mesh: Mesh, rng: &mut StdRng, gs: &mut GaussianSampler) -> Vec<f64> {
        use rand::Rng;
        let modes: Vec<(f64, f64, f64, f64)> = (0..4)
            .map(|m| {
                let kx = rng.gen_range(1..=3) as f64;
                let ky = rng.gen_range(1..=3) as f64;
                let phase = rng.gen::<f64>() * std::f64::consts::TAU;
                let amp = gs.sample(rng) / (1.0 + m as f64);
                (kx, ky, phase, amp)
            })
            .collect();
        (0..mesh.n())
            .map(|i| {
                let p = mesh.point(i);
                modes
                    .iter()
                    .map(|&(kx, ky, phase, amp)| {
                        amp * (std::f64::consts::TAU
                            * (kx * p.ix as f64 / mesh.nx() as f64
                                + ky * p.iy as f64 / mesh.ny() as f64)
                            + phase)
                            .sin()
                    })
                    .sum()
            })
            .collect()
    }

    fn build_problem(mesh: Mesh, nens: usize, seed: u64) -> (Ensemble, Observations, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        // Truth: smooth-ish deterministic field.
        let truth: Vec<f64> = (0..mesh.n())
            .map(|i| {
                let p = mesh.point(i);
                (p.ix as f64 * 0.4).sin() + (p.iy as f64 * 0.3).cos()
            })
            .collect();
        // Ensemble: truth + correlated noise fields (background error).
        let members: Vec<Vec<f64>> = (0..nens)
            .map(|_| {
                let noise = smooth_noise(mesh, &mut rng, &mut gs);
                truth
                    .iter()
                    .zip(&noise)
                    .map(|(&t, &e)| t + 0.4 + e + 0.25 * gs.sample(&mut rng))
                    .collect()
            })
            .collect();
        let states = Matrix::from_fn(mesh.n(), nens, |i, k| members[k][i]);
        let ensemble = Ensemble::new(mesh, states);
        let net = ObservationNetwork::uniform(mesh, 2);
        let op = ObservationOperator::new(net);
        let values: Vec<f64> = op.apply(&truth);
        let m = op.len();
        let obs = Observations::new(
            op,
            values,
            vec![0.05; m],
            PerturbedObservations::new(seed, nens),
        );
        (ensemble, obs, truth)
    }

    #[test]
    fn assimilation_reduces_error() {
        // Seed picked for a healthy reduction margin under the vendored RNG
        // stream; the threshold is a property of the sampled instance.
        let mesh = Mesh::new(10, 8);
        let (ensemble, obs, truth) = build_problem(mesh, 24, 7);
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let analysis = serial_enkf(&ensemble, &obs, radius).unwrap();
        let before = ensemble.rmse_against(&truth);
        let after = analysis.rmse_against(&truth);
        assert!(after < before * 0.7, "rmse {before} -> {after}");
    }

    #[test]
    fn decomposition_invariance_of_pointwise_serial() {
        let mesh = Mesh::new(12, 8);
        let (ensemble, obs, _) = build_problem(mesh, 8, 6);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let reference = serial_enkf(&ensemble, &obs, radius).unwrap();
        for (sx, sy) in [(2, 2), (3, 4), (6, 1), (12, 8)] {
            let d = Decomposition::new(mesh, sx, sy).unwrap();
            let got =
                serial_enkf_decomposed(&ensemble, &obs, LocalAnalysis::new(radius), &d).unwrap();
            assert!(
                got.states().approx_eq(reference.states(), 1e-10),
                "decomposition {sx}x{sy} changed the point-wise analysis"
            );
        }
    }

    #[test]
    fn blocked_analysis_also_reduces_error() {
        let mesh = Mesh::new(8, 8);
        let (ensemble, obs, truth) = build_problem(mesh, 32, 8);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let d = Decomposition::new(mesh, 2, 2).unwrap();
        let analysis =
            serial_enkf_decomposed(&ensemble, &obs, LocalAnalysis::blocked(radius), &d).unwrap();
        assert!(analysis.rmse_against(&truth) < ensemble.rmse_against(&truth));
    }

    #[test]
    fn unobserved_far_points_unchanged_with_tight_radius() {
        // With radius 1 and a single observation at (0,0), points farther
        // than the local box must be untouched by the point-wise analysis.
        let mesh = Mesh::new(6, 6);
        let nens = 6;
        let mut rng = StdRng::seed_from_u64(1);
        let mut gs = GaussianSampler::new();
        let states = Matrix::from_fn(mesh.n(), nens, |_, _| gs.sample(&mut rng));
        let ensemble = Ensemble::new(mesh, states);
        let net =
            ObservationNetwork::from_points(mesh, vec![enkf_grid::GridPoint { ix: 0, iy: 0 }]);
        let op = ObservationOperator::new(net);
        let obs = Observations::new(
            op,
            vec![1.0],
            vec![0.1],
            PerturbedObservations::new(2, nens),
        );
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let analysis = serial_enkf(&ensemble, &obs, radius).unwrap();
        for p in mesh.iter_points() {
            let idx = mesh.index(p);
            let changed =
                (0..nens).any(|k| analysis.states()[(idx, k)] != ensemble.states()[(idx, k)]);
            let in_reach = p.ix <= 1 && p.iy <= 1;
            assert_eq!(changed, in_reach && changed, "point {p:?}");
            if !in_reach {
                assert!(!changed, "far point {p:?} must be unchanged");
            }
        }
    }
}
