//! EnKF numerics: ensembles, observation operators, perturbed observations,
//! and the global and domain-localized analysis equations of the paper.
//!
//! The central objects are:
//!
//! * [`Ensemble`] — the background ensemble `Xᵇ ∈ R^{n×N}` (Eq. 2) with its
//!   mean and anomaly statistics (Eq. 4).
//! * [`Observations`] / [`PerturbedObservations`] — the observed values, the
//!   diagonal data-error covariance `R`, and the perturbed observation
//!   matrix `Yˢ ~ N(y, R)` (Eq. 3). Perturbations are generated
//!   *per observation row* from a deterministic seed, so any sub-setting of
//!   the observation network (localization, distribution over ranks)
//!   reproduces identical values — the property that makes the parallel
//!   implementations bit-compatible with the serial reference.
//! * [`LocalAnalysis`] — the localized analysis (Eq. 6) on a sub-domain /
//!   layer, with the inverse background covariance estimated by the
//!   modified Cholesky decomposition (P-EnKF's estimator) over either the
//!   whole expansion (`Region` granularity) or each grid point's local box
//!   (`PointWise` granularity; decomposition-invariant).
//! * [`serial_enkf`] — the single-threaded reference every parallel variant
//!   is validated against.

pub mod analysis;
pub mod batched;
pub mod ensemble;
pub mod inflation;
pub mod letkf;
pub mod local;
pub mod observation;
pub mod serial;

pub use analysis::GlobalAnalysis;
pub use batched::{batched_transform, serial_denkf, BatchedKernel};
pub use ensemble::Ensemble;
pub use inflation::{inflate_ensemble, inflated, mean_variance};
pub use letkf::{serial_letkf, serial_letkf_decomposed, LetkfAnalysis, LetkfWorkspace};
pub use local::{
    AnalysisGranularity, LocalAnalysis, LocalAnalysisWorkspace, LocalObsIndex, LocalObservations,
};
pub use observation::{ObservationOperator, Observations, PerturbedObservations};
pub use serial::{serial_enkf, serial_enkf_decomposed};

/// Errors from analysis computations.
#[derive(Debug)]
pub enum EnkfError {
    /// A linear-algebra kernel failed (dimension mismatch or a factorization
    /// that lost positive definiteness).
    Linalg(enkf_linalg::LinalgError),
    /// The ensemble and observation geometries disagree.
    GeometryMismatch(String),
    /// The execution substrate failed: an unreadable member file, an
    /// exhausted retry budget, a receive timeout or a crashed rank.
    Substrate(enkf_fault::SubstrateError),
}

impl From<enkf_linalg::LinalgError> for EnkfError {
    fn from(e: enkf_linalg::LinalgError) -> Self {
        EnkfError::Linalg(e)
    }
}

impl From<enkf_fault::SubstrateError> for EnkfError {
    fn from(e: enkf_fault::SubstrateError) -> Self {
        EnkfError::Substrate(e)
    }
}

impl std::fmt::Display for EnkfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnkfError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            EnkfError::GeometryMismatch(s) => write!(f, "geometry mismatch: {s}"),
            EnkfError::Substrate(e) => write!(f, "substrate failure: {e}"),
        }
    }
}

impl std::error::Error for EnkfError {}

/// Convenience alias for fallible EnKF operations.
pub type Result<T> = std::result::Result<T, EnkfError>;
