//! The global (un-localized) analysis equations, Eqs. (3) and (5).
//!
//! These dense forms are intractable at operational sizes — that is the
//! paper's premise — but they are the ground truth the localized machinery
//! is validated against on small problems, and they encode the
//! Sherman–Morrison–Woodbury equivalence between the covariance form (3)
//! and the precision form (5).

use crate::{Observations, Result};
use enkf_linalg::{Cholesky, Matrix};

/// Dense global analysis operators on small problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalAnalysis;

impl GlobalAnalysis {
    /// Covariance-form increment (Eq. 3):
    /// `δX^a = B Hᵀ (R + H B Hᵀ)⁻¹ (Yˢ − H Xᵇ)`.
    pub fn increment_covariance_form(
        b: &Matrix,
        obs: &Observations,
        xb: &Matrix,
    ) -> Result<Matrix> {
        let h = obs.operator().to_dense();
        let ys = obs.perturbed_matrix();
        let hxb = obs.operator().apply_ensemble(xb);
        let innovation = ys.sub(&hxb)?;
        // S = R + H B Hᵀ.
        let bht = b.matmul_tr(&h)?;
        let mut s = h.matmul(&bht)?;
        for (k, &v) in obs.error_var().iter().enumerate() {
            s[(k, k)] += v;
        }
        s.symmetrize();
        let ch = Cholesky::factor(&s)?;
        let w = ch.solve(&innovation)?;
        Ok(bht.matmul(&w)?)
    }

    /// Precision-form increment (Eq. 5):
    /// `δX^a = (B̂⁻¹ + Hᵀ R⁻¹ H)⁻¹ Hᵀ R⁻¹ (Yˢ − H Xᵇ)`.
    pub fn increment_precision_form(
        binv: &Matrix,
        obs: &Observations,
        xb: &Matrix,
    ) -> Result<Matrix> {
        let n = xb.nrows();
        let nens = xb.ncols();
        let ys = obs.perturbed_matrix();
        let hxb = obs.operator().apply_ensemble(xb);
        let innovation = ys.sub(&hxb)?;
        // A = B̂⁻¹ + Hᵀ R⁻¹ H (H is a selection: diagonal bumps).
        let mut a = binv.clone();
        let mesh = obs.operator().mesh();
        let rows: Vec<usize> = obs
            .operator()
            .network()
            .points()
            .iter()
            .map(|&p| mesh.index(p))
            .collect();
        for (k, &row) in rows.iter().enumerate() {
            a[(row, row)] += 1.0 / obs.error_var()[k];
        }
        a.symmetrize();
        // Z = Hᵀ R⁻¹ innovation.
        let mut z = Matrix::zeros(n, nens);
        for (k, &row) in rows.iter().enumerate() {
            let inv_var = 1.0 / obs.error_var()[k];
            for c in 0..nens {
                z[(row, c)] += inv_var * innovation[(k, c)];
            }
        }
        let ch = Cholesky::factor(&a)?;
        Ok(ch.solve(&z)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObservationOperator, PerturbedObservations};
    use enkf_grid::{Mesh, ObservationNetwork};
    use enkf_linalg::GaussianSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(nens: usize, seed: u64) -> (Matrix, Matrix, Observations) {
        let mesh = Mesh::new(4, 3);
        let n = mesh.n();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        // SPD B with decaying off-diagonals.
        let mut b = Matrix::from_fn(n, n, |i, j| 0.5f64.powi(i.abs_diff(j) as i32));
        b.symmetrize();
        let xb = Matrix::from_fn(n, nens, |_, _| gs.sample(&mut rng));
        let net = ObservationNetwork::uniform(mesh, 2);
        let op = ObservationOperator::new(net);
        let m = op.len();
        let values: Vec<f64> = (0..m).map(|k| 0.5 * k as f64).collect();
        let obs = Observations::new(
            op,
            values,
            vec![0.2; m],
            PerturbedObservations::new(77, nens),
        );
        (b, xb, obs)
    }

    #[test]
    fn covariance_and_precision_forms_agree() {
        // With B̂⁻¹ = B⁻¹ exactly, Eqs. (3) and (5) are algebraically equal
        // (Sherman–Morrison–Woodbury).
        let (b, xb, obs) = setup(6, 1);
        let d3 = GlobalAnalysis::increment_covariance_form(&b, &obs, &xb).unwrap();
        let binv = Cholesky::factor(&b).unwrap().inverse();
        let d5 = GlobalAnalysis::increment_precision_form(&binv, &obs, &xb).unwrap();
        assert!(
            d3.approx_eq(&d5, 1e-8),
            "max diff {}",
            d3.sub(&d5).unwrap().max_abs()
        );
    }

    #[test]
    fn increment_is_zero_for_perfect_background() {
        // If Yˢ == H Xᵇ exactly, the increment vanishes. Construct obs with
        // tiny variance and set xb to match the perturbed values at observed
        // points is fiddly; instead verify linearity: doubling the
        // innovation doubles the increment.
        let (b, xb, obs) = setup(5, 2);
        let d1 = GlobalAnalysis::increment_covariance_form(&b, &obs, &xb).unwrap();
        // Shift xb so innovation changes by a known amount: with selection
        // H, adding c to a state row changes that row's innovation by -c.
        let mut xb2 = xb.clone();
        let mesh = obs.operator().mesh();
        let row = mesh.index(obs.operator().network().points()[0]);
        for k in 0..xb2.ncols() {
            xb2[(row, k)] += 1.0;
        }
        let d2 = GlobalAnalysis::increment_covariance_form(&b, &obs, &xb2).unwrap();
        // The difference of increments equals the map applied to the
        // innovation difference: nonzero and finite.
        let diff = d1.sub(&d2).unwrap();
        assert!(diff.max_abs() > 1e-6);
        assert!(diff.max_abs().is_finite());
    }

    #[test]
    fn precision_form_pulls_mean_toward_observations() {
        let (b, xb, obs) = setup(16, 3);
        let binv = Cholesky::factor(&b).unwrap().inverse();
        let delta = GlobalAnalysis::increment_precision_form(&binv, &obs, &xb).unwrap();
        let xa = xb.add(&delta).unwrap();
        let mesh = obs.operator().mesh();
        let nens = xb.ncols() as f64;
        for (k, &p) in obs.operator().network().points().iter().enumerate() {
            let row = mesh.index(p);
            let before: f64 = xb.row(row).iter().sum::<f64>() / nens;
            let after: f64 = xa.row(row).iter().sum::<f64>() / nens;
            let y = obs.values()[k];
            assert!((after - y).abs() <= (before - y).abs() + 1e-9);
        }
    }
}
