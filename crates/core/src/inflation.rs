//! Multiplicative covariance inflation.
//!
//! Operational EnKFs inflate the background ensemble spread to counteract
//! the systematic variance under-estimation of small ensembles (a standard
//! companion to the localization this reproduction centers on): each
//! member's anomaly is scaled by `ρ ≥ 1` about the ensemble mean, which
//! multiplies the sample covariance by `ρ²` without moving the mean.

use crate::Ensemble;
use enkf_linalg::Matrix;

/// Scale every member's deviation from the ensemble mean by `rho`.
pub fn inflate_ensemble(ensemble: &mut Ensemble, rho: f64) {
    assert!(
        rho > 0.0 && rho.is_finite(),
        "inflation factor must be positive"
    );
    if rho == 1.0 {
        return;
    }
    let mesh = ensemble.mesh();
    let mean = ensemble.mean();
    let nens = ensemble.size();
    let mut states = ensemble.states().clone();
    for i in 0..states.nrows() {
        let mi = mean[i];
        for k in 0..nens {
            states[(i, k)] = mi + rho * (states[(i, k)] - mi);
        }
    }
    *ensemble = Ensemble::new(mesh, states);
}

/// A copy of the ensemble with inflated anomalies.
pub fn inflated(ensemble: &Ensemble, rho: f64) -> Ensemble {
    let mut out = ensemble.clone();
    inflate_ensemble(&mut out, rho);
    out
}

/// Estimate the mean ensemble variance (averaged over components) — the
/// spread statistic inflation tuning monitors.
pub fn mean_variance(ensemble: &Ensemble) -> f64 {
    let u: Matrix = ensemble.anomalies();
    let denom = ((ensemble.size() - 1) * ensemble.dim()) as f64;
    u.as_slice().iter().map(|&v| v * v).sum::<f64>() / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_grid::Mesh;
    use enkf_linalg::GaussianSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ensemble(seed: u64) -> Ensemble {
        let mesh = Mesh::new(6, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        Ensemble::new(
            mesh,
            Matrix::from_fn(mesh.n(), 10, |_, _| gs.sample(&mut rng)),
        )
    }

    #[test]
    fn mean_is_invariant() {
        let e = ensemble(1);
        let before = e.mean();
        let after = inflated(&e, 1.7).mean();
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn variance_scales_quadratically() {
        let e = ensemble(2);
        let v0 = mean_variance(&e);
        let v = mean_variance(&inflated(&e, 2.0));
        assert!((v / v0 - 4.0).abs() < 1e-9, "ratio {}", v / v0);
    }

    #[test]
    fn unit_factor_is_identity() {
        let e = ensemble(3);
        assert_eq!(inflated(&e, 1.0).states(), e.states());
    }

    #[test]
    #[should_panic(expected = "inflation factor must be positive")]
    fn rejects_non_positive() {
        let mut e = ensemble(4);
        inflate_ensemble(&mut e, 0.0);
    }

    #[test]
    fn deflation_shrinks_spread() {
        let e = ensemble(5);
        assert!(mean_variance(&inflated(&e, 0.5)) < mean_variance(&e));
    }
}
