//! The non-sequential (batched) analysis of the distributed-array D-EnKF.
//!
//! The localized analyses (`LocalAnalysis`) assimilate observations
//! point-locally; the batched update assimilates the **whole** observation
//! network in one covariance-form step (the non-sequential scheme of
//! arXiv 2311.12909):
//!
//! ```text
//! S  = H U                       (m × N observed anomalies)
//! D  = Yˢ − H Xᵇ                 (m × N perturbed innovations)
//! C  = S Sᵀ/(N−1) + R            (m × m innovation covariance)
//! T  = Sᵀ C⁻¹ D / (N−1)          (N × N ensemble transform)
//! Xᵃ = Xᵇ + U T
//! ```
//!
//! `H` never materializes (point selection), and the cross-covariance
//! `B Hᵀ = U Sᵀ/(N−1)` is applied matrix-free through the kernel-layer
//! GEMMs — the state dimension only ever appears in `U T`, whose rows are
//! independent. That row independence is what the distributed executor
//! exploits: every rank owns a contiguous shard of state rows, builds the
//! same global `T` from exchanged observation-space blocks, and applies
//! `U_shard T` locally. Because the kernel GEMM accumulates over `k` in a
//! fixed order regardless of output shape, a shard's rows are
//! **bit-identical** to the same rows of the serial product — shard-count
//! invariance is exact, not approximate.
//!
//! The `C⁻¹` application is selectable: a dense Cholesky factorization of
//! `C`, or the inversion-free iterative Sherman-Morrison scheme
//! ([`enkf_linalg::ShermanMorrisonWorkspace`], arXiv 1302.3876) that never
//! forms `C` at all. Cross-kernel equivalence is pinned by the proptests in
//! `tests/cross_variant_equivalence.rs`.

use crate::{Ensemble, Observations, Result};
use enkf_linalg::{Cholesky, Matrix, ShermanMorrisonWorkspace};

/// Which kernel applies `C⁻¹` in the batched update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BatchedKernel {
    /// Dense Cholesky factorization of the assembled `m × m` innovation
    /// covariance — `O(m³)` but cubically stable.
    #[default]
    Cholesky,
    /// Iterative Sherman-Morrison rank-1 folding (arXiv 1302.3876):
    /// `O(m N (N + n_rhs))`, never materializes `C`.
    ShermanMorrison,
}

/// Compute the batched ensemble transform `T = Sᵀ C⁻¹ D / (N−1)` from the
/// observed anomalies `S` (`m × N`), the perturbed innovations `D`
/// (`m × N`) and the data-error variances `r` (diagonal of `R`, length
/// `m`), applying `C⁻¹ = (S Sᵀ/(N−1) + diag(r))⁻¹` with the selected
/// kernel.
///
/// Every distributed rank calls this on the identically-assembled global
/// `S`/`D`, so the returned `T` is bitwise rank-independent.
pub fn batched_transform(
    s: &Matrix,
    d: &Matrix,
    r: &[f64],
    kernel: BatchedKernel,
) -> Result<Matrix> {
    let m = s.nrows();
    let n = s.ncols();
    if d.nrows() != m || r.len() != m {
        return Err(crate::EnkfError::GeometryMismatch(format!(
            "batched transform: S is {m}×{n}, D is {}×{}, |r| = {}",
            d.nrows(),
            d.ncols(),
            r.len()
        )));
    }
    if n < 2 {
        return Err(crate::EnkfError::GeometryMismatch(
            "batched transform needs at least 2 members".into(),
        ));
    }
    let denom = (n - 1) as f64;
    if m == 0 {
        // Nothing observed: the transform is zero (Xᵃ = Xᵇ).
        return Ok(Matrix::zeros(n, d.ncols()));
    }
    // V = S / √(N−1), so C = V Vᵀ + diag(r).
    let v = s.scale(1.0 / denom.sqrt());
    let w = match kernel {
        BatchedKernel::Cholesky => {
            let mut c = v.matmul_tr(&v)?;
            for (i, &ri) in r.iter().enumerate() {
                c[(i, i)] += ri;
            }
            Cholesky::factor(&c)?.solve(d)?
        }
        BatchedKernel::ShermanMorrison => ShermanMorrisonWorkspace::new().solve(r, &v, d)?,
    };
    Ok(s.tr_matmul(&w)?.scale(1.0 / denom))
}

/// The serial reference of the batched update: assimilate the full
/// observation set against the full-state ensemble in one non-sequential
/// step. No localization is applied — the batched scheme trades the
/// localized estimator for the whole-network sample covariance, which is
/// well-posed when the ensemble is large relative to the state (the
/// regime the cross-variant tolerance test pins) and regularized by `R`
/// otherwise.
pub fn serial_denkf(
    ensemble: &Ensemble,
    observations: &Observations,
    kernel: BatchedKernel,
) -> Result<Ensemble> {
    let xb = ensemble.states();
    if observations.perturbed().members() != ensemble.size() {
        return Err(crate::EnkfError::GeometryMismatch(
            "perturbed-observation member count differs from ensemble size".into(),
        ));
    }
    // S = H Xᵇ − mean(H Xᵇ): selecting rows commutes with row-mean
    // subtraction, so this equals H U without touching state space.
    let mut s = observations.operator().apply_ensemble(xb);
    let hx = s.clone();
    let means = s.row_means();
    s.subtract_row_vector(&means);
    // D = Yˢ − H Xᵇ.
    let mut d = observations.perturbed_matrix();
    d.axpy(-1.0, &hx)?;
    let t = batched_transform(&s, &d, observations.error_var(), kernel)?;
    // Xᵃ = Xᵇ + U T.
    let mut u = xb.clone();
    let state_means = u.row_means();
    u.subtract_row_vector(&state_means);
    let mut xa = xb.clone();
    xa.axpy(1.0, &u.matmul(&t)?)?;
    Ok(Ensemble::new(ensemble.mesh(), xa))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObservationOperator, PerturbedObservations};
    use enkf_grid::{Mesh, ObservationNetwork};
    use enkf_linalg::GaussianSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario(mesh: Mesh, members: usize, stride: usize, seed: u64) -> (Ensemble, Observations) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let states = Matrix::from_fn(mesh.n(), members, |_, _| gs.sample(&mut rng));
        let ensemble = Ensemble::new(mesh, states);
        let net = ObservationNetwork::uniform(mesh, stride);
        let op = ObservationOperator::new(net);
        let m = op.len();
        let values: Vec<f64> = (0..m).map(|k| (k as f64 * 0.37).sin()).collect();
        let obs = Observations::new(
            op,
            values,
            vec![0.09; m],
            PerturbedObservations::new(seed ^ 0x5A5A, members),
        );
        (ensemble, obs)
    }

    #[test]
    fn kernels_agree_on_the_transform() {
        let mesh = Mesh::new(8, 6);
        let (ensemble, obs) = scenario(mesh, 6, 2, 3);
        let a = serial_denkf(&ensemble, &obs, BatchedKernel::Cholesky).unwrap();
        let b = serial_denkf(&ensemble, &obs, BatchedKernel::ShermanMorrison).unwrap();
        assert!(
            a.states().approx_eq(b.states(), 1e-9),
            "Cholesky and Sherman-Morrison batched updates diverge"
        );
    }

    #[test]
    fn update_moves_toward_observations() {
        // The analysis mean at observed points must be closer to the
        // observed values than the background mean was.
        let mesh = Mesh::new(10, 8);
        let (ensemble, obs) = scenario(mesh, 12, 2, 9);
        let xa = serial_denkf(&ensemble, &obs, BatchedKernel::Cholesky).unwrap();
        let before = obs.operator().apply(&ensemble.mean());
        let after = obs.operator().apply(&xa.mean());
        let err = |v: &[f64]| -> f64 {
            v.iter()
                .zip(obs.values())
                .map(|(a, y)| (a - y).powi(2))
                .sum()
        };
        assert!(
            err(&after) < err(&before),
            "batched update must reduce observed-space error"
        );
    }

    #[test]
    fn empty_network_is_identity() {
        let mesh = Mesh::new(4, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut gs = GaussianSampler::new();
        let states = Matrix::from_fn(mesh.n(), 4, |_, _| gs.sample(&mut rng));
        let ensemble = Ensemble::new(mesh, states);
        let op = ObservationOperator::new(ObservationNetwork::from_points(mesh, vec![]));
        let obs = Observations::new(op, vec![], vec![], PerturbedObservations::new(0, 4));
        let xa = serial_denkf(&ensemble, &obs, BatchedKernel::ShermanMorrison).unwrap();
        assert_eq!(xa.states().as_slice(), ensemble.states().as_slice());
    }

    #[test]
    fn member_count_mismatch_is_rejected() {
        let mesh = Mesh::new(6, 4);
        let (ensemble, obs) = scenario(mesh, 5, 2, 4);
        let wrong = obs.with_members(3);
        assert!(serial_denkf(&ensemble, &wrong, BatchedKernel::Cholesky).is_err());
    }
}
