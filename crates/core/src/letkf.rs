//! The deterministic ensemble-space analysis (LETKF).
//!
//! The paper's introduction situates L-EnKF implementations in "a
//! deterministic formulation of the EnKF in the ensemble space" (Ott et
//! al. 2004; Hunt's LETKF). This module provides that formulation as an
//! alternative local analysis kernel: instead of perturbing observations
//! and solving in state space with the modified-Cholesky `B̂⁻¹`, the update
//! is computed in the `N`-dimensional ensemble space,
//!
//! ```text
//! M   = (N−1) I / ρ + (H U)ᵀ R⁻¹ (H U)          (ρ = multiplicative inflation)
//! P̃a  = M⁻¹
//! Wa  = sqrt(N−1) · M^{−1/2}
//! w̄   = P̃a (H U)ᵀ R⁻¹ (y − H x̄)
//! X^a = x̄ ⊗ 1ᵀ + U (Wa + w̄ ⊗ 1ᵀ)
//! ```
//!
//! with the inverse and symmetric square root from the Jacobi
//! eigendecomposition in ensemble space (`N × N`, small).

use crate::local::{AnalysisGranularity, LocalObsIndex, LocalObservations};
use crate::{EnkfError, Ensemble, Observations, Result};
use enkf_grid::{Decomposition, GridPoint, LocalizationRadius, Mesh, RegionRect};
use enkf_linalg::{EigenWorkspace, Matrix};
use rayon::prelude::*;
use std::sync::Mutex;

/// The LETKF local analysis kernel. Interface mirrors
/// [`crate::LocalAnalysis`]; observations are used *unperturbed* (the
/// deterministic square-root filter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LetkfAnalysis {
    /// Localization radius `(ξ, η)`.
    pub radius: LocalizationRadius,
    /// Multiplicative covariance inflation `ρ ≥ 1` applied to the
    /// background ensemble covariance in ensemble space.
    pub inflation: f64,
    /// Analysis granularity (point-wise is the standard LETKF).
    pub granularity: AnalysisGranularity,
}

impl LetkfAnalysis {
    /// Point-wise LETKF without inflation.
    pub fn new(radius: LocalizationRadius) -> Self {
        LetkfAnalysis {
            radius,
            inflation: 1.0,
            granularity: AnalysisGranularity::PointWise,
        }
    }

    /// Builder-style inflation override.
    pub fn with_inflation(mut self, rho: f64) -> Self {
        assert!(rho >= 1.0, "inflation must be >= 1");
        self.inflation = rho;
        self
    }

    /// Compute the LETKF analysis on `target` given background data on
    /// `expansion` (same contract as [`crate::LocalAnalysis::analyze`]).
    pub fn analyze(
        &self,
        mesh: Mesh,
        target: &RegionRect,
        expansion: &RegionRect,
        xb: &Matrix,
        obs: &LocalObservations,
    ) -> Result<Matrix> {
        if !expansion.contains_rect(target) {
            return Err(EnkfError::GeometryMismatch(format!(
                "target {target:?} escapes expansion {expansion:?}"
            )));
        }
        if xb.nrows() != expansion.npoints() {
            return Err(EnkfError::GeometryMismatch(format!(
                "xb has {} rows, expansion has {} points",
                xb.nrows(),
                expansion.npoints()
            )));
        }
        let needed = target.expand(self.radius, mesh);
        if !expansion.contains_rect(&needed) {
            return Err(EnkfError::GeometryMismatch(format!(
                "expansion {expansion:?} misses halo {needed:?} of target"
            )));
        }
        match self.granularity {
            AnalysisGranularity::Region => self.analyze_region(target, expansion, xb, obs),
            AnalysisGranularity::PointWise => {
                self.analyze_pointwise(mesh, target, expansion, xb, obs)
            }
        }
    }

    fn analyze_region(
        &self,
        target: &RegionRect,
        expansion: &RegionRect,
        xb: &Matrix,
        obs: &LocalObservations,
    ) -> Result<Matrix> {
        let target_rows = expansion.local_indices_of(target);
        if obs.is_empty() {
            return Ok(xb.select_rows(&target_rows));
        }
        let nens = xb.ncols();
        let mbar = obs.len();
        let mean = xb.row_means();
        let mut u = xb.clone();
        u.subtract_row_vector(&mean);

        // Yb = H U (selection rows), innovation d = y − H x̄, local R diag.
        let mut ws = LetkfWorkspace::new();
        ws.yb.resize(mbar, nens);
        ws.d.clear();
        ws.d.resize(mbar, 0.0);
        ws.rvar.clear();
        ws.rvar.extend_from_slice(&obs.error_var);
        for (r, &row) in obs.local_rows.iter().enumerate() {
            ws.yb.row_mut(r).copy_from_slice(u.row(row));
            ws.d[r] = obs.values[r] - mean[row];
        }
        self.build_transform(nens, &mut ws)?;

        // X^a = x̄ ⊗ 1ᵀ + U W restricted to target rows.
        let incr = u.matmul(&ws.w_a)?;
        let mut xa = Matrix::zeros(target_rows.len(), nens);
        for (out_r, &row) in target_rows.iter().enumerate() {
            let mv = mean[row];
            let dst = xa.row_mut(out_r);
            dst.copy_from_slice(incr.row(row));
            for x in dst {
                *x += mv;
            }
        }
        Ok(xa)
    }

    /// Point-wise LETKF, parallelized with `par_chunks_mut` directly over
    /// the output matrix rows. Each worker allocates one
    /// [`LetkfWorkspace`] and reuses it across all its grid points; the
    /// steady-state per-point loop performs no heap allocation. Results are
    /// bit-identical to running the Region-granularity kernel on each
    /// point's box.
    fn analyze_pointwise(
        &self,
        mesh: Mesh,
        target: &RegionRect,
        expansion: &RegionRect,
        xb: &Matrix,
        obs: &LocalObservations,
    ) -> Result<Matrix> {
        let nens = xb.ncols();
        let npoints = target.npoints();
        let mut out = Matrix::zeros(npoints, nens);
        if npoints == 0 || nens == 0 {
            return Ok(out);
        }
        let cell = self.radius.xi.max(self.radius.eta).max(1);
        let index = LocalObsIndex::build(obs, expansion, cell);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let chunk_rows = npoints.div_ceil(workers).max(1);
        let first_err: Mutex<Option<EnkfError>> = Mutex::new(None);
        out.as_mut_slice()
            .par_chunks_mut(chunk_rows * nens)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let mut ws = LetkfWorkspace::new();
                let base = ci * chunk_rows;
                for (i, row) in chunk.chunks_mut(nens).enumerate() {
                    let p = target.point_at(base + i);
                    if let Err(e) =
                        self.analyze_point_into(mesh, p, expansion, xb, obs, &index, &mut ws, row)
                    {
                        let mut slot = first_err.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                }
            });
        if let Some(e) = first_err.lock().unwrap().take() {
            return Err(e);
        }
        Ok(out)
    }

    /// One grid point's LETKF analysis written into its output row.
    ///
    /// Bit-identical to `analyze_region` on the point's box: the kernels
    /// (eigensolve, spectrum maps, blocked products) are shared, and the
    /// single target row of `U W` is computed with the same blocked-GEMM
    /// accumulation order the full product uses.
    #[allow(clippy::too_many_arguments)]
    pub fn analyze_point_into(
        &self,
        mesh: Mesh,
        p: GridPoint,
        expansion: &RegionRect,
        xb: &Matrix,
        obs: &LocalObservations,
        index: &LocalObsIndex,
        ws: &mut LetkfWorkspace,
        out_row: &mut [f64],
    ) -> Result<()> {
        let single = RegionRect::new(p.ix, p.ix + 1, p.iy, p.iy + 1);
        let boxr = single.expand(self.radius, mesh);
        debug_assert!(expansion.contains_rect(&boxr));
        ws.box_rows.clear();
        for q in boxr.iter_points() {
            ws.box_rows.push(expansion.local_index(q));
        }
        xb.select_rows_into(&ws.box_rows, &mut ws.xb_box);
        index.sub_localize_into(obs, &boxr, &mut ws.obs_scratch, &mut ws.obs_box);
        let t = boxr.local_index(p);
        if ws.obs_box.is_empty() {
            out_row.copy_from_slice(ws.xb_box.row(t));
            return Ok(());
        }
        let nens = ws.xb_box.ncols();
        let mbar = ws.obs_box.len();
        // x̄ and U (the gathered background becomes the anomaly matrix).
        ws.xb_box.row_means_into(&mut ws.mean);
        ws.xb_box.subtract_row_vector(&ws.mean);

        // Yb = H U (selection rows), innovation d = y − H x̄, local R diag.
        ws.yb.resize(mbar, nens);
        ws.d.clear();
        ws.d.resize(mbar, 0.0);
        ws.rvar.clear();
        ws.rvar.extend_from_slice(&ws.obs_box.error_var);
        for (r, &row) in ws.obs_box.local_rows.iter().enumerate() {
            ws.yb.row_mut(r).copy_from_slice(ws.xb_box.row(row));
            ws.d[r] = ws.obs_box.values[r] - ws.mean[row];
        }
        self.build_transform(nens, ws)?;

        // Only row t of X^a = x̄ ⊗ 1ᵀ + U W is needed.
        let u = &ws.xb_box;
        ws.urow.resize(1, nens);
        ws.urow.row_mut(0).copy_from_slice(u.row(t));
        ws.urow.matmul_into(&ws.w_a, &mut ws.incr)?;
        let mv = ws.mean[t];
        for (o, &inc) in out_row.iter_mut().zip(ws.incr.row(0)) {
            *o = mv + inc;
        }
        Ok(())
    }

    /// Build the complete transform `W = Wa + w̄ ⊗ 1ᵀ` into `ws.w_a` from
    /// the local observation anomalies `ws.yb`, innovations `ws.d` and
    /// error variances `ws.rvar`.
    ///
    /// Two mathematically equivalent routes, chosen by problem shape:
    ///
    /// * `m̄ ≥ N`: the textbook ensemble-space eigenproblem on
    ///   `M = (N−1)/ρ I + Ybᵀ R⁻¹ Yb` (`N × N`).
    /// * `m̄ < N`: the observation-space dual. `Ybᵀ R⁻¹ Yb = Sᵀ S` with
    ///   `S = R^{−1/2} Yb` has rank ≤ m̄, so the non-trivial spectrum comes
    ///   from the `m̄ × m̄` Gram matrix `S Sᵀ`: its eigenpairs `(σ²ᵢ, uᵢ)`
    ///   give `M = shift·I + Σ σ²ᵢ vᵢvᵢᵀ` with `vᵢ = Sᵀuᵢ/σᵢ`, and any
    ///   spectral function is
    ///   `f(M) = f(shift)·I + Σ (f(shift+σ²ᵢ) − f(shift)) vᵢvᵢᵀ`.
    ///   In the point-wise LETKF `m̄` is the handful of observations in one
    ///   local box while the Jacobi eigensolve scales cubically, so this
    ///   dual is the fast path behind the kernel's speedup.
    fn build_transform(&self, nens: usize, ws: &mut LetkfWorkspace) -> Result<()> {
        let mbar = ws.yb.nrows();
        let shift = (nens - 1) as f64 / self.inflation;
        if mbar >= nens {
            // M = (N−1)/ρ I + Ybᵀ R⁻¹ Yb in ensemble space.
            ws.m.resize(nens, nens);
            for r in 0..mbar {
                let invv = 1.0 / ws.rvar[r];
                let row = ws.yb.row(r);
                for a in 0..nens {
                    let fa = invv * row[a];
                    if fa == 0.0 {
                        continue;
                    }
                    let mrow = ws.m.row_mut(a);
                    for (x, &rb) in mrow.iter_mut().zip(row) {
                        *x += fa * rb;
                    }
                }
            }
            for a in 0..nens {
                ws.m[(a, a)] += shift;
            }
            ws.eig.decompose(&ws.m)?;
            if ws.eig.min_eigenvalue() <= 0.0 {
                return Err(EnkfError::Linalg(
                    enkf_linalg::LinalgError::NotPositiveDefinite(0),
                ));
            }
            ws.eig.map_spectrum_into(|l| 1.0 / l, &mut ws.p_tilde)?;
            ws.eig
                .map_spectrum_into(|l| ((nens - 1) as f64 / l).sqrt(), &mut ws.w_a)?;
        } else {
            // Observation-space dual: S = R^{−1/2} Yb, Gram = S Sᵀ.
            ws.s.resize(mbar, nens);
            for r in 0..mbar {
                let inv_sd = 1.0 / ws.rvar[r].sqrt();
                for (o, &y) in ws.s.row_mut(r).iter_mut().zip(ws.yb.row(r)) {
                    *o = y * inv_sd;
                }
            }
            ws.s.matmul_tr_into(&ws.s, &mut ws.gram)?;
            ws.eig.decompose(&ws.gram)?;
            // Basis V = Sᵀ U diag(1/σ). Directions with σ² ≤ 0 (numerical
            // noise in the positive-semidefinite Gram) belong to the
            // complement, where f(M) acts as f(shift); zeroing the column
            // removes their (null) contribution without dividing by zero.
            ws.s.tr_matmul_into(ws.eig.vectors(), &mut ws.basis)?;
            for i in 0..mbar {
                let lam = ws.eig.values()[i];
                let scale = if lam > 0.0 { 1.0 / lam.sqrt() } else { 0.0 };
                for r in 0..nens {
                    ws.basis[(r, i)] *= scale;
                }
            }
            // P̃a = M⁻¹ via f(λ) = 1/λ.
            ws.bscaled.copy_from(&ws.basis);
            for i in 0..mbar {
                let lam = ws.eig.values()[i].max(0.0);
                let dp = 1.0 / (shift + lam) - 1.0 / shift;
                for r in 0..nens {
                    ws.bscaled[(r, i)] *= dp;
                }
            }
            ws.bscaled.matmul_tr_into(&ws.basis, &mut ws.p_tilde)?;
            ws.p_tilde.symmetrize();
            for a in 0..nens {
                ws.p_tilde[(a, a)] += 1.0 / shift;
            }
            // Wa = sqrt(N−1)·M^{−1/2} via f(λ) = sqrt((N−1)/λ).
            let w0 = ((nens - 1) as f64 / shift).sqrt();
            ws.bscaled.copy_from(&ws.basis);
            for i in 0..mbar {
                let lam = ws.eig.values()[i].max(0.0);
                let dw = ((nens - 1) as f64 / (shift + lam)).sqrt() - w0;
                for r in 0..nens {
                    ws.bscaled[(r, i)] *= dw;
                }
            }
            ws.bscaled.matmul_tr_into(&ws.basis, &mut ws.w_a)?;
            ws.w_a.symmetrize();
            for a in 0..nens {
                ws.w_a[(a, a)] += w0;
            }
        }

        // w̄ = P̃a Ybᵀ R⁻¹ d, folded into the transform: W = Wa + w̄ ⊗ 1ᵀ.
        ws.g.clear();
        ws.g.resize(nens, 0.0);
        for r in 0..mbar {
            let scale = ws.d[r] / ws.rvar[r];
            let row = ws.yb.row(r);
            for (gv, &ya) in ws.g.iter_mut().zip(row) {
                *gv += ya * scale;
            }
        }
        ws.p_tilde.matvec_into(&ws.g, &mut ws.w_bar)?;
        for (a, &wv) in ws.w_bar.iter().enumerate() {
            for x in ws.w_a.row_mut(a) {
                *x += wv;
            }
        }
        Ok(())
    }
}

/// Per-thread scratch buffers for the point-wise LETKF.
///
/// One instance per worker, reused across every grid point the worker
/// analyzes; at steady state the per-point loop performs no heap
/// allocation (see the counting-allocator test in `crates/core/tests`).
#[derive(Debug, Clone)]
pub struct LetkfWorkspace {
    box_rows: Vec<usize>,
    /// Gathered background rows; overwritten in place by the anomalies `U`.
    xb_box: Matrix,
    mean: Vec<f64>,
    obs_box: LocalObservations,
    obs_scratch: Vec<usize>,
    yb: Matrix,
    d: Vec<f64>,
    rvar: Vec<f64>,
    m: Matrix,
    eig: EigenWorkspace,
    p_tilde: Matrix,
    /// `Wa` during the transform build, `W = Wa + w̄ ⊗ 1ᵀ` on exit.
    w_a: Matrix,
    g: Vec<f64>,
    w_bar: Vec<f64>,
    /// Observation-space dual buffers: `S = R^{−1/2} Yb`, its Gram matrix,
    /// the lifted eigenbasis `V` and a spectral-scaled copy of it.
    s: Matrix,
    gram: Matrix,
    basis: Matrix,
    bscaled: Matrix,
    urow: Matrix,
    incr: Matrix,
}

impl Default for LetkfWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl LetkfWorkspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        LetkfWorkspace {
            box_rows: Vec::new(),
            xb_box: Matrix::zeros(0, 0),
            mean: Vec::new(),
            obs_box: LocalObservations {
                local_rows: Vec::new(),
                values: Vec::new(),
                error_var: Vec::new(),
                perturbed: Matrix::zeros(0, 0),
            },
            obs_scratch: Vec::new(),
            yb: Matrix::zeros(0, 0),
            d: Vec::new(),
            rvar: Vec::new(),
            m: Matrix::zeros(0, 0),
            eig: EigenWorkspace::new(),
            p_tilde: Matrix::zeros(0, 0),
            w_a: Matrix::zeros(0, 0),
            g: Vec::new(),
            w_bar: Vec::new(),
            s: Matrix::zeros(0, 0),
            gram: Matrix::zeros(0, 0),
            basis: Matrix::zeros(0, 0),
            bscaled: Matrix::zeros(0, 0),
            urow: Matrix::zeros(0, 0),
            incr: Matrix::zeros(0, 0),
        }
    }
}

/// Serial LETKF over an explicit decomposition (mirrors
/// [`crate::serial_enkf_decomposed`]).
pub fn serial_letkf_decomposed(
    ensemble: &Ensemble,
    observations: &Observations,
    analysis: LetkfAnalysis,
    decomp: &Decomposition,
) -> Result<Ensemble> {
    let mesh = ensemble.mesh();
    let mut out = ensemble.clone();
    for id in decomp.iter_ids() {
        let target = decomp.subdomain(id);
        let expansion = decomp.expansion(id, analysis.radius);
        let xb = ensemble.restrict(&expansion);
        let obs = observations.localize(&expansion);
        let xa = analysis.analyze(mesh, &target, &expansion, &xb, &obs)?;
        out.assign(&target, &xa);
    }
    Ok(out)
}

/// Point-wise serial LETKF on the whole mesh.
pub fn serial_letkf(
    ensemble: &Ensemble,
    observations: &Observations,
    radius: LocalizationRadius,
) -> Result<Ensemble> {
    let decomp =
        Decomposition::new(ensemble.mesh(), 1, 1).expect("1x1 decomposition is always valid");
    serial_letkf_decomposed(ensemble, observations, LetkfAnalysis::new(radius), &decomp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GlobalAnalysis, ObservationOperator, PerturbedObservations};
    use enkf_grid::{Mesh, ObservationNetwork};
    use enkf_linalg::GaussianSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Smooth correlated error field (low-wavenumber modes + nugget), so
    /// information can spread from observed to unobserved points.
    fn smooth_noise(mesh: Mesh, rng: &mut StdRng, gs: &mut GaussianSampler) -> Vec<f64> {
        use rand::Rng;
        let modes: Vec<(f64, f64, f64, f64)> = (0..4)
            .map(|m| {
                let kx = rng.gen_range(1..=2) as f64;
                let ky = rng.gen_range(1..=2) as f64;
                let phase = rng.gen::<f64>() * std::f64::consts::TAU;
                let amp = gs.sample(rng) / (1.0 + m as f64);
                (kx, ky, phase, amp)
            })
            .collect();
        (0..mesh.n())
            .map(|i| {
                let p = mesh.point(i);
                let smooth: f64 = modes
                    .iter()
                    .map(|&(kx, ky, ph, a)| {
                        a * (std::f64::consts::TAU
                            * (kx * p.ix as f64 / mesh.nx() as f64
                                + ky * p.iy as f64 / mesh.ny() as f64)
                            + ph)
                            .sin()
                    })
                    .sum();
                smooth + 0.2 * gs.sample(rng)
            })
            .collect()
    }

    fn problem(mesh: Mesh, nens: usize, seed: u64) -> (Ensemble, Observations, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let truth: Vec<f64> = (0..mesh.n())
            .map(|i| {
                let p = mesh.point(i);
                (p.ix as f64 * 0.3).sin() + (p.iy as f64 * 0.4).cos()
            })
            .collect();
        let members: Vec<Vec<f64>> = (0..nens)
            .map(|_| {
                let noise = smooth_noise(mesh, &mut rng, &mut gs);
                truth
                    .iter()
                    .zip(&noise)
                    .map(|(&t, &e)| t + 0.4 + e)
                    .collect()
            })
            .collect();
        let states = Matrix::from_fn(mesh.n(), nens, |i, k| members[k][i]);
        let ensemble = Ensemble::new(mesh, states);
        let net = ObservationNetwork::uniform(mesh, 2);
        let op = ObservationOperator::new(net);
        let values = op.apply(&truth);
        let m = op.len();
        let obs = Observations::new(
            op,
            values,
            vec![0.05; m],
            PerturbedObservations::new(seed, nens),
        );
        (ensemble, obs, truth)
    }

    #[test]
    fn letkf_reduces_error() {
        // Seed picked for a healthy reduction margin under the vendored RNG
        // stream; the threshold is a property of the sampled instance.
        let mesh = Mesh::new(10, 8);
        let (ensemble, obs, truth) = problem(mesh, 20, 13);
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let analysis = serial_letkf(&ensemble, &obs, radius).unwrap();
        assert!(
            analysis.rmse_against(&truth) < ensemble.rmse_against(&truth) * 0.7,
            "rmse {} -> {}",
            ensemble.rmse_against(&truth),
            analysis.rmse_against(&truth)
        );
    }

    #[test]
    fn letkf_mean_matches_kalman_mean_without_localization() {
        // With the full domain as one box and B = U Uᵀ/(N−1), the LETKF
        // mean must equal the covariance-form Kalman mean with unperturbed
        // observations.
        let mesh = Mesh::new(4, 3);
        let nens = 24;
        let (ensemble, obs, _) = problem(mesh, nens, 5);
        let n = mesh.n();
        let full = RegionRect::full(mesh);

        // LETKF with a radius covering the whole mesh (no localization).
        let radius = LocalizationRadius { xi: 4, eta: 3 };
        let la = LetkfAnalysis {
            granularity: AnalysisGranularity::Region,
            ..LetkfAnalysis::new(radius)
        };
        let xb = ensemble.restrict(&full);
        let local = obs.localize(&full);
        let xa = la.analyze(mesh, &full, &full, &xb, &local).unwrap();
        let letkf_mean = xa.row_means();

        // Kalman mean via Eq. (3) with ensemble covariance and Yˢ = y ⊗ 1.
        let b = ensemble.covariance();
        let h = obs.operator().to_dense();
        let innovation_mean = {
            let hx = h.matvec(&ensemble.mean()).unwrap();
            obs.values()
                .iter()
                .zip(&hx)
                .map(|(y, hx)| y - hx)
                .collect::<Vec<_>>()
        };
        let bht = b.matmul_tr(&h).unwrap();
        let mut s = h.matmul(&bht).unwrap();
        for (k, &v) in obs.error_var().iter().enumerate() {
            s[(k, k)] += v;
        }
        s.symmetrize();
        let w = enkf_linalg::Cholesky::factor(&s)
            .unwrap()
            .solve_vec(&innovation_mean)
            .unwrap();
        let delta = bht.matvec(&w).unwrap();
        let kalman_mean: Vec<f64> = ensemble
            .mean()
            .iter()
            .zip(&delta)
            .map(|(m, d)| m + d)
            .collect();

        for i in 0..n {
            assert!(
                (letkf_mean[i] - kalman_mean[i]).abs() < 1e-8,
                "component {i}: {} vs {}",
                letkf_mean[i],
                kalman_mean[i]
            );
        }
        let _ = GlobalAnalysis; // same machinery, referenced for clarity
    }

    #[test]
    fn letkf_tightens_spread() {
        let mesh = Mesh::new(8, 8);
        let (ensemble, obs, _) = problem(mesh, 16, 7);
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let analysis = serial_letkf(&ensemble, &obs, radius).unwrap();
        // Total anomaly energy must shrink: the analysis is a contraction.
        let before = ensemble.anomalies().frobenius_norm();
        let after = analysis.anomalies().frobenius_norm();
        assert!(after < before, "spread {before} -> {after}");
    }

    #[test]
    fn inflation_increases_posterior_spread() {
        let mesh = Mesh::new(8, 6);
        let (ensemble, obs, _) = problem(mesh, 12, 9);
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let d = Decomposition::new(mesh, 1, 1).unwrap();
        let plain =
            serial_letkf_decomposed(&ensemble, &obs, LetkfAnalysis::new(radius), &d).unwrap();
        let inflated = serial_letkf_decomposed(
            &ensemble,
            &obs,
            LetkfAnalysis::new(radius).with_inflation(1.5),
            &d,
        )
        .unwrap();
        assert!(
            inflated.anomalies().frobenius_norm() > plain.anomalies().frobenius_norm(),
            "inflation must widen the posterior ensemble"
        );
    }

    #[test]
    fn pointwise_letkf_is_decomposition_invariant() {
        let mesh = Mesh::new(8, 6);
        let (ensemble, obs, _) = problem(mesh, 10, 11);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let reference = serial_letkf(&ensemble, &obs, radius).unwrap();
        for (sx, sy) in [(2, 2), (4, 3), (8, 6)] {
            let d = Decomposition::new(mesh, sx, sy).unwrap();
            let got =
                serial_letkf_decomposed(&ensemble, &obs, LetkfAnalysis::new(radius), &d).unwrap();
            assert!(
                got.states().approx_eq(reference.states(), 1e-10),
                "decomposition {sx}x{sy} changed the LETKF analysis"
            );
        }
    }

    #[test]
    fn no_observations_is_identity() {
        let mesh = Mesh::new(6, 6);
        let nens = 8;
        let mut rng = StdRng::seed_from_u64(3);
        let mut gs = GaussianSampler::new();
        let states = Matrix::from_fn(mesh.n(), nens, |_, _| gs.sample(&mut rng));
        let ensemble = Ensemble::new(mesh, states);
        let net = ObservationNetwork::from_points(mesh, vec![]);
        let op = ObservationOperator::new(net);
        let obs = Observations::new(op, vec![], vec![], PerturbedObservations::new(0, nens));
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let out = serial_letkf(&ensemble, &obs, radius).unwrap();
        assert_eq!(out.states(), ensemble.states());
    }
}
