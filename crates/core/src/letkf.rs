//! The deterministic ensemble-space analysis (LETKF).
//!
//! The paper's introduction situates L-EnKF implementations in "a
//! deterministic formulation of the EnKF in the ensemble space" (Ott et
//! al. 2004; Hunt's LETKF). This module provides that formulation as an
//! alternative local analysis kernel: instead of perturbing observations
//! and solving in state space with the modified-Cholesky `B̂⁻¹`, the update
//! is computed in the `N`-dimensional ensemble space,
//!
//! ```text
//! M   = (N−1) I / ρ + (H U)ᵀ R⁻¹ (H U)          (ρ = multiplicative inflation)
//! P̃a  = M⁻¹
//! Wa  = sqrt(N−1) · M^{−1/2}
//! w̄   = P̃a (H U)ᵀ R⁻¹ (y − H x̄)
//! X^a = x̄ ⊗ 1ᵀ + U (Wa + w̄ ⊗ 1ᵀ)
//! ```
//!
//! with the inverse and symmetric square root from the Jacobi
//! eigendecomposition in ensemble space (`N × N`, small).

use crate::local::{AnalysisGranularity, LocalObservations};
use crate::{EnkfError, Ensemble, Observations, Result};
use enkf_grid::{Decomposition, LocalizationRadius, Mesh, RegionRect};
use enkf_linalg::{Matrix, SymEigen};
use rayon::prelude::*;

/// The LETKF local analysis kernel. Interface mirrors
/// [`crate::LocalAnalysis`]; observations are used *unperturbed* (the
/// deterministic square-root filter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LetkfAnalysis {
    /// Localization radius `(ξ, η)`.
    pub radius: LocalizationRadius,
    /// Multiplicative covariance inflation `ρ ≥ 1` applied to the
    /// background ensemble covariance in ensemble space.
    pub inflation: f64,
    /// Analysis granularity (point-wise is the standard LETKF).
    pub granularity: AnalysisGranularity,
}

impl LetkfAnalysis {
    /// Point-wise LETKF without inflation.
    pub fn new(radius: LocalizationRadius) -> Self {
        LetkfAnalysis {
            radius,
            inflation: 1.0,
            granularity: AnalysisGranularity::PointWise,
        }
    }

    /// Builder-style inflation override.
    pub fn with_inflation(mut self, rho: f64) -> Self {
        assert!(rho >= 1.0, "inflation must be >= 1");
        self.inflation = rho;
        self
    }

    /// Compute the LETKF analysis on `target` given background data on
    /// `expansion` (same contract as [`crate::LocalAnalysis::analyze`]).
    pub fn analyze(
        &self,
        mesh: Mesh,
        target: &RegionRect,
        expansion: &RegionRect,
        xb: &Matrix,
        obs: &LocalObservations,
    ) -> Result<Matrix> {
        if !expansion.contains_rect(target) {
            return Err(EnkfError::GeometryMismatch(format!(
                "target {target:?} escapes expansion {expansion:?}"
            )));
        }
        if xb.nrows() != expansion.npoints() {
            return Err(EnkfError::GeometryMismatch(format!(
                "xb has {} rows, expansion has {} points",
                xb.nrows(),
                expansion.npoints()
            )));
        }
        let needed = target.expand(self.radius, mesh);
        if !expansion.contains_rect(&needed) {
            return Err(EnkfError::GeometryMismatch(format!(
                "expansion {expansion:?} misses halo {needed:?} of target"
            )));
        }
        match self.granularity {
            AnalysisGranularity::Region => self.analyze_region(target, expansion, xb, obs),
            AnalysisGranularity::PointWise => {
                self.analyze_pointwise(mesh, target, expansion, xb, obs)
            }
        }
    }

    fn analyze_region(
        &self,
        target: &RegionRect,
        expansion: &RegionRect,
        xb: &Matrix,
        obs: &LocalObservations,
    ) -> Result<Matrix> {
        let target_rows = expansion.local_indices_of(target);
        if obs.is_empty() {
            return Ok(xb.select_rows(&target_rows));
        }
        let nens = xb.ncols();
        let mbar = obs.len();
        let mean = xb.row_means();
        let mut u = xb.clone();
        u.subtract_row_vector(&mean);

        // Yb = H U (selection rows) and innovation d = y − H x̄.
        let mut yb = Matrix::zeros(mbar, nens);
        let mut d = vec![0.0; mbar];
        for (r, &row) in obs.local_rows.iter().enumerate() {
            yb.row_mut(r).copy_from_slice(u.row(row));
            d[r] = obs.values[r] - mean[row];
        }

        // M = (N−1)/ρ I + Ybᵀ R⁻¹ Yb in ensemble space.
        let mut m = Matrix::zeros(nens, nens);
        for r in 0..mbar {
            let invv = 1.0 / obs.error_var[r];
            let row = yb.row(r);
            for a in 0..nens {
                let fa = invv * row[a];
                if fa == 0.0 {
                    continue;
                }
                for b in 0..nens {
                    m[(a, b)] += fa * row[b];
                }
            }
        }
        let shift = (nens - 1) as f64 / self.inflation;
        for a in 0..nens {
            m[(a, a)] += shift;
        }
        let eig = SymEigen::decompose(&m)?;
        if eig.min_eigenvalue() <= 0.0 {
            return Err(EnkfError::Linalg(
                enkf_linalg::LinalgError::NotPositiveDefinite(0),
            ));
        }
        let p_tilde = eig.map_spectrum(|l| 1.0 / l);
        let w_a = eig.map_spectrum(|l| ((nens - 1) as f64 / l).sqrt());

        // w̄ = P̃a Ybᵀ R⁻¹ d.
        let mut g = vec![0.0; nens]; // Ybᵀ R⁻¹ d
        for r in 0..mbar {
            let scale = d[r] / obs.error_var[r];
            for (a, gv) in g.iter_mut().enumerate() {
                *gv += yb[(r, a)] * scale;
            }
        }
        let w_bar = p_tilde.matvec(&g)?;

        // W = Wa + w̄ ⊗ 1ᵀ; X^a = x̄ ⊗ 1ᵀ + U W restricted to target rows.
        let mut w = w_a;
        for a in 0..nens {
            for b in 0..nens {
                w[(a, b)] += w_bar[a];
            }
        }
        let incr = u.matmul(&w)?;
        let mut xa = Matrix::zeros(target_rows.len(), nens);
        for (out_r, &row) in target_rows.iter().enumerate() {
            for k in 0..nens {
                xa[(out_r, k)] = mean[row] + incr[(row, k)];
            }
        }
        Ok(xa)
    }

    fn analyze_pointwise(
        &self,
        mesh: Mesh,
        target: &RegionRect,
        expansion: &RegionRect,
        xb: &Matrix,
        obs: &LocalObservations,
    ) -> Result<Matrix> {
        let nens = xb.ncols();
        let points: Vec<_> = target.iter_points().collect();
        let rows: Vec<Result<Vec<f64>>> = points
            .par_iter()
            .map(|&p| {
                let single = RegionRect::new(p.ix, p.ix + 1, p.iy, p.iy + 1);
                let boxr = single.expand(self.radius, mesh);
                let box_rows = expansion.local_indices_of(&boxr);
                let xb_box = xb.select_rows(&box_rows);
                let obs_box = obs.sub_localize(expansion, &boxr);
                let blocked = LetkfAnalysis {
                    granularity: AnalysisGranularity::Region,
                    ..*self
                };
                let xa = blocked.analyze_region(&single, &boxr, &xb_box, &obs_box)?;
                Ok(xa.row(0).to_vec())
            })
            .collect();
        let mut out = Matrix::zeros(points.len(), nens);
        for (i, row) in rows.into_iter().enumerate() {
            out.row_mut(i).copy_from_slice(&row?);
        }
        Ok(out)
    }
}

/// Serial LETKF over an explicit decomposition (mirrors
/// [`crate::serial_enkf_decomposed`]).
pub fn serial_letkf_decomposed(
    ensemble: &Ensemble,
    observations: &Observations,
    analysis: LetkfAnalysis,
    decomp: &Decomposition,
) -> Result<Ensemble> {
    let mesh = ensemble.mesh();
    let mut out = ensemble.clone();
    for id in decomp.iter_ids() {
        let target = decomp.subdomain(id);
        let expansion = decomp.expansion(id, analysis.radius);
        let xb = ensemble.restrict(&expansion);
        let obs = observations.localize(&expansion);
        let xa = analysis.analyze(mesh, &target, &expansion, &xb, &obs)?;
        out.assign(&target, &xa);
    }
    Ok(out)
}

/// Point-wise serial LETKF on the whole mesh.
pub fn serial_letkf(
    ensemble: &Ensemble,
    observations: &Observations,
    radius: LocalizationRadius,
) -> Result<Ensemble> {
    let decomp =
        Decomposition::new(ensemble.mesh(), 1, 1).expect("1x1 decomposition is always valid");
    serial_letkf_decomposed(ensemble, observations, LetkfAnalysis::new(radius), &decomp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GlobalAnalysis, ObservationOperator, PerturbedObservations};
    use enkf_grid::{Mesh, ObservationNetwork};
    use enkf_linalg::GaussianSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Smooth correlated error field (low-wavenumber modes + nugget), so
    /// information can spread from observed to unobserved points.
    fn smooth_noise(mesh: Mesh, rng: &mut StdRng, gs: &mut GaussianSampler) -> Vec<f64> {
        use rand::Rng;
        let modes: Vec<(f64, f64, f64, f64)> = (0..4)
            .map(|m| {
                let kx = rng.gen_range(1..=2) as f64;
                let ky = rng.gen_range(1..=2) as f64;
                let phase = rng.gen::<f64>() * std::f64::consts::TAU;
                let amp = gs.sample(rng) / (1.0 + m as f64);
                (kx, ky, phase, amp)
            })
            .collect();
        (0..mesh.n())
            .map(|i| {
                let p = mesh.point(i);
                let smooth: f64 = modes
                    .iter()
                    .map(|&(kx, ky, ph, a)| {
                        a * (std::f64::consts::TAU
                            * (kx * p.ix as f64 / mesh.nx() as f64
                                + ky * p.iy as f64 / mesh.ny() as f64)
                            + ph)
                            .sin()
                    })
                    .sum();
                smooth + 0.2 * gs.sample(rng)
            })
            .collect()
    }

    fn problem(mesh: Mesh, nens: usize, seed: u64) -> (Ensemble, Observations, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let truth: Vec<f64> = (0..mesh.n())
            .map(|i| {
                let p = mesh.point(i);
                (p.ix as f64 * 0.3).sin() + (p.iy as f64 * 0.4).cos()
            })
            .collect();
        let members: Vec<Vec<f64>> = (0..nens)
            .map(|_| {
                let noise = smooth_noise(mesh, &mut rng, &mut gs);
                truth
                    .iter()
                    .zip(&noise)
                    .map(|(&t, &e)| t + 0.4 + e)
                    .collect()
            })
            .collect();
        let states = Matrix::from_fn(mesh.n(), nens, |i, k| members[k][i]);
        let ensemble = Ensemble::new(mesh, states);
        let net = ObservationNetwork::uniform(mesh, 2);
        let op = ObservationOperator::new(net);
        let values = op.apply(&truth);
        let m = op.len();
        let obs = Observations::new(
            op,
            values,
            vec![0.05; m],
            PerturbedObservations::new(seed, nens),
        );
        (ensemble, obs, truth)
    }

    #[test]
    fn letkf_reduces_error() {
        // Seed picked for a healthy reduction margin under the vendored RNG
        // stream; the threshold is a property of the sampled instance.
        let mesh = Mesh::new(10, 8);
        let (ensemble, obs, truth) = problem(mesh, 20, 13);
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let analysis = serial_letkf(&ensemble, &obs, radius).unwrap();
        assert!(
            analysis.rmse_against(&truth) < ensemble.rmse_against(&truth) * 0.7,
            "rmse {} -> {}",
            ensemble.rmse_against(&truth),
            analysis.rmse_against(&truth)
        );
    }

    #[test]
    fn letkf_mean_matches_kalman_mean_without_localization() {
        // With the full domain as one box and B = U Uᵀ/(N−1), the LETKF
        // mean must equal the covariance-form Kalman mean with unperturbed
        // observations.
        let mesh = Mesh::new(4, 3);
        let nens = 24;
        let (ensemble, obs, _) = problem(mesh, nens, 5);
        let n = mesh.n();
        let full = RegionRect::full(mesh);

        // LETKF with a radius covering the whole mesh (no localization).
        let radius = LocalizationRadius { xi: 4, eta: 3 };
        let la = LetkfAnalysis {
            granularity: AnalysisGranularity::Region,
            ..LetkfAnalysis::new(radius)
        };
        let xb = ensemble.restrict(&full);
        let local = obs.localize(&full);
        let xa = la.analyze(mesh, &full, &full, &xb, &local).unwrap();
        let letkf_mean = xa.row_means();

        // Kalman mean via Eq. (3) with ensemble covariance and Yˢ = y ⊗ 1.
        let b = ensemble.covariance();
        let h = obs.operator().to_dense();
        let innovation_mean = {
            let hx = h.matvec(&ensemble.mean()).unwrap();
            obs.values()
                .iter()
                .zip(&hx)
                .map(|(y, hx)| y - hx)
                .collect::<Vec<_>>()
        };
        let bht = b.matmul_tr(&h).unwrap();
        let mut s = h.matmul(&bht).unwrap();
        for (k, &v) in obs.error_var().iter().enumerate() {
            s[(k, k)] += v;
        }
        s.symmetrize();
        let w = enkf_linalg::Cholesky::factor(&s)
            .unwrap()
            .solve_vec(&innovation_mean)
            .unwrap();
        let delta = bht.matvec(&w).unwrap();
        let kalman_mean: Vec<f64> = ensemble
            .mean()
            .iter()
            .zip(&delta)
            .map(|(m, d)| m + d)
            .collect();

        for i in 0..n {
            assert!(
                (letkf_mean[i] - kalman_mean[i]).abs() < 1e-8,
                "component {i}: {} vs {}",
                letkf_mean[i],
                kalman_mean[i]
            );
        }
        let _ = GlobalAnalysis; // same machinery, referenced for clarity
    }

    #[test]
    fn letkf_tightens_spread() {
        let mesh = Mesh::new(8, 8);
        let (ensemble, obs, _) = problem(mesh, 16, 7);
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let analysis = serial_letkf(&ensemble, &obs, radius).unwrap();
        // Total anomaly energy must shrink: the analysis is a contraction.
        let before = ensemble.anomalies().frobenius_norm();
        let after = analysis.anomalies().frobenius_norm();
        assert!(after < before, "spread {before} -> {after}");
    }

    #[test]
    fn inflation_increases_posterior_spread() {
        let mesh = Mesh::new(8, 6);
        let (ensemble, obs, _) = problem(mesh, 12, 9);
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let d = Decomposition::new(mesh, 1, 1).unwrap();
        let plain =
            serial_letkf_decomposed(&ensemble, &obs, LetkfAnalysis::new(radius), &d).unwrap();
        let inflated = serial_letkf_decomposed(
            &ensemble,
            &obs,
            LetkfAnalysis::new(radius).with_inflation(1.5),
            &d,
        )
        .unwrap();
        assert!(
            inflated.anomalies().frobenius_norm() > plain.anomalies().frobenius_norm(),
            "inflation must widen the posterior ensemble"
        );
    }

    #[test]
    fn pointwise_letkf_is_decomposition_invariant() {
        let mesh = Mesh::new(8, 6);
        let (ensemble, obs, _) = problem(mesh, 10, 11);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let reference = serial_letkf(&ensemble, &obs, radius).unwrap();
        for (sx, sy) in [(2, 2), (4, 3), (8, 6)] {
            let d = Decomposition::new(mesh, sx, sy).unwrap();
            let got =
                serial_letkf_decomposed(&ensemble, &obs, LetkfAnalysis::new(radius), &d).unwrap();
            assert!(
                got.states().approx_eq(reference.states(), 1e-10),
                "decomposition {sx}x{sy} changed the LETKF analysis"
            );
        }
    }

    #[test]
    fn no_observations_is_identity() {
        let mesh = Mesh::new(6, 6);
        let nens = 8;
        let mut rng = StdRng::seed_from_u64(3);
        let mut gs = GaussianSampler::new();
        let states = Matrix::from_fn(mesh.n(), nens, |_, _| gs.sample(&mut rng));
        let ensemble = Ensemble::new(mesh, states);
        let net = ObservationNetwork::from_points(mesh, vec![]);
        let op = ObservationOperator::new(net);
        let obs = Observations::new(op, vec![], vec![], PerturbedObservations::new(0, nens));
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let out = serial_letkf(&ensemble, &obs, radius).unwrap();
        assert_eq!(out.states(), ensemble.states());
    }
}
