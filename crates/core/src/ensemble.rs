//! The background ensemble `Xᵇ` and its statistics.

use enkf_grid::{Mesh, RegionRect};
use enkf_linalg::Matrix;

/// An ensemble of model states on a mesh: an `n × N` matrix whose column
/// `k` is member `X^{b[k]}` (Eq. 2), with `n = nx · ny` in mesh
/// (row-priority) ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct Ensemble {
    mesh: Mesh,
    states: Matrix,
}

impl Ensemble {
    /// Wrap an `n × N` state matrix. `states.nrows()` must equal `mesh.n()`.
    pub fn new(mesh: Mesh, states: Matrix) -> Self {
        assert_eq!(states.nrows(), mesh.n(), "state rows must match mesh size");
        assert!(states.ncols() >= 2, "an ensemble needs at least 2 members");
        Ensemble { mesh, states }
    }

    /// Build from per-member state vectors (each of length `n`).
    pub fn from_members(mesh: Mesh, members: &[Vec<f64>]) -> Self {
        assert!(members.len() >= 2, "an ensemble needs at least 2 members");
        let n = mesh.n();
        let mut m = Matrix::zeros(n, members.len());
        for (k, member) in members.iter().enumerate() {
            assert_eq!(member.len(), n, "member length must match mesh size");
            m.set_col(k, member);
        }
        Ensemble { mesh, states: m }
    }

    /// The mesh the states live on.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Ensemble size `N`.
    pub fn size(&self) -> usize {
        self.states.ncols()
    }

    /// Number of model components `n`.
    pub fn dim(&self) -> usize {
        self.states.nrows()
    }

    /// The `n × N` state matrix.
    pub fn states(&self) -> &Matrix {
        &self.states
    }

    /// Member `k` as a state vector.
    pub fn member(&self, k: usize) -> Vec<f64> {
        self.states.col(k)
    }

    /// Copy member `k` into a caller-owned buffer (allocation-free once
    /// the buffer has capacity).
    pub fn member_into(&self, k: usize, out: &mut Vec<f64>) {
        self.states.col_into(k, out);
    }

    /// The ensemble mean `x̄ᵇ` (Eq. 4).
    pub fn mean(&self) -> Vec<f64> {
        self.states.row_means()
    }

    /// The anomaly matrix `U = Xᵇ − x̄ᵇ ⊗ 1ᵀ` (Eq. 4).
    pub fn anomalies(&self) -> Matrix {
        let mut u = self.states.clone();
        let means = u.row_means();
        u.subtract_row_vector(&means);
        u
    }

    /// The sample covariance `B = U Uᵀ / (N−1)` (Eq. 4) — dense; only for
    /// small test problems.
    pub fn covariance(&self) -> Matrix {
        let u = self.anomalies();
        u.matmul_tr(&u)
            .expect("square product")
            .scale(1.0 / (self.size() - 1) as f64)
    }

    /// Restrict the ensemble to a region: the `n̄ × N` matrix `X̄ᵇ` of Eq. 6,
    /// rows in the region's local row-priority order.
    pub fn restrict(&self, region: &RegionRect) -> Matrix {
        let rows: Vec<usize> = region.iter_points().map(|p| self.mesh.index(p)).collect();
        self.states.select_rows(&rows)
    }

    /// Overwrite the states on `region` from a `region.npoints() × N` local
    /// matrix (scatter of a local analysis result).
    pub fn assign(&mut self, region: &RegionRect, local: &Matrix) {
        assert_eq!(
            local.nrows(),
            region.npoints(),
            "local rows must match region"
        );
        assert_eq!(
            local.ncols(),
            self.size(),
            "local cols must match ensemble size"
        );
        for (li, p) in region.iter_points().enumerate() {
            let gi = self.mesh.index(p);
            for k in 0..self.size() {
                self.states[(gi, k)] = local[(li, k)];
            }
        }
    }

    /// Root-mean-square error of the ensemble mean against a reference
    /// state.
    pub fn rmse_against(&self, reference: &[f64]) -> f64 {
        assert_eq!(reference.len(), self.dim(), "reference length mismatch");
        let mean = self.mean();
        let ss: f64 = mean
            .iter()
            .zip(reference)
            .map(|(m, r)| (m - r) * (m - r))
            .sum();
        (ss / self.dim() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_grid::GridPoint;

    fn tiny() -> Ensemble {
        let mesh = Mesh::new(3, 2);
        // Members: constant 1.0 and constant 3.0.
        Ensemble::from_members(mesh, &[vec![1.0; 6], vec![3.0; 6]])
    }

    #[test]
    fn mean_and_anomalies() {
        let e = tiny();
        assert_eq!(e.mean(), vec![2.0; 6]);
        let u = e.anomalies();
        for i in 0..6 {
            assert_eq!(u[(i, 0)], -1.0);
            assert_eq!(u[(i, 1)], 1.0);
        }
    }

    #[test]
    fn covariance_of_constant_members() {
        let e = tiny();
        let b = e.covariance();
        // U row = [-1, 1]; B = U Uᵀ / 1 = all-2 matrix.
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(b[(i, j)], 2.0);
            }
        }
    }

    #[test]
    fn restrict_follows_region_order() {
        let mesh = Mesh::new(3, 2);
        let member: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let e = Ensemble::from_members(mesh, &[member.clone(), member]);
        let region = RegionRect::new(1, 3, 0, 2);
        let local = e.restrict(&region);
        assert_eq!(local.col(0), vec![1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn assign_roundtrips_restrict() {
        let mut e = tiny();
        let region = RegionRect::new(0, 2, 1, 2);
        let mut local = e.restrict(&region);
        local.as_mut_slice().iter_mut().for_each(|v| *v += 10.0);
        e.assign(&region, &local);
        let p_in = e.mesh().index(GridPoint { ix: 0, iy: 1 });
        let p_out = e.mesh().index(GridPoint { ix: 0, iy: 0 });
        assert_eq!(e.states()[(p_in, 0)], 11.0);
        assert_eq!(e.states()[(p_out, 0)], 1.0);
    }

    #[test]
    fn rmse_against_reference() {
        let e = tiny();
        // Mean is 2.0 everywhere; reference 0 → rmse 2.
        assert!((e.rmse_against(&[0.0; 6]) - 2.0).abs() < 1e-12);
        assert_eq!(e.rmse_against(&[2.0; 6]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 members")]
    fn single_member_rejected() {
        Ensemble::from_members(Mesh::new(2, 2), &[vec![0.0; 4]]);
    }
}
