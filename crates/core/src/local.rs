//! The domain-localized analysis (Eq. 6) on a sub-domain, layer, or point.

use crate::{EnkfError, Result};
use enkf_grid::{GridPoint, LocalizationRadius, Mesh, RegionRect};
use enkf_linalg::{CholWorkspace, Cholesky, Matrix, ModifiedCholesky};
use rayon::prelude::*;
use std::sync::Mutex;

/// Observations restricted to an expansion region: the local pieces
/// `H_{[i,j]}`, `Yˢ_{[i,j]}`, `R_{[i,j]}` of Eq. 6. Built by
/// [`crate::Observations::localize`].
#[derive(Debug, Clone, PartialEq)]
pub struct LocalObservations {
    /// Expansion-local point index observed by each local row of `H`.
    pub local_rows: Vec<usize>,
    /// Observed values.
    pub values: Vec<f64>,
    /// Diagonal of the local `R`.
    pub error_var: Vec<f64>,
    /// Local perturbed observations `Yˢ_{[i,j]}` (`m̄ × N`).
    pub perturbed: Matrix,
}

impl LocalObservations {
    /// Number of local observed components `m̄`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the region contains no observation.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Restrict the perturbed observations to the given ensemble-member
    /// columns (ascending global member indices). Degraded-mode executors
    /// use this to drop the perturbation columns of lost members so the
    /// local analysis sees a consistent `m̄ × N_alive` system.
    pub fn select_members(&self, members: &[usize]) -> LocalObservations {
        let mut perturbed = Matrix::zeros(self.perturbed.nrows(), members.len());
        for r in 0..self.perturbed.nrows() {
            for (c, &k) in members.iter().enumerate() {
                perturbed[(r, c)] = self.perturbed[(r, k)];
            }
        }
        LocalObservations {
            local_rows: self.local_rows.clone(),
            values: self.values.clone(),
            error_var: self.error_var.clone(),
            perturbed,
        }
    }

    /// Re-localize from an expansion to a sub-rectangle of it (e.g. a grid
    /// point's local box), remapping the row indices into `inner`-local
    /// coordinates.
    pub fn sub_localize(&self, outer: &RegionRect, inner: &RegionRect) -> LocalObservations {
        debug_assert!(outer.contains_rect(inner));
        let mut local_rows = Vec::new();
        let mut values = Vec::new();
        let mut error_var = Vec::new();
        let mut rows = Vec::new();
        for (r, &outer_idx) in self.local_rows.iter().enumerate() {
            let p = outer.point_at(outer_idx);
            if inner.contains(p) {
                local_rows.push(inner.local_index(p));
                values.push(self.values[r]);
                error_var.push(self.error_var[r]);
                rows.push(r);
            }
        }
        let mut perturbed = Matrix::zeros(rows.len(), self.perturbed.ncols());
        for (out_r, &src_r) in rows.iter().enumerate() {
            perturbed
                .row_mut(out_r)
                .copy_from_slice(self.perturbed.row(src_r));
        }
        LocalObservations {
            local_rows,
            values,
            error_var,
            perturbed,
        }
    }
}

/// Bucket-grid index over an expansion's local observations.
///
/// Built once per `analyze_pointwise` call (or per assimilation cycle by a
/// caller that keeps it around), it makes the per-grid-point
/// re-localization — "which of the expansion's observations fall inside
/// this point's box" — cost O(obs in box) instead of O(obs in expansion).
/// Query results are byte-identical to
/// [`LocalObservations::sub_localize`].
#[derive(Debug, Clone)]
pub struct LocalObsIndex {
    outer: RegionRect,
    cell: usize,
    ncx: usize,
    ncy: usize,
    /// CSR bucket offsets into `items`, length `ncx * ncy + 1`.
    starts: Vec<usize>,
    /// Local observation row numbers grouped by bucket.
    items: Vec<usize>,
}

impl LocalObsIndex {
    /// Index `obs` (localized to `outer`) with square buckets of `cell`
    /// grid points per edge. Pick `cell` on the order of the localization
    /// radius so a box query touches O(1) buckets.
    pub fn build(obs: &LocalObservations, outer: &RegionRect, cell: usize) -> Self {
        assert!(cell > 0, "bucket edge must be positive");
        let ncx = outer.width().div_ceil(cell).max(1);
        let ncy = outer.height().div_ceil(cell).max(1);
        let nb = ncx * ncy;
        let bucket = |outer_idx: usize| {
            let p = outer.point_at(outer_idx);
            ((p.iy - outer.y0) / cell) * ncx + (p.ix - outer.x0) / cell
        };
        let mut starts = vec![0usize; nb + 1];
        for &idx in &obs.local_rows {
            starts[bucket(idx) + 1] += 1;
        }
        for b in 0..nb {
            starts[b + 1] += starts[b];
        }
        let mut fill = starts.clone();
        let mut items = vec![0usize; obs.local_rows.len()];
        for (r, &idx) in obs.local_rows.iter().enumerate() {
            let b = bucket(idx);
            items[fill[b]] = r;
            fill[b] += 1;
        }
        LocalObsIndex {
            outer: *outer,
            cell,
            ncx,
            ncy,
            starts,
            items,
        }
    }

    /// Indexed [`LocalObservations::sub_localize`] into caller-owned
    /// buffers: byte-identical output, O(obs in `inner`) cost, and no
    /// allocation once `scratch`/`out` reach steady-state capacity.
    pub fn sub_localize_into(
        &self,
        obs: &LocalObservations,
        inner: &RegionRect,
        scratch: &mut Vec<usize>,
        out: &mut LocalObservations,
    ) {
        debug_assert!(self.outer.contains_rect(inner));
        out.local_rows.clear();
        out.values.clear();
        out.error_var.clear();
        scratch.clear();
        if !inner.is_empty() && !self.items.is_empty() {
            let bx0 = (inner.x0 - self.outer.x0) / self.cell;
            let bx1 = ((inner.x1 - 1 - self.outer.x0) / self.cell).min(self.ncx - 1);
            let by0 = (inner.y0 - self.outer.y0) / self.cell;
            let by1 = ((inner.y1 - 1 - self.outer.y0) / self.cell).min(self.ncy - 1);
            for by in by0..=by1 {
                for bx in bx0..=bx1 {
                    let b = by * self.ncx + bx;
                    for &r in &self.items[self.starts[b]..self.starts[b + 1]] {
                        if inner.contains(self.outer.point_at(obs.local_rows[r])) {
                            scratch.push(r);
                        }
                    }
                }
            }
            // Buckets are visited in bucket order; the linear scan emits
            // rows in ascending source order — restore it.
            scratch.sort_unstable();
        }
        out.perturbed.resize(scratch.len(), obs.perturbed.ncols());
        for (out_r, &r) in scratch.iter().enumerate() {
            let p = self.outer.point_at(obs.local_rows[r]);
            out.local_rows.push(inner.local_index(p));
            out.values.push(obs.values[r]);
            out.error_var.push(obs.error_var[r]);
            out.perturbed
                .row_mut(out_r)
                .copy_from_slice(obs.perturbed.row(r));
        }
    }
}

/// Granularity of the localized analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisGranularity {
    /// One modified-Cholesky estimate over the whole expansion, one solve
    /// for the whole region (the blocked formulation of Eq. 6).
    Region,
    /// Update each grid point from its own local box (Fig. 2a). The result
    /// is independent of how the domain is decomposed into sub-domains and
    /// layers — the property the cross-variant equivalence tests rely on.
    PointWise,
}

/// The localized analysis kernel shared by the serial reference and every
/// parallel variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalAnalysis {
    /// Localization radius `(ξ, η)`.
    pub radius: LocalizationRadius,
    /// *Relative* ridge regularization for the modified-Cholesky
    /// regressions: the Tikhonov term is `ridge ×` the mean local anomaly
    /// variance, so the shrinkage adapts to the field's scale. Values
    /// around `0.05`–`0.2` stabilize the regressions when the localization
    /// neighborhood size approaches the ensemble size `N`.
    pub ridge: f64,
    /// Analysis granularity.
    pub granularity: AnalysisGranularity,
}

impl LocalAnalysis {
    /// Default relative ridge (see [`LocalAnalysis::ridge`]).
    pub const DEFAULT_RIDGE: f64 = 0.1;

    /// Point-wise analysis with the default ridge.
    pub fn new(radius: LocalizationRadius) -> Self {
        LocalAnalysis {
            radius,
            ridge: Self::DEFAULT_RIDGE,
            granularity: AnalysisGranularity::PointWise,
        }
    }

    /// Region-granularity analysis with the default ridge.
    pub fn blocked(radius: LocalizationRadius) -> Self {
        LocalAnalysis {
            radius,
            ridge: Self::DEFAULT_RIDGE,
            granularity: AnalysisGranularity::Region,
        }
    }

    /// Compute the analysis on `target` given background data on
    /// `expansion`.
    ///
    /// * `target` — the rows to update (a sub-domain, one layer, one point);
    ///   must be contained in `expansion`.
    /// * `expansion` — the region `xb` covers; must contain the
    ///   radius-expansion of `target` (clamped to the mesh).
    /// * `xb` — `expansion.npoints() × N` background data in expansion-local
    ///   row-priority order.
    /// * `obs` — observations localized to `expansion`.
    ///
    /// Returns the `target.npoints() × N` analysis `X^a` (Eq. 6).
    pub fn analyze(
        &self,
        mesh: Mesh,
        target: &RegionRect,
        expansion: &RegionRect,
        xb: &Matrix,
        obs: &LocalObservations,
    ) -> Result<Matrix> {
        if !expansion.contains_rect(target) {
            return Err(EnkfError::GeometryMismatch(format!(
                "target {target:?} escapes expansion {expansion:?}"
            )));
        }
        if xb.nrows() != expansion.npoints() {
            return Err(EnkfError::GeometryMismatch(format!(
                "xb has {} rows, expansion has {} points",
                xb.nrows(),
                expansion.npoints()
            )));
        }
        let needed = target.expand(self.radius, mesh);
        if !expansion.contains_rect(&needed) {
            return Err(EnkfError::GeometryMismatch(format!(
                "expansion {expansion:?} misses halo {needed:?} of target"
            )));
        }
        match self.granularity {
            AnalysisGranularity::Region => self.analyze_region(target, expansion, xb, obs),
            AnalysisGranularity::PointWise => {
                self.analyze_pointwise(mesh, target, expansion, xb, obs)
            }
        }
    }

    /// Blocked Eq. 6 over the full expansion.
    fn analyze_region(
        &self,
        target: &RegionRect,
        expansion: &RegionRect,
        xb: &Matrix,
        obs: &LocalObservations,
    ) -> Result<Matrix> {
        let target_rows = expansion.local_indices_of(target);
        if obs.is_empty() {
            // No information: X^a = X^b on the target.
            return Ok(xb.select_rows(&target_rows));
        }
        let nbar = expansion.npoints();
        let nens = xb.ncols();

        // U = X̄ᵇ − mean, B̂⁻¹ = Lᵀ D⁻¹ L via modified Cholesky with the
        // localization neighborhood as the regression support.
        let mut u = xb.clone();
        let means = u.row_means();
        u.subtract_row_vector(&means);
        // Scale the ridge by the mean anomaly variance so the shrinkage is
        // dimensionless in the field's units.
        let denom = (nens - 1).max(1) as f64;
        let mean_var = u.as_slice().iter().map(|&v| v * v).sum::<f64>() / (denom * nbar as f64);
        let lambda = (self.ridge * mean_var).max(f64::MIN_POSITIVE);
        let mc = ModifiedCholesky::estimate(&u, box_predecessors(expansion, self.radius), lambda)?;
        let mut a = mc.inverse_covariance();

        // A = B̂⁻¹ + Hᵀ R⁻¹ H — the selection H adds 1/σ²ₖ at the observed
        // diagonal entries.
        for (r, &row) in obs.local_rows.iter().enumerate() {
            a[(row, row)] += 1.0 / obs.error_var[r];
        }

        // Z = Hᵀ R⁻¹ (Yˢ − H X̄ᵇ).
        let mut z = Matrix::zeros(nbar, nens);
        for (r, &row) in obs.local_rows.iter().enumerate() {
            let inv_var = 1.0 / obs.error_var[r];
            for k in 0..nens {
                let innovation = obs.perturbed[(r, k)] - xb[(row, k)];
                z[(row, k)] += inv_var * innovation;
            }
        }

        // δX^a = A⁻¹ Z; X^a = X̄ᵇ + δX^a restricted to the target rows.
        let ch = Cholesky::factor(&a)?;
        let delta = ch.solve(&z)?;
        let mut xa = xb.clone();
        xa.axpy(1.0, &delta)?;
        Ok(xa.select_rows(&target_rows))
    }

    /// Point-wise Eq. 6: each target point analyzed from its own local box.
    ///
    /// Parallelized with `par_chunks_mut` directly over the output matrix
    /// rows; each worker allocates one [`LocalAnalysisWorkspace`] and reuses
    /// it across all its grid points.
    fn analyze_pointwise(
        &self,
        mesh: Mesh,
        target: &RegionRect,
        expansion: &RegionRect,
        xb: &Matrix,
        obs: &LocalObservations,
    ) -> Result<Matrix> {
        let nens = xb.ncols();
        let npoints = target.npoints();
        let mut out = Matrix::zeros(npoints, nens);
        if npoints == 0 || nens == 0 {
            return Ok(out);
        }
        let cell = self.radius.xi.max(self.radius.eta).max(1);
        let index = LocalObsIndex::build(obs, expansion, cell);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let chunk_rows = npoints.div_ceil(workers).max(1);
        let first_err: Mutex<Option<EnkfError>> = Mutex::new(None);
        out.as_mut_slice()
            .par_chunks_mut(chunk_rows * nens)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let mut ws = LocalAnalysisWorkspace::new();
                let base = ci * chunk_rows;
                for (i, row) in chunk.chunks_mut(nens).enumerate() {
                    let p = target.point_at(base + i);
                    if let Err(e) =
                        self.analyze_point_into(mesh, p, expansion, xb, obs, &index, &mut ws, row)
                    {
                        let mut slot = first_err.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                }
            });
        if let Some(e) = first_err.lock().unwrap().take() {
            return Err(e);
        }
        Ok(out)
    }

    /// One grid point's local analysis written into its output row.
    ///
    /// Equivalent to running [`LocalAnalysis::analyze_region`] on the
    /// point's box, but only the target row of `δX = A⁻¹ Z` is formed:
    /// since `A` is symmetric, `δX[t,·] = (A⁻¹ eₜ)ᵀ Z`, so a single
    /// triangular solve replaces one per ensemble member and `Z` is never
    /// materialized.
    #[allow(clippy::too_many_arguments)]
    fn analyze_point_into(
        &self,
        mesh: Mesh,
        p: GridPoint,
        expansion: &RegionRect,
        xb: &Matrix,
        obs: &LocalObservations,
        index: &LocalObsIndex,
        ws: &mut LocalAnalysisWorkspace,
        out_row: &mut [f64],
    ) -> Result<()> {
        let single = RegionRect::new(p.ix, p.ix + 1, p.iy, p.iy + 1);
        let boxr = single.expand(self.radius, mesh);
        debug_assert!(expansion.contains_rect(&boxr));
        ws.box_rows.clear();
        for q in boxr.iter_points() {
            ws.box_rows.push(expansion.local_index(q));
        }
        xb.select_rows_into(&ws.box_rows, &mut ws.xb_box);
        index.sub_localize_into(obs, &boxr, &mut ws.obs_scratch, &mut ws.obs_box);
        let t = boxr.local_index(p);
        if ws.obs_box.is_empty() {
            out_row.copy_from_slice(ws.xb_box.row(t));
            return Ok(());
        }
        let nbar = boxr.npoints();
        let nens = ws.xb_box.ncols();
        // Anomalies and the adaptive ridge, as in `analyze_region`.
        ws.u.copy_from(&ws.xb_box);
        ws.u.row_means_into(&mut ws.means);
        ws.u.subtract_row_vector(&ws.means);
        let denom = (nens - 1).max(1) as f64;
        let mean_var = ws.u.as_slice().iter().map(|&v| v * v).sum::<f64>() / (denom * nbar as f64);
        let lambda = (self.ridge * mean_var).max(f64::MIN_POSITIVE);
        let mc = ModifiedCholesky::estimate(&ws.u, box_predecessors(&boxr, self.radius), lambda)?;
        let mut a = mc.inverse_covariance();
        for (r, &row) in ws.obs_box.local_rows.iter().enumerate() {
            a[(row, row)] += 1.0 / ws.obs_box.error_var[r];
        }
        ws.chol.factor(&a)?;
        ws.w.clear();
        ws.w.resize(nbar, 0.0);
        ws.w[t] = 1.0;
        ws.chol.solve_in_place(&mut ws.w)?;
        // X^a[t,·] = X^b[t,·] + wᵀ Z with Z's rows formed on the fly.
        out_row.copy_from_slice(ws.xb_box.row(t));
        for (r, &row) in ws.obs_box.local_rows.iter().enumerate() {
            let c = ws.w[row] / ws.obs_box.error_var[r];
            for (k, o) in out_row.iter_mut().enumerate() {
                *o += c * (ws.obs_box.perturbed[(r, k)] - ws.xb_box[(row, k)]);
            }
        }
        Ok(())
    }
}

/// Per-thread scratch buffers for the point-wise local analysis.
///
/// One instance per worker, reused across every grid point the worker
/// analyzes; at steady state the per-point loop performs no heap
/// allocation outside the modified-Cholesky estimator.
#[derive(Debug, Clone)]
pub struct LocalAnalysisWorkspace {
    box_rows: Vec<usize>,
    xb_box: Matrix,
    u: Matrix,
    means: Vec<f64>,
    obs_box: LocalObservations,
    obs_scratch: Vec<usize>,
    chol: CholWorkspace,
    w: Vec<f64>,
}

impl Default for LocalAnalysisWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalAnalysisWorkspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        LocalAnalysisWorkspace {
            box_rows: Vec::new(),
            xb_box: Matrix::zeros(0, 0),
            u: Matrix::zeros(0, 0),
            means: Vec::new(),
            obs_box: LocalObservations {
                local_rows: Vec::new(),
                values: Vec::new(),
                error_var: Vec::new(),
                perturbed: Matrix::zeros(0, 0),
            },
            obs_scratch: Vec::new(),
            chol: CholWorkspace::new(),
            w: Vec::new(),
        }
    }
}

/// Predecessor closure for the modified Cholesky over a rectangle: for
/// local index `i` (row-priority point `p`), the local indices `j < i`
/// whose points lie inside `p`'s local box — the structural sparsity that
/// encodes domain localization in the estimator.
pub fn box_predecessors(
    rect: &RegionRect,
    radius: LocalizationRadius,
) -> impl FnMut(usize) -> Vec<usize> + '_ {
    let rect = *rect;
    move |i| {
        let p = rect.point_at(i);
        let y_lo = p.iy.saturating_sub(radius.eta).max(rect.y0);
        let x_lo = p.ix.saturating_sub(radius.xi).max(rect.x0);
        let x_hi = (p.ix + radius.xi + 1).min(rect.x1);
        let mut preds = Vec::new();
        for iy in y_lo..=p.iy {
            for ix in x_lo..x_hi {
                let j = rect.local_index(enkf_grid::GridPoint { ix, iy });
                if j < i {
                    preds.push(j);
                }
            }
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_grid::{GridPoint, Mesh, ObservationNetwork};
    use enkf_linalg::GaussianSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_obs(
        mesh: Mesh,
        stride: usize,
        expansion: &RegionRect,
        seed: u64,
        nens: usize,
    ) -> LocalObservations {
        let net = ObservationNetwork::uniform(mesh, stride);
        let op = crate::ObservationOperator::new(net);
        let m = op.len();
        let values: Vec<f64> = (0..m).map(|k| (k as f64 * 0.3).sin()).collect();
        let obs = crate::Observations::new(
            op,
            values,
            vec![0.1; m],
            crate::PerturbedObservations::new(seed, nens),
        );
        obs.localize(expansion)
    }

    fn random_xb(npoints: usize, nens: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        Matrix::from_fn(npoints, nens, |_, _| gs.sample(&mut rng))
    }

    #[test]
    fn box_predecessors_respect_radius_and_order() {
        let rect = RegionRect::new(0, 5, 0, 4);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let mut preds = box_predecessors(&rect, radius);
        // Point (2,2) has local index 12; predecessors are box points with
        // smaller local index.
        let i = rect.local_index(GridPoint { ix: 2, iy: 2 });
        let got = preds(i);
        for &j in &got {
            assert!(j < i);
            let q = rect.point_at(j);
            assert!(q.ix.abs_diff(2) <= 1 && q.iy.abs_diff(2) <= 1);
        }
        // Full box minus self and successors: row above (3) + left neighbor (1).
        assert_eq!(got.len(), 4);
        assert!(preds(0).is_empty());
    }

    #[test]
    fn no_observations_is_identity() {
        let mesh = Mesh::new(8, 8);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let target = RegionRect::new(2, 4, 2, 4);
        let expansion = target.expand(radius, mesh);
        let xb = random_xb(expansion.npoints(), 6, 3);
        let empty = LocalObservations {
            local_rows: vec![],
            values: vec![],
            error_var: vec![],
            perturbed: Matrix::zeros(0, 6),
        };
        for la in [LocalAnalysis::new(radius), LocalAnalysis::blocked(radius)] {
            let xa = la.analyze(mesh, &target, &expansion, &xb, &empty).unwrap();
            let rows = expansion.local_indices_of(&target);
            assert_eq!(xa, xb.select_rows(&rows));
        }
    }

    #[test]
    fn analysis_moves_toward_observations() {
        // Background far from obs; analysis mean must move toward the
        // observed values at observed points.
        let mesh = Mesh::new(6, 6);
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let target = RegionRect::full(mesh);
        let expansion = target;
        let nens = 20;
        // Background centered at 5.0; observations near 0.
        let mut xb = random_xb(expansion.npoints(), nens, 9);
        for v in xb.as_mut_slice() {
            *v += 5.0;
        }
        let obs = make_obs(mesh, 2, &expansion, 11, nens);
        assert!(!obs.is_empty());
        let la = LocalAnalysis::new(radius);
        let xa = la.analyze(mesh, &target, &expansion, &xb, &obs).unwrap();
        for (r, &row) in obs.local_rows.iter().enumerate() {
            let before: f64 = (0..nens).map(|k| xb[(row, k)]).sum::<f64>() / nens as f64;
            let after: f64 = (0..nens).map(|k| xa[(row, k)]).sum::<f64>() / nens as f64;
            let y = obs.values[r];
            assert!(
                (after - y).abs() < (before - y).abs(),
                "row {row}: {before} -> {after}, obs {y}"
            );
        }
    }

    #[test]
    fn pointwise_is_decomposition_invariant() {
        // Analyzing the whole domain at once or in two halves must give the
        // same point-wise result.
        let mesh = Mesh::new(8, 4);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let nens = 8;
        let full = RegionRect::full(mesh);
        let xb_full = random_xb(full.npoints(), nens, 17);
        let obs_full = make_obs(mesh, 2, &full, 23, nens);
        let la = LocalAnalysis::new(radius);
        let xa_full = la.analyze(mesh, &full, &full, &xb_full, &obs_full).unwrap();

        let make_obs_global = || {
            let net = ObservationNetwork::uniform(mesh, 2);
            let op = crate::ObservationOperator::new(net);
            let m = op.len();
            let values: Vec<f64> = (0..m).map(|k| (k as f64 * 0.3).sin()).collect();
            crate::Observations::new(
                op,
                values,
                vec![0.1; m],
                crate::PerturbedObservations::new(23, nens),
            )
        };
        let obs_global = make_obs_global();

        for target in [RegionRect::new(0, 4, 0, 4), RegionRect::new(4, 8, 0, 4)] {
            let expansion = target.expand(radius, mesh);
            // Restrict full-domain xb to the expansion.
            let rows = full.local_indices_of(&expansion);
            let xb_local = xb_full.select_rows(&rows);
            let obs_local = obs_global.localize(&expansion);
            let xa_local = la
                .analyze(mesh, &target, &expansion, &xb_local, &obs_local)
                .unwrap();
            // Compare against the full-domain result on the same points.
            let target_rows = full.local_indices_of(&target);
            let expect = xa_full.select_rows(&target_rows);
            assert!(
                xa_local.approx_eq(&expect, 1e-12),
                "decomposed analysis differs on {target:?}"
            );
        }
    }

    #[test]
    fn geometry_mismatches_rejected() {
        let mesh = Mesh::new(8, 8);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let la = LocalAnalysis::new(radius);
        let target = RegionRect::new(2, 4, 2, 4);
        let xb = random_xb(4, 4, 1);
        let empty = LocalObservations {
            local_rows: vec![],
            values: vec![],
            error_var: vec![],
            perturbed: Matrix::zeros(0, 4),
        };
        // Expansion equal to the target misses the halo.
        let err = la.analyze(mesh, &target, &target, &xb, &empty);
        assert!(matches!(err, Err(EnkfError::GeometryMismatch(_))));
        // xb with wrong row count.
        let expansion = target.expand(radius, mesh);
        let err2 = la.analyze(mesh, &target, &expansion, &xb, &empty);
        assert!(matches!(err2, Err(EnkfError::GeometryMismatch(_))));
    }

    #[test]
    fn indexed_sub_localize_is_byte_identical_to_linear() {
        let mesh = Mesh::new(9, 7);
        let outer = RegionRect::new(2, 9, 1, 7);
        let obs = make_obs(mesh, 2, &outer, 5, 4);
        assert!(!obs.is_empty());
        let mut scratch = vec![3usize; 2];
        let mut out = LocalObservations {
            local_rows: vec![9],
            values: vec![1.0],
            error_var: vec![1.0],
            perturbed: Matrix::zeros(1, 1),
        };
        for cell in [1usize, 2, 3, 8] {
            let index = LocalObsIndex::build(&obs, &outer, cell);
            for inner in [
                RegionRect::new(3, 6, 2, 5),
                outer,
                RegionRect::new(4, 4, 1, 7),
                RegionRect::new(8, 9, 6, 7),
                RegionRect::new(2, 3, 1, 2),
            ] {
                index.sub_localize_into(&obs, &inner, &mut scratch, &mut out);
                assert_eq!(
                    out,
                    obs.sub_localize(&outer, &inner),
                    "cell {cell}, inner {inner:?}"
                );
            }
        }
    }

    #[test]
    fn sub_localize_remaps_rows() {
        let mesh = Mesh::new(6, 6);
        let full = RegionRect::full(mesh);
        let obs = make_obs(mesh, 2, &full, 5, 4);
        let inner = RegionRect::new(1, 5, 1, 5);
        let sub = obs.sub_localize(&full, &inner);
        for (r, &row) in sub.local_rows.iter().enumerate() {
            let p = inner.point_at(row);
            assert!(inner.contains(p));
            // The same observation exists in the outer set at the outer
            // local index.
            let outer_idx = full.local_index(p);
            let outer_r = obs.local_rows.iter().position(|&x| x == outer_idx).unwrap();
            assert_eq!(obs.values[outer_r], sub.values[r]);
            assert_eq!(obs.perturbed.row(outer_r), sub.perturbed.row(r));
        }
    }
}
