//! Observation operators, data-error statistics and perturbed observations.

use enkf_grid::{Mesh, ObsIndex, ObservationNetwork, RegionRect};
use enkf_linalg::{GaussianSampler, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// The linear observational operator `H ∈ R^{m×n}` as a point-selection
/// operator over an observation network: row `k` of `H` picks the model
/// component at the network's `k`-th point.
///
/// The paper notes `H` is "constructed from some limited observational
/// data"; a selection operator is its canonical instance and keeps `H`
/// implicit (never materialized globally).
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationOperator {
    network: ObservationNetwork,
}

impl ObservationOperator {
    /// Wrap an observation network.
    pub fn new(network: ObservationNetwork) -> Self {
        ObservationOperator { network }
    }

    /// The underlying network.
    pub fn network(&self) -> &ObservationNetwork {
        &self.network
    }

    /// The mesh observed.
    pub fn mesh(&self) -> Mesh {
        self.network.mesh()
    }

    /// Number of observed components `m`.
    pub fn len(&self) -> usize {
        self.network.len()
    }

    /// True when nothing is observed.
    pub fn is_empty(&self) -> bool {
        self.network.is_empty()
    }

    /// Apply `H` to a full state vector: the observed values.
    pub fn apply(&self, state: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.mesh().n(), "state length mismatch");
        self.network
            .points()
            .iter()
            .map(|&p| state[self.mesh().index(p)])
            .collect()
    }

    /// Apply `H` to an `n × N` ensemble matrix: the `m × N` matrix `H Xᵇ`.
    pub fn apply_ensemble(&self, states: &Matrix) -> Matrix {
        assert_eq!(states.nrows(), self.mesh().n(), "ensemble rows mismatch");
        let rows: Vec<usize> = self
            .network
            .points()
            .iter()
            .map(|&p| self.mesh().index(p))
            .collect();
        states.select_rows(&rows)
    }

    /// Materialize the dense `m × n` selection matrix (small tests only).
    pub fn to_dense(&self) -> Matrix {
        let mut h = Matrix::zeros(self.len(), self.mesh().n());
        for (k, &p) in self.network.points().iter().enumerate() {
            h[(k, self.mesh().index(p))] = 1.0;
        }
        h
    }
}

/// Perturbed observations `Yˢ ∈ R^{m×N}` with `Yˢ_{k·} ~ N(y_k, R_kk)`.
///
/// Row `k`'s perturbations are drawn from an RNG seeded by `(seed, k)`, so a
/// rank holding any subset of observation rows regenerates exactly the same
/// values the serial reference uses — the keystone of the cross-variant
/// equivalence tests.
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbedObservations {
    seed: u64,
    members: usize,
}

impl PerturbedObservations {
    /// Create the perturbation schema for `members` ensemble members.
    pub fn new(seed: u64, members: usize) -> Self {
        PerturbedObservations { seed, members }
    }

    /// Ensemble size `N`.
    pub fn members(&self) -> usize {
        self.members
    }

    /// The base seed of the per-row streams.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The perturbed row for global observation index `k`:
    /// `y_k + std_k · z` with `z` from the row's deterministic stream.
    pub fn row(&self, k: usize, value: f64, std: f64) -> Vec<f64> {
        // SplitMix-style mixing keeps distinct rows decorrelated even for
        // adjacent k.
        let mixed = (self.seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        let mut rng = StdRng::seed_from_u64(mixed);
        let mut gs = GaussianSampler::new();
        (0..self.members)
            .map(|_| value + std * gs.sample(&mut rng))
            .collect()
    }
}

/// Per-cycle derived data: the bucket-grid spatial index over the network
/// and the fully materialized perturbed-observation matrix. Built lazily on
/// first localization (or eagerly via [`Observations::prepare`]) and shared
/// by every rank thread of a cycle, so per-observation perturbed rows are
/// generated exactly once instead of once per localization.
#[derive(Debug, Clone)]
struct ObsCache {
    index: ObsIndex,
    perturbed: Matrix,
}

/// A complete observation set: operator, observed values `y`, diagonal
/// data-error covariance `R` (per-row variances), and the perturbation
/// schema.
#[derive(Debug, Clone)]
pub struct Observations {
    operator: ObservationOperator,
    values: Vec<f64>,
    error_var: Vec<f64>,
    perturbed: PerturbedObservations,
    cache: OnceLock<ObsCache>,
}

/// Equality ignores the derived cache: two observation sets are equal when
/// the data defining them is.
impl PartialEq for Observations {
    fn eq(&self, other: &Self) -> bool {
        self.operator == other.operator
            && self.values == other.values
            && self.error_var == other.error_var
            && self.perturbed == other.perturbed
    }
}

impl Observations {
    /// Assemble an observation set. `values` and `error_var` are indexed by
    /// network order; variances must be positive.
    pub fn new(
        operator: ObservationOperator,
        values: Vec<f64>,
        error_var: Vec<f64>,
        perturbed: PerturbedObservations,
    ) -> Self {
        assert_eq!(values.len(), operator.len(), "value count mismatch");
        assert_eq!(error_var.len(), operator.len(), "variance count mismatch");
        assert!(
            error_var.iter().all(|&v| v > 0.0),
            "R must be positive definite"
        );
        Observations {
            operator,
            values,
            error_var,
            perturbed,
            cache: OnceLock::new(),
        }
    }

    /// Build (or fetch) the per-cycle cache: the spatial index and the
    /// cached perturbed rows.
    fn cache(&self) -> &ObsCache {
        self.cache.get_or_init(|| {
            // Bucket edge ≈ the mean observation spacing, so a localization
            // box query touches O(1) buckets holding O(obs in box) entries.
            let mesh = self.operator.mesh();
            let m = self.len().max(1);
            let spacing = (mesh.n() as f64 / m as f64).sqrt().ceil() as usize;
            ObsCache {
                index: ObsIndex::build(self.operator.network(), spacing.clamp(2, 64)),
                perturbed: self.perturbed_matrix(),
            }
        })
    }

    /// Eagerly build the per-cycle spatial index and perturbed-row cache.
    ///
    /// Executors call this once before fanning out rank threads so the
    /// one-time construction cost does not land inside a traced compute
    /// span; any thread may still trigger it lazily through
    /// [`Observations::localize`].
    pub fn prepare(&self) {
        let _ = self.cache();
    }

    /// The observation operator.
    pub fn operator(&self) -> &ObservationOperator {
        &self.operator
    }

    /// Observed values `y`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Diagonal of `R`.
    pub fn error_var(&self) -> &[f64] {
        &self.error_var
    }

    /// The perturbation schema.
    pub fn perturbed(&self) -> &PerturbedObservations {
        &self.perturbed
    }

    /// Number of observed components `m`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Materialize the full `m × N` perturbed observation matrix `Yˢ`.
    pub fn perturbed_matrix(&self) -> Matrix {
        let mut y = Matrix::zeros(self.len(), self.perturbed.members());
        for k in 0..self.len() {
            let row = self
                .perturbed
                .row(k, self.values[k], self.error_var[k].sqrt());
            y.row_mut(k).copy_from_slice(&row);
        }
        y
    }

    /// The same observation set for a smaller ensemble of `members`
    /// members.
    ///
    /// Because each row's perturbations are drawn sequentially from that
    /// row's own stream, the reduced set's perturbed matrix equals the
    /// first `members` columns of the original — so a from-scratch
    /// `members`-member run sees exactly the observations a degraded run
    /// keeps after dropping the trailing members.
    pub fn with_members(&self, members: usize) -> Observations {
        Observations::new(
            self.operator.clone(),
            self.values.clone(),
            self.error_var.clone(),
            PerturbedObservations::new(self.perturbed.seed(), members),
        )
    }

    /// Restrict to the observations inside a region, producing the local
    /// pieces of Eq. 6: `H_{[i,j]}` (as expansion-local row indices),
    /// `Yˢ_{[i,j]}` and `R_{[i,j]}`.
    ///
    /// Served from the bucket-grid index and the cached perturbed rows, so
    /// the cost is O(obs in region) after the first call of a cycle. The
    /// result is byte-identical to [`Observations::localize_linear`].
    pub fn localize(&self, region: &RegionRect) -> crate::local::LocalObservations {
        let cache = self.cache();
        let idx = cache.index.indices_in(region);
        let points = self.operator.network().points();
        let mut local_rows = Vec::with_capacity(idx.len());
        let mut values = Vec::with_capacity(idx.len());
        let mut error_var = Vec::with_capacity(idx.len());
        for &k in &idx {
            local_rows.push(region.local_index(points[k]));
            values.push(self.values[k]);
            error_var.push(self.error_var[k]);
        }
        let mut perturbed = Matrix::zeros(idx.len(), self.perturbed.members());
        for (r, &k) in idx.iter().enumerate() {
            perturbed.row_mut(r).copy_from_slice(cache.perturbed.row(k));
        }
        crate::local::LocalObservations {
            local_rows,
            values,
            error_var,
            perturbed,
        }
    }

    /// Reference implementation of [`Observations::localize`]: a linear
    /// scan of the whole network with per-row perturbation regeneration.
    /// Kept as the oracle for the index/cache equivalence property tests.
    pub fn localize_linear(&self, region: &RegionRect) -> crate::local::LocalObservations {
        let mut local_rows = Vec::new();
        let mut values = Vec::new();
        let mut error_var = Vec::new();
        let mut global_indices = Vec::new();
        for (k, &p) in self.operator.network().points().iter().enumerate() {
            if region.contains(p) {
                local_rows.push(region.local_index(p));
                values.push(self.values[k]);
                error_var.push(self.error_var[k]);
                global_indices.push(k);
            }
        }
        let mut perturbed = Matrix::zeros(values.len(), self.perturbed.members());
        for (r, &k) in global_indices.iter().enumerate() {
            let row = self
                .perturbed
                .row(k, self.values[k], self.error_var[k].sqrt());
            perturbed.row_mut(r).copy_from_slice(&row);
        }
        crate::local::LocalObservations {
            local_rows,
            values,
            error_var,
            perturbed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_grid::GridPoint;

    fn obs_set() -> Observations {
        let mesh = Mesh::new(6, 4);
        let net = ObservationNetwork::uniform(mesh, 2);
        let op = ObservationOperator::new(net);
        let m = op.len();
        let values: Vec<f64> = (0..m).map(|k| k as f64).collect();
        let error_var = vec![0.25; m];
        let perturbed = PerturbedObservations::new(42, 5);
        Observations::new(op, values, error_var, perturbed)
    }

    #[test]
    fn apply_selects_observed_points() {
        let mesh = Mesh::new(6, 4);
        let net = ObservationNetwork::uniform(mesh, 3);
        let op = ObservationOperator::new(net);
        let state: Vec<f64> = (0..mesh.n()).map(|i| i as f64).collect();
        let obs = op.apply(&state);
        for (k, &p) in op.network().points().iter().enumerate() {
            assert_eq!(obs[k], mesh.index(p) as f64);
        }
    }

    #[test]
    fn apply_ensemble_matches_dense_h() {
        let mesh = Mesh::new(5, 3);
        let net = ObservationNetwork::uniform(mesh, 2);
        let op = ObservationOperator::new(net);
        let states = Matrix::from_fn(mesh.n(), 3, |i, j| (i * 3 + j) as f64);
        let fast = op.apply_ensemble(&states);
        let dense = op.to_dense().matmul(&states).unwrap();
        assert!(fast.approx_eq(&dense, 1e-12));
    }

    #[test]
    fn perturbed_rows_are_deterministic_and_distinct() {
        let p = PerturbedObservations::new(7, 8);
        let a = p.row(3, 1.0, 0.5);
        let b = p.row(3, 1.0, 0.5);
        let c = p.row(4, 1.0, 0.5);
        assert_eq!(a, b, "same row twice must be identical");
        assert_ne!(a, c, "different rows must differ");
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn perturbed_matrix_rows_match_row_fn() {
        let obs = obs_set();
        let y = obs.perturbed_matrix();
        for k in 0..obs.len() {
            let row = obs
                .perturbed()
                .row(k, obs.values()[k], obs.error_var()[k].sqrt());
            assert_eq!(y.row(k), &row[..]);
        }
    }

    #[test]
    fn reduced_member_set_is_a_column_prefix() {
        let obs = obs_set();
        let reduced = obs.with_members(3);
        assert_eq!(reduced.perturbed().members(), 3);
        assert_eq!(reduced.perturbed().seed(), obs.perturbed().seed());
        let full = obs.perturbed_matrix();
        let small = reduced.perturbed_matrix();
        for k in 0..obs.len() {
            assert_eq!(&full.row(k)[..3], small.row(k));
        }
        // Column selection of the localized set agrees with localizing the
        // reduced set directly.
        let region = RegionRect::new(0, 6, 0, 4);
        let selected = obs.localize(&region).select_members(&[0, 1, 2]);
        assert_eq!(selected, reduced.localize(&region));
    }

    #[test]
    fn select_members_picks_arbitrary_columns() {
        let obs = obs_set();
        let region = RegionRect::new(0, 6, 0, 4);
        let local = obs.localize(&region);
        let picked = local.select_members(&[0, 2, 4]);
        assert_eq!(picked.perturbed.ncols(), 3);
        assert_eq!(picked.values, local.values);
        for r in 0..local.len() {
            for (c, &k) in [0usize, 2, 4].iter().enumerate() {
                assert_eq!(picked.perturbed[(r, c)], local.perturbed[(r, k)]);
            }
        }
    }

    #[test]
    fn localize_matches_global_subset() {
        let obs = obs_set();
        let region = RegionRect::new(1, 5, 1, 4);
        let local = obs.localize(&region);
        let y = obs.perturbed_matrix();
        // Cross-check every localized row against its global counterpart.
        let mut r = 0;
        for (k, &p) in obs.operator().network().points().iter().enumerate() {
            if region.contains(p) {
                assert_eq!(local.local_rows[r], region.local_index(p));
                assert_eq!(local.values[r], obs.values()[k]);
                assert_eq!(local.perturbed.row(r), y.row(k));
                r += 1;
            }
        }
        assert_eq!(r, local.len());
    }

    #[test]
    fn localize_empty_region() {
        let obs = obs_set();
        let region = RegionRect::new(1, 2, 1, 2); // contains no stride-2 point
        let local = obs.localize(&region);
        assert!(local.is_empty());
    }

    #[test]
    fn indexed_localize_is_byte_identical_to_linear() {
        let obs = obs_set();
        let mesh = obs.operator().mesh();
        obs.prepare();
        for region in [
            RegionRect::new(1, 5, 1, 4),
            RegionRect::new(0, 6, 0, 4),
            RegionRect::new(2, 2, 0, 4),
            RegionRect::new(5, 6, 3, 4),
            RegionRect::full(mesh),
        ] {
            assert_eq!(
                obs.localize(&region),
                obs.localize_linear(&region),
                "region {region:?}"
            );
        }
    }

    #[test]
    fn equality_ignores_cache_state() {
        let a = obs_set();
        let b = obs_set();
        a.prepare();
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "R must be positive definite")]
    fn zero_variance_rejected() {
        let mesh = Mesh::new(4, 4);
        let net = ObservationNetwork::from_points(mesh, vec![GridPoint { ix: 0, iy: 0 }]);
        Observations::new(
            ObservationOperator::new(net),
            vec![1.0],
            vec![0.0],
            PerturbedObservations::new(0, 2),
        );
    }
}
