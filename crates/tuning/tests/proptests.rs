//! Property-based tests of the cost model and tuner invariants.

use enkf_tuning::{algorithm1, autotune, CostParams, MachineParams, Params, Workload};
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        1usize..=5,
        1usize..=5,
        1usize..=4,
        1usize..=3,
        0usize..=3,
        0usize..=3,
    )
        .prop_map(|(ax, ay, am, h, xi, eta)| Workload {
            nx: ax * 60,
            ny: ay * 60,
            members: am * 12,
            h: h as u64 * 8,
            xi,
            eta,
        })
}

fn cost_strategy() -> impl Strategy<Value = CostParams> {
    workload_strategy().prop_map(|workload| CostParams {
        workload,
        machine: MachineParams::tianhe2_like(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn costs_are_positive_and_finite(cost in cost_strategy(), seed in any::<u64>()) {
        // Evaluate the model at a random feasible parameter set.
        let w = &cost.workload;
        let divy: Vec<usize> = (1..=w.ny).filter(|d| w.ny.is_multiple_of(*d)).collect();
        let nsdy = divy[(seed as usize) % divy.len()];
        let divx: Vec<usize> = (1..=w.nx).filter(|d| w.nx.is_multiple_of(*d)).collect();
        let nsdx = divx[(seed as usize / 7) % divx.len()];
        let sub_h = w.ny / nsdy;
        let divl: Vec<usize> = (1..=sub_h).filter(|d| sub_h.is_multiple_of(*d)).collect();
        let layers = divl[(seed as usize / 13) % divl.len()];
        let divm: Vec<usize> = (1..=w.members).filter(|d| w.members.is_multiple_of(*d)).collect();
        let ncg = divm[(seed as usize / 29) % divm.len()];
        let p = Params { nsdx, nsdy, layers, ncg };
        for v in [cost.t_read(&p), cost.t_comm(&p), cost.t_comp(&p), cost.t1(&p), cost.t_total(&p)] {
            prop_assert!(v.is_finite() && v > 0.0, "{p:?} -> {v}");
        }
        prop_assert!(cost.t_total(&p) >= cost.t1(&p));
    }

    #[test]
    fn algorithm1_solutions_satisfy_all_constraints(
        cost in cost_strategy(),
        c1_raw in 1usize..200,
        c2_raw in 1usize..2000,
    ) {
        if let Some(t) = algorithm1(&cost, c1_raw, c2_raw) {
            let p = t.params;
            let w = &cost.workload;
            prop_assert_eq!(p.c1(), c1_raw);
            prop_assert_eq!(p.c2(), c2_raw);
            prop_assert_eq!(w.ny % p.nsdy, 0);
            prop_assert_eq!(w.nx % p.nsdx, 0);
            prop_assert_eq!(w.members % p.ncg, 0);
            prop_assert_eq!((w.ny / p.nsdy) % p.layers, 0);
            prop_assert!((t.t1 - cost.t1(&p)).abs() < 1e-12);
            prop_assert!((t.t_total - cost.t_total(&p)).abs() < 1e-12);
        }
    }

    #[test]
    fn autotune_respects_the_budget(cost in cost_strategy(), np_k in 2usize..40) {
        let np = np_k * 50;
        if let Some(t) = autotune(&cost, np, 1e-2) {
            prop_assert!(
                t.params.total_processors() <= np,
                "{:?} uses {} > {np}",
                t.params,
                t.params.total_processors()
            );
            prop_assert!(t.t_total.is_finite() && t.t_total > 0.0);
        }
    }

    #[test]
    fn t_comp_conserves_total_work(cost in cost_strategy(), seed in any::<u64>()) {
        // L * C2 * t_comp == c * n regardless of the parameter choice.
        let w = &cost.workload;
        let divy: Vec<usize> = (1..=w.ny).filter(|d| w.ny.is_multiple_of(*d)).collect();
        let nsdy = divy[(seed as usize) % divy.len()];
        let divx: Vec<usize> = (1..=w.nx).filter(|d| w.nx.is_multiple_of(*d)).collect();
        let nsdx = divx[(seed as usize / 3) % divx.len()];
        let sub_h = w.ny / nsdy;
        let divl: Vec<usize> = (1..=sub_h).filter(|d| sub_h.is_multiple_of(*d)).collect();
        let layers = divl[(seed as usize / 11) % divl.len()];
        let p = Params { nsdx, nsdy, layers, ncg: 1 };
        let total = p.layers as f64 * p.c2() as f64 * cost.t_comp(&p);
        let expect = cost.machine.c * w.n() as f64;
        prop_assert!((total - expect).abs() < 1e-6 * expect, "{total} vs {expect}");
    }
}
