//! Algorithm 1, the earnings-rate economic choice, and Algorithm 2.

use crate::model::{CostParams, Params};

/// A solution found by the tuner: the parameters plus the model costs at
/// those parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedParams {
    /// The chosen decomposition/overlap parameters.
    pub params: Params,
    /// `T₁ = T_read + T_comm` at the chosen parameters.
    pub t1: f64,
    /// `T_total` (Eq. 10) at the chosen parameters.
    pub t_total: f64,
}

/// One point of the `min T₁` vs `C₁` curve of Figure 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// The I/O-processor cost `C₁`.
    pub c1: usize,
    /// The minimal `T₁` achievable at that cost.
    pub t1: f64,
    /// The parameters achieving it.
    pub params: Params,
}

/// **Algorithm 1** — solve optimization problem (11)–(12): minimize
/// `T₁ = T_read + T_comm` over `(n_sdx, n_sdy, L, n_cg)` subject to
/// `n_cg·n_sdy = C₁` and `n_sdx·n_sdy = C₂`, with the divisibility
/// constraints of the decomposition (`n_sdy | n_y`, `n_sdx | n_x`,
/// `n_cg | N`, `L | n_y/n_sdy`).
///
/// Returns `None` when no feasible parameter combination exists.
///
/// **Deviation from the paper (documented in DESIGN.md):** the feasible set
/// additionally requires two *pipelining constraints*:
///
/// 1. `T₁ ≤ T_comp` — one stage's acquisition must fit behind one stage's
///    computation; Eq. (10) charges only the first stage's read+comm, so
///    without this the model degenerates to maximal `L` (hidden
///    acquisitions look free even when their total exceeds the computation
///    they are supposed to hide behind).
/// 2. layer height `n_y/(n_sdy·L) ≥ 2η` — every stage re-reads its `2η`
///    halo rows (the additive term of Eq. 7), so thinner layers spend more
///    I/O on halo than on payload.
///
/// Parameter sets violating the constraints are used only as a fallback
/// when nothing satisfies them.
///
/// ```
/// use enkf_tuning::{algorithm1, CostParams};
///
/// let cost = CostParams::paper();
/// let tuned = algorithm1(&cost, 120, 2000).expect("feasible");
/// assert_eq!(tuned.params.c1(), 120);
/// assert_eq!(tuned.params.c2(), 2000);
/// assert!(tuned.t1 > 0.0 && tuned.t_total > tuned.t1);
/// ```
pub fn algorithm1(cost: &CostParams, c1: usize, c2: usize) -> Option<TunedParams> {
    let w = &cost.workload;
    let mut best: Option<TunedParams> = None;
    let mut best_fallback: Option<TunedParams> = None;
    // j = n_sdy must divide C1, C2 and n_y (paper's loop, restricted to
    // actual divisors for efficiency).
    for j in 1..=c1.min(c2).min(w.ny) {
        if !c1.is_multiple_of(j) || !c2.is_multiple_of(j) || !w.ny.is_multiple_of(j) {
            continue;
        }
        let ncg = c1 / j;
        let nsdx = c2 / j;
        if !w.nx.is_multiple_of(nsdx) || !w.members.is_multiple_of(ncg) {
            continue;
        }
        let sub_height = w.ny / j;
        for layers in 1..=sub_height {
            if !sub_height.is_multiple_of(layers) {
                continue;
            }
            let p = Params {
                nsdx,
                nsdy: j,
                layers,
                ncg,
            };
            let t1 = cost.t1(&p);
            let entry = TunedParams {
                params: p,
                t1,
                t_total: cost.t_total(&p),
            };
            if pipelining_ok(cost, &p, t1) {
                if best.is_none_or(|b| t1 < b.t1) {
                    best = Some(entry);
                }
            } else if best_fallback.is_none_or(|b| t1 < b.t1) {
                best_fallback = Some(entry);
            }
        }
    }
    best.or(best_fallback)
}

/// The minimal-`T₁` curve over a set of `C₁` candidates at fixed `C₂`
/// (Figure 12's solid line). Infeasible candidates are skipped.
pub fn min_t1_curve(
    cost: &CostParams,
    c2: usize,
    c1_candidates: impl IntoIterator<Item = usize>,
) -> Vec<CurvePoint> {
    let mut out = Vec::new();
    for c1 in c1_candidates {
        if let Some(t) = algorithm1(cost, c1, c2) {
            out.push(CurvePoint {
                c1,
                t1: t.t1,
                params: t.params,
            });
        }
    }
    out
}

/// The economic choice (Eqs. 13–14): walk the curve in increasing `C₁`; the
/// earnings rate of step `m → m+1` is
/// `r_m = (t₁^m − t₁^{m+1}) / (c₁^{m+1} − c₁^m)`; choose the first point
/// whose following step earns less than `ε` seconds per extra processor.
/// Falls back to the last point when every step is still worth its cost.
pub fn economic_choice(curve: &[CurvePoint], epsilon: f64) -> Option<CurvePoint> {
    if curve.is_empty() {
        return None;
    }
    for m in 0..curve.len() - 1 {
        let dc = curve[m + 1].c1 as f64 - curve[m].c1 as f64;
        if dc <= 0.0 {
            continue;
        }
        let r = (curve[m].t1 - curve[m + 1].t1) / dc;
        if r < epsilon {
            return Some(curve[m]);
        }
    }
    curve.last().copied()
}

/// **Algorithm 2** — full auto-tuning: for each compute cost `C₂` in the
/// candidate set, find the economic `C₁ ≤ n_p − C₂` by the earnings-rate
/// rule, then keep the candidate with the smallest `T_total`.
///
/// The paper iterates `C₂` over every value in `1..n_p`; that search is
/// `O(n_p²)` invocations of Algorithm 1 and is unnecessary because only
/// divisor-compatible `C₂` are feasible — this implementation accepts an
/// explicit candidate list (see [`autotune`] for the default sweep).
pub fn autotune_with_candidates(
    cost: &CostParams,
    np: usize,
    epsilon: f64,
    c2_candidates: impl IntoIterator<Item = usize>,
) -> Option<TunedParams> {
    let w = &cost.workload;
    let mut best: Option<TunedParams> = None;
    for c2 in c2_candidates {
        if c2 == 0 || c2 >= np {
            continue;
        }
        // Equivalent to scanning Algorithm 1 over every C1 in 1..=np-c2 but
        // enumerating only the feasible (n_sdy, n_cg, L) triples: C1 values
        // outside { j·k : j | C2, j | n_y, n_x | C2/j divisible, k | N }
        // have no Algorithm-1 solution and the paper's loop skips them.
        let mut by_c1: std::collections::BTreeMap<usize, TunedParams> =
            std::collections::BTreeMap::new();
        let mut fallback_by_c1: std::collections::BTreeMap<usize, TunedParams> =
            std::collections::BTreeMap::new();
        for j in divisors(c2) {
            if !w.ny.is_multiple_of(j) || !w.nx.is_multiple_of(c2 / j) {
                continue;
            }
            let nsdx = c2 / j;
            let sub_height = w.ny / j;
            for k in divisors(w.members) {
                let c1 = j * k;
                if c1 + c2 > np {
                    continue;
                }
                for layers in divisors(sub_height) {
                    let p = Params {
                        nsdx,
                        nsdy: j,
                        layers,
                        ncg: k,
                    };
                    let t1 = cost.t1(&p);
                    let entry = TunedParams {
                        params: p,
                        t1,
                        t_total: cost.t_total(&p),
                    };
                    // Same pipelining constraints as `algorithm1`.
                    let map = if pipelining_ok(cost, &p, t1) {
                        &mut by_c1
                    } else {
                        &mut fallback_by_c1
                    };
                    map.entry(c1)
                        .and_modify(|e| {
                            if t1 < e.t1 {
                                *e = entry;
                            }
                        })
                        .or_insert(entry);
                }
            }
        }
        let by_c1 = if by_c1.is_empty() {
            fallback_by_c1
        } else {
            by_c1
        };
        // Strictly-improving C1 points, as Algorithm 2 records them.
        let mut curve: Vec<CurvePoint> = Vec::new();
        for (c1, t) in by_c1 {
            if curve.last().is_none_or(|last| t.t1 < last.t1) {
                curve.push(CurvePoint {
                    c1,
                    t1: t.t1,
                    params: t.params,
                });
            }
        }
        let Some(choice) = economic_choice(&curve, epsilon) else {
            continue;
        };
        let t_total = cost.t_total(&choice.params);
        if best.is_none_or(|b| t_total < b.t_total) {
            best = Some(TunedParams {
                params: choice.params,
                t1: choice.t1,
                t_total,
            });
        }
    }
    best
}

/// The pipelining feasibility constraints (see [`algorithm1`]'s docs).
fn pipelining_ok(cost: &CostParams, p: &Params, t1: f64) -> bool {
    let w = &cost.workload;
    let layer_rows = w.ny / (p.nsdy * p.layers);
    t1 <= cost.t_comp(p) && (w.eta == 0 || layer_rows >= 2 * w.eta)
}

/// All divisors of `n`, ascending.
fn divisors(n: usize) -> Vec<usize> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// Auto-tune over a default `C₂` sweep: every feasible
/// `C₂ = n_sdx · n_sdy ≤ np` built from divisors of `n_x` and `n_y`
/// (bounded to keep the sweep tractable at `n_p ~ 10⁴`).
pub fn autotune(cost: &CostParams, np: usize, epsilon: f64) -> Option<TunedParams> {
    let w = &cost.workload;
    let divx: Vec<usize> = (1..=w.nx).filter(|d| w.nx.is_multiple_of(*d)).collect();
    let divy: Vec<usize> = (1..=w.ny).filter(|d| w.ny.is_multiple_of(*d)).collect();
    let mut c2s: Vec<usize> = Vec::new();
    for &dx in &divx {
        for &dy in &divy {
            let c2 = dx * dy;
            if c2 >= 1 && c2 < np {
                c2s.push(c2);
            }
        }
    }
    c2s.sort_unstable();
    c2s.dedup();
    // Keep the largest few hundred candidates: small C2 never wins at scale
    // because L·T_comp dominates.
    if c2s.len() > 400 {
        c2s = c2s.split_off(c2s.len() - 400);
    }
    autotune_with_candidates(cost, np, epsilon, c2s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MachineParams, Workload};

    fn small_cost() -> CostParams {
        CostParams {
            workload: Workload {
                nx: 240,
                ny: 120,
                members: 12,
                h: 80,
                xi: 2,
                eta: 2,
            },
            machine: MachineParams::tianhe2_like(),
        }
    }

    #[test]
    fn algorithm1_respects_constraints() {
        let cost = small_cost();
        let (c1, c2) = (24, 120);
        let t = algorithm1(&cost, c1, c2).expect("feasible");
        let p = t.params;
        assert_eq!(p.c1(), c1);
        assert_eq!(p.c2(), c2);
        assert_eq!(cost.workload.ny % p.nsdy, 0);
        assert_eq!(cost.workload.nx % p.nsdx, 0);
        assert_eq!(cost.workload.members % p.ncg, 0);
        assert_eq!((cost.workload.ny / p.nsdy) % p.layers, 0);
    }

    #[test]
    fn algorithm1_finds_the_minimum_over_feasible_space() {
        // Brute-force the feasible space (with the same pipelining
        // preference) and compare.
        let cost = small_cost();
        let (c1, c2) = (12, 60);
        let got = algorithm1(&cost, c1, c2).unwrap();
        let w = &cost.workload;
        let mut best_ok = f64::INFINITY;
        let mut best_any = f64::INFINITY;
        for nsdy in 1..=c1.min(c2) {
            if c1 % nsdy != 0 || c2 % nsdy != 0 || !w.ny.is_multiple_of(nsdy) {
                continue;
            }
            let ncg = c1 / nsdy;
            let nsdx = c2 / nsdy;
            if !w.nx.is_multiple_of(nsdx) || !w.members.is_multiple_of(ncg) {
                continue;
            }
            for layers in 1..=(w.ny / nsdy) {
                if !(w.ny / nsdy).is_multiple_of(layers) {
                    continue;
                }
                let p = Params {
                    nsdx,
                    nsdy,
                    layers,
                    ncg,
                };
                let t1 = cost.t1(&p);
                if super::pipelining_ok(&cost, &p, t1) {
                    best_ok = best_ok.min(t1);
                } else {
                    best_any = best_any.min(t1);
                }
            }
        }
        let best = if best_ok.is_finite() {
            best_ok
        } else {
            best_any
        };
        assert!((got.t1 - best).abs() < 1e-12);
    }

    #[test]
    fn algorithm1_infeasible_returns_none() {
        let cost = small_cost();
        // c1 = 7 (prime), c2 = 11 (prime): nsdy must divide both -> nsdy=1,
        // then ncg=7 must divide members=12: infeasible.
        assert!(algorithm1(&cost, 7, 11).is_none());
    }

    #[test]
    fn min_t1_is_roughly_non_increasing_over_doubling_c1() {
        // With the pipelining constraints the feasible sets at different C1
        // no longer strictly nest, so allow a small (5%) slack on the
        // paper's monotonicity claim.
        let cost = small_cost();
        let curve = min_t1_curve(&cost, 120, [6, 12, 24, 48]);
        assert!(curve.len() >= 3);
        for w in curve.windows(2) {
            assert!(w[1].t1 <= w[0].t1 * 1.05, "{w:?}");
        }
        // And across the whole sweep the trend is clearly downward.
        assert!(curve.last().unwrap().t1 < curve.first().unwrap().t1);
    }

    #[test]
    fn economic_choice_stops_at_diminishing_returns() {
        let mk = |c1: usize, t1: f64| CurvePoint {
            c1,
            t1,
            params: Params {
                nsdx: 1,
                nsdy: 1,
                layers: 1,
                ncg: c1,
            },
        };
        // Steep then flat: rates are 1.0, 0.5, 0.001.
        let curve = vec![mk(1, 10.0), mk(2, 9.0), mk(4, 8.0), mk(8, 7.996)];
        let pick = economic_choice(&curve, 0.01).unwrap();
        assert_eq!(pick.c1, 4, "stop before the step that earns < epsilon");
        // With a tiny epsilon every step is worth it: take the last.
        let greedy = economic_choice(&curve, 1e-9).unwrap();
        assert_eq!(greedy.c1, 8);
        assert!(economic_choice(&[], 0.1).is_none());
    }

    #[test]
    fn autotune_fits_processor_budget() {
        let cost = small_cost();
        let np = 96;
        let t = autotune(&cost, np, 1e-3).expect("tunable");
        assert!(t.params.total_processors() <= np, "{:?}", t.params);
        assert!(t.t_total > 0.0 && t.t_total.is_finite());
    }

    #[test]
    fn autotune_uses_more_processors_when_given_more() {
        let cost = small_cost();
        let small = autotune(&cost, 48, 1e-4).unwrap();
        let large = autotune(&cost, 192, 1e-4).unwrap();
        assert!(
            large.t_total <= small.t_total + 1e-12,
            "more budget cannot be slower: {} vs {}",
            large.t_total,
            small.t_total
        );
    }

    #[test]
    fn paper_scale_autotune_runs() {
        // The paper-scale sweep must complete quickly and produce a sane
        // configuration (this also exercises the C2-candidate pruning).
        let cost = CostParams::paper();
        let t = autotune(&cost, 2400, 5e-4).expect("feasible at paper scale");
        assert!(t.params.total_processors() <= 2400);
        assert!(t.params.layers >= 1);
        assert!(t.params.ncg >= 1);
    }
}

#[cfg(test)]
mod divisor_tests {
    use super::divisors;

    #[test]
    fn divisors_of_small_numbers() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(49), vec![1, 7, 49]);
        assert_eq!(divisors(120).len(), 16);
    }

    #[test]
    fn divisors_are_sorted_and_divide() {
        let ds = divisors(1800);
        assert!(ds.windows(2).all(|w| w[0] < w[1]));
        assert!(ds.iter().all(|d| 1800 % d == 0));
        assert_eq!(*ds.first().unwrap(), 1);
        assert_eq!(*ds.last().unwrap(), 1800);
    }
}
