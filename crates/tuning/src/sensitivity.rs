//! Sensitivity analysis for the auto-tuner's economic threshold `ε`.
//!
//! The earnings-rate rule (Eq. 14) stops buying I/O processors once an
//! extra processor saves less than `ε` seconds. `ε` is the only free knob
//! of Algorithm 2, so an operator wants to see how the chosen `C₁` (and the
//! achieved `T₁`) move as `ε` varies — typically a staircase: large `ε`
//! settles for few I/O processors, small `ε` buys toward file-system
//! saturation.

use crate::model::CostParams;
use crate::tune::{economic_choice, min_t1_curve, CurvePoint};

/// The economic choice at one `ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityPoint {
    /// The threshold used.
    pub epsilon: f64,
    /// The chosen point of the min-`T₁` curve.
    pub choice: CurvePoint,
}

/// Sweep `ε` over the given values at fixed `C₂`, returning the economic
/// choice at each. The curve is computed once; candidates with no feasible
/// parameters are skipped.
pub fn epsilon_sensitivity(
    cost: &CostParams,
    c2: usize,
    c1_candidates: impl IntoIterator<Item = usize>,
    epsilons: impl IntoIterator<Item = f64>,
) -> Vec<SensitivityPoint> {
    let curve = min_t1_curve(cost, c2, c1_candidates);
    // Strictly-improving filter, as Algorithm 2 applies.
    let mut filtered: Vec<CurvePoint> = Vec::new();
    for pt in curve {
        if filtered.last().is_none_or(|last| pt.t1 < last.t1) {
            filtered.push(pt);
        }
    }
    epsilons
        .into_iter()
        .filter_map(|epsilon| {
            economic_choice(&filtered, epsilon).map(|choice| SensitivityPoint { epsilon, choice })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MachineParams, Workload};

    fn cost() -> CostParams {
        CostParams {
            workload: Workload {
                nx: 240,
                ny: 120,
                members: 12,
                h: 80,
                xi: 2,
                eta: 2,
            },
            machine: MachineParams::tianhe2_like(),
        }
    }

    #[test]
    fn larger_epsilon_never_buys_more_processors() {
        let cost = cost();
        let pts = epsilon_sensitivity(
            &cost,
            120,
            [6usize, 12, 24, 48, 96],
            [1e-6, 1e-4, 1e-2, 1.0],
        );
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].epsilon < w[1].epsilon);
            assert!(
                w[1].choice.c1 <= w[0].choice.c1,
                "eps {} chose {} > eps {} chose {}",
                w[1].epsilon,
                w[1].choice.c1,
                w[0].epsilon,
                w[0].choice.c1
            );
        }
    }

    #[test]
    fn tiny_epsilon_takes_the_last_point() {
        let cost = cost();
        let pts = epsilon_sensitivity(&cost, 120, [6usize, 12, 24, 48], [1e-12]);
        assert_eq!(pts.len(), 1);
        // With a vanishing threshold every improving step is worth it.
        let curve = min_t1_curve(&cost, 120, [6usize, 12, 24, 48]);
        let best_t1 = curve.iter().map(|p| p.t1).fold(f64::INFINITY, f64::min);
        assert!((pts[0].choice.t1 - best_t1).abs() < 1e-12);
    }

    #[test]
    fn empty_candidates_yield_no_points() {
        let cost = cost();
        let pts = epsilon_sensitivity(&cost, 120, std::iter::empty(), [0.1]);
        assert!(pts.is_empty());
    }
}
