//! Cost models and auto-tuning for S-EnKF (paper §4.3–§4.4).
//!
//! * [`model`] — Table 1's parameters and the closed-form phase costs:
//!   `T_read` (Eq. 7), `T_comm` (Eq. 8), `T_comp` (Eq. 9) and the total
//!   `T_total = T_read + T_comm + L·T_comp` (Eq. 10; read and communication
//!   appear once because every stage after the first is overlapped with
//!   computation).
//! * [`tune`] — Algorithm 1 (the constrained minimizer of
//!   `T₁ = T_read + T_comm` subject to `n_cg·n_sdy = C₁`,
//!   `n_sdx·n_sdy = C₂`), the earnings-rate economic choice (Eqs. 13–14),
//!   and Algorithm 2 (the full auto-tuner over the processor budget).

pub mod model;
pub mod sensitivity;
pub mod tune;

pub use model::{CostParams, MachineParams, Params, Workload};
pub use sensitivity::{epsilon_sensitivity, SensitivityPoint};
pub use tune::{
    algorithm1, autotune, autotune_with_candidates, economic_choice, min_t1_curve, CurvePoint,
    TunedParams,
};
