//! Table 1's notation and the phase-cost equations (7)–(10).

use serde::{Deserialize, Serialize};

/// The assimilation workload geometry (problem-side rows of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Grid points along longitude (`n_x`).
    pub nx: usize,
    /// Grid points along latitude (`n_y`).
    pub ny: usize,
    /// Background ensemble members / files (`N`).
    pub members: usize,
    /// Volume of data per grid point in bytes (`h`).
    pub h: u64,
    /// Localization radius along longitude in grid points (`ξ`).
    pub xi: usize,
    /// Localization radius along latitude in grid points (`η`).
    pub eta: usize,
}

impl Workload {
    /// The paper's evaluation workload: 0.1° ocean data, `3600 × 1800`
    /// mesh, 120 members, 30 vertical `f64` levels (`h = 240`).
    pub fn paper_ocean() -> Self {
        Workload {
            nx: 3600,
            ny: 1800,
            members: 120,
            h: 240,
            xi: 2,
            eta: 2,
        }
    }

    /// Total model components `n = n_x · n_y`.
    pub fn n(&self) -> usize {
        self.nx * self.ny
    }

    /// Bytes of one background ensemble member file.
    pub fn file_bytes(&self) -> u64 {
        self.n() as u64 * self.h
    }
}

/// The machine-side rows of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Startup time per message, seconds (`a`).
    pub a: f64,
    /// Transfer time per byte for messages, seconds (`b`).
    pub b: f64,
    /// Computation cost of the local analysis per grid point, seconds (`c`).
    pub c: f64,
    /// Transfer time per byte from disk to memory, seconds (`θ`).
    pub theta: f64,
}

impl MachineParams {
    /// Constants calibrated to reproduce the paper's *shapes* on the
    /// modeled Tianhe-2-like substrate (see EXPERIMENTS.md): 200 µs effective message
    /// startup (large-message rendezvous under fabric congestion), 300 MB/s effective per-endpoint links, 300 MB/s per disk
    /// stream, and a per-point local-analysis cost (`c = 0.2 s`: one
    /// modified-Cholesky solve over a (2ξ+1)(2η+1) box with
    /// N = 120 members) that puts the P-EnKF compute/IO crossover near
    /// 8,000 processors.
    pub fn tianhe2_like() -> Self {
        MachineParams {
            a: 2.0e-4,
            b: 1.0 / 0.3e9,
            c: 0.2,
            theta: 1.0 / 300.0e6,
        }
    }
}

/// The tunable parameters Algorithm 2 optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Params {
    /// Sub-domains along longitude (`n_sdx`).
    pub nsdx: usize,
    /// Sub-domains along latitude (`n_sdy`).
    pub nsdy: usize,
    /// Layers per sub-domain (`L`).
    pub layers: usize,
    /// Concurrent I/O groups (`n_cg`).
    pub ncg: usize,
}

impl Params {
    /// Compute-processor cost `C₂ = n_sdx · n_sdy`.
    pub fn c2(&self) -> usize {
        self.nsdx * self.nsdy
    }

    /// I/O-processor cost `C₁ = n_cg · n_sdy`.
    pub fn c1(&self) -> usize {
        self.ncg * self.nsdy
    }

    /// Total processors used `C₁ + C₂`.
    pub fn total_processors(&self) -> usize {
        self.c1() + self.c2()
    }
}

/// Workload and machine parameters together: everything Eqs. (7)–(10) need.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Problem geometry.
    pub workload: Workload,
    /// Machine constants.
    pub machine: MachineParams,
}

impl CostParams {
    /// Paper workload on the Tianhe-2-like machine model.
    pub fn paper() -> Self {
        CostParams {
            workload: Workload::paper_ocean(),
            machine: MachineParams::tianhe2_like(),
        }
    }

    /// Eq. (7): per-stage read cost.
    ///
    /// Each I/O concurrent group reads `N/n_cg` files; per stage each of a
    /// group's `n_sdy` processors reads a small bar of
    /// `(n_y/(n_sdy·L) + 2η) · n_x` points, and the `log(n_cg·n_sdy)`
    /// factor models the loss from concurrent streams sharing the file
    /// system.
    pub fn t_read(&self, p: &Params) -> f64 {
        let w = &self.workload;
        let rows = w.ny as f64 / (p.nsdy * p.layers) as f64 + 2.0 * w.eta as f64;
        let bytes = rows * w.nx as f64 * w.h as f64 * w.members as f64 / p.ncg as f64;
        bytes * self.machine.theta * contention_factor(p.ncg * p.nsdy)
    }

    /// Eq. (8): per-stage communication cost.
    ///
    /// Each I/O processor sends `n_sdx` blocks of
    /// `(n_y/(n_sdy·L) + 2η) × (n_x/n_sdx + 2ξ) × N/n_cg` points; the
    /// `log(n_cg + 1)` factor is the group tree.
    pub fn t_comm(&self, p: &Params) -> f64 {
        let w = &self.workload;
        let rows = w.ny as f64 / (p.nsdy * p.layers) as f64 + 2.0 * w.eta as f64;
        let cols = w.nx as f64 / p.nsdx as f64 + 2.0 * w.xi as f64;
        let block_bytes = rows * cols * w.members as f64 / p.ncg as f64 * w.h as f64;
        p.nsdx as f64 * log_factor(p.ncg + 1) * (self.machine.a + self.machine.b * block_bytes)
    }

    /// Eq. (9): per-stage computation cost — `c` per grid point over one
    /// layer of one sub-domain.
    pub fn t_comp(&self, p: &Params) -> f64 {
        let w = &self.workload;
        self.machine.c * (w.ny as f64 / (p.nsdy * p.layers) as f64) * (w.nx as f64 / p.nsdx as f64)
    }

    /// `T₁ = T_read + T_comm`, the objective of optimization problem (11).
    pub fn t1(&self, p: &Params) -> f64 {
        self.t_read(p) + self.t_comm(p)
    }

    /// Eq. (10): `T_total = T_read + T_comm + L · T_comp` — the first
    /// stage's read and communication are exposed; all later stages overlap
    /// with computation.
    pub fn t_total(&self, p: &Params) -> f64 {
        self.t1(p) + p.layers as f64 * self.t_comp(p)
    }
}

/// `log₂(x)` clamped below at 1 — the `log(n_cg + 1)` tree factor of
/// Eq. (8) (binary tree, base 2).
fn log_factor(x: usize) -> f64 {
    (x as f64).log2().max(1.0)
}

/// The paper's `log(·)` disk-contention factor of Eq. (7), clamped below
/// at 1. The base is a calibration constant; base 4 — the number of
/// concurrent streams one OST serves on the modeled file system — matches
/// the discrete-event substrate (Figure 12's model-vs-test comparison).
fn contention_factor(x: usize) -> f64 {
    (x as f64).log(4.0).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params {
            nsdx: 50,
            nsdy: 40,
            layers: 5,
            ncg: 6,
        }
    }

    #[test]
    fn processor_costs() {
        let p = params();
        assert_eq!(p.c2(), 2000);
        assert_eq!(p.c1(), 240);
        assert_eq!(p.total_processors(), 2240);
    }

    #[test]
    fn paper_workload_sizes() {
        let w = Workload::paper_ocean();
        assert_eq!(w.n(), 6_480_000);
        // ~1.55 GB per member, ~186 GB for the 120-member ensemble.
        assert_eq!(w.file_bytes(), 1_555_200_000);
    }

    #[test]
    fn t_read_decreases_with_more_groups() {
        let cost = CostParams::paper();
        let p1 = Params { ncg: 1, ..params() };
        let p4 = Params { ncg: 4, ..params() };
        assert!(cost.t_read(&p4) < cost.t_read(&p1));
    }

    #[test]
    fn t_read_decreases_with_more_layers() {
        let cost = CostParams::paper();
        let few = Params {
            layers: 1,
            ..params()
        };
        let many = Params {
            layers: 10,
            ..params()
        };
        assert!(
            cost.t_read(&many) < cost.t_read(&few),
            "per-stage reads shrink with L"
        );
    }

    #[test]
    fn t_comp_scales_inversely_with_compute_processors() {
        let cost = CostParams::paper();
        let small = Params {
            nsdx: 25,
            nsdy: 20,
            layers: 1,
            ncg: 4,
        };
        let large = Params {
            nsdx: 50,
            nsdy: 40,
            layers: 1,
            ncg: 4,
        };
        let ratio = cost.t_comp(&small) / cost.t_comp(&large);
        assert!(
            (ratio - 4.0).abs() < 1e-9,
            "4x processors -> 1/4 per-stage compute"
        );
    }

    #[test]
    fn t_total_combines_phases() {
        let cost = CostParams::paper();
        let p = params();
        let total = cost.t_total(&p);
        let sum = cost.t_read(&p) + cost.t_comm(&p) + p.layers as f64 * cost.t_comp(&p);
        assert!((total - sum).abs() < 1e-12);
        assert!(total > 0.0);
    }

    #[test]
    fn all_costs_finite_and_positive() {
        let cost = CostParams::paper();
        for &(nsdx, nsdy, layers, ncg) in &[(1, 1, 1, 1), (120, 100, 10, 12), (3600, 1800, 1, 120)]
        {
            let p = Params {
                nsdx,
                nsdy,
                layers,
                ncg,
            };
            for v in [
                cost.t_read(&p),
                cost.t_comm(&p),
                cost.t_comp(&p),
                cost.t_total(&p),
            ] {
                assert!(v.is_finite() && v > 0.0, "{p:?} gave {v}");
            }
        }
    }
}
