//! Message-passing substrate.
//!
//! The paper's implementation sits on a customized MPICH for the TH
//! Express-2 interconnect. Rust has no mature MPI tooling (the repro band's
//! `repro_why` calls this out), so this crate supplies the two halves the
//! reproduction needs:
//!
//! * [`real`] — an in-process "cluster": ranks are OS threads connected by
//!   crossbeam channels with MPI-ish semantics (typed point-to-point sends
//!   with source/tag matching, barriers, broadcast/gather built on p2p).
//!   A rank may hand its receive endpoint to a helper thread — exactly the
//!   helper-thread communication offload of the paper's Figure 8.
//! * [`model`] — the classic latency–bandwidth (the paper's `a`–`b`) cost
//!   model with logarithmic tree factors for group communication, plus NIC
//!   resources for the DES so receive-side serialization is captured.

pub mod model;
pub mod real;

pub use model::{ModeledNet, NetParams};
pub use real::{Cluster, Envelope, RankCtx};
