//! Ranks as threads, messages as typed channel payloads.
//!
//! [`Cluster::run`] spawns one thread per rank and hands each a
//! [`RankCtx`]: a sender to every peer plus its own receive endpoint.
//! Matching (`recv_match`) buffers out-of-order arrivals, mirroring MPI's
//! `(source, tag)` matching semantics that the EnKF planners rely on.
//!
//! # Zero-copy payloads
//!
//! [`Envelope`] moves the payload by value — nothing is serialized — so a
//! payload that is itself a shared view (an `Arc`-backed
//! `enkf_pfs::RegionData`, produced by the O(1) bar→block `extract`)
//! travels as an offset plus a refcount bump on the sender's single
//! allocation. An I/O rank fanning one bar out to `G` compute peers
//! therefore performs `G` refcount increments, not `G` deep copies; the
//! bar's slab is freed (returned to the store's buffer pool) when the last
//! receiver drops its view.

use crossbeam::channel::{unbounded, Receiver, Sender};
use enkf_fault::SubstrateError;
use std::collections::VecDeque;
use std::time::Duration;

/// A delivered message: source rank, tag, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sending rank.
    pub from: usize,
    /// Application-defined tag.
    pub tag: u64,
    /// The payload.
    pub payload: M,
}

/// One rank's communication context.
///
/// Cloneable senders, single receive endpoint: to offload reception to a
/// helper thread (Fig. 8), move the whole `RankCtx` into the helper and keep
/// clones of what the main thread needs, or split with [`RankCtx::split_receiver`].
pub struct RankCtx<M> {
    rank: usize,
    size: usize,
    peers: Vec<Sender<Envelope<M>>>,
    inbox: Receiver<Envelope<M>>,
    stash: VecDeque<Envelope<M>>,
}

impl<M: Send> RankCtx<M> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send a payload to a peer (non-blocking, unbounded buffering).
    ///
    /// A send to a rank that has already exited (its receive endpoint is
    /// gone) is silently dropped: a rank only hangs up after deciding its
    /// own outcome — e.g. aborting on a peer's failure notice — so a
    /// message it will never read cannot change any result, and the
    /// fault-tolerant executors must not crash healthy senders racing
    /// against an aborting peer.
    pub fn send(&self, to: usize, tag: u64, payload: M) {
        let _ = self.peers[to].send(Envelope {
            from: self.rank,
            tag,
            payload,
        });
    }

    /// Receive the next message from any source (blocking). Messages
    /// previously stashed by a non-matching [`RankCtx::recv_match`] are
    /// delivered first, in arrival order.
    ///
    /// When every peer that could still send has exited (all send
    /// endpoints dropped and the inbox is drained), the blocked receive
    /// can never complete: this surfaces as a typed
    /// [`SubstrateError::PeerExited`] — the same treatment
    /// [`RankCtx::recv_timeout`] gives silent peers — instead of a channel
    /// panic, so fault-tolerant executors can tear down cleanly.
    pub fn recv(&mut self) -> Result<Envelope<M>, SubstrateError> {
        if let Some(env) = self.stash.pop_front() {
            return Ok(env);
        }
        self.inbox
            .recv()
            .map_err(|_| SubstrateError::PeerExited { rank: self.rank })
    }

    /// Like [`RankCtx::recv`], but give up after `timeout` seconds with a
    /// typed [`SubstrateError::RecvTimeout`] instead of blocking forever —
    /// how a rank survives a crashed or silent peer.
    pub fn recv_timeout(&mut self, timeout: f64) -> Result<Envelope<M>, SubstrateError> {
        if let Some(env) = self.stash.pop_front() {
            return Ok(env);
        }
        self.inbox
            .recv_timeout(Duration::from_secs_f64(timeout))
            .map_err(|_| SubstrateError::RecvTimeout {
                rank: self.rank,
                waited: timeout,
            })
    }

    /// Like [`RankCtx::recv_match`], but bound the total wait by `timeout`
    /// seconds, surfacing [`SubstrateError::RecvTimeout`] on expiry.
    pub fn recv_match_timeout(
        &mut self,
        from: usize,
        tag: u64,
        timeout: f64,
    ) -> Result<M, SubstrateError> {
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            return Ok(self.stash.remove(pos).expect("position is valid").payload);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs_f64(timeout);
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(SubstrateError::RecvTimeout {
                    rank: self.rank,
                    waited: timeout,
                });
            }
            match self.inbox.recv_timeout(deadline - now) {
                Ok(env) => {
                    if env.from == from && env.tag == tag {
                        return Ok(env.payload);
                    }
                    self.stash.push_back(env);
                }
                Err(_) => {
                    return Err(SubstrateError::RecvTimeout {
                        rank: self.rank,
                        waited: timeout,
                    })
                }
            }
        }
    }

    /// Receive the next message matching `(from, tag)`; non-matching
    /// messages are stashed for later `recv`/`recv_match` calls.
    ///
    /// Like [`RankCtx::recv`], a receive that can never complete because
    /// every remaining sender has exited returns a typed
    /// [`SubstrateError::PeerExited`] instead of panicking.
    pub fn recv_match(&mut self, from: usize, tag: u64) -> Result<M, SubstrateError> {
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            return Ok(self.stash.remove(pos).expect("position is valid").payload);
        }
        loop {
            let env = self
                .inbox
                .recv()
                .map_err(|_| SubstrateError::PeerExited { rank: self.rank })?;
            if env.from == from && env.tag == tag {
                return Ok(env.payload);
            }
            self.stash.push_back(env);
        }
    }

    /// Split off the raw receive endpoint (for a helper thread) while
    /// keeping the send side. Stashed messages are returned too; after the
    /// split, `recv`/`recv_match` on this context panic.
    pub fn split_receiver(&mut self) -> (Receiver<Envelope<M>>, VecDeque<Envelope<M>>) {
        let (dead_tx, dead_rx) = unbounded();
        drop(dead_tx);
        let inbox = std::mem::replace(&mut self.inbox, dead_rx);
        (inbox, std::mem::take(&mut self.stash))
    }
}

impl<M: Send + Clone> RankCtx<M> {
    /// Broadcast from `root` to all ranks (including delivering to self via
    /// the return value). Internally p2p fan-out from the root.
    ///
    /// Collectives assume every participant is alive for their duration
    /// (they have no fault protocol), so a peer exiting mid-collective is
    /// a programming error and panics; fault-tolerant paths use the p2p
    /// `recv`/`recv_timeout` primitives and their typed errors instead.
    pub fn broadcast(&mut self, root: usize, tag: u64, payload: Option<M>) -> M {
        if self.rank == root {
            let value = payload.expect("root must supply the broadcast payload");
            for peer in 0..self.size {
                if peer != root {
                    self.send(peer, tag, value.clone());
                }
            }
            value
        } else {
            self.recv_match(root, tag)
                .expect("peer exited during broadcast")
        }
    }

    /// Gather one payload per rank at `root`. Non-root ranks return `None`;
    /// the root returns all payloads indexed by rank.
    pub fn gather(&mut self, root: usize, tag: u64, payload: M) -> Option<Vec<M>> {
        if self.rank == root {
            let mut out: Vec<Option<M>> = (0..self.size).map(|_| None).collect();
            out[root] = Some(payload);
            for _ in 0..self.size - 1 {
                let env = self.recv().expect("peer exited during gather");
                assert_eq!(env.tag, tag, "unexpected tag during gather");
                assert!(
                    out[env.from].replace(env.payload).is_none(),
                    "duplicate gather"
                );
            }
            Some(
                out.into_iter()
                    .map(|o| o.expect("all ranks gathered"))
                    .collect(),
            )
        } else {
            self.send(root, tag, payload);
            None
        }
    }

    /// Barrier: gather-then-broadcast on rank 0 with an internal tag.
    pub fn barrier(&mut self, tag: u64)
    where
        M: Default,
    {
        self.gather(0, tag, M::default());
        self.broadcast(
            0,
            tag,
            if self.rank == 0 {
                Some(M::default())
            } else {
                None
            },
        );
    }

    /// Scatter: `root` holds one payload per rank and delivers each rank
    /// its own; every rank (including the root) returns its payload.
    pub fn scatter(&mut self, root: usize, tag: u64, payloads: Option<Vec<M>>) -> M {
        if self.rank == root {
            let payloads = payloads.expect("root must supply the scatter payloads");
            assert_eq!(payloads.len(), self.size, "one payload per rank");
            let mut mine = None;
            for (peer, payload) in payloads.into_iter().enumerate() {
                if peer == root {
                    mine = Some(payload);
                } else {
                    self.send(peer, tag, payload);
                }
            }
            mine.expect("root's own payload present")
        } else {
            self.recv_match(root, tag)
                .expect("peer exited during scatter")
        }
    }

    /// Reduce: combine one payload per rank at `root` with `op` in rank
    /// order (deterministic). Non-root ranks return `None`.
    pub fn reduce(
        &mut self,
        root: usize,
        tag: u64,
        payload: M,
        op: impl Fn(M, M) -> M,
    ) -> Option<M> {
        let gathered = self.gather(root, tag, payload)?;
        let mut it = gathered.into_iter();
        let first = it.next().expect("at least one rank");
        Some(it.fold(first, op))
    }

    /// All-reduce: reduce at rank 0, then broadcast the result to everyone.
    pub fn all_reduce(&mut self, tag: u64, payload: M, op: impl Fn(M, M) -> M) -> M {
        let reduced = self.reduce(0, tag, payload, op);
        self.broadcast(0, tag.wrapping_add(1), reduced)
    }
}

/// An in-process cluster of ranks.
pub struct Cluster;

impl Cluster {
    /// Run `body` on `size` rank threads and collect their results in rank
    /// order. Panics in any rank propagate.
    pub fn run<M, T, F>(size: usize, body: F) -> Vec<T>
    where
        M: Send,
        T: Send,
        F: Fn(RankCtx<M>) -> T + Sync,
    {
        assert!(size > 0, "cluster needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let body = &body;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, inbox) in receivers.into_iter().enumerate() {
                let mut peers = senders.clone();
                // A rank must not hold a sender to itself: that clone would
                // keep its own inbox "connected" forever, so a receive
                // orphaned by every peer exiting could never observe the
                // disconnect that [`RankCtx::recv`] turns into the typed
                // `PeerExited`. Self-sends become silent drops (no executor
                // sends to itself; collectives route around self).
                let (dead_tx, _dead_rx) = unbounded();
                peers[rank] = dead_tx;
                handles.push(scope.spawn(move || {
                    body(RankCtx {
                        rank,
                        size,
                        peers,
                        inbox,
                        stash: VecDeque::new(),
                    })
                }));
            }
            drop(senders);
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }

    /// Like [`Cluster::run`], but each rank also receives a
    /// [`enkf_trace::RankTracer`] anchored to a cluster-wide epoch taken just
    /// before the threads spawn, so every rank's spans lie on one shared
    /// wall-clock timeline. Returns `(result, spans)` per rank, in rank
    /// order — concatenating the span vectors in that order gives a
    /// deterministic-ordered trace regardless of thread scheduling.
    pub fn run_traced<M, T, F>(size: usize, body: F) -> Vec<(T, Vec<enkf_trace::Span>)>
    where
        M: Send,
        T: Send,
        F: Fn(RankCtx<M>, &mut enkf_trace::RankTracer) -> T + Sync,
    {
        let epoch = std::time::Instant::now();
        Self::run(size, move |ctx: RankCtx<M>| {
            let mut tracer = enkf_trace::RankTracer::new(ctx.rank(), epoch);
            let out = body(ctx, &mut tracer);
            (out, tracer.into_spans())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results: Vec<u64> = Cluster::run(4, |mut ctx: RankCtx<u64>| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 1, ctx.rank() as u64);
            ctx.recv_match(prev, 1).unwrap()
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn recv_match_buffers_out_of_order() {
        let results: Vec<(u64, u64)> = Cluster::run(2, |mut ctx: RankCtx<u64>| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, 70);
                ctx.send(1, 8, 80);
                (0, 0)
            } else {
                // Ask for tag 8 first even though 7 likely arrives first.
                let b = ctx.recv_match(0, 8).unwrap();
                let a = ctx.recv_match(0, 7).unwrap();
                (a, b)
            }
        });
        assert_eq!(results[1], (70, 80));
    }

    #[test]
    fn broadcast_reaches_all() {
        let results: Vec<String> = Cluster::run(5, |mut ctx: RankCtx<String>| {
            let payload = (ctx.rank() == 2).then(|| "hello".to_string());
            ctx.broadcast(2, 3, payload)
        });
        assert!(results.iter().all(|s| s == "hello"));
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results: Vec<Option<Vec<usize>>> = Cluster::run(4, |mut ctx: RankCtx<usize>| {
            ctx.gather(0, 9, ctx.rank() * 10)
        });
        assert_eq!(results[0], Some(vec![0, 10, 20, 30]));
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        Cluster::run(6, |mut ctx: RankCtx<u8>| {
            before.fetch_add(1, Ordering::SeqCst);
            ctx.barrier(0);
            // After the barrier every rank must observe all 6 arrivals.
            if before.load(Ordering::SeqCst) != 6 {
                violations.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn fan_out_shares_one_allocation() {
        use std::sync::Arc;
        // Rank 0 fans one Arc-backed slab out to every peer; envelopes move
        // the payload by value, so all receivers observe the sender's
        // allocation — the zero-copy bar→block scatter invariant.
        let results: Vec<(usize, f64)> = Cluster::run(4, |mut ctx: RankCtx<Arc<Vec<f64>>>| {
            if ctx.rank() == 0 {
                let slab = Arc::new(vec![1.0, 2.0, 3.0]);
                for peer in 1..ctx.size() {
                    ctx.send(peer, 1, Arc::clone(&slab));
                }
                (Arc::as_ptr(&slab) as usize, slab[0])
            } else {
                let view = ctx.recv_match(0, 1).unwrap();
                (Arc::as_ptr(&view) as usize, view[0])
            }
        });
        let (root_ptr, _) = results[0];
        for (ptr, v) in &results[1..] {
            assert_eq!(*ptr, root_ptr, "receiver got a copy, not a view");
            assert_eq!(*v, 1.0);
        }
    }

    #[test]
    fn send_to_exited_rank_is_dropped_not_a_panic() {
        // Rank 1 exits immediately; rank 0's late send must be a no-op so
        // fault paths (a peer aborting) cannot crash healthy senders.
        let results: Vec<u64> = Cluster::run(3, |mut ctx: RankCtx<u64>| {
            match ctx.rank() {
                0 => {
                    // Wait until rank 1 is certainly gone.
                    let v = ctx.recv_match(2, 9).unwrap();
                    ctx.send(1, 1, 42);
                    v
                }
                1 => 0, // exits at once, dropping its receiver
                _ => {
                    ctx.send(0, 9, 7);
                    0
                }
            }
        });
        assert_eq!(results[0], 7);
    }

    #[test]
    fn recv_after_all_peers_exit_is_typed_peer_exited() {
        // Rank 0 exits without sending; rank 1's blocked receive must
        // surface the typed error rather than panicking on the hung-up
        // channel.
        let results: Vec<bool> = Cluster::run(2, |mut ctx: RankCtx<u64>| match ctx.rank() {
            0 => true,
            _ => matches!(ctx.recv(), Err(SubstrateError::PeerExited { rank: 1 })),
        });
        assert!(results[1], "orphaned recv must be PeerExited {{ rank: 1 }}");
    }

    #[test]
    fn recv_match_after_all_peers_exit_is_typed_peer_exited() {
        // Same guarantee for the matching receive: buffered non-matching
        // messages are delivered/stashed first, then the disconnect is
        // surfaced as the typed error.
        let results: Vec<bool> = Cluster::run(2, |mut ctx: RankCtx<u64>| match ctx.rank() {
            0 => {
                ctx.send(1, 5, 99); // wrong tag: stashed, not matched
                true
            }
            _ => {
                let orphaned = matches!(
                    ctx.recv_match(0, 7),
                    Err(SubstrateError::PeerExited { rank: 1 })
                );
                // The non-matching message is still retrievable afterwards.
                orphaned && ctx.recv_match(0, 5).unwrap() == 99
            }
        });
        assert!(
            results[1],
            "orphaned recv_match must be typed, stash intact"
        );
    }

    #[test]
    fn helper_thread_receives_via_split() {
        let results: Vec<u64> = Cluster::run(2, |mut ctx: RankCtx<u64>| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, 123);
                0
            } else {
                let (inbox, stash) = ctx.split_receiver();
                assert!(stash.is_empty());
                // Helper thread ingests and forwards to the main thread.
                let (tx, rx) = std::sync::mpsc::channel();
                let helper = std::thread::spawn(move || {
                    let env = inbox.recv().unwrap();
                    tx.send(env.payload).unwrap();
                });
                let got = rx.recv().unwrap();
                helper.join().unwrap();
                got
            }
        });
        assert_eq!(results[1], 123);
    }

    #[test]
    fn run_traced_collects_spans_in_rank_order() {
        let results = Cluster::run_traced(3, |mut ctx: RankCtx<u64>, tracer| {
            if ctx.rank() == 0 {
                for peer in 1..ctx.size() {
                    tracer.send(None, peer, 8, || ctx.send(peer, 0, 99));
                }
            } else {
                let rank = ctx.rank();
                tracer.wait(None, || ctx.recv_match(0, 0).unwrap());
                let _ = rank;
            }
            ctx.rank()
        });
        assert_eq!(
            results.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(results[0].1.len(), 2, "rank 0 recorded two sends");
        assert_eq!(results[0].1[0].peer, Some(1));
        assert!(results[1].1.iter().all(|s| s.rank == 1));
        assert!(results[0].1.iter().all(|s| s.start >= 0.0 && s.dur >= 0.0));
    }

    #[test]
    fn recv_timeout_surfaces_typed_error_and_drains_stash() {
        let results: Vec<Result<u64, String>> = Cluster::run(2, |mut ctx: RankCtx<u64>| {
            if ctx.rank() == 0 {
                ctx.send(1, 3, 33);
                Ok(0)
            } else {
                // Stash the tag-3 message while matching a tag that never
                // arrives, then verify the stash still drains through the
                // timeout path.
                match ctx.recv_match_timeout(0, 4, 0.02) {
                    Err(SubstrateError::RecvTimeout { rank: 1, .. }) => {}
                    other => return Err(format!("expected timeout, got {other:?}")),
                }
                let env = ctx.recv_timeout(1.0).map_err(|e| e.to_string())?;
                assert_eq!((env.from, env.tag, env.payload), (0, 3, 33));
                // Nothing further is coming: times out again.
                match ctx.recv_timeout(0.02) {
                    Err(SubstrateError::RecvTimeout { .. }) => Ok(1),
                    other => Err(format!("expected timeout, got {other:?}")),
                }
            }
        });
        assert_eq!(results[1], Ok(1), "{results:?}");
    }

    #[test]
    fn single_rank_cluster() {
        let results: Vec<usize> = Cluster::run(1, |ctx: RankCtx<u8>| ctx.size());
        assert_eq!(results, vec![1]);
    }

    #[test]
    fn scatter_delivers_per_rank_payloads() {
        let results: Vec<u64> = Cluster::run(4, |mut ctx: RankCtx<u64>| {
            let payloads = (ctx.rank() == 1).then(|| vec![10, 11, 12, 13]);
            ctx.scatter(1, 2, payloads)
        });
        assert_eq!(results, vec![10, 11, 12, 13]);
    }

    #[test]
    fn reduce_combines_in_rank_order() {
        let results: Vec<Option<String>> = Cluster::run(3, |mut ctx: RankCtx<String>| {
            ctx.reduce(0, 4, format!("r{}", ctx.rank()), |a, b| format!("{a},{b}"))
        });
        assert_eq!(
            results[0].as_deref(),
            Some("r0,r1,r2"),
            "deterministic order"
        );
        assert!(results[1].is_none() && results[2].is_none());
    }

    #[test]
    fn all_reduce_reaches_every_rank() {
        let results: Vec<u64> = Cluster::run(5, |mut ctx: RankCtx<u64>| {
            ctx.all_reduce(6, ctx.rank() as u64 + 1, |a, b| a + b)
        });
        assert!(results.iter().all(|&s| s == 15), "{results:?}");
    }

    #[test]
    fn collectives_compose_without_tag_collisions() {
        // A realistic multi-phase exchange: scatter work, reduce partials,
        // broadcast the final answer.
        let results: Vec<u64> = Cluster::run(4, |mut ctx: RankCtx<u64>| {
            let work = ctx.scatter(0, 10, (ctx.rank() == 0).then(|| vec![1, 2, 3, 4]));
            let squared = work * work;
            let total = ctx.all_reduce(20, squared, |a, b| a + b);
            ctx.barrier(30);
            total
        });
        assert!(results.iter().all(|&t| t == 1 + 4 + 9 + 16));
    }
}
