//! The latency–bandwidth communication cost model and modeled NICs.
//!
//! Point-to-point transfer of `s` bytes costs `a + b·s` (Table 1's startup
//! time per message `a` and transfer time per byte `b`). Group operations
//! over `p` participants take a logarithmic tree factor, the same form the
//! paper borrows from the collective-communication literature for
//! Eqs. (7)–(8).

use enkf_sim::{ResourceId, Simulation};

/// Parameters of the modeled interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetParams {
    /// Startup time per message, seconds (`a`).
    pub alpha: f64,
    /// Transfer time per byte, seconds (`b`).
    pub beta: f64,
}

impl NetParams {
    /// A TH Express-2-like configuration: ~200 µs effective startup (rendezvous under congestion), ~300 MB/s
    /// effective per-endpoint bandwidth (the link shared across a node's 24
    /// ranks under congestion), which makes the communication phase comparable to the
    /// file-reading phase as the paper's Figure 9 reports.
    pub fn tianhe2_like() -> Self {
        NetParams {
            alpha: 2.0e-4,
            beta: 1.0 / 0.3e9,
        }
    }

    /// Cost of one point-to-point message of `bytes` bytes: `a + b·s`.
    pub fn p2p(&self, bytes: u64) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// The interconnect one fair-share slice of the fabric presents: the
    /// same startup latency `a`, but each endpoint delivers `share` of its
    /// bandwidth (`b / share`). Counterpart of
    /// `PfsParams::with_bandwidth_share` for the multi-tenant scheduler —
    /// a campaign's communication phases are re-modeled against its slice,
    /// so fan-out serialization under a partial allocation is captured.
    pub fn with_bandwidth_share(&self, share: f64) -> NetParams {
        assert!(
            share > 0.0 && share <= 1.0 + 1e-12,
            "bandwidth share must be in (0, 1], got {share}"
        );
        NetParams {
            alpha: self.alpha,
            beta: self.beta / share.min(1.0),
        }
    }

    /// Logarithmic tree factor over `p` participants: `log2(p + 1)`,
    /// the `log(n_cg + 1)` shape of Eq. (8). Returns at least 1.
    pub fn tree_factor(p: usize) -> f64 {
        ((p + 1) as f64).log2().max(1.0)
    }

    /// Cost of distributing `bytes` to each of `fanout` receivers through a
    /// tree: `fanout` sends serialized on the sender, scaled by the tree
    /// factor over `groups` concurrent groups — the structure of Eq. (8).
    pub fn group_scatter(&self, fanout: usize, groups: usize, bytes: u64) -> f64 {
        fanout as f64 * Self::tree_factor(groups) * self.p2p(bytes)
    }
}

/// Per-rank NIC resources for the DES: capacity 1 per endpoint, so a helper
/// thread ingests one block at a time and concurrent senders to one rank
/// serialize.
#[derive(Debug, Clone)]
pub struct ModeledNet {
    params: NetParams,
    nics: Vec<ResourceId>,
}

impl ModeledNet {
    /// Register one NIC per rank in the simulation.
    pub fn register(sim: &mut Simulation, params: NetParams, ranks: usize) -> Self {
        let nics = (0..ranks).map(|_| sim.add_resource(1)).collect();
        ModeledNet { params, nics }
    }

    /// The parameter set.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// NIC resource of a rank.
    pub fn nic(&self, rank: usize) -> ResourceId {
        self.nics[rank]
    }

    /// Number of registered endpoints.
    pub fn len(&self) -> usize {
        self.nics.len()
    }

    /// True when no endpoint is registered.
    pub fn is_empty(&self) -> bool {
        self.nics.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_sim::{Kind, Task};

    #[test]
    fn p2p_linear_in_bytes() {
        let p = NetParams {
            alpha: 1e-6,
            beta: 1e-9,
        };
        assert!((p.p2p(0) - 1e-6).abs() < 1e-18);
        assert!((p.p2p(1_000_000) - (1e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn tree_factor_grows_logarithmically() {
        assert_eq!(NetParams::tree_factor(1), 1.0);
        assert!((NetParams::tree_factor(3) - 2.0).abs() < 1e-12);
        assert!((NetParams::tree_factor(7) - 3.0).abs() < 1e-12);
        assert!(NetParams::tree_factor(0) >= 1.0);
    }

    #[test]
    fn group_scatter_matches_eq8_shape() {
        let p = NetParams {
            alpha: 1e-6,
            beta: 1e-9,
        };
        let t = p.group_scatter(10, 3, 500);
        let expect = 10.0 * 2.0 * (1e-6 + 500.0e-9);
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn receiver_nic_serializes_concurrent_senders() {
        let mut sim = Simulation::new();
        let net = ModeledNet::register(&mut sim, NetParams::tianhe2_like(), 3);
        // Ranks 0 and 1 send 1s-messages to rank 2 simultaneously.
        for sender in 0..2 {
            let a = sim.add_agent();
            sim.add_task(Task::new(a, Kind::Comm, 1.0).with_resources(vec![net.nic(2)]))
                .unwrap();
            let _ = sender;
        }
        let rep = sim.run().unwrap();
        assert!((rep.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_receivers_in_parallel() {
        let mut sim = Simulation::new();
        let net = ModeledNet::register(&mut sim, NetParams::tianhe2_like(), 4);
        for receiver in [2usize, 3] {
            let a = sim.add_agent();
            sim.add_task(Task::new(a, Kind::Comm, 1.0).with_resources(vec![net.nic(receiver)]))
                .unwrap();
        }
        let rep = sim.run().unwrap();
        assert!((rep.makespan - 1.0).abs() < 1e-9);
        assert_eq!(net.len(), 4);
        assert!(!net.is_empty());
    }

    #[test]
    fn bandwidth_share_scales_transfer_not_startup() {
        let p = NetParams::tianhe2_like();
        let quarter = p.with_bandwidth_share(0.25);
        assert_eq!(quarter.alpha, p.alpha);
        assert!((quarter.beta - 4.0 * p.beta).abs() < 1e-18);
        assert_eq!(p.with_bandwidth_share(1.0), p);
    }
}
