//! Property-based invariants of the retry/backoff layer.
//!
//! Three surfaces are pinned here because the cross-executor conformance
//! suite leans on them: (1) seeded jitter is a pure function of
//! `(seed, attempt)` — bit-identical across evaluations and bounded by the
//! declared band; (2) the deadline budget is monotone — shrinking the
//! budget never schedules *more* attempts, and the scheduled prefix always
//! fits the budget; (3) composition with campaign plans —
//! `FaultPlan::for_cycle_attempt` never changes read-retry semantics, so
//! the dropout set decided by `effective_retries()` is identical on every
//! cycle and attempt of a campaign.

use enkf_fault::{FaultConfig, FaultInjector, FaultPlan, RetryPolicy};
use proptest::prelude::*;

fn policy(max_retries: u32, base: f64, mult: f64) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_backoff: base,
        multiplier: mult,
        ..RetryPolicy::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same `(seed, jitter)` ⇒ a bit-identical backoff schedule, no matter
    /// how often or in what order it is evaluated. This is the property
    /// that lets the real executor (wall sleeps) and the DES (virtual
    /// tasks) agree on retry timing.
    #[test]
    fn seeded_jitter_is_deterministic(
        seed in 0u64..1_000_000,
        jitter in 0.0f64..1.0,
        max_retries in 0u32..8,
    ) {
        let p = policy(max_retries, 1e-3, 2.0).with_jitter(seed, jitter);
        let q = policy(max_retries, 1e-3, 2.0).with_jitter(seed, jitter);
        for a in 0..p.attempts() {
            prop_assert_eq!(p.backoff(a).to_bits(), q.backoff(a).to_bits());
        }
        prop_assert_eq!(p.total_backoff().to_bits(), q.total_backoff().to_bits());
    }

    /// Jittered backoff stays inside `[base, base · (1 + jitter)]` and
    /// `jitter = 0` reproduces the plain geometric schedule exactly.
    #[test]
    fn jitter_band_is_respected(
        seed in 0u64..1_000_000,
        jitter in 0.0f64..1.0,
        attempt in 0u32..10,
    ) {
        let plain = policy(10, 1e-3, 2.0);
        let jittered = plain.with_jitter(seed, jitter);
        let base = plain.backoff(attempt);
        let b = jittered.backoff(attempt);
        prop_assert!(b >= base, "below band: {b} < {base}");
        prop_assert!(b <= base * (1.0 + jitter) + f64::EPSILON, "above band: {b}");
        let no_jitter = plain.with_jitter(seed, 0.0);
        prop_assert_eq!(no_jitter.backoff(attempt).to_bits(), base.to_bits());
    }

    /// The deadline budget is monotone: a larger budget never schedules
    /// fewer attempts, the count is always in `[1, attempts()]`, and
    /// `deadline = 0` (unbounded) schedules everything `max_retries`
    /// permits.
    #[test]
    fn deadline_budget_is_monotone(
        max_retries in 0u32..8,
        base in 1e-4f64..1.0,
        mult in 1.0f64..3.0,
        d1 in 0.0f64..8.0,
        d2 in 0.0f64..8.0,
    ) {
        let p = policy(max_retries, base, mult);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        // `deadline = 0` means unbounded, so compare strictly-positive
        // budgets for monotonicity and pin the unbounded case separately.
        if lo > 0.0 {
            prop_assert!(
                p.with_deadline(lo).scheduled_attempts()
                    <= p.with_deadline(hi).scheduled_attempts()
            );
        }
        for d in [lo, hi] {
            let n = p.with_deadline(d).scheduled_attempts();
            prop_assert!(n >= 1, "the initial attempt is always issued");
            prop_assert!(n <= p.attempts());
            prop_assert_eq!(p.with_deadline(d).effective_retries(), n - 1);
        }
        prop_assert_eq!(p.with_deadline(0.0).scheduled_attempts(), p.attempts());
    }

    /// The backoff actually slept by a deadline-capped sequence fits the
    /// budget: `total_backoff() ≤ deadline` whenever a deadline is set.
    #[test]
    fn scheduled_prefix_fits_the_budget(
        max_retries in 0u32..8,
        base in 1e-4f64..1.0,
        mult in 1.0f64..3.0,
        deadline in 1e-3f64..8.0,
        seed in 0u64..1_000_000,
        jitter in 0.0f64..1.0,
    ) {
        let p = policy(max_retries, base, mult)
            .with_jitter(seed, jitter)
            .with_deadline(deadline);
        prop_assert!(
            p.total_backoff() <= deadline + 1e-12,
            "slept {} over budget {deadline}",
            p.total_backoff()
        );
    }

    /// Composition with campaign plans: `for_cycle_attempt` only resolves
    /// cycle-scoped crashes — it never touches read faults — so the
    /// injector's dropout decision (`is_unrecoverable`, driven by
    /// `effective_retries()`) is identical for the campaign plan and every
    /// per-cycle projection of it, on every attempt.
    #[test]
    fn dropout_set_is_stable_across_cycle_projections(
        fail_attempts in 0u32..8,
        max_retries in 0u32..6,
        deadline in 0.0f64..4.0,
        cycle in 0usize..4,
        attempt in 0u32..3,
    ) {
        let plan = FaultPlan::new(9)
            .with_read_fault(1, fail_attempts)
            .with_crash_at_cycle(2, 1, 0);
        let retry = policy(max_retries, 0.5, 2.0).with_deadline(deadline);
        let whole = FaultInjector::new(
            FaultConfig::degraded(plan.clone()).with_retry(retry),
        );
        let projected = FaultInjector::new(
            FaultConfig::degraded(plan.for_cycle_attempt(cycle, attempt)).with_retry(retry),
        );
        prop_assert_eq!(
            whole.unrecoverable_members(4),
            projected.unrecoverable_members(4)
        );
        // And the decision itself is the documented pure function of the
        // plan and the deadline-capped budget.
        let expect = fail_attempts > retry.effective_retries();
        prop_assert_eq!(projected.is_unrecoverable(1), expect);
    }

    /// Tightening the deadline can only widen the dropout set, never
    /// shrink it: degraded mode falls back to N−1 instead of stalling.
    #[test]
    fn tighter_deadlines_only_widen_dropout(
        fail_attempts in 0u32..8,
        d1 in 0.1f64..8.0,
        d2 in 0.1f64..8.0,
    ) {
        let (tight, loose) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let plan = FaultPlan::new(3).with_read_fault(0, fail_attempts);
        let p = policy(6, 0.25, 2.0);
        let inj_tight = FaultInjector::new(
            FaultConfig::degraded(plan.clone()).with_retry(p.with_deadline(tight)),
        );
        let inj_loose = FaultInjector::new(
            FaultConfig::degraded(plan).with_retry(p.with_deadline(loose)),
        );
        if !inj_loose.is_unrecoverable(0) {
            // recoverable under the loose budget says nothing about tight…
        }
        if inj_loose.is_unrecoverable(0) {
            prop_assert!(
                inj_tight.is_unrecoverable(0),
                "loose budget drops the member but tight keeps it"
            );
        }
    }
}
