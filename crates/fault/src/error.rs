//! Structured substrate errors shared by pfs, net and parallel.

use std::path::PathBuf;

/// A file-system read that failed, with full context: which file, which
/// member, how many bytes the region needed and how many were actually
/// available. Replaces the stringly `io::Error` the executors used to
/// propagate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// The member file being read.
    pub path: PathBuf,
    /// Ensemble member index.
    pub member: usize,
    /// Bytes the region read required.
    pub expected: u64,
    /// Bytes actually present (file length at failure time; 0 when the file
    /// is missing).
    pub actual: u64,
    /// OS-level detail of the underlying failure.
    pub detail: String,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "read of member {} from {} failed: expected {} bytes, {} available ({})",
            self.member,
            self.path.display(),
            self.expected,
            self.actual,
            self.detail
        )
    }
}

impl std::error::Error for ReadError {}

impl From<ReadError> for std::io::Error {
    fn from(e: ReadError) -> Self {
        std::io::Error::other(e.to_string())
    }
}

/// Errors the execution substrate (file system, network, rank scheduler)
/// can surface. One vocabulary for both executors: the real path produces
/// them from syscalls and channel timeouts, the modeled path from the fault
/// plan alone.
#[derive(Debug, Clone, PartialEq)]
pub enum SubstrateError {
    /// A read failed and no retries were configured.
    Read(ReadError),
    /// A read still failed after the retry policy's attempt budget. `cause`
    /// is the last real I/O error, or `None` when every failure was
    /// injected.
    RetriesExhausted {
        /// Ensemble member whose read was abandoned.
        member: usize,
        /// Total attempts made (initial + retries).
        attempts: u32,
        /// The last real failure, if any failure was real.
        cause: Option<ReadError>,
    },
    /// The fault plan makes these members unrecoverable but degraded mode
    /// was not enabled, so the cycle cannot complete.
    Unrecoverable {
        /// The members that cannot be read within the retry budget.
        members: Vec<usize>,
    },
    /// A receive did not complete within the timeout — the typed
    /// alternative to blocking forever on a crashed or silent peer.
    RecvTimeout {
        /// The waiting rank.
        rank: usize,
        /// Seconds waited before giving up.
        waited: f64,
    },
    /// Every peer that could have sent to this rank has exited, so the
    /// blocked receive can never complete — the typed alternative to the
    /// "all senders hung up" channel panic.
    PeerExited {
        /// The rank whose receive was orphaned.
        rank: usize,
    },
    /// A rank was crashed by the fault plan at the given stage.
    RankCrashed {
        /// The crashed rank.
        rank: usize,
        /// The stage at which it died.
        stage: usize,
    },
    /// A rank's helper thread failed (panic or early termination), so the
    /// rank could not assemble its background blocks. The typed alternative
    /// to propagating the helper's panic into the whole process.
    HelperFailed {
        /// The rank whose helper died.
        rank: usize,
        /// What happened.
        detail: String,
    },
}

impl std::fmt::Display for SubstrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubstrateError::Read(e) => write!(f, "{e}"),
            SubstrateError::RetriesExhausted {
                member,
                attempts,
                cause,
            } => {
                write!(f, "member {member} unreadable after {attempts} attempts")?;
                if let Some(c) = cause {
                    write!(f, ": {c}")?;
                }
                Ok(())
            }
            SubstrateError::Unrecoverable { members } => write!(
                f,
                "members {members:?} are unrecoverable under the fault plan \
                 and degraded mode is disabled"
            ),
            SubstrateError::RecvTimeout { rank, waited } => {
                write!(f, "rank {rank} receive timed out after {waited} s")
            }
            SubstrateError::PeerExited { rank } => {
                write!(f, "rank {rank} receive orphaned: all peers have exited")
            }
            SubstrateError::RankCrashed { rank, stage } => {
                write!(f, "rank {rank} crashed at stage {stage}")
            }
            SubstrateError::HelperFailed { rank, detail } => {
                write!(f, "rank {rank} helper thread failed: {detail}")
            }
        }
    }
}

impl std::error::Error for SubstrateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_error_carries_full_context() {
        let e = ReadError {
            path: PathBuf::from("/tmp/member_00003.bin"),
            member: 3,
            expected: 4096,
            actual: 128,
            detail: "unexpected end of file".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("member 3"));
        assert!(msg.contains("member_00003.bin"));
        assert!(msg.contains("4096"));
        assert!(msg.contains("128"));
        let io: std::io::Error = e.into();
        assert!(io.to_string().contains("member_00003.bin"));
    }

    #[test]
    fn substrate_errors_display() {
        let e = SubstrateError::RetriesExhausted {
            member: 7,
            attempts: 4,
            cause: None,
        };
        assert!(e.to_string().contains("member 7"));
        assert!(e.to_string().contains("4 attempts"));
        let e = SubstrateError::RecvTimeout {
            rank: 2,
            waited: 0.5,
        };
        assert!(e.to_string().contains("rank 2"));
        let e = SubstrateError::RankCrashed { rank: 9, stage: 1 };
        assert!(e.to_string().contains("stage 1"));
        let e = SubstrateError::PeerExited { rank: 3 };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("exited"));
    }
}
