//! The typed, deterministic schedule of injectable faults.

/// `fail_attempts` value meaning "never succeeds": the member is
/// unrecoverable under any finite retry budget.
pub const UNRECOVERABLE: u32 = u32::MAX;

/// How an injected read failure presents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFaultKind {
    /// The read fails outright (I/O error).
    Fail,
    /// The read returns fewer bytes than requested (truncation).
    ShortRead,
}

/// Reads of `member` fail for the first `fail_attempts` attempts of every
/// read operation, then succeed. `fail_attempts > RetryPolicy::max_retries`
/// (in particular [`UNRECOVERABLE`]) makes the member unrecoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadFault {
    /// Ensemble member whose file misbehaves.
    pub member: usize,
    /// Failure presentation.
    pub kind: ReadFaultKind,
    /// Attempts that fail before a read of this member succeeds.
    pub fail_attempts: u32,
}

/// Every operation on OST `ost` is slowed by `factor` (≥ 1). Member files
/// stripe to OSTs as `member % num_osts`, matching `ModeledPfs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OstSlowdown {
    /// OST index in `0..num_osts`.
    pub ost: usize,
    /// Service-time multiplier (1.0 = healthy).
    pub factor: f64,
}

/// Messages from `from` to `to` are delayed by `delay` seconds, or silently
/// dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgFault {
    /// Sender rank.
    pub from: usize,
    /// Receiver rank.
    pub to: usize,
    /// Added latency in seconds.
    pub delay: f64,
    /// The message never arrives (surfaces as a receive timeout).
    pub dropped: bool,
}

/// Rank `rank` computes `dilation` times slower than its peers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// The slow rank.
    pub rank: usize,
    /// Compute-time multiplier (1.0 = healthy).
    pub dilation: f64,
}

/// Rank `rank` dies silently at the start of stage `stage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankCrash {
    /// The crashing rank.
    pub rank: usize,
    /// Stage (layer) index at which it stops responding.
    pub stage: usize,
}

/// Rank `rank` dies at stage `stage` of assimilation cycle `cycle` — a
/// campaign-scoped kill point. Cycle-scoped crashes are inert until a
/// campaign supervisor projects them into a per-cycle plan with
/// [`FaultPlan::for_cycle_attempt`]; they fire on the *first* attempt of
/// their cycle only, so a recovered re-run does not re-crash (the faulty
/// node is considered replaced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleCrash {
    /// The crashing rank.
    pub rank: usize,
    /// 0-based assimilation cycle in which the crash lands.
    pub cycle: usize,
    /// Stage (layer) index at which the rank stops responding.
    pub stage: usize,
}

/// A deterministic, seeded fault plan: plain data describing which faults
/// fire where. The same plan drives both executors — decisions are pure
/// functions of the plan (see `FaultInjector`), never of runtime state.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed this plan was generated from (recorded for reproducibility; the
    /// schedule below is already fully expanded).
    pub seed: u64,
    /// File→OST striping modulus used to resolve which member files land on
    /// a slowed OST. Must match the modeled PFS's `num_osts` when comparing
    /// executors.
    pub num_osts: usize,
    /// Injected read failures.
    pub read_faults: Vec<ReadFault>,
    /// Degraded OSTs.
    pub ost_slowdowns: Vec<OstSlowdown>,
    /// Delayed / dropped messages.
    pub msg_faults: Vec<MsgFault>,
    /// Ranks with dilated compute.
    pub stragglers: Vec<Straggler>,
    /// Ranks that die mid-run.
    pub crashes: Vec<RankCrash>,
    /// Campaign kill points: ranks that die at a specific (cycle, stage).
    /// Ignored by single-cycle executors; a supervisor resolves them with
    /// [`FaultPlan::for_cycle_attempt`].
    pub cycle_crashes: Vec<CycleCrash>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            num_osts: 6, // PfsParams::tianhe2_like striping
            read_faults: Vec::new(),
            ost_slowdowns: Vec::new(),
            msg_faults: Vec::new(),
            stragglers: Vec::new(),
            crashes: Vec::new(),
            cycle_crashes: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// An empty plan carrying `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// No faults scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.read_faults.is_empty()
            && self.ost_slowdowns.is_empty()
            && self.msg_faults.is_empty()
            && self.stragglers.is_empty()
            && self.crashes.is_empty()
            && self.cycle_crashes.is_empty()
    }

    /// Override the file→OST striping modulus.
    pub fn with_num_osts(mut self, num_osts: usize) -> Self {
        assert!(num_osts > 0, "num_osts must be positive");
        self.num_osts = num_osts;
        self
    }

    /// Reads of `member` fail `fail_attempts` times, then recover.
    pub fn with_read_fault(mut self, member: usize, fail_attempts: u32) -> Self {
        self.read_faults.push(ReadFault {
            member,
            kind: ReadFaultKind::Fail,
            fail_attempts,
        });
        self
    }

    /// Reads of `member` come back short `fail_attempts` times, then
    /// recover.
    pub fn with_short_read(mut self, member: usize, fail_attempts: u32) -> Self {
        self.read_faults.push(ReadFault {
            member,
            kind: ReadFaultKind::ShortRead,
            fail_attempts,
        });
        self
    }

    /// `member` never reads successfully.
    pub fn with_unrecoverable_member(mut self, member: usize) -> Self {
        self.read_faults.push(ReadFault {
            member,
            kind: ReadFaultKind::Fail,
            fail_attempts: UNRECOVERABLE,
        });
        self
    }

    /// OST `ost` serves every operation `factor`× slower.
    pub fn with_ost_slowdown(mut self, ost: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        self.ost_slowdowns.push(OstSlowdown { ost, factor });
        self
    }

    /// Messages `from → to` arrive `delay` seconds late.
    pub fn with_msg_delay(mut self, from: usize, to: usize, delay: f64) -> Self {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.msg_faults.push(MsgFault {
            from,
            to,
            delay,
            dropped: false,
        });
        self
    }

    /// Messages `from → to` never arrive.
    pub fn with_msg_drop(mut self, from: usize, to: usize) -> Self {
        self.msg_faults.push(MsgFault {
            from,
            to,
            delay: 0.0,
            dropped: true,
        });
        self
    }

    /// Rank `rank` computes `dilation`× slower.
    pub fn with_straggler(mut self, rank: usize, dilation: f64) -> Self {
        assert!(dilation >= 1.0, "dilation must be >= 1");
        self.stragglers.push(Straggler { rank, dilation });
        self
    }

    /// Rank `rank` dies at stage `stage`.
    pub fn with_crash(mut self, rank: usize, stage: usize) -> Self {
        self.crashes.push(RankCrash { rank, stage });
        self
    }

    /// Rank `rank` dies at stage `stage` of campaign cycle `cycle` (first
    /// attempt of that cycle only — recovery re-runs proceed on a replaced
    /// node).
    pub fn with_crash_at_cycle(mut self, rank: usize, cycle: usize, stage: usize) -> Self {
        self.cycle_crashes.push(CycleCrash { rank, cycle, stage });
        self
    }

    /// Project this campaign plan onto one executor invocation: attempt
    /// `attempt` (0-based) of cycle `cycle`. Per-cycle faults (read faults,
    /// slowdowns, message faults, stragglers, plain crashes) carry over
    /// unchanged; cycle-scoped crashes matching `cycle` become plain
    /// [`RankCrash`]es on the first attempt and disappear on re-runs.
    pub fn for_cycle_attempt(&self, cycle: usize, attempt: u32) -> FaultPlan {
        let mut plan = self.clone();
        if attempt == 0 {
            plan.crashes.extend(
                plan.cycle_crashes
                    .iter()
                    .filter(|c| c.cycle == cycle)
                    .map(|c| RankCrash {
                        rank: c.rank,
                        stage: c.stage,
                    }),
            );
        }
        plan.cycle_crashes.clear();
        plan
    }

    /// A seeded jitter plan for severity sweeps (fig. 14): every rank in
    /// `0..ranks` gets a deterministic pseudo-random compute dilation in
    /// `[1, max_dilation]`. `severity = max_dilation − 1` is the knob the
    /// sweep turns.
    pub fn jitter(seed: u64, ranks: usize, max_dilation: f64) -> Self {
        assert!(max_dilation >= 1.0, "max_dilation must be >= 1");
        let mut plan = FaultPlan::new(seed);
        for rank in 0..ranks {
            let u = seeded_unit(seed, rank as u64);
            plan.stragglers.push(Straggler {
                rank,
                dilation: 1.0 + u * (max_dilation - 1.0),
            });
        }
        plan
    }
}

/// SplitMix64-derived uniform in `[0, 1)` for `(seed, index)` — the same
/// keyed-stream construction the perturbed observations use, so jitter
/// plans, retry jitter ([`crate::RetryPolicy::with_jitter`]) and chaos-soak
/// storm generators are reproducible without an RNG dependency.
pub fn seeded_unit(seed: u64, index: u64) -> f64 {
    let mut z =
        (seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan::new(42).is_empty());
        assert!(!FaultPlan::new(42).with_straggler(0, 2.0).is_empty());
    }

    #[test]
    fn builders_accumulate() {
        let plan = FaultPlan::new(7)
            .with_read_fault(3, 2)
            .with_unrecoverable_member(5)
            .with_ost_slowdown(1, 4.0)
            .with_msg_delay(0, 2, 0.01)
            .with_msg_drop(1, 3)
            .with_straggler(2, 1.5)
            .with_crash(4, 1);
        assert_eq!(plan.read_faults.len(), 2);
        assert_eq!(plan.read_faults[1].fail_attempts, UNRECOVERABLE);
        assert_eq!(plan.ost_slowdowns.len(), 1);
        assert_eq!(plan.msg_faults.len(), 2);
        assert!(plan.msg_faults[1].dropped);
        assert_eq!(plan.stragglers.len(), 1);
        assert_eq!(plan.crashes, vec![RankCrash { rank: 4, stage: 1 }]);
    }

    #[test]
    fn cycle_crashes_fire_on_the_first_attempt_only() {
        let plan = FaultPlan::new(9)
            .with_read_fault(1, 1)
            .with_crash_at_cycle(3, 2, 1);
        assert!(!plan.is_empty());
        // Wrong cycle: nothing fires, the cycle-scoped entry is stripped.
        let other = plan.for_cycle_attempt(0, 0);
        assert!(other.crashes.is_empty());
        assert!(other.cycle_crashes.is_empty());
        assert_eq!(
            other.read_faults, plan.read_faults,
            "per-cycle faults carry over"
        );
        // Matching cycle, first attempt: the kill point becomes a crash.
        let first = plan.for_cycle_attempt(2, 0);
        assert_eq!(first.crashes, vec![RankCrash { rank: 3, stage: 1 }]);
        // Recovery re-run of the same cycle: the node was replaced.
        let retry = plan.for_cycle_attempt(2, 1);
        assert!(retry.crashes.is_empty());
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = FaultPlan::jitter(11, 32, 3.0);
        let b = FaultPlan::jitter(11, 32, 3.0);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::jitter(12, 32, 3.0);
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.stragglers.len(), 32);
        for s in &a.stragglers {
            assert!((1.0..=3.0).contains(&s.dilation));
        }
        // Dilation 1.0 for everyone when severity is zero.
        for s in &FaultPlan::jitter(11, 8, 1.0).stragglers {
            assert_eq!(s.dilation, 1.0);
        }
    }
}
