//! The shared record of injected faults and recovery actions.

use std::sync::Mutex;

/// What happened. Ordered so sorted record lists read naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultEvent {
    /// An injected read failure consumed an attempt.
    ReadFaultInjected,
    /// The retry policy slept a backoff before re-issuing.
    RetryBackoff,
    /// A faulted read finally succeeded (at attempt `attempt`).
    ReadRecovered,
    /// Degraded mode dropped the member from the cycle.
    MemberDropped,
    /// The fault plan killed the rank.
    RankCrashed,
}

impl FaultEvent {
    /// Lower-case label used in digests.
    pub fn label(self) -> &'static str {
        match self {
            FaultEvent::ReadFaultInjected => "injected",
            FaultEvent::RetryBackoff => "backoff",
            FaultEvent::ReadRecovered => "recovered",
            FaultEvent::MemberDropped => "dropped",
            FaultEvent::RankCrashed => "crashed",
        }
    }
}

/// One fault or recovery action. The derived `Ord` (rank, stage, member,
/// attempt, event) is the canonical sort used by [`FaultLog::digest`], so
/// multi-threaded real runs and single-threaded model construction produce
/// the same digest for the same plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultRecord {
    /// Rank the event occurred on (`None` for run-level events such as the
    /// dropout decision, which no single rank owns).
    pub rank: Option<usize>,
    /// Stage (layer) for multi-stage variants.
    pub stage: Option<usize>,
    /// Ensemble member involved.
    pub member: Option<usize>,
    /// Attempt index for read faults / backoffs.
    pub attempt: Option<u32>,
    /// The event.
    pub event: FaultEvent,
}

/// Append-only, thread-shared log of fault events. Both executors feed one:
/// the real executor from its rank threads as faults fire, the modeled
/// executor while weaving fault tasks into the DES graph. The sorted
/// [`FaultLog::digest`] must be identical for the same plan on both sides.
#[derive(Debug, Default)]
pub struct FaultLog {
    records: Mutex<Vec<FaultRecord>>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        FaultLog::default()
    }

    /// Append a record.
    pub fn push(&self, rec: FaultRecord) {
        self.records.lock().expect("fault log poisoned").push(rec);
    }

    /// Record an injected read failure.
    pub fn injected(&self, rank: usize, stage: Option<usize>, member: usize, attempt: u32) {
        self.push(FaultRecord {
            rank: Some(rank),
            stage,
            member: Some(member),
            attempt: Some(attempt),
            event: FaultEvent::ReadFaultInjected,
        });
    }

    /// Record a retry backoff after failed attempt `attempt`.
    pub fn backoff(&self, rank: usize, stage: Option<usize>, member: usize, attempt: u32) {
        self.push(FaultRecord {
            rank: Some(rank),
            stage,
            member: Some(member),
            attempt: Some(attempt),
            event: FaultEvent::RetryBackoff,
        });
    }

    /// Record a successful read after `attempt` failed attempts.
    pub fn recovered(&self, rank: usize, stage: Option<usize>, member: usize, attempt: u32) {
        self.push(FaultRecord {
            rank: Some(rank),
            stage,
            member: Some(member),
            attempt: Some(attempt),
            event: FaultEvent::ReadRecovered,
        });
    }

    /// Record the run-level decision to drop a member.
    pub fn dropped(&self, member: usize) {
        self.push(FaultRecord {
            rank: None,
            stage: None,
            member: Some(member),
            attempt: None,
            event: FaultEvent::MemberDropped,
        });
    }

    /// Record a rank crash.
    pub fn crashed(&self, rank: usize, stage: usize) {
        self.push(FaultRecord {
            rank: Some(rank),
            stage: Some(stage),
            member: None,
            attempt: None,
            event: FaultEvent::RankCrashed,
        });
    }

    /// Snapshot of the records in insertion order.
    pub fn records(&self) -> Vec<FaultRecord> {
        self.records.lock().expect("fault log poisoned").clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.lock().expect("fault log poisoned").len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical event-sequence digest: records sorted by (rank, stage,
    /// member, attempt, event), one text line each. Sorting removes the
    /// thread-interleaving nondeterminism of real runs while preserving
    /// per-(rank, member) program order, so real-vs-model comparison is a
    /// string equality.
    pub fn digest(&self) -> String {
        let mut recs = self.records();
        recs.sort_unstable();
        let opt = |v: Option<usize>| v.map_or("-".to_string(), |x| x.to_string());
        let mut out = String::new();
        for r in recs {
            use std::fmt::Write as _;
            writeln!(
                out,
                "rank={} stage={} member={} attempt={} event={}",
                opt(r.rank),
                opt(r.stage),
                opt(r.member),
                r.attempt.map_or("-".to_string(), |a| a.to_string()),
                r.event.label()
            )
            .expect("writing to a String cannot fail");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_insertion_order_independent() {
        let a = FaultLog::new();
        a.injected(0, Some(1), 3, 0);
        a.backoff(0, Some(1), 3, 0);
        a.recovered(0, Some(1), 3, 1);
        a.dropped(5);
        let b = FaultLog::new();
        b.dropped(5);
        b.recovered(0, Some(1), 3, 1);
        b.injected(0, Some(1), 3, 0);
        b.backoff(0, Some(1), 3, 0);
        assert_eq!(a.digest(), b.digest());
        assert!(a.digest().contains("event=dropped"));
        assert!(a.digest().contains("rank=- stage=- member=5"));
    }

    #[test]
    fn digest_distinguishes_members_and_attempts() {
        let a = FaultLog::new();
        a.injected(0, None, 1, 0);
        let b = FaultLog::new();
        b.injected(0, None, 2, 0);
        assert_ne!(a.digest(), b.digest());
        let c = FaultLog::new();
        c.injected(0, None, 1, 1);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn log_is_shareable_across_threads() {
        let log = FaultLog::new();
        std::thread::scope(|s| {
            for rank in 0..4 {
                let log = &log;
                s.spawn(move || log.injected(rank, None, rank, 0));
            }
        });
        assert_eq!(log.len(), 4);
    }
}
