//! The injector: pure fault decisions plus the shared log.

use crate::log::FaultLog;
use crate::plan::FaultPlan;
use crate::retry::RetryPolicy;

/// Everything a fault-aware run needs: the plan, the retry policy, whether
/// an unrecoverable member degrades the cycle (N−1 members) or aborts it,
/// and how long receives wait before timing out on a dead peer.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Retry/backoff policy for substrate reads.
    pub retry: RetryPolicy,
    /// Complete the cycle without unrecoverable members instead of erroring.
    pub degraded: bool,
    /// Receive timeout (seconds) used when the plan contains rank crashes,
    /// so peers surface a typed error instead of blocking forever.
    pub recv_timeout: f64,
}

impl FaultConfig {
    /// The no-fault configuration: empty plan, no retries, no degradation.
    /// Running with it is behaviourally identical to the plain `run` paths
    /// (byte-identical trace digests).
    pub fn none() -> Self {
        FaultConfig {
            plan: FaultPlan::default(),
            retry: RetryPolicy::none(),
            degraded: false,
            recv_timeout: 5.0,
        }
    }

    /// A degraded-mode configuration for `plan` with the default retry
    /// policy.
    pub fn degraded(plan: FaultPlan) -> Self {
        FaultConfig {
            plan,
            retry: RetryPolicy::default(),
            degraded: true,
            recv_timeout: 5.0,
        }
    }

    /// Replace the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Answers every injection question as a pure function of the
/// [`FaultConfig`], and carries the [`FaultLog`] both executors append to.
///
/// Purity is the load-bearing property: the dropout set, the number of
/// failed attempts per read, slowdown factors — none depend on runtime
/// state, so every rank (and the DES graph builder) reaches the same
/// decisions with no coordination, and real runs cannot diverge from
/// modeled runs.
#[derive(Debug, Default)]
pub struct FaultInjector {
    cfg: FaultConfig,
    log: FaultLog,
}

impl FaultInjector {
    /// An injector for `cfg` with an empty log.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector {
            cfg,
            log: FaultLog::new(),
        }
    }

    /// The configuration driving the decisions.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The retry policy.
    pub fn retry(&self) -> &RetryPolicy {
        &self.cfg.retry
    }

    /// The shared event log.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Consume the injector, yielding the event log.
    pub fn into_log(self) -> FaultLog {
        self.log
    }

    /// Whether any fault is scheduled at all (fast path: an empty plan must
    /// cost nothing).
    pub fn active(&self) -> bool {
        !self.cfg.plan.is_empty()
    }

    /// How many attempts of *every* read of `member` fail before one
    /// succeeds (0 = healthy). Multiple entries for one member take the
    /// maximum — the worst fault wins.
    pub fn read_fail_attempts(&self, member: usize) -> u32 {
        self.cfg
            .plan
            .read_faults
            .iter()
            .filter(|f| f.member == member)
            .map(|f| f.fail_attempts)
            .max()
            .unwrap_or(0)
    }

    /// Whether `member` cannot be read within the retry budget. The budget
    /// counts the retries the deadline actually schedules
    /// ([`RetryPolicy::effective_retries`]), so a tight deadline widens the
    /// dropout set — exhaustion degrades to the N−1 path instead of
    /// stalling. Without a deadline this is the historical
    /// `fail_attempts > max_retries`.
    pub fn is_unrecoverable(&self, member: usize) -> bool {
        self.read_fail_attempts(member) > self.cfg.retry.effective_retries()
    }

    /// The sorted dropout set among members `0..members` — the members
    /// degraded mode completes without.
    pub fn unrecoverable_members(&self, members: usize) -> Vec<usize> {
        (0..members).filter(|&m| self.is_unrecoverable(m)).collect()
    }

    /// Service multiplier for operations on `member`'s file, from the
    /// slowdown of the OST it stripes to (`member % num_osts`). 1.0 when
    /// healthy; stacked slowdowns multiply.
    pub fn file_slowdown(&self, member: usize) -> f64 {
        let ost = member % self.cfg.plan.num_osts;
        self.cfg
            .plan
            .ost_slowdowns
            .iter()
            .filter(|s| s.ost == ost)
            .map(|s| s.factor)
            .product()
    }

    /// Service multiplier for operations on OST `ost` directly (1.0 when
    /// healthy; stacked slowdowns multiply). Adaptive read routing uses
    /// this to price a replica path that stripes to a different OST than
    /// the member's primary.
    pub fn ost_factor(&self, ost: usize) -> f64 {
        self.cfg
            .plan
            .ost_slowdowns
            .iter()
            .filter(|s| s.ost == ost)
            .map(|s| s.factor)
            .product()
    }

    /// Compute-time multiplier for `rank` (1.0 when healthy; stacked
    /// stragglers multiply).
    pub fn compute_dilation(&self, rank: usize) -> f64 {
        self.cfg
            .plan
            .stragglers
            .iter()
            .filter(|s| s.rank == rank)
            .map(|s| s.dilation)
            .product()
    }

    /// Added latency (seconds) for messages `from → to`; delays on the same
    /// edge accumulate.
    pub fn send_delay(&self, from: usize, to: usize) -> f64 {
        self.cfg
            .plan
            .msg_faults
            .iter()
            .filter(|m| m.from == from && m.to == to && !m.dropped)
            .map(|m| m.delay)
            .sum()
    }

    /// Whether messages `from → to` are dropped.
    pub fn message_dropped(&self, from: usize, to: usize) -> bool {
        self.cfg
            .plan
            .msg_faults
            .iter()
            .any(|m| m.from == from && m.to == to && m.dropped)
    }

    /// The stage at which `rank` crashes, if scheduled (earliest wins).
    pub fn crash_stage(&self, rank: usize) -> Option<usize> {
        self.cfg
            .plan
            .crashes
            .iter()
            .filter(|c| c.rank == rank)
            .map(|c| c.stage)
            .min()
    }

    /// Whether the plan crashes any rank (peers then receive with a timeout
    /// instead of blocking forever).
    pub fn has_crashes(&self) -> bool {
        !self.cfg.plan.crashes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::UNRECOVERABLE;

    #[test]
    fn empty_config_decides_nothing() {
        let inj = FaultInjector::new(FaultConfig::none());
        assert!(!inj.active());
        assert_eq!(inj.read_fail_attempts(0), 0);
        assert!(inj.unrecoverable_members(16).is_empty());
        assert_eq!(inj.file_slowdown(3), 1.0);
        assert_eq!(inj.compute_dilation(7), 1.0);
        assert_eq!(inj.send_delay(0, 1), 0.0);
        assert!(!inj.message_dropped(0, 1));
        assert_eq!(inj.crash_stage(2), None);
        assert!(!inj.has_crashes());
    }

    #[test]
    fn dropout_set_is_a_pure_plan_function() {
        let plan = FaultPlan::new(1)
            .with_read_fault(2, 2) // recoverable under max_retries = 3
            .with_unrecoverable_member(5)
            .with_read_fault(6, 4); // 4 > 3 retries → unrecoverable
        let inj = FaultInjector::new(FaultConfig::degraded(plan));
        assert_eq!(inj.unrecoverable_members(8), vec![5, 6]);
        assert!(!inj.is_unrecoverable(2));
        assert_eq!(inj.read_fail_attempts(2), 2);
        assert_eq!(inj.read_fail_attempts(5), UNRECOVERABLE);
    }

    #[test]
    fn retry_budget_shifts_the_dropout_boundary() {
        let plan = FaultPlan::new(1).with_read_fault(0, 2);
        let lenient = FaultInjector::new(FaultConfig::degraded(plan.clone()));
        assert!(lenient.unrecoverable_members(4).is_empty());
        let strict = FaultInjector::new(FaultConfig::degraded(plan).with_retry(RetryPolicy {
            max_retries: 1,
            base_backoff: 1e-3,
            multiplier: 2.0,
            ..RetryPolicy::default()
        }));
        assert_eq!(strict.unrecoverable_members(4), vec![0]);
    }

    #[test]
    fn slowdown_targets_files_by_striping() {
        let plan = FaultPlan::new(3).with_num_osts(4).with_ost_slowdown(1, 3.0);
        let inj = FaultInjector::new(FaultConfig::degraded(plan));
        assert_eq!(inj.file_slowdown(1), 3.0);
        assert_eq!(inj.file_slowdown(5), 3.0);
        assert_eq!(inj.file_slowdown(0), 1.0);
        assert_eq!(inj.file_slowdown(2), 1.0);
    }

    #[test]
    fn message_faults_resolve_per_edge() {
        let plan = FaultPlan::new(4)
            .with_msg_delay(0, 1, 0.25)
            .with_msg_delay(0, 1, 0.25)
            .with_msg_drop(2, 3);
        let inj = FaultInjector::new(FaultConfig::degraded(plan));
        assert_eq!(inj.send_delay(0, 1), 0.5);
        assert_eq!(inj.send_delay(1, 0), 0.0);
        assert!(inj.message_dropped(2, 3));
        assert!(!inj.message_dropped(3, 2));
    }

    #[test]
    fn earliest_crash_wins() {
        let plan = FaultPlan::new(5).with_crash(3, 2).with_crash(3, 1);
        let inj = FaultInjector::new(FaultConfig::degraded(plan));
        assert_eq!(inj.crash_stage(3), Some(1));
        assert!(inj.has_crashes());
    }
}
