//! Deterministic fault injection for the S-EnKF substrate.
//!
//! A production assimilation system runs on hardware that misbehaves: object
//! storage targets degrade, reads come back short, ranks straggle or die,
//! messages are delayed. This crate describes those events as a typed,
//! deterministic [`FaultPlan`] and provides the pieces every layer consumes:
//!
//! * [`FaultPlan`] — the schedule of injectable events (OST slowdown ×k,
//!   failed/short reads with optional recovery-after-retry, delayed or
//!   dropped messages, straggler ranks with compute dilation, rank crash at
//!   a given stage). A plan is plain data: the same plan injected into the
//!   real (threaded) executor and the modeled (DES) executor produces the
//!   same fault/retry/dropout event sequence.
//! * [`RetryPolicy`] — bounded retry with exponential backoff. Deliberately
//!   jitter-free so backoff delays are bit-reproducible across executors and
//!   appear in DES virtual time exactly as scheduled.
//! * [`FaultInjector`] — the pure decision functions (`does attempt a of a
//!   read of member k fail?`, `which members are unrecoverable?`) plus the
//!   shared [`FaultLog`]. Every decision is a function of `(plan, policy)`
//!   alone, never of runtime state, so all ranks of a run agree on the
//!   dropout set without coordination.
//! * [`FaultLog`] — the ordered record of injected faults and recovery
//!   actions; its sorted [`FaultLog::digest`] is the conformance artifact
//!   compared between the real and modeled executors.
//! * [`SubstrateError`] — the structured error vocabulary (read failures
//!   with path/member/expected-vs-actual context, retry exhaustion, receive
//!   timeouts, rank crashes) shared by `enkf-pfs`, `enkf-net` and
//!   `enkf-parallel` in place of stringly errors.
//!
//! The crate is a leaf: it depends on nothing, and everything that can fail
//! depends on it.

mod error;
mod injector;
mod log;
mod plan;
mod retry;

pub use error::{ReadError, SubstrateError};
pub use injector::{FaultConfig, FaultInjector};
pub use log::{FaultEvent, FaultLog, FaultRecord};
pub use plan::{
    seeded_unit, CycleCrash, FaultPlan, MsgFault, OstSlowdown, RankCrash, ReadFault, ReadFaultKind,
    Straggler, UNRECOVERABLE,
};
pub use retry::RetryPolicy;
