//! Bounded retry with exponential backoff.

/// Retry policy for substrate reads: up to `max_retries` re-issues after
/// the initial attempt, sleeping `base_backoff · multiplier^attempt`
/// between attempts.
///
/// Backoff is deliberately **jitter-free**: the delays must be identical on
/// the real path (wall-clock sleeps) and the modeled path (virtual-time
/// tasks) for the cross-executor conformance checks to hold, and a DES test
/// asserts they appear in virtual time exactly as scheduled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before the first retry, seconds.
    pub base_backoff: f64,
    /// Geometric growth factor between consecutive backoffs.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: 1e-3,
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// No retries: the first failure is final (the pre-fault-subsystem
    /// behaviour; used by the plain `run` paths).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: 0.0,
            multiplier: 2.0,
        }
    }

    /// Backoff slept after failed attempt `attempt` (0-based):
    /// `base_backoff · multiplier^attempt`.
    pub fn backoff(&self, attempt: u32) -> f64 {
        self.base_backoff * self.multiplier.powi(attempt as i32)
    }

    /// Total attempts allowed (initial + retries).
    pub fn attempts(&self) -> u32 {
        self.max_retries + 1
    }

    /// Sum of every backoff a fully-exhausted retry sequence sleeps.
    pub fn total_backoff(&self) -> f64 {
        (0..self.max_retries).map(|a| self.backoff(a)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff: 0.5,
            multiplier: 2.0,
        };
        assert_eq!(p.backoff(0), 0.5);
        assert_eq!(p.backoff(1), 1.0);
        assert_eq!(p.backoff(2), 2.0);
        assert_eq!(p.total_backoff(), 3.5);
        assert_eq!(p.attempts(), 4);
    }

    #[test]
    fn none_never_sleeps() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.total_backoff(), 0.0);
        assert_eq!(p.attempts(), 1);
    }

    #[test]
    fn backoff_is_exactly_reproducible() {
        // No jitter: two evaluations are bit-identical (the DES test relies
        // on this).
        let p = RetryPolicy::default();
        for a in 0..8 {
            assert_eq!(p.backoff(a).to_bits(), p.backoff(a).to_bits());
        }
    }
}
