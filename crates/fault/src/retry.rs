//! Bounded retry with exponential backoff, seeded jitter, and an optional
//! per-phase deadline budget.

use crate::plan::seeded_unit;

/// Retry policy for substrate reads: up to `max_retries` re-issues after
/// the initial attempt, sleeping `base_backoff · multiplier^attempt`
/// between attempts.
///
/// Backoff is **seeded-jittered, not random**: with `jitter > 0` each delay
/// is scaled by `1 + jitter · u(seed, attempt)` where `u` is the same
/// SplitMix64 unit stream the fault plan draws from. The delays are a pure
/// function of `(seed, attempt)`, so they are identical on the real path
/// (wall-clock sleeps) and the modeled path (virtual-time tasks) — the
/// cross-executor conformance checks rely on this, and a DES test asserts
/// they appear in virtual time exactly as scheduled. `jitter = 0` (the
/// default) reproduces the historical jitter-free schedule bit for bit.
///
/// The `deadline` field bounds the *scheduled backoff budget* of a retry
/// sequence: attempt `a` is only issued if the cumulative backoff slept to
/// reach it fits the budget. Exhausting the budget is not a stall — in
/// degraded mode the member falls onto the N−1 dropout path exactly like an
/// unrecoverable fault ([`crate::FaultInjector::is_unrecoverable`] counts
/// deadline-capped attempts, not `max_retries`). `deadline = 0` means
/// unbounded (the historical behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before the first retry, seconds.
    pub base_backoff: f64,
    /// Geometric growth factor between consecutive backoffs.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: backoff is scaled by
    /// `1 + jitter · u(seed, attempt)`. `0` disables jitter.
    pub jitter: f64,
    /// Seed of the jitter unit stream (ignored while `jitter == 0`).
    pub seed: u64,
    /// Per-phase backoff budget in seconds; `0` means unbounded. An attempt
    /// is issued only if the total backoff scheduled before it stays within
    /// the budget.
    pub deadline: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: 1e-3,
            multiplier: 2.0,
            jitter: 0.0,
            seed: 0,
            deadline: 0.0,
        }
    }
}

impl RetryPolicy {
    /// No retries: the first failure is final (the pre-fault-subsystem
    /// behaviour; used by the plain `run` paths).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: 0.0,
            multiplier: 2.0,
            jitter: 0.0,
            seed: 0,
            deadline: 0.0,
        }
    }

    /// Enable seeded jitter: each backoff is scaled by
    /// `1 + jitter · u(seed, attempt)`.
    pub fn with_jitter(mut self, seed: u64, jitter: f64) -> Self {
        self.seed = seed;
        self.jitter = jitter;
        self
    }

    /// Bound the scheduled backoff budget of a retry sequence.
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = deadline;
        self
    }

    /// Backoff slept after failed attempt `attempt` (0-based):
    /// `base_backoff · multiplier^attempt · (1 + jitter · u(seed, attempt))`.
    pub fn backoff(&self, attempt: u32) -> f64 {
        let base = self.base_backoff * self.multiplier.powi(attempt as i32);
        if self.jitter == 0.0 {
            base
        } else {
            base * (1.0 + self.jitter * seeded_unit(self.seed, attempt as u64))
        }
    }

    /// Total attempts the policy *permits* (initial + retries), ignoring
    /// the deadline budget.
    pub fn attempts(&self) -> u32 {
        self.max_retries + 1
    }

    /// Total attempts the deadline budget actually *schedules*: the largest
    /// `n ≤ attempts()` such that the backoff slept before attempt `n − 1`
    /// fits inside `deadline`. With `deadline == 0` this is `attempts()`.
    /// Both the real retry loops and the DES weaves iterate this bound, so
    /// budget exhaustion is part of the conformance surface.
    pub fn scheduled_attempts(&self) -> u32 {
        if self.deadline <= 0.0 {
            return self.attempts();
        }
        let mut slept = 0.0f64;
        let mut n = 1u32; // the initial attempt is always issued
        while n < self.attempts() {
            slept += self.backoff(n - 1);
            if slept > self.deadline {
                break;
            }
            n += 1;
        }
        n
    }

    /// Retries the budget actually schedules (`scheduled_attempts() − 1`).
    /// This, not `max_retries`, is what decides whether a member with `k`
    /// injected failures is recoverable.
    pub fn effective_retries(&self) -> u32 {
        self.scheduled_attempts() - 1
    }

    /// Sum of every backoff a fully-exhausted retry sequence sleeps
    /// (deadline-capped).
    pub fn total_backoff(&self) -> f64 {
        (0..self.scheduled_attempts() - 1)
            .map(|a| self.backoff(a))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff: 0.5,
            multiplier: 2.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0), 0.5);
        assert_eq!(p.backoff(1), 1.0);
        assert_eq!(p.backoff(2), 2.0);
        assert_eq!(p.total_backoff(), 3.5);
        assert_eq!(p.attempts(), 4);
        assert_eq!(p.scheduled_attempts(), 4);
    }

    #[test]
    fn none_never_sleeps() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.total_backoff(), 0.0);
        assert_eq!(p.attempts(), 1);
    }

    #[test]
    fn backoff_is_exactly_reproducible() {
        // Jitter-free and jittered: two evaluations are bit-identical (the
        // DES conformance relies on this).
        let plain = RetryPolicy::default();
        let jittered = RetryPolicy::default().with_jitter(42, 0.5);
        for a in 0..8 {
            assert_eq!(plain.backoff(a).to_bits(), plain.backoff(a).to_bits());
            assert_eq!(jittered.backoff(a).to_bits(), jittered.backoff(a).to_bits());
        }
    }

    #[test]
    fn jitter_stays_within_the_declared_band() {
        let p = RetryPolicy::default().with_jitter(7, 0.25);
        let plain = RetryPolicy::default();
        for a in 0..8 {
            let b = p.backoff(a);
            let base = plain.backoff(a);
            assert!(b >= base && b <= base * 1.25, "attempt {a}: {b} vs {base}");
        }
    }

    #[test]
    fn deadline_caps_scheduled_attempts() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: 1.0,
            multiplier: 2.0,
            ..RetryPolicy::default()
        };
        // Backoffs: 1, 2, 4, 8, 16. Budget 3 fits 1+2 → 3 attempts.
        assert_eq!(p.with_deadline(3.0).scheduled_attempts(), 3);
        assert_eq!(p.with_deadline(0.5).scheduled_attempts(), 1);
        assert_eq!(p.with_deadline(0.0).scheduled_attempts(), 6);
        assert_eq!(p.with_deadline(1e9).scheduled_attempts(), 6);
        assert_eq!(p.with_deadline(3.0).effective_retries(), 2);
    }
}
