//! Grid geometry for the S-EnKF reproduction.
//!
//! Everything spatial lives here: the latitude–longitude mesh, domain
//! decomposition into `n_sdx × n_sdy` sub-domains (§2.2), localization boxes
//! with radii `(ξ, η)` (Fig. 2), sub-domain expansions `D̄`, the `L`-layer
//! split that drives the multi-stage computation (§4.2), the latitude *bars*
//! of the bar-reading approach (§4.1.2), and the mapping from grid regions to
//! contiguous byte segments of the row-priority on-disk layout — which is
//! what makes block reading seek-heavy and bar reading single-seek.
//!
//! Storage convention (fixed by the paper's Figures 3 and 6): an ensemble
//! member is a 2-D tensor stored row-priority where a *row* is one latitude
//! line of `n_x` longitude points. A latitude band is therefore contiguous
//! on disk; a longitude slice is not.

pub mod decomp;
pub mod layout;
pub mod mesh;
pub mod obs;
pub mod region;

pub use decomp::{Decomposition, SubDomainId};
pub use layout::FileLayout;
pub use mesh::{GridPoint, Mesh};
pub use obs::{ObsIndex, ObservationNetwork};
pub use region::RegionRect;

use serde::{Deserialize, Serialize};

/// Domain-localization radius in grid points: `xi` along longitude, `eta`
/// along latitude (Fig. 2a). The local box around a point has dimensions
/// `(2ξ+1) × (2η+1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LocalizationRadius {
    /// Influence radius along the longitude (x) direction, in grid points.
    pub xi: usize,
    /// Influence radius along the latitude (y) direction, in grid points.
    pub eta: usize,
}

impl LocalizationRadius {
    /// Convert a physical radius of influence `r` (km) into grid-point radii
    /// given the (generally different) grid spacings along longitude and
    /// latitude. This is why `ξ` may differ from `η` on a `n_x ≫ n_y` mesh.
    pub fn from_physical(r_km: f64, dx_km: f64, dy_km: f64) -> Self {
        assert!(
            r_km >= 0.0 && dx_km > 0.0 && dy_km > 0.0,
            "radii and spacings must be positive"
        );
        LocalizationRadius {
            xi: (r_km / dx_km).ceil() as usize,
            eta: (r_km / dy_km).ceil() as usize,
        }
    }

    /// Number of points in a full (interior) local box.
    pub fn box_points(&self) -> usize {
        (2 * self.xi + 1) * (2 * self.eta + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_radius_matches_figure_2() {
        // Fig. 2a: r = 10 km with spacings giving xi=4, eta=2.
        let r = LocalizationRadius::from_physical(10.0, 2.5, 5.0);
        assert_eq!(r, LocalizationRadius { xi: 4, eta: 2 });
        assert_eq!(r.box_points(), 9 * 5);
    }

    #[test]
    fn zero_radius_is_single_point() {
        let r = LocalizationRadius { xi: 0, eta: 0 };
        assert_eq!(r.box_points(), 1);
    }
}
