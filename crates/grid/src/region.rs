//! Axis-aligned half-open rectangles of grid points.
//!
//! Sub-domains, expansions, layers, bars and read-blocks are all
//! [`RegionRect`]s; the decomposition module constructs them and the file
//! layout module turns them into byte segments.

use crate::{GridPoint, LocalizationRadius, Mesh};
use serde::{Deserialize, Serialize};

/// A half-open rectangle `[x0, x1) × [y0, y1)` of grid points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionRect {
    /// First longitude index (inclusive).
    pub x0: usize,
    /// One past the last longitude index.
    pub x1: usize,
    /// First latitude index (inclusive).
    pub y0: usize,
    /// One past the last latitude index.
    pub y1: usize,
}

impl RegionRect {
    /// Construct; requires a non-degenerate ordering (`x0 ≤ x1`, `y0 ≤ y1`).
    pub fn new(x0: usize, x1: usize, y0: usize, y1: usize) -> Self {
        assert!(x0 <= x1 && y0 <= y1, "degenerate region bounds");
        RegionRect { x0, x1, y0, y1 }
    }

    /// The rectangle covering an entire mesh.
    pub fn full(mesh: Mesh) -> Self {
        RegionRect::new(0, mesh.nx(), 0, mesh.ny())
    }

    /// Extent along longitude.
    #[inline]
    pub fn width(&self) -> usize {
        self.x1 - self.x0
    }

    /// Extent along latitude.
    #[inline]
    pub fn height(&self) -> usize {
        self.y1 - self.y0
    }

    /// Number of grid points covered.
    #[inline]
    pub fn npoints(&self) -> usize {
        self.width() * self.height()
    }

    /// True when the rectangle covers no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x0 == self.x1 || self.y0 == self.y1
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, p: GridPoint) -> bool {
        p.ix >= self.x0 && p.ix < self.x1 && p.iy >= self.y0 && p.iy < self.y1
    }

    /// Whether `self` contains every point of `other`.
    pub fn contains_rect(&self, other: &RegionRect) -> bool {
        other.is_empty()
            || (self.x0 <= other.x0
                && other.x1 <= self.x1
                && self.y0 <= other.y0
                && other.y1 <= self.y1)
    }

    /// Intersection (possibly empty).
    pub fn intersect(&self, other: &RegionRect) -> RegionRect {
        let x0 = self.x0.max(other.x0);
        let x1 = self.x1.min(other.x1).max(x0);
        let y0 = self.y0.max(other.y0);
        let y1 = self.y1.min(other.y1).max(y0);
        RegionRect { x0, x1, y0, y1 }
    }

    /// Expand by the localization radius and clamp to the mesh: this is the
    /// expansion `D̄` of a sub-domain `D` (Fig. 2b) — the sub-domain plus
    /// every halo point its local analyses need.
    pub fn expand(&self, radius: LocalizationRadius, mesh: Mesh) -> RegionRect {
        RegionRect {
            x0: self.x0.saturating_sub(radius.xi),
            x1: (self.x1 + radius.xi).min(mesh.nx()),
            y0: self.y0.saturating_sub(radius.eta),
            y1: (self.y1 + radius.eta).min(mesh.ny()),
        }
    }

    /// Iterate over the covered points in row-priority (latitude-major)
    /// order — the same order the region's data appears in a file and in a
    /// gathered local matrix.
    pub fn iter_points(&self) -> impl Iterator<Item = GridPoint> + '_ {
        let (x0, x1, y0, y1) = (self.x0, self.x1, self.y0, self.y1);
        (y0..y1).flat_map(move |iy| (x0..x1).map(move |ix| GridPoint { ix, iy }))
    }

    /// Local (region-relative) index of a global point, in the order of
    /// [`RegionRect::iter_points`]. Panics outside the region.
    #[inline]
    pub fn local_index(&self, p: GridPoint) -> usize {
        assert!(self.contains(p), "point not inside region");
        (p.iy - self.y0) * self.width() + (p.ix - self.x0)
    }

    /// Inverse of [`RegionRect::local_index`].
    #[inline]
    pub fn point_at(&self, local: usize) -> GridPoint {
        debug_assert!(local < self.npoints());
        GridPoint {
            ix: self.x0 + local % self.width(),
            iy: self.y0 + local / self.width(),
        }
    }

    /// Local indices of the points of `inner` within `self` (row-priority
    /// over `inner`). Used to project an expansion-local analysis back onto
    /// the sub-domain (the paper's implicit `P_{i,j}`).
    pub fn local_indices_of(&self, inner: &RegionRect) -> Vec<usize> {
        debug_assert!(self.contains_rect(inner), "inner region escapes outer");
        inner.iter_points().map(|p| self.local_index(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_extents() {
        let r = RegionRect::new(2, 6, 1, 4);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 3);
        assert_eq!(r.npoints(), 12);
        assert!(!r.is_empty());
        assert!(RegionRect::new(3, 3, 0, 9).is_empty());
    }

    #[test]
    fn contains_and_local_index_roundtrip() {
        let r = RegionRect::new(2, 6, 1, 4);
        for (k, p) in r.iter_points().enumerate() {
            assert!(r.contains(p));
            assert_eq!(r.local_index(p), k);
            assert_eq!(r.point_at(k), p);
        }
    }

    #[test]
    fn expansion_clamps_at_boundaries() {
        let mesh = Mesh::new(10, 8);
        let radius = LocalizationRadius { xi: 3, eta: 2 };
        let corner = RegionRect::new(0, 5, 0, 4);
        let e = corner.expand(radius, mesh);
        assert_eq!(e, RegionRect::new(0, 8, 0, 6));
        let inner = RegionRect::new(5, 8, 4, 6);
        let e2 = inner.expand(radius, mesh);
        assert_eq!(e2, RegionRect::new(2, 10, 2, 8));
        assert!(e2.contains_rect(&inner));
    }

    #[test]
    fn intersect_empty_when_disjoint() {
        let a = RegionRect::new(0, 2, 0, 2);
        let b = RegionRect::new(5, 7, 5, 7);
        assert!(a.intersect(&b).is_empty());
        let c = RegionRect::new(1, 6, 1, 6);
        assert_eq!(a.intersect(&c), RegionRect::new(1, 2, 1, 2));
    }

    #[test]
    fn local_indices_of_projects_subdomain() {
        let outer = RegionRect::new(0, 4, 0, 4);
        let inner = RegionRect::new(1, 3, 1, 3);
        assert_eq!(outer.local_indices_of(&inner), vec![5, 6, 9, 10]);
    }

    #[test]
    fn full_covers_mesh() {
        let mesh = Mesh::new(6, 3);
        assert_eq!(RegionRect::full(mesh).npoints(), mesh.n());
    }
}
