//! Observation-network geometry.
//!
//! The observational operator `H ∈ R^{m×n}` of the paper selects (and in
//! general interpolates) `m ≪ n` observed components from the model state.
//! Geometrically an observation network is a set of observed grid points;
//! this module provides the regular (strided) networks the experiments use
//! and the restriction of a network to an expansion `D̄` — yielding the
//! local operator `H_{[i,j]}` with `m̄_sd` rows.

use crate::{GridPoint, Mesh, RegionRect};
use serde::{Deserialize, Serialize};

/// A set of observed grid points in a fixed (row-priority) order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservationNetwork {
    mesh: Mesh,
    points: Vec<GridPoint>,
}

impl ObservationNetwork {
    /// A regular network observing every `stride_x`-th longitude and
    /// `stride_y`-th latitude point, starting at the given offsets.
    pub fn strided(
        mesh: Mesh,
        stride_x: usize,
        stride_y: usize,
        offset_x: usize,
        offset_y: usize,
    ) -> Self {
        assert!(stride_x > 0 && stride_y > 0, "strides must be positive");
        let mut points = Vec::new();
        let mut iy = offset_y;
        while iy < mesh.ny() {
            let mut ix = offset_x;
            while ix < mesh.nx() {
                points.push(GridPoint { ix, iy });
                ix += stride_x;
            }
            iy += stride_y;
        }
        ObservationNetwork { mesh, points }
    }

    /// Uniform stride in both directions with zero offset.
    pub fn uniform(mesh: Mesh, stride: usize) -> Self {
        Self::strided(mesh, stride, stride, 0, 0)
    }

    /// Build a network from an explicit point list (e.g. a sparse irregular
    /// network). Points must lie inside the mesh.
    pub fn from_points(mesh: Mesh, points: Vec<GridPoint>) -> Self {
        assert!(
            points.iter().all(|&p| mesh.contains(p)),
            "observation outside mesh"
        );
        ObservationNetwork { mesh, points }
    }

    /// The mesh the network observes.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Number of observed components `m`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point is observed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The observed points, in network order (row `k` of `H` observes
    /// `points()[k]`).
    pub fn points(&self) -> &[GridPoint] {
        &self.points
    }

    /// Global observation indices (rows of `H`) whose points fall inside a
    /// region, in network order. These are the rows of the local operator
    /// `H_{[i,j]}` and the entries of `Yˢ_{[i,j]}` / `R_{[i,j]}`.
    pub fn indices_in(&self, region: &RegionRect) -> Vec<usize> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, &p)| region.contains(p))
            .map(|(k, _)| k)
            .collect()
    }

    /// The observed points inside a region (paired with [`Self::indices_in`]).
    pub fn points_in(&self, region: &RegionRect) -> Vec<GridPoint> {
        self.points
            .iter()
            .copied()
            .filter(|&p| region.contains(p))
            .collect()
    }
}

/// Bucket-grid spatial index over an observation network.
///
/// Built once per assimilation cycle, it answers "which observations fall
/// inside this rectangle" in O(obs in box) instead of O(all obs) — the query
/// every localization box issues per grid point. Results are byte-identical
/// to [`ObservationNetwork::indices_in`]: the same indices, ascending.
#[derive(Debug, Clone)]
pub struct ObsIndex {
    cell: usize,
    ncx: usize,
    ncy: usize,
    /// CSR bucket offsets into `items`, length `ncx * ncy + 1`.
    starts: Vec<usize>,
    /// Observation indices grouped by bucket (network order within each).
    items: Vec<usize>,
    /// Copy of the network's points for the partial-bucket filter.
    points: Vec<GridPoint>,
}

impl ObsIndex {
    /// Index a network with square buckets of `cell` grid points per edge.
    ///
    /// Pick `cell` on the order of the localization radius so a typical box
    /// query touches O(1) buckets.
    pub fn build(net: &ObservationNetwork, cell: usize) -> Self {
        assert!(cell > 0, "bucket edge must be positive");
        let mesh = net.mesh();
        let ncx = mesh.nx().div_ceil(cell).max(1);
        let ncy = mesh.ny().div_ceil(cell).max(1);
        let nb = ncx * ncy;
        let bucket = |p: GridPoint| (p.iy / cell) * ncx + p.ix / cell;
        // Counting sort into CSR layout; network order survives per bucket.
        let mut starts = vec![0usize; nb + 1];
        for &p in net.points() {
            starts[bucket(p) + 1] += 1;
        }
        for b in 0..nb {
            starts[b + 1] += starts[b];
        }
        let mut fill = starts.clone();
        let mut items = vec![0usize; net.len()];
        for (k, &p) in net.points().iter().enumerate() {
            let b = bucket(p);
            items[fill[b]] = k;
            fill[b] += 1;
        }
        ObsIndex {
            cell,
            ncx,
            ncy,
            starts,
            items,
            points: net.points().to_vec(),
        }
    }

    /// Number of indexed observations.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the indexed network is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Observation indices inside `region`, ascending, written into a
    /// caller-owned buffer (allocation-free at steady state).
    pub fn indices_in_into(&self, region: &RegionRect, out: &mut Vec<usize>) {
        out.clear();
        if region.is_empty() || self.points.is_empty() {
            return;
        }
        let bx0 = region.x0 / self.cell;
        let bx1 = ((region.x1 - 1) / self.cell).min(self.ncx - 1);
        let by0 = region.y0 / self.cell;
        let by1 = ((region.y1 - 1) / self.cell).min(self.ncy - 1);
        for by in by0..=by1 {
            for bx in bx0..=bx1 {
                let b = by * self.ncx + bx;
                let seg = &self.items[self.starts[b]..self.starts[b + 1]];
                let bucket_inside = bx * self.cell >= region.x0
                    && (bx + 1) * self.cell <= region.x1
                    && by * self.cell >= region.y0
                    && (by + 1) * self.cell <= region.y1;
                if bucket_inside {
                    out.extend_from_slice(seg);
                } else {
                    out.extend(
                        seg.iter()
                            .copied()
                            .filter(|&k| region.contains(self.points[k])),
                    );
                }
            }
        }
        // Buckets are visited in row-major bucket order, not network order;
        // restore the ascending order the linear scan produces.
        out.sort_unstable();
    }

    /// Observation indices inside `region`, ascending (allocating variant).
    pub fn indices_in(&self, region: &RegionRect) -> Vec<usize> {
        let mut out = Vec::new();
        self.indices_in_into(region, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_network_count() {
        let mesh = Mesh::new(12, 6);
        let net = ObservationNetwork::uniform(mesh, 3);
        // ix in {0,3,6,9}, iy in {0,3}: 4 * 2 points.
        assert_eq!(net.len(), 8);
        assert!(!net.is_empty());
    }

    #[test]
    fn strided_offsets_respected() {
        let mesh = Mesh::new(10, 10);
        let net = ObservationNetwork::strided(mesh, 4, 5, 1, 2);
        assert!(net
            .points()
            .iter()
            .all(|p| (p.ix - 1) % 4 == 0 && (p.iy - 2) % 5 == 0));
        assert!(net.points().iter().all(|&p| mesh.contains(p)));
    }

    #[test]
    fn indices_in_region_are_sorted_and_consistent() {
        let mesh = Mesh::new(12, 6);
        let net = ObservationNetwork::uniform(mesh, 2);
        let region = RegionRect::new(4, 9, 2, 5);
        let idx = net.indices_in(&region);
        let pts = net.points_in(&region);
        assert_eq!(idx.len(), pts.len());
        assert!(
            idx.windows(2).all(|w| w[0] < w[1]),
            "network order preserved"
        );
        for (&k, &p) in idx.iter().zip(pts.iter()) {
            assert_eq!(net.points()[k], p);
            assert!(region.contains(p));
        }
    }

    #[test]
    fn whole_mesh_region_captures_all() {
        let mesh = Mesh::new(8, 8);
        let net = ObservationNetwork::uniform(mesh, 3);
        let all = net.indices_in(&RegionRect::full(mesh));
        assert_eq!(all.len(), net.len());
    }

    #[test]
    #[should_panic(expected = "observation outside mesh")]
    fn from_points_validates() {
        let mesh = Mesh::new(4, 4);
        ObservationNetwork::from_points(mesh, vec![GridPoint { ix: 4, iy: 0 }]);
    }

    #[test]
    fn empty_region_has_no_observations() {
        let mesh = Mesh::new(8, 8);
        let net = ObservationNetwork::uniform(mesh, 2);
        let empty = RegionRect::new(3, 3, 0, 8);
        assert!(net.indices_in(&empty).is_empty());
    }

    #[test]
    fn obs_index_matches_linear_scan() {
        let mesh = Mesh::new(13, 9);
        let net = ObservationNetwork::strided(mesh, 2, 3, 1, 0);
        for cell in [1usize, 2, 4, 16] {
            let index = ObsIndex::build(&net, cell);
            assert_eq!(index.len(), net.len());
            for region in [
                RegionRect::new(0, 13, 0, 9),
                RegionRect::new(3, 8, 2, 7),
                RegionRect::new(5, 5, 0, 9),
                RegionRect::new(0, 1, 8, 9),
                RegionRect::new(12, 13, 0, 1),
            ] {
                assert_eq!(
                    index.indices_in(&region),
                    net.indices_in(&region),
                    "cell {cell}, region {region:?}"
                );
            }
        }
    }

    #[test]
    fn obs_index_reuses_query_buffer() {
        let mesh = Mesh::new(8, 8);
        let net = ObservationNetwork::uniform(mesh, 2);
        let index = ObsIndex::build(&net, 3);
        let mut out = vec![42; 7];
        index.indices_in_into(&RegionRect::new(0, 4, 0, 4), &mut out);
        assert_eq!(out, net.indices_in(&RegionRect::new(0, 4, 0, 4)));
        index.indices_in_into(&RegionRect::new(4, 4, 0, 8), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn obs_index_on_empty_network() {
        let mesh = Mesh::new(4, 4);
        let net = ObservationNetwork::from_points(mesh, Vec::new());
        let index = ObsIndex::build(&net, 2);
        assert!(index.is_empty());
        assert!(index.indices_in(&RegionRect::full(mesh)).is_empty());
    }
}
