//! Observation-network geometry.
//!
//! The observational operator `H ∈ R^{m×n}` of the paper selects (and in
//! general interpolates) `m ≪ n` observed components from the model state.
//! Geometrically an observation network is a set of observed grid points;
//! this module provides the regular (strided) networks the experiments use
//! and the restriction of a network to an expansion `D̄` — yielding the
//! local operator `H_{[i,j]}` with `m̄_sd` rows.

use crate::{GridPoint, Mesh, RegionRect};
use serde::{Deserialize, Serialize};

/// A set of observed grid points in a fixed (row-priority) order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservationNetwork {
    mesh: Mesh,
    points: Vec<GridPoint>,
}

impl ObservationNetwork {
    /// A regular network observing every `stride_x`-th longitude and
    /// `stride_y`-th latitude point, starting at the given offsets.
    pub fn strided(
        mesh: Mesh,
        stride_x: usize,
        stride_y: usize,
        offset_x: usize,
        offset_y: usize,
    ) -> Self {
        assert!(stride_x > 0 && stride_y > 0, "strides must be positive");
        let mut points = Vec::new();
        let mut iy = offset_y;
        while iy < mesh.ny() {
            let mut ix = offset_x;
            while ix < mesh.nx() {
                points.push(GridPoint { ix, iy });
                ix += stride_x;
            }
            iy += stride_y;
        }
        ObservationNetwork { mesh, points }
    }

    /// Uniform stride in both directions with zero offset.
    pub fn uniform(mesh: Mesh, stride: usize) -> Self {
        Self::strided(mesh, stride, stride, 0, 0)
    }

    /// Build a network from an explicit point list (e.g. a sparse irregular
    /// network). Points must lie inside the mesh.
    pub fn from_points(mesh: Mesh, points: Vec<GridPoint>) -> Self {
        assert!(
            points.iter().all(|&p| mesh.contains(p)),
            "observation outside mesh"
        );
        ObservationNetwork { mesh, points }
    }

    /// The mesh the network observes.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Number of observed components `m`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point is observed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The observed points, in network order (row `k` of `H` observes
    /// `points()[k]`).
    pub fn points(&self) -> &[GridPoint] {
        &self.points
    }

    /// Global observation indices (rows of `H`) whose points fall inside a
    /// region, in network order. These are the rows of the local operator
    /// `H_{[i,j]}` and the entries of `Yˢ_{[i,j]}` / `R_{[i,j]}`.
    pub fn indices_in(&self, region: &RegionRect) -> Vec<usize> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, &p)| region.contains(p))
            .map(|(k, _)| k)
            .collect()
    }

    /// The observed points inside a region (paired with [`Self::indices_in`]).
    pub fn points_in(&self, region: &RegionRect) -> Vec<GridPoint> {
        self.points
            .iter()
            .copied()
            .filter(|&p| region.contains(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_network_count() {
        let mesh = Mesh::new(12, 6);
        let net = ObservationNetwork::uniform(mesh, 3);
        // ix in {0,3,6,9}, iy in {0,3}: 4 * 2 points.
        assert_eq!(net.len(), 8);
        assert!(!net.is_empty());
    }

    #[test]
    fn strided_offsets_respected() {
        let mesh = Mesh::new(10, 10);
        let net = ObservationNetwork::strided(mesh, 4, 5, 1, 2);
        assert!(net
            .points()
            .iter()
            .all(|p| (p.ix - 1) % 4 == 0 && (p.iy - 2) % 5 == 0));
        assert!(net.points().iter().all(|&p| mesh.contains(p)));
    }

    #[test]
    fn indices_in_region_are_sorted_and_consistent() {
        let mesh = Mesh::new(12, 6);
        let net = ObservationNetwork::uniform(mesh, 2);
        let region = RegionRect::new(4, 9, 2, 5);
        let idx = net.indices_in(&region);
        let pts = net.points_in(&region);
        assert_eq!(idx.len(), pts.len());
        assert!(
            idx.windows(2).all(|w| w[0] < w[1]),
            "network order preserved"
        );
        for (&k, &p) in idx.iter().zip(pts.iter()) {
            assert_eq!(net.points()[k], p);
            assert!(region.contains(p));
        }
    }

    #[test]
    fn whole_mesh_region_captures_all() {
        let mesh = Mesh::new(8, 8);
        let net = ObservationNetwork::uniform(mesh, 3);
        let all = net.indices_in(&RegionRect::full(mesh));
        assert_eq!(all.len(), net.len());
    }

    #[test]
    #[should_panic(expected = "observation outside mesh")]
    fn from_points_validates() {
        let mesh = Mesh::new(4, 4);
        ObservationNetwork::from_points(mesh, vec![GridPoint { ix: 4, iy: 0 }]);
    }

    #[test]
    fn empty_region_has_no_observations() {
        let mesh = Mesh::new(8, 8);
        let net = ObservationNetwork::uniform(mesh, 2);
        let empty = RegionRect::new(3, 3, 0, 8);
        assert!(net.indices_in(&empty).is_empty());
    }
}
