//! Mapping grid regions to byte segments of the on-disk layout.
//!
//! One ensemble member file stores the mesh row-priority (latitude line by
//! latitude line), `h` bytes per grid point (the paper's *volume of data per
//! grid point* — 30 vertical levels of `f64` gives `h = 240`). A read of a
//! [`RegionRect`] therefore decomposes into one contiguous byte segment per
//! latitude row — unless the region spans the full longitude extent, in
//! which case consecutive rows merge into a single segment. Segment count is
//! exactly the number of *disk addressing operations* the paper's analysis
//! counts: `O(n_y · n_sdx)` per member for block reading versus one per bar
//! for bar reading.

use crate::{Mesh, RegionRect};
use serde::{Deserialize, Serialize};

/// A contiguous byte range within an ensemble-member file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteSegment {
    /// Offset from the start of the file, in bytes.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// The row-priority byte layout of one ensemble member on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileLayout {
    mesh: Mesh,
    bytes_per_point: u64,
}

impl FileLayout {
    /// Create a layout for the given mesh and per-point payload (`h`).
    pub fn new(mesh: Mesh, bytes_per_point: u64) -> Self {
        assert!(bytes_per_point > 0, "bytes_per_point must be positive");
        FileLayout {
            mesh,
            bytes_per_point,
        }
    }

    /// The mesh this layout describes.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Bytes per grid point (`h` in Table 1).
    pub fn bytes_per_point(&self) -> u64 {
        self.bytes_per_point
    }

    /// Total file size in bytes.
    pub fn file_size(&self) -> u64 {
        self.mesh.n() as u64 * self.bytes_per_point
    }

    /// Byte offset of a grid point's payload.
    pub fn offset_of(&self, p: crate::GridPoint) -> u64 {
        self.mesh.index(p) as u64 * self.bytes_per_point
    }

    /// Contiguous byte segments covering a region, in file order, with
    /// adjacent segments merged. Full-width regions always collapse to a
    /// single segment; a `w`-column region of `r` rows yields `r` segments.
    pub fn segments(&self, region: &RegionRect) -> Vec<ByteSegment> {
        let mut out: Vec<ByteSegment> = Vec::with_capacity(self.seek_count(region));
        self.for_each_segment(region, |seg| out.push(seg));
        out
    }

    /// Visit the segments of [`FileLayout::segments`] in file order without
    /// allocating — the form the steady-state read loop uses so a warm
    /// region read touches the heap zero times.
    pub fn for_each_segment(&self, region: &RegionRect, mut f: impl FnMut(ByteSegment)) {
        if region.is_empty() {
            return;
        }
        debug_assert!(
            RegionRect::full(self.mesh).contains_rect(region),
            "region escapes the mesh"
        );
        let h = self.bytes_per_point;
        let row_bytes = self.mesh.nx() as u64 * h;
        let seg_len = region.width() as u64 * h;
        if region.width() == self.mesh.nx() {
            // Full-width rows are adjacent in the row-priority layout: the
            // whole region merges into one segment (the bar-reading case).
            f(ByteSegment {
                offset: region.y0 as u64 * row_bytes,
                len: seg_len * region.height() as u64,
            });
            return;
        }
        for iy in region.y0..region.y1 {
            f(ByteSegment {
                offset: iy as u64 * row_bytes + region.x0 as u64 * h,
                len: seg_len,
            });
        }
    }

    /// Number of disk addressing operations (seeks) a read of the region
    /// incurs: one per non-adjacent segment.
    pub fn seek_count(&self, region: &RegionRect) -> usize {
        if region.is_empty() {
            0
        } else if region.width() == self.mesh.nx() {
            1
        } else {
            region.height()
        }
    }

    /// Total bytes a read of the region transfers.
    pub fn region_bytes(&self, region: &RegionRect) -> u64 {
        region.npoints() as u64 * self.bytes_per_point
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridPoint;

    fn layout() -> FileLayout {
        FileLayout::new(Mesh::new(8, 4), 16)
    }

    #[test]
    fn file_size_and_offsets() {
        let l = layout();
        assert_eq!(l.file_size(), 8 * 4 * 16);
        assert_eq!(l.offset_of(GridPoint { ix: 0, iy: 0 }), 0);
        assert_eq!(l.offset_of(GridPoint { ix: 3, iy: 2 }), (2 * 8 + 3) * 16);
    }

    #[test]
    fn full_width_region_is_single_segment() {
        let l = layout();
        let bar = RegionRect::new(0, 8, 1, 3);
        let segs = l.segments(&bar);
        assert_eq!(segs.len(), 1);
        assert_eq!(
            segs[0],
            ByteSegment {
                offset: 8 * 16,
                len: 2 * 8 * 16
            }
        );
        assert_eq!(l.seek_count(&bar), 1);
    }

    #[test]
    fn partial_width_region_is_one_segment_per_row() {
        let l = layout();
        let block = RegionRect::new(2, 5, 1, 4);
        let segs = l.segments(&block);
        assert_eq!(segs.len(), 3);
        for (k, seg) in segs.iter().enumerate() {
            assert_eq!(seg.offset, ((1 + k as u64) * 8 + 2) * 16);
            assert_eq!(seg.len, 3 * 16);
        }
        assert_eq!(l.seek_count(&block), 3);
    }

    #[test]
    fn segment_bytes_sum_to_region_bytes() {
        let l = layout();
        let r = RegionRect::new(1, 7, 0, 4);
        let total: u64 = l.segments(&r).iter().map(|s| s.len).sum();
        assert_eq!(total, l.region_bytes(&r));
    }

    #[test]
    fn empty_region_has_no_segments() {
        let l = layout();
        let r = RegionRect::new(3, 3, 0, 4);
        assert!(l.segments(&r).is_empty());
        assert_eq!(l.seek_count(&r), 0);
    }

    #[test]
    fn whole_file_is_one_segment() {
        let l = layout();
        let segs = l.segments(&RegionRect::full(l.mesh()));
        assert_eq!(
            segs,
            vec![ByteSegment {
                offset: 0,
                len: l.file_size()
            }]
        );
    }

    #[test]
    fn seek_count_matches_segments() {
        let l = layout();
        for r in [
            RegionRect::new(0, 8, 0, 2),
            RegionRect::new(1, 4, 1, 3),
            RegionRect::new(0, 4, 0, 4),
        ] {
            assert_eq!(l.seek_count(&r), l.segments(&r).len());
        }
    }
}
