//! Domain decomposition, expansions, layers, bars and read-blocks.
//!
//! The mesh is split into `n_sdx × n_sdy` non-overlapping sub-domains
//! (§2.2); each sub-domain is further split into `L` latitude layers for the
//! multi-stage computation (§4.2). The bar-reading primitives (§4.1.2) are
//! full-longitude latitude bands: a *bar* is the band owned by one I/O
//! processor, a *small bar* is a bar restricted to one layer and expanded by
//! `η` so it carries everything the layer's local analyses need.

use crate::{LocalizationRadius, Mesh, RegionRect};
use serde::{Deserialize, Serialize};

/// Identifier of a sub-domain: `i` ∈ [0, n_sdx) along longitude,
/// `j` ∈ [0, n_sdy) along latitude — the paper's `D_{i,j}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubDomainId {
    /// Longitude block index.
    pub i: usize,
    /// Latitude block index.
    pub j: usize,
}

/// A validated `n_sdx × n_sdy` decomposition of a mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomposition {
    mesh: Mesh,
    nsdx: usize,
    nsdy: usize,
}

/// Errors constructing a decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompError {
    /// `nx` is not a multiple of `n_sdx`.
    LongitudeNotDivisible {
        /// Mesh longitude extent.
        nx: usize,
        /// Requested sub-domain count along longitude.
        nsdx: usize,
    },
    /// `ny` is not a multiple of `n_sdy`.
    LatitudeNotDivisible {
        /// Mesh latitude extent.
        ny: usize,
        /// Requested sub-domain count along latitude.
        nsdy: usize,
    },
    /// Sub-domain height is not a multiple of the requested layer count.
    LayersNotDivisible {
        /// Sub-domain height in grid rows.
        sub_height: usize,
        /// Requested layer count.
        layers: usize,
    },
}

impl std::fmt::Display for DecompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompError::LongitudeNotDivisible { nx, nsdx } => {
                write!(f, "nx = {nx} is not divisible by n_sdx = {nsdx}")
            }
            DecompError::LatitudeNotDivisible { ny, nsdy } => {
                write!(f, "ny = {ny} is not divisible by n_sdy = {nsdy}")
            }
            DecompError::LayersNotDivisible { sub_height, layers } => {
                write!(
                    f,
                    "sub-domain height {sub_height} is not divisible by L = {layers}"
                )
            }
        }
    }
}

impl std::error::Error for DecompError {}

impl Decomposition {
    /// Build a decomposition; the paper assumes `n_x` (resp. `n_y`) is a
    /// multiple of `n_sdx` (resp. `n_sdy`), and so do we.
    pub fn new(mesh: Mesh, nsdx: usize, nsdy: usize) -> Result<Self, DecompError> {
        if nsdx == 0 || !mesh.nx().is_multiple_of(nsdx) {
            return Err(DecompError::LongitudeNotDivisible {
                nx: mesh.nx(),
                nsdx,
            });
        }
        if nsdy == 0 || !mesh.ny().is_multiple_of(nsdy) {
            return Err(DecompError::LatitudeNotDivisible {
                ny: mesh.ny(),
                nsdy,
            });
        }
        Ok(Decomposition { mesh, nsdx, nsdy })
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Sub-domain count along longitude.
    pub fn nsdx(&self) -> usize {
        self.nsdx
    }

    /// Sub-domain count along latitude.
    pub fn nsdy(&self) -> usize {
        self.nsdy
    }

    /// Total sub-domain count `n_s = n_sdx · n_sdy`.
    pub fn num_subdomains(&self) -> usize {
        self.nsdx * self.nsdy
    }

    /// Sub-domain width `n_x / n_sdx` in grid columns.
    pub fn sub_width(&self) -> usize {
        self.mesh.nx() / self.nsdx
    }

    /// Sub-domain height `n_y / n_sdy` in grid rows.
    pub fn sub_height(&self) -> usize {
        self.mesh.ny() / self.nsdy
    }

    /// Points per sub-domain `n_sd = n / n_s`.
    pub fn points_per_subdomain(&self) -> usize {
        self.sub_width() * self.sub_height()
    }

    /// The rectangle of sub-domain `D_{i,j}`.
    pub fn subdomain(&self, id: SubDomainId) -> RegionRect {
        assert!(
            id.i < self.nsdx && id.j < self.nsdy,
            "sub-domain id out of range"
        );
        let w = self.sub_width();
        let h = self.sub_height();
        RegionRect::new(id.i * w, (id.i + 1) * w, id.j * h, (id.j + 1) * h)
    }

    /// The expansion `D̄_{i,j}`: the sub-domain plus its localization halo,
    /// clamped to the mesh.
    pub fn expansion(&self, id: SubDomainId, radius: LocalizationRadius) -> RegionRect {
        self.subdomain(id).expand(radius, self.mesh)
    }

    /// Iterate over all sub-domain ids in `(j, i)` row-priority order —
    /// ranks are conventionally assigned in this order.
    pub fn iter_ids(&self) -> impl Iterator<Item = SubDomainId> + '_ {
        let nsdx = self.nsdx;
        (0..self.num_subdomains()).map(move |k| SubDomainId {
            i: k % nsdx,
            j: k / nsdx,
        })
    }

    /// Linear rank of a sub-domain under the `(j, i)` ordering.
    pub fn rank_of(&self, id: SubDomainId) -> usize {
        id.j * self.nsdx + id.i
    }

    /// Inverse of [`Decomposition::rank_of`].
    pub fn id_of_rank(&self, rank: usize) -> SubDomainId {
        assert!(rank < self.num_subdomains(), "rank out of range");
        SubDomainId {
            i: rank % self.nsdx,
            j: rank / self.nsdx,
        }
    }

    /// Which sub-domain owns a grid point.
    pub fn owner_of(&self, p: crate::GridPoint) -> SubDomainId {
        debug_assert!(self.mesh.contains(p));
        SubDomainId {
            i: p.ix / self.sub_width(),
            j: p.iy / self.sub_height(),
        }
    }

    /// Validate a layer count `L` against the sub-domain height (the
    /// auto-tuner only proposes divisors, Algorithm 1 line 8).
    pub fn check_layers(&self, layers: usize) -> Result<(), DecompError> {
        if layers == 0 || !self.sub_height().is_multiple_of(layers) {
            return Err(DecompError::LayersNotDivisible {
                sub_height: self.sub_height(),
                layers,
            });
        }
        Ok(())
    }

    /// Layer `l` of sub-domain `D_{i,j}` (the paper's `D'_{i,j,l}`): the
    /// `l`-th of `L` equal latitude slices, `0 ≤ l < L`.
    pub fn layer(&self, id: SubDomainId, l: usize, layers: usize) -> RegionRect {
        self.check_layers(layers).expect("invalid layer count");
        assert!(l < layers, "layer index out of range");
        let sub = self.subdomain(id);
        let lh = sub.height() / layers;
        RegionRect::new(sub.x0, sub.x1, sub.y0 + l * lh, sub.y0 + (l + 1) * lh)
    }

    /// The data needed to update one layer: the layer expanded by the
    /// localization radius, clamped to the mesh.
    pub fn layer_expansion(
        &self,
        id: SubDomainId,
        l: usize,
        layers: usize,
        radius: LocalizationRadius,
    ) -> RegionRect {
        self.layer(id, l, layers).expand(radius, self.mesh)
    }

    /// The *bar* of latitude-block `j`: all longitudes, the sub-domain row
    /// band — contiguous on disk, readable with a single seek (§4.1.2).
    pub fn bar(&self, j: usize) -> RegionRect {
        assert!(j < self.nsdy, "bar index out of range");
        let h = self.sub_height();
        RegionRect::new(0, self.mesh.nx(), j * h, (j + 1) * h)
    }

    /// The *small bar* for latitude-block `j`, layer `l`: the bar restricted
    /// to the layer band and expanded by `η` (what an I/O processor reads per
    /// stage in the multi-stage workflow; Eq. 7's
    /// `(n_y/(n_sdy·L) + 2η) · n_x` points, minus boundary clamping).
    pub fn small_bar(
        &self,
        j: usize,
        l: usize,
        layers: usize,
        radius: LocalizationRadius,
    ) -> RegionRect {
        assert!(j < self.nsdy, "bar index out of range");
        self.check_layers(layers).expect("invalid layer count");
        assert!(l < layers, "layer index out of range");
        let h = self.sub_height();
        let lh = h / layers;
        let y0 = j * h + l * lh;
        let y1 = y0 + lh;
        RegionRect::new(
            0,
            self.mesh.nx(),
            y0.saturating_sub(radius.eta),
            (y1 + radius.eta).min(self.mesh.ny()),
        )
    }

    /// The *block* that sub-domain `(i, j)` needs out of a small bar: the
    /// layer expansion — what an I/O processor sends to compute rank `(i,j)`
    /// at one stage.
    pub fn block_of_small_bar(
        &self,
        id: SubDomainId,
        l: usize,
        layers: usize,
        radius: LocalizationRadius,
    ) -> RegionRect {
        let e = self.layer_expansion(id, l, layers, radius);
        debug_assert!(self.small_bar(id.j, l, layers, radius).contains_rect(&e));
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridPoint;

    fn decomp() -> Decomposition {
        Decomposition::new(Mesh::new(24, 12), 4, 3).unwrap()
    }

    #[test]
    fn divisibility_is_enforced() {
        let mesh = Mesh::new(10, 9);
        assert!(matches!(
            Decomposition::new(mesh, 3, 3),
            Err(DecompError::LongitudeNotDivisible { .. })
        ));
        assert!(matches!(
            Decomposition::new(mesh, 5, 4),
            Err(DecompError::LatitudeNotDivisible { .. })
        ));
        assert!(Decomposition::new(mesh, 5, 3).is_ok());
        assert!(matches!(
            Decomposition::new(mesh, 0, 3),
            Err(DecompError::LongitudeNotDivisible { .. })
        ));
    }

    #[test]
    fn subdomains_partition_the_mesh() {
        let d = decomp();
        let mut seen = vec![0u32; d.mesh().n()];
        for id in d.iter_ids() {
            for p in d.subdomain(id).iter_points() {
                seen[d.mesh().index(p)] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "every point covered exactly once"
        );
    }

    #[test]
    fn expansion_contains_subdomain() {
        let d = decomp();
        let r = LocalizationRadius { xi: 2, eta: 1 };
        for id in d.iter_ids() {
            assert!(d.expansion(id, r).contains_rect(&d.subdomain(id)));
        }
    }

    #[test]
    fn interior_expansion_has_nominal_size() {
        let d = decomp();
        let r = LocalizationRadius { xi: 2, eta: 1 };
        let e = d.expansion(SubDomainId { i: 1, j: 1 }, r);
        assert_eq!(e.width(), d.sub_width() + 2 * r.xi);
        assert_eq!(e.height(), d.sub_height() + 2 * r.eta);
    }

    #[test]
    fn rank_ordering_roundtrips() {
        let d = decomp();
        for (k, id) in d.iter_ids().enumerate() {
            assert_eq!(d.rank_of(id), k);
            assert_eq!(d.id_of_rank(k), id);
        }
    }

    #[test]
    fn owner_of_matches_subdomain_membership() {
        let d = decomp();
        for p in d.mesh().iter_points() {
            let id = d.owner_of(p);
            assert!(d.subdomain(id).contains(p));
        }
    }

    #[test]
    fn layers_partition_subdomain() {
        let d = decomp();
        let id = SubDomainId { i: 2, j: 1 };
        let sub = d.subdomain(id);
        let layers = 2;
        let mut count = 0;
        for l in 0..layers {
            let lay = d.layer(id, l, layers);
            assert!(sub.contains_rect(&lay));
            count += lay.npoints();
        }
        assert_eq!(count, sub.npoints());
    }

    #[test]
    fn invalid_layer_count_rejected() {
        let d = decomp(); // sub_height = 4
        assert!(d.check_layers(3).is_err());
        assert!(d.check_layers(0).is_err());
        assert!(d.check_layers(4).is_ok());
    }

    #[test]
    fn bars_are_full_width_and_partition_latitude() {
        let d = decomp();
        let mut rows = 0;
        for j in 0..d.nsdy() {
            let b = d.bar(j);
            assert_eq!(b.width(), d.mesh().nx());
            rows += b.height();
        }
        assert_eq!(rows, d.mesh().ny());
    }

    #[test]
    fn small_bar_covers_every_block_of_its_layer() {
        let d = decomp();
        let r = LocalizationRadius { xi: 3, eta: 1 };
        let layers = 2;
        for j in 0..d.nsdy() {
            for l in 0..layers {
                let sb = d.small_bar(j, l, layers, r);
                for i in 0..d.nsdx() {
                    let blk = d.block_of_small_bar(SubDomainId { i, j }, l, layers, r);
                    assert!(
                        sb.contains_rect(&blk),
                        "small bar must contain block (i={i})"
                    );
                }
            }
        }
    }

    #[test]
    fn layer_expansion_contains_layer() {
        let d = decomp();
        let r = LocalizationRadius { xi: 1, eta: 2 };
        let id = SubDomainId { i: 0, j: 2 };
        for l in 0..2 {
            assert!(d
                .layer_expansion(id, l, 2, r)
                .contains_rect(&d.layer(id, l, 2)));
        }
    }

    #[test]
    fn owner_of_boundary_points() {
        let d = decomp();
        assert_eq!(
            d.owner_of(GridPoint { ix: 0, iy: 0 }),
            SubDomainId { i: 0, j: 0 }
        );
        assert_eq!(
            d.owner_of(GridPoint { ix: 23, iy: 11 }),
            SubDomainId { i: 3, j: 2 }
        );
        assert_eq!(
            d.owner_of(GridPoint { ix: 6, iy: 4 }),
            SubDomainId { i: 1, j: 1 }
        );
    }
}
