//! The latitude–longitude mesh and its flat indexing.

use serde::{Deserialize, Serialize};

/// A 2-D latitude–longitude mesh with `nx` points along longitude and `ny`
/// points along latitude (`n = nx · ny` model components per level).
///
/// Flat index convention (row-priority, rows = latitude lines):
/// `index(p) = p.iy * nx + p.ix`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    nx: usize,
    ny: usize,
}

/// A grid point: `ix` ∈ [0, nx) along longitude, `iy` ∈ [0, ny) along
/// latitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridPoint {
    /// Longitude index.
    pub ix: usize,
    /// Latitude index.
    pub iy: usize,
}

impl Mesh {
    /// Create a mesh; both extents must be positive.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "mesh extents must be positive");
        Mesh { nx, ny }
    }

    /// The paper's evaluation mesh: 0.1° resolution, `3600 × 1800`.
    pub fn paper_ocean() -> Self {
        Mesh::new(3600, 1800)
    }

    /// Points along longitude.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Points along latitude.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of model components `n = nx · ny`.
    #[inline]
    pub fn n(&self) -> usize {
        self.nx * self.ny
    }

    /// Flat index of a point (row-priority by latitude line).
    #[inline]
    pub fn index(&self, p: GridPoint) -> usize {
        debug_assert!(self.contains(p), "point out of mesh bounds");
        p.iy * self.nx + p.ix
    }

    /// Inverse of [`Mesh::index`].
    #[inline]
    pub fn point(&self, index: usize) -> GridPoint {
        debug_assert!(index < self.n(), "flat index out of bounds");
        GridPoint {
            ix: index % self.nx,
            iy: index / self.nx,
        }
    }

    /// Whether the point lies inside the mesh.
    #[inline]
    pub fn contains(&self, p: GridPoint) -> bool {
        p.ix < self.nx && p.iy < self.ny
    }

    /// Iterate over all points in storage (row-priority) order.
    pub fn iter_points(&self) -> impl Iterator<Item = GridPoint> + '_ {
        (0..self.n()).map(|i| self.point(i))
    }

    /// Chebyshev-style anisotropic distance used by the local box test:
    /// `q` is inside the box of `p` iff `|Δx| ≤ ξ` and `|Δy| ≤ η`.
    pub fn in_local_box(
        &self,
        p: GridPoint,
        q: GridPoint,
        radius: crate::LocalizationRadius,
    ) -> bool {
        p.ix.abs_diff(q.ix) <= radius.xi && p.iy.abs_diff(q.iy) <= radius.eta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalizationRadius;

    #[test]
    fn index_roundtrip() {
        let m = Mesh::new(7, 5);
        for i in 0..m.n() {
            assert_eq!(m.index(m.point(i)), i);
        }
    }

    #[test]
    fn latitude_lines_are_contiguous() {
        let m = Mesh::new(10, 4);
        let a = m.index(GridPoint { ix: 0, iy: 2 });
        let b = m.index(GridPoint { ix: 9, iy: 2 });
        assert_eq!(b - a, 9, "one latitude line spans consecutive flat indices");
    }

    #[test]
    fn paper_mesh_size() {
        let m = Mesh::paper_ocean();
        assert_eq!(m.n(), 3600 * 1800);
    }

    #[test]
    fn local_box_membership() {
        let m = Mesh::new(20, 20);
        let r = LocalizationRadius { xi: 4, eta: 2 };
        let c = GridPoint { ix: 10, iy: 10 };
        assert!(m.in_local_box(c, GridPoint { ix: 14, iy: 12 }, r));
        assert!(!m.in_local_box(c, GridPoint { ix: 15, iy: 10 }, r));
        assert!(!m.in_local_box(c, GridPoint { ix: 10, iy: 13 }, r));
    }

    #[test]
    fn iter_points_visits_all_once() {
        let m = Mesh::new(3, 4);
        let pts: Vec<_> = m.iter_points().collect();
        assert_eq!(pts.len(), 12);
        assert_eq!(pts[0], GridPoint { ix: 0, iy: 0 });
        assert_eq!(pts[11], GridPoint { ix: 2, iy: 3 });
    }

    #[test]
    #[should_panic(expected = "mesh extents must be positive")]
    fn zero_extent_rejected() {
        Mesh::new(0, 5);
    }
}
