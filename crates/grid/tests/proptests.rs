//! Property-based tests for the grid geometry invariants the parallel
//! implementations rely on.

use enkf_grid::{
    Decomposition, FileLayout, LocalizationRadius, Mesh, ObsIndex, ObservationNetwork, RegionRect,
};
use proptest::prelude::*;

/// A mesh whose extents have useful divisors.
fn mesh_strategy() -> impl Strategy<Value = Mesh> {
    (1usize..=6, 1usize..=6, 1usize..=6, 1usize..=6)
        .prop_map(|(a, b, c, d)| Mesh::new(a * b * 4, c * d * 4))
}

fn decomp_strategy() -> impl Strategy<Value = Decomposition> {
    mesh_strategy().prop_flat_map(|mesh| {
        let divx: Vec<usize> = (1..=mesh.nx()).filter(|d| mesh.nx() % d == 0).collect();
        let divy: Vec<usize> = (1..=mesh.ny()).filter(|d| mesh.ny() % d == 0).collect();
        (
            proptest::sample::select(divx),
            proptest::sample::select(divy),
        )
            .prop_map(move |(sx, sy)| Decomposition::new(mesh, sx, sy).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flat_index_roundtrips(mesh in mesh_strategy(), k in any::<usize>()) {
        let idx = k % mesh.n();
        prop_assert_eq!(mesh.index(mesh.point(idx)), idx);
    }

    #[test]
    fn subdomains_partition(decomp in decomp_strategy()) {
        let mut covered = vec![false; decomp.mesh().n()];
        for id in decomp.iter_ids() {
            for p in decomp.subdomain(id).iter_points() {
                let idx = decomp.mesh().index(p);
                prop_assert!(!covered[idx], "point covered twice");
                covered[idx] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "every point covered");
    }

    #[test]
    fn owner_is_consistent_with_subdomain(decomp in decomp_strategy(), k in any::<usize>()) {
        let p = decomp.mesh().point(k % decomp.mesh().n());
        let owner = decomp.owner_of(p);
        prop_assert!(decomp.subdomain(owner).contains(p));
    }

    #[test]
    fn expansion_contains_halo(
        decomp in decomp_strategy(),
        xi in 0usize..5,
        eta in 0usize..5,
    ) {
        let radius = LocalizationRadius { xi, eta };
        for id in decomp.iter_ids() {
            let sub = decomp.subdomain(id);
            let exp = decomp.expansion(id, radius);
            prop_assert!(exp.contains_rect(&sub));
            // Every point within the radius of a subdomain point is inside
            // the expansion (clamped to the mesh).
            for p in sub.iter_points() {
                let single = RegionRect::new(p.ix, p.ix + 1, p.iy, p.iy + 1);
                let b = single.expand(radius, decomp.mesh());
                prop_assert!(exp.contains_rect(&b), "box of {p:?} escapes expansion");
            }
        }
    }

    #[test]
    fn layers_partition_each_subdomain(decomp in decomp_strategy(), lseed in any::<u64>()) {
        let sub_h = decomp.sub_height();
        let divisors: Vec<usize> = (1..=sub_h).filter(|l| sub_h.is_multiple_of(*l)).collect();
        let layers = divisors[(lseed as usize) % divisors.len()];
        for id in decomp.iter_ids() {
            let sub = decomp.subdomain(id);
            let mut count = 0;
            let mut prev_end = sub.y0;
            for l in 0..layers {
                let lay = decomp.layer(id, l, layers);
                prop_assert_eq!(lay.y0, prev_end, "layers tile in order");
                prev_end = lay.y1;
                prop_assert!(sub.contains_rect(&lay));
                count += lay.npoints();
            }
            prop_assert_eq!(prev_end, sub.y1);
            prop_assert_eq!(count, sub.npoints());
        }
    }

    #[test]
    fn small_bar_contains_all_its_blocks(
        decomp in decomp_strategy(),
        xi in 0usize..4,
        eta in 0usize..4,
        lseed in any::<u64>(),
    ) {
        let radius = LocalizationRadius { xi, eta };
        let sub_h = decomp.sub_height();
        let divisors: Vec<usize> = (1..=sub_h).filter(|l| sub_h.is_multiple_of(*l)).collect();
        let layers = divisors[(lseed as usize) % divisors.len()];
        for j in 0..decomp.nsdy() {
            for l in 0..layers {
                let bar = decomp.small_bar(j, l, layers, radius);
                for i in 0..decomp.nsdx() {
                    let id = enkf_grid::SubDomainId { i, j };
                    let block = decomp.block_of_small_bar(id, l, layers, radius);
                    prop_assert!(bar.contains_rect(&block));
                }
            }
        }
    }

    #[test]
    fn segments_cover_region_bytes_exactly(
        decomp in decomp_strategy(),
        h in 1u64..=5,
        xi in 0usize..4,
        eta in 0usize..4,
    ) {
        let mesh = decomp.mesh();
        let layout = FileLayout::new(mesh, h * 8);
        let radius = LocalizationRadius { xi, eta };
        for id in decomp.iter_ids() {
            let region = decomp.expansion(id, radius);
            let segs = layout.segments(&region);
            // Total bytes match; segments are disjoint, ordered, in-file.
            let total: u64 = segs.iter().map(|s| s.len).sum();
            prop_assert_eq!(total, layout.region_bytes(&region));
            for w in segs.windows(2) {
                prop_assert!(w[0].offset + w[0].len < w[1].offset + w[1].len);
                prop_assert!(w[0].offset + w[0].len <= w[1].offset, "segments overlap");
            }
            if let Some(last) = segs.last() {
                prop_assert!(last.offset + last.len <= layout.file_size());
            }
            prop_assert_eq!(segs.len(), layout.seek_count(&region));
        }
    }

    #[test]
    fn local_indices_are_bijective(decomp in decomp_strategy()) {
        for id in decomp.iter_ids() {
            let sub = decomp.subdomain(id);
            let mut seen = vec![false; sub.npoints()];
            for p in sub.iter_points() {
                let li = sub.local_index(p);
                prop_assert!(!seen[li]);
                seen[li] = true;
                prop_assert_eq!(sub.point_at(li), p);
            }
        }
    }

    #[test]
    fn rank_mapping_roundtrips(decomp in decomp_strategy()) {
        for rank in 0..decomp.num_subdomains() {
            prop_assert_eq!(decomp.rank_of(decomp.id_of_rank(rank)), rank);
        }
    }

    #[test]
    fn obs_index_matches_linear_scan_on_random_networks(
        mesh in mesh_strategy(),
        mask in proptest::collection::vec(any::<bool>(), 1..400),
        cell in 1usize..9,
        rect in (any::<usize>(), any::<usize>(), any::<usize>(), any::<usize>()),
    ) {
        // A random sparse network: keep point k iff mask[k % mask.len()].
        let points: Vec<_> = RegionRect::full(mesh)
            .iter_points()
            .enumerate()
            .filter(|(k, _)| mask[k % mask.len()])
            .map(|(_, p)| p)
            .collect();
        let net = ObservationNetwork::from_points(mesh, points);
        let index = ObsIndex::build(&net, cell);
        // A random (possibly empty) region inside the mesh, plus the edge
        // cases: empty and full-mesh.
        let x0 = rect.0 % (mesh.nx() + 1);
        let x1 = x0 + rect.1 % (mesh.nx() + 1 - x0);
        let y0 = rect.2 % (mesh.ny() + 1);
        let y1 = y0 + rect.3 % (mesh.ny() + 1 - y0);
        for region in [
            RegionRect::new(x0, x1, y0, y1),
            RegionRect::new(x0, x0, y0, y1),
            RegionRect::full(mesh),
        ] {
            prop_assert_eq!(index.indices_in(&region), net.indices_in(&region));
        }
    }
}
