//! Property-based tests for the synthetic-data substrate.

use enkf_data::{read_ensemble, write_ensemble, AdvectionDiffusion, ScenarioBuilder};
use enkf_grid::{FileLayout, Mesh};
use enkf_pfs::{FileStore, ScratchDir};
use proptest::prelude::*;

fn mesh_strategy() -> impl Strategy<Value = Mesh> {
    (4usize..24, 4usize..16).prop_map(|(nx, ny)| Mesh::new(nx, ny))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scenario_is_deterministic_and_consistent(
        mesh in mesh_strategy(),
        members in 2usize..10,
        seed in any::<u64>(),
    ) {
        let a = ScenarioBuilder::new(mesh).members(members).seed(seed).build();
        let b = ScenarioBuilder::new(mesh).members(members).seed(seed).build();
        prop_assert_eq!(a.ensemble.states(), b.ensemble.states());
        prop_assert_eq!(&a.truth, &b.truth);
        prop_assert_eq!(a.observations.values(), b.observations.values());
        prop_assert_eq!(a.ensemble.size(), members);
        prop_assert_eq!(a.truth.len(), mesh.n());
        prop_assert!(a.rmse_background() > 0.0);
    }

    #[test]
    fn file_roundtrip_is_bit_exact(
        mesh in mesh_strategy(),
        members in 2usize..6,
        levels in 1u64..4,
        seed in any::<u64>(),
    ) {
        let scenario = ScenarioBuilder::new(mesh).members(members).seed(seed).build();
        let scratch = ScratchDir::new("data-prop").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8 * levels)).unwrap();
        write_ensemble(&store, &scenario.ensemble).unwrap();
        let back = read_ensemble(&store, members).unwrap();
        prop_assert_eq!(back.states(), scenario.ensemble.states());
    }

    #[test]
    fn advection_diffusion_is_stable_and_mass_conserving(
        mesh in mesh_strategy(),
        u in -0.8f64..0.8,
        kappa in 0.0f64..0.1,
        steps in 1usize..20,
        seed in any::<u64>(),
    ) {
        let dynamics = AdvectionDiffusion { u, v: 0.0, kappa, dt: 0.5 };
        prop_assume!(dynamics.stability_number() < 1.0);
        let scenario = ScenarioBuilder::new(mesh).members(2).seed(seed).build();
        let before: f64 = scenario.truth.iter().sum();
        let max_before = scenario.truth.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let after_field = dynamics.integrate(mesh, &scenario.truth, steps);
        let after: f64 = after_field.iter().sum();
        // Mass conservation (periodic x, zero-gradient y, v = 0).
        prop_assert!((before - after).abs() < 1e-6 * (1.0 + before.abs()), "{before} vs {after}");
        // Upwind + diffusion never amplifies the max norm.
        let max_after = after_field.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        prop_assert!(max_after <= max_before * (1.0 + 1e-9), "{max_before} -> {max_after}");
    }

    #[test]
    fn observation_values_sit_on_the_truth_up_to_noise(
        mesh in mesh_strategy(),
        seed in any::<u64>(),
    ) {
        let std = 0.05;
        let scenario = ScenarioBuilder::new(mesh)
            .members(4)
            .obs_noise_std(std)
            .observation_stride(2)
            .seed(seed)
            .build();
        let op = scenario.observations.operator();
        let truth_at_obs = op.apply(&scenario.truth);
        for (obs, truth) in scenario.observations.values().iter().zip(&truth_at_obs) {
            prop_assert!((obs - truth).abs() < 6.0 * std, "{obs} vs {truth}");
        }
    }
}
