//! A 2-D advection–diffusion forward model.
//!
//! The paper's background ensembles come "from a long-time ocean model
//! integration"; this module provides the smallest dynamical core that
//! plays that role in cycled twin experiments: zonal advection (periodic in
//! longitude, like an ocean basin ring) plus diffusion, integrated with a
//! first-order upwind / explicit scheme under a CFL guard. It is *not* an
//! ocean model — it is the forecast operator that lets the assimilation
//! cycle (forecast → assimilate → forecast …) be exercised end to end.

use enkf_core::Ensemble;
use enkf_grid::{GridPoint, Mesh};
use enkf_linalg::{GaussianSampler, Matrix};
use rand::Rng;

/// Advection–diffusion dynamics on a mesh.
///
/// `∂q/∂t + u ∂q/∂x + v ∂q/∂y = κ ∇²q`, discretized with upwind advection
/// and centered diffusion; periodic in `x` (longitude), zero-gradient in
/// `y` (latitude walls).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdvectionDiffusion {
    /// Zonal velocity in grid cells per unit time (may be negative).
    pub u: f64,
    /// Meridional velocity in grid cells per unit time.
    pub v: f64,
    /// Diffusivity in grid-cell² per unit time.
    pub kappa: f64,
    /// Time step.
    pub dt: f64,
}

impl AdvectionDiffusion {
    /// A stable default: eastward drift with weak diffusion.
    pub fn gentle_drift() -> Self {
        AdvectionDiffusion {
            u: 0.8,
            v: 0.1,
            kappa: 0.05,
            dt: 0.5,
        }
    }

    /// The CFL-style stability number; must stay below 1.
    pub fn stability_number(&self) -> f64 {
        (self.u.abs() + self.v.abs()) * self.dt + 4.0 * self.kappa * self.dt
    }

    /// Advance one field by one time step.
    pub fn step(&self, mesh: Mesh, field: &[f64]) -> Vec<f64> {
        assert_eq!(field.len(), mesh.n(), "field length mismatch");
        assert!(
            self.stability_number() < 1.0,
            "unstable configuration (CFL)"
        );
        let (nx, ny) = (mesh.nx(), mesh.ny());
        let idx = |ix: usize, iy: usize| mesh.index(GridPoint { ix, iy });
        let mut out = vec![0.0; field.len()];
        for iy in 0..ny {
            // Zero-gradient walls in latitude.
            let up = if iy + 1 < ny { iy + 1 } else { iy };
            let down = iy.saturating_sub(1);
            for ix in 0..nx {
                let left = (ix + nx - 1) % nx;
                let right = (ix + 1) % nx;
                let q = field[idx(ix, iy)];
                let qe = field[idx(right, iy)];
                let qw = field[idx(left, iy)];
                let qn = field[idx(ix, up)];
                let qs = field[idx(ix, down)];
                // Upwind advection.
                let adv_x = if self.u >= 0.0 {
                    self.u * (q - qw)
                } else {
                    self.u * (qe - q)
                };
                let adv_y = if self.v >= 0.0 {
                    self.v * (q - qs)
                } else {
                    self.v * (qn - q)
                };
                let lap = qe + qw + qn + qs - 4.0 * q;
                out[idx(ix, iy)] = q + self.dt * (-adv_x - adv_y + self.kappa * lap);
            }
        }
        out
    }

    /// Advance a field by `steps` time steps.
    pub fn integrate(&self, mesh: Mesh, field: &[f64], steps: usize) -> Vec<f64> {
        let mut q = field.to_vec();
        for _ in 0..steps {
            q = self.step(mesh, &q);
        }
        q
    }

    /// Advance every member of an ensemble by `steps`, adding independent
    /// model-error noise of standard deviation `model_error_std` per member
    /// afterwards (the stochastic forcing that keeps cycled ensembles from
    /// collapsing).
    pub fn forecast_ensemble<R: Rng + ?Sized>(
        &self,
        ensemble: &Ensemble,
        steps: usize,
        model_error_std: f64,
        rng: &mut R,
    ) -> Ensemble {
        let mesh = ensemble.mesh();
        let mut gs = GaussianSampler::new();
        let mut states = Matrix::zeros(mesh.n(), ensemble.size());
        for k in 0..ensemble.size() {
            let advanced = self.integrate(mesh, &ensemble.member(k), steps);
            for (i, &v) in advanced.iter().enumerate() {
                let noise = if model_error_std > 0.0 {
                    model_error_std * gs.sample(rng)
                } else {
                    0.0
                };
                states[(i, k)] = v + noise;
            }
        }
        Ensemble::new(mesh, states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mesh() -> Mesh {
        Mesh::new(16, 8)
    }

    #[test]
    fn constant_field_is_a_fixed_point() {
        let m = mesh();
        let dyn_ = AdvectionDiffusion::gentle_drift();
        let q = vec![3.5; m.n()];
        let next = dyn_.step(m, &q);
        for v in next {
            assert!((v - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_is_conserved_by_advection() {
        // Pure advection (periodic x, v=0): the field sum is invariant.
        let m = mesh();
        let dyn_ = AdvectionDiffusion {
            u: 0.6,
            v: 0.0,
            kappa: 0.0,
            dt: 0.5,
        };
        let q: Vec<f64> = (0..m.n()).map(|i| (i as f64 * 0.7).sin()).collect();
        let before: f64 = q.iter().sum();
        let after: f64 = dyn_.integrate(m, &q, 10).iter().sum();
        assert!((before - after).abs() < 1e-9, "{before} vs {after}");
    }

    #[test]
    fn diffusion_damps_extremes() {
        let m = mesh();
        let dyn_ = AdvectionDiffusion {
            u: 0.0,
            v: 0.0,
            kappa: 0.2,
            dt: 0.5,
        };
        let mut q = vec![0.0; m.n()];
        q[m.index(GridPoint { ix: 8, iy: 4 })] = 10.0;
        let out = dyn_.integrate(m, &q, 20);
        let max = out.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(max < 5.0, "peak should have diffused, max {max}");
        // Diffusion with Neumann walls conserves total mass too.
        assert!((out.iter().sum::<f64>() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn advection_moves_a_blob_eastward() {
        let m = Mesh::new(32, 4);
        let dyn_ = AdvectionDiffusion {
            u: 1.0,
            v: 0.0,
            kappa: 0.0,
            dt: 0.5,
        };
        let mut q = vec![0.0; m.n()];
        q[m.index(GridPoint { ix: 4, iy: 2 })] = 1.0;
        // 16 steps at u·dt = 0.5 cells/step → ~8 cells east.
        let out = dyn_.integrate(m, &q, 16);
        let centroid: f64 = {
            let total: f64 = out.iter().sum();
            m.iter_points()
                .map(|p| p.ix as f64 * out[m.index(p)])
                .sum::<f64>()
                / total
        };
        assert!(
            centroid > 6.0,
            "centroid {centroid} should have moved east of 4"
        );
    }

    #[test]
    #[should_panic(expected = "unstable configuration")]
    fn cfl_guard_trips() {
        let m = mesh();
        let dyn_ = AdvectionDiffusion {
            u: 3.0,
            v: 0.0,
            kappa: 0.0,
            dt: 1.0,
        };
        dyn_.step(m, &vec![0.0; m.n()]);
    }

    #[test]
    fn forecast_ensemble_without_noise_is_deterministic() {
        let m = mesh();
        let dyn_ = AdvectionDiffusion::gentle_drift();
        let scen = crate::ScenarioBuilder::new(m).members(4).seed(1).build();
        let mut rng = StdRng::seed_from_u64(0);
        let a = dyn_.forecast_ensemble(&scen.ensemble, 3, 0.0, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(99);
        let b = dyn_.forecast_ensemble(&scen.ensemble, 3, 0.0, &mut rng2);
        assert_eq!(a.states(), b.states());
        assert_ne!(a.states(), scen.ensemble.states(), "dynamics must act");
    }

    #[test]
    fn model_error_widens_the_ensemble() {
        let m = mesh();
        let dyn_ = AdvectionDiffusion::gentle_drift();
        let scen = crate::ScenarioBuilder::new(m).members(8).seed(2).build();
        let mut rng = StdRng::seed_from_u64(5);
        let quiet = dyn_.forecast_ensemble(&scen.ensemble, 2, 0.0, &mut rng);
        let mut rng = StdRng::seed_from_u64(5);
        let noisy = dyn_.forecast_ensemble(&scen.ensemble, 2, 0.5, &mut rng);
        let spread = |e: &Ensemble| e.anomalies().frobenius_norm();
        assert!(spread(&noisy) > spread(&quiet));
    }
}
