//! Cycled twin experiments: forecast → observe → assimilate, repeated.
//!
//! Data assimilation earns its keep over *cycles*: each analysis becomes
//! the initial condition of the next forecast (the paper's opening
//! motivation — "providing initial conditions of numerical atmospheric and
//! oceanic models"). This harness runs a twin experiment where a truth
//! trajectory evolves under [`crate::AdvectionDiffusion`] dynamics, noisy
//! observations of the truth arrive every cycle, and a caller-supplied
//! analysis operator (serial EnKF, LETKF, or a full parallel variant)
//! produces the next background. A free-running (never-assimilating)
//! ensemble is tracked as the control.

use crate::dynamics::AdvectionDiffusion;
use crate::field::SmoothFieldGenerator;
use enkf_core::{Ensemble, ObservationOperator, Observations, PerturbedObservations};
use enkf_grid::{Mesh, ObservationNetwork};
use enkf_linalg::{GaussianSampler, Matrix};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;

/// An [`StdRng`] that counts its raw draws. The count is the experiment's
/// **RNG cursor**: persisting it in a checkpoint and replaying that many
/// draws after reseeding reconstructs the generator state bit-exactly, so a
/// resumed campaign continues the *same* random sequence an uninterrupted
/// run would have used (every derived draw — uniforms, Gaussians including
/// rejection loops — is a deterministic function of the `next_u64` stream).
#[derive(Debug, Clone)]
struct CountingRng {
    inner: StdRng,
    draws: u64,
}

impl CountingRng {
    fn seed_from_u64(seed: u64) -> Self {
        CountingRng {
            inner: StdRng::seed_from_u64(seed),
            draws: 0,
        }
    }
}

impl RngCore for CountingRng {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// Configuration of a cycled twin experiment.
#[derive(Debug, Clone, Copy)]
pub struct CycleConfig {
    /// Forecast model.
    pub dynamics: AdvectionDiffusion,
    /// Model steps between consecutive analyses.
    pub steps_per_cycle: usize,
    /// Observation network stride.
    pub obs_stride: usize,
    /// Observation error standard deviation.
    pub obs_noise_std: f64,
    /// Stochastic model error added to each forecast member per cycle.
    pub model_error_std: f64,
}

impl Default for CycleConfig {
    fn default() -> Self {
        CycleConfig {
            dynamics: AdvectionDiffusion::gentle_drift(),
            steps_per_cycle: 4,
            obs_stride: 2,
            obs_noise_std: 0.1,
            model_error_std: 0.05,
        }
    }
}

/// Per-cycle error statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleStats {
    /// 0-based cycle index.
    pub cycle: usize,
    /// RMSE of the forecast (background) mean before assimilation.
    pub forecast_rmse: f64,
    /// RMSE of the analysis mean after assimilation.
    pub analysis_rmse: f64,
    /// RMSE of the free-running control ensemble mean.
    pub free_run_rmse: f64,
}

/// The resumable state of a [`CycledExperiment`] at a cycle boundary —
/// everything [`CycledExperiment::restore`] needs to reconstruct the
/// experiment bit-exactly. Produced by [`CycledExperiment::snapshot`];
/// checkpoint layers persist it to disk.
///
/// The fields are `Arc`-backed shared views, not deep copies: the
/// experiment replaces its state wholesale each cycle (copy-on-write by
/// construction), so a snapshot is O(1) refcount bumps. This is what lets
/// an asynchronous checkpoint writer hold the cycle-k state while cycle
/// k+1 computes, without doubling memory or stalling the supervisor.
#[derive(Debug, Clone)]
pub struct CycleState {
    /// Completed cycles (the next cycle to run).
    pub cycle: usize,
    /// Raw draws consumed from the experiment's RNG since seeding.
    pub rng_cursor: u64,
    /// Truth trajectory state.
    pub truth: Arc<Vec<f64>>,
    /// Background ensemble (the previous cycle's analysis).
    pub background: Arc<Ensemble>,
    /// Free-running control ensemble.
    pub free_run: Arc<Ensemble>,
}

/// A running cycled experiment.
///
/// The state fields are `Arc`-wrapped and only ever *replaced* (never
/// mutated in place) by [`CycledExperiment::run_cycle`], so
/// [`CycledExperiment::snapshot`] is O(1) and outstanding snapshots stay
/// bit-stable while the experiment advances.
pub struct CycledExperiment {
    mesh: Mesh,
    config: CycleConfig,
    truth: Arc<Vec<f64>>,
    background: Arc<Ensemble>,
    free_run: Arc<Ensemble>,
    rng: CountingRng,
    cycle: usize,
    seed: u64,
}

impl CycledExperiment {
    /// Initialize from a seed: truth and initial ensembles are smooth
    /// random fields; the ensemble starts biased off the truth.
    pub fn new(mesh: Mesh, members: usize, config: CycleConfig, seed: u64) -> Self {
        let mut rng = CountingRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xDA3E);
        let mut gs = GaussianSampler::new();
        let gen = SmoothFieldGenerator {
            max_wavenumber: 2,
            ..Default::default()
        };
        let truth = gen.generate(mesh, &mut rng);
        let members_vec: Vec<Vec<f64>> = (0..members)
            .map(|_| {
                let err = gen.generate(mesh, &mut rng);
                truth
                    .iter()
                    .zip(&err)
                    .map(|(&t, &e)| t + 0.4 + e + 0.1 * gs.sample(&mut rng))
                    .collect()
            })
            .collect();
        let states = Matrix::from_fn(mesh.n(), members, |i, k| members_vec[k][i]);
        let background = Arc::new(Ensemble::new(mesh, states));
        let free_run = background.clone();
        CycledExperiment {
            mesh,
            config,
            truth: Arc::new(truth),
            background,
            free_run,
            rng,
            cycle: 0,
            seed,
        }
    }

    /// Reconstruct an experiment from a [`CycleState`] snapshot.
    ///
    /// `members` must be the member count the experiment was *originally*
    /// constructed with (the state's ensembles may be smaller after a
    /// degraded cycle): initialization replays the same draws, and the RNG
    /// is then fast-forwarded to the snapshot's cursor. The reconstruction
    /// is bit-exact — continuing from a restored experiment produces the
    /// same fields, observations and statistics an uninterrupted run would.
    pub fn restore(
        mesh: Mesh,
        members: usize,
        config: CycleConfig,
        seed: u64,
        state: CycleState,
    ) -> Self {
        let mut exp = Self::new(mesh, members, config, seed);
        assert!(
            exp.rng.draws <= state.rng_cursor,
            "snapshot cursor {} precedes initialization ({} draws)",
            state.rng_cursor,
            exp.rng.draws
        );
        while exp.rng.draws < state.rng_cursor {
            exp.rng.next_u64();
        }
        exp.truth = state.truth;
        exp.background = state.background;
        exp.free_run = state.free_run;
        exp.cycle = state.cycle;
        exp
    }

    /// Snapshot the resumable state at the current cycle boundary. Call
    /// between cycles (not mid-`run_cycle`). O(1): the state is shared,
    /// not copied — `run_cycle` replaces (never mutates) the underlying
    /// fields, so the snapshot stays bit-stable as the experiment runs on.
    pub fn snapshot(&self) -> CycleState {
        CycleState {
            cycle: self.cycle,
            rng_cursor: self.rng.draws,
            truth: Arc::clone(&self.truth),
            background: Arc::clone(&self.background),
            free_run: Arc::clone(&self.free_run),
        }
    }

    /// The current truth state.
    pub fn truth(&self) -> &[f64] {
        &self.truth
    }

    /// The current background ensemble.
    pub fn background(&self) -> &Ensemble {
        &self.background
    }

    /// The free-running control ensemble.
    pub fn free_run(&self) -> &Ensemble {
        &self.free_run
    }

    /// Completed cycles (the next cycle to run).
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// Raw draws consumed from the RNG since seeding (the checkpointable
    /// RNG cursor).
    pub fn rng_cursor(&self) -> u64 {
        self.rng.draws
    }

    /// The seed the experiment was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The experiment mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Observations of the *current* truth (call once per cycle).
    pub fn observe(&mut self) -> Observations {
        let net = ObservationNetwork::uniform(self.mesh, self.config.obs_stride);
        let op = ObservationOperator::new(net);
        let mut gs = GaussianSampler::new();
        let values: Vec<f64> = op
            .apply(&self.truth)
            .into_iter()
            .map(|v| v + self.config.obs_noise_std * gs.sample(&mut self.rng))
            .collect();
        let m = op.len();
        let var = self.config.obs_noise_std * self.config.obs_noise_std;
        Observations::new(
            op,
            values,
            vec![var; m],
            PerturbedObservations::new(
                self.seed ^ (self.cycle as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                self.background.size(),
            ),
        )
    }

    /// Run one full cycle: forecast truth + ensembles, observe, assimilate
    /// with the supplied analysis operator, and return the cycle's errors.
    pub fn run_cycle<E>(
        &mut self,
        analyze: impl FnOnce(&Ensemble, &Observations) -> Result<Ensemble, E>,
    ) -> Result<CycleStats, E> {
        let c = &self.config;
        // Forecast phase: truth evolves deterministically; ensembles get
        // stochastic model error. Every state field is *replaced*, never
        // mutated — outstanding snapshots keep the pre-cycle values.
        self.truth = Arc::new(
            c.dynamics
                .integrate(self.mesh, &self.truth, c.steps_per_cycle),
        );
        self.background = Arc::new(c.dynamics.forecast_ensemble(
            &self.background,
            c.steps_per_cycle,
            c.model_error_std,
            &mut self.rng,
        ));
        self.free_run = Arc::new(c.dynamics.forecast_ensemble(
            &self.free_run,
            c.steps_per_cycle,
            c.model_error_std,
            &mut self.rng,
        ));
        // Observation + analysis phase.
        let observations = self.observe();
        let forecast_rmse = self.background.rmse_against(&self.truth);
        let analysis = analyze(&self.background, &observations)?;
        let stats = CycleStats {
            cycle: self.cycle,
            forecast_rmse,
            analysis_rmse: analysis.rmse_against(&self.truth),
            free_run_rmse: self.free_run.rmse_against(&self.truth),
        };
        self.background = Arc::new(analysis);
        self.cycle += 1;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_core::{inflated, serial_enkf};
    use enkf_grid::LocalizationRadius;

    #[test]
    fn cycled_assimilation_beats_the_free_run() {
        let mesh = Mesh::new(20, 10);
        let mut exp = CycledExperiment::new(mesh, 16, CycleConfig::default(), 3);
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let mut last = None;
        for _ in 0..5 {
            // Standard practice in cycled EnKF: inflate the background to
            // counter spread collapse, then assimilate.
            let stats = exp
                .run_cycle(|bg, obs| serial_enkf(&inflated(bg, 1.15), obs, radius))
                .expect("analysis succeeds");
            assert!(
                stats.analysis_rmse <= stats.forecast_rmse * 1.25,
                "cycle {}: analysis {} vs forecast {}",
                stats.cycle,
                stats.analysis_rmse,
                stats.forecast_rmse
            );
            last = Some(stats);
        }
        let last = last.unwrap();
        assert!(
            last.analysis_rmse < last.free_run_rmse,
            "assimilating run ({}) must beat the free run ({})",
            last.analysis_rmse,
            last.free_run_rmse
        );
    }

    #[test]
    fn analysis_feeds_the_next_forecast() {
        let mesh = Mesh::new(12, 8);
        let mut exp = CycledExperiment::new(mesh, 8, CycleConfig::default(), 5);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let s0 = exp
            .run_cycle(|bg, obs| serial_enkf(bg, obs, radius))
            .unwrap();
        let s1 = exp
            .run_cycle(|bg, obs| serial_enkf(bg, obs, radius))
            .unwrap();
        assert_eq!(s0.cycle, 0);
        assert_eq!(s1.cycle, 1);
        // The second forecast starts from the first analysis, so its error
        // should not balloon back to the free-run level.
        assert!(s1.forecast_rmse < s1.free_run_rmse * 1.2);
    }

    #[test]
    fn snapshot_restore_replays_bit_exactly() {
        let mesh = Mesh::new(14, 8);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let analyze = |bg: &Ensemble, obs: &Observations| serial_enkf(bg, obs, radius);
        // Uninterrupted: 4 cycles straight through.
        let mut full = CycledExperiment::new(mesh, 6, CycleConfig::default(), 11);
        let mut full_stats = Vec::new();
        for _ in 0..4 {
            full_stats.push(full.run_cycle(analyze).unwrap());
        }
        // Interrupted: 2 cycles, snapshot, restore, 2 more.
        let mut a = CycledExperiment::new(mesh, 6, CycleConfig::default(), 11);
        let mut parts = Vec::new();
        parts.push(a.run_cycle(analyze).unwrap());
        parts.push(a.run_cycle(analyze).unwrap());
        let state = a.snapshot();
        assert_eq!(state.cycle, 2);
        drop(a);
        let mut b = CycledExperiment::restore(mesh, 6, CycleConfig::default(), 11, state);
        parts.push(b.run_cycle(analyze).unwrap());
        parts.push(b.run_cycle(analyze).unwrap());
        assert_eq!(parts, full_stats, "stats are bit-identical after restore");
        assert_eq!(
            b.background().states(),
            full.background().states(),
            "final ensembles are bit-identical"
        );
        assert_eq!(b.truth(), full.truth());
        assert_eq!(b.rng_cursor(), full.rng_cursor());
    }

    #[test]
    fn snapshot_is_o1_and_stable_while_the_experiment_advances() {
        let mesh = Mesh::new(10, 6);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let mut exp = CycledExperiment::new(mesh, 4, CycleConfig::default(), 21);
        exp.run_cycle(|bg, obs| serial_enkf(bg, obs, radius))
            .unwrap();
        let snap = exp.snapshot();
        // O(1): the snapshot shares the experiment's backing allocations
        // instead of deep-copying the ensembles.
        assert!(std::ptr::eq(exp.truth(), snap.truth.as_slice()));
        assert!(std::ptr::eq(exp.background(), snap.background.as_ref()));
        assert!(std::ptr::eq(exp.free_run(), snap.free_run.as_ref()));
        // Copy-on-write: advancing the experiment replaces its state and
        // leaves the outstanding snapshot bit-identical — the property an
        // asynchronous checkpoint writer depends on.
        let truth_before = snap.truth.to_vec();
        let bg_before = snap.background.states().clone();
        exp.run_cycle(|bg, obs| serial_enkf(bg, obs, radius))
            .unwrap();
        assert_eq!(*snap.truth, truth_before);
        assert_eq!(snap.background.states(), &bg_before);
        assert!(!std::ptr::eq(exp.background(), snap.background.as_ref()));
    }

    #[test]
    fn observe_is_deterministic_per_cycle() {
        let mesh = Mesh::new(10, 6);
        let mk = || {
            let mut e = CycledExperiment::new(mesh, 6, CycleConfig::default(), 9);
            let _ = e
                .run_cycle(|bg, _| Ok::<_, std::convert::Infallible>(bg.clone()))
                .unwrap();
            e.observe().values().to_vec()
        };
        assert_eq!(mk(), mk());
    }
}
