//! Cycled twin experiments: forecast → observe → assimilate, repeated.
//!
//! Data assimilation earns its keep over *cycles*: each analysis becomes
//! the initial condition of the next forecast (the paper's opening
//! motivation — "providing initial conditions of numerical atmospheric and
//! oceanic models"). This harness runs a twin experiment where a truth
//! trajectory evolves under [`crate::AdvectionDiffusion`] dynamics, noisy
//! observations of the truth arrive every cycle, and a caller-supplied
//! analysis operator (serial EnKF, LETKF, or a full parallel variant)
//! produces the next background. A free-running (never-assimilating)
//! ensemble is tracked as the control.

use crate::dynamics::AdvectionDiffusion;
use crate::field::SmoothFieldGenerator;
use enkf_core::{Ensemble, ObservationOperator, Observations, PerturbedObservations};
use enkf_grid::{Mesh, ObservationNetwork};
use enkf_linalg::{GaussianSampler, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a cycled twin experiment.
#[derive(Debug, Clone, Copy)]
pub struct CycleConfig {
    /// Forecast model.
    pub dynamics: AdvectionDiffusion,
    /// Model steps between consecutive analyses.
    pub steps_per_cycle: usize,
    /// Observation network stride.
    pub obs_stride: usize,
    /// Observation error standard deviation.
    pub obs_noise_std: f64,
    /// Stochastic model error added to each forecast member per cycle.
    pub model_error_std: f64,
}

impl Default for CycleConfig {
    fn default() -> Self {
        CycleConfig {
            dynamics: AdvectionDiffusion::gentle_drift(),
            steps_per_cycle: 4,
            obs_stride: 2,
            obs_noise_std: 0.1,
            model_error_std: 0.05,
        }
    }
}

/// Per-cycle error statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleStats {
    /// 0-based cycle index.
    pub cycle: usize,
    /// RMSE of the forecast (background) mean before assimilation.
    pub forecast_rmse: f64,
    /// RMSE of the analysis mean after assimilation.
    pub analysis_rmse: f64,
    /// RMSE of the free-running control ensemble mean.
    pub free_run_rmse: f64,
}

/// A running cycled experiment.
pub struct CycledExperiment {
    mesh: Mesh,
    config: CycleConfig,
    truth: Vec<f64>,
    background: Ensemble,
    free_run: Ensemble,
    rng: StdRng,
    cycle: usize,
    seed: u64,
}

impl CycledExperiment {
    /// Initialize from a seed: truth and initial ensembles are smooth
    /// random fields; the ensemble starts biased off the truth.
    pub fn new(mesh: Mesh, members: usize, config: CycleConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xDA3E);
        let mut gs = GaussianSampler::new();
        let gen = SmoothFieldGenerator {
            max_wavenumber: 2,
            ..Default::default()
        };
        let truth = gen.generate(mesh, &mut rng);
        let members_vec: Vec<Vec<f64>> = (0..members)
            .map(|_| {
                let err = gen.generate(mesh, &mut rng);
                truth
                    .iter()
                    .zip(&err)
                    .map(|(&t, &e)| t + 0.4 + e + 0.1 * gs.sample(&mut rng))
                    .collect()
            })
            .collect();
        let states = Matrix::from_fn(mesh.n(), members, |i, k| members_vec[k][i]);
        let background = Ensemble::new(mesh, states);
        let free_run = background.clone();
        CycledExperiment {
            mesh,
            config,
            truth,
            background,
            free_run,
            rng,
            cycle: 0,
            seed,
        }
    }

    /// The current truth state.
    pub fn truth(&self) -> &[f64] {
        &self.truth
    }

    /// The current background ensemble.
    pub fn background(&self) -> &Ensemble {
        &self.background
    }

    /// Observations of the *current* truth (call once per cycle).
    pub fn observe(&mut self) -> Observations {
        let net = ObservationNetwork::uniform(self.mesh, self.config.obs_stride);
        let op = ObservationOperator::new(net);
        let mut gs = GaussianSampler::new();
        let values: Vec<f64> = op
            .apply(&self.truth)
            .into_iter()
            .map(|v| v + self.config.obs_noise_std * gs.sample(&mut self.rng))
            .collect();
        let m = op.len();
        let var = self.config.obs_noise_std * self.config.obs_noise_std;
        Observations::new(
            op,
            values,
            vec![var; m],
            PerturbedObservations::new(
                self.seed ^ (self.cycle as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                self.background.size(),
            ),
        )
    }

    /// Run one full cycle: forecast truth + ensembles, observe, assimilate
    /// with the supplied analysis operator, and return the cycle's errors.
    pub fn run_cycle<E>(
        &mut self,
        analyze: impl FnOnce(&Ensemble, &Observations) -> Result<Ensemble, E>,
    ) -> Result<CycleStats, E> {
        let c = &self.config;
        // Forecast phase: truth evolves deterministically; ensembles get
        // stochastic model error.
        self.truth = c
            .dynamics
            .integrate(self.mesh, &self.truth, c.steps_per_cycle);
        self.background = c.dynamics.forecast_ensemble(
            &self.background,
            c.steps_per_cycle,
            c.model_error_std,
            &mut self.rng,
        );
        self.free_run = c.dynamics.forecast_ensemble(
            &self.free_run,
            c.steps_per_cycle,
            c.model_error_std,
            &mut self.rng,
        );
        // Observation + analysis phase.
        let observations = self.observe();
        let forecast_rmse = self.background.rmse_against(&self.truth);
        let analysis = analyze(&self.background, &observations)?;
        let stats = CycleStats {
            cycle: self.cycle,
            forecast_rmse,
            analysis_rmse: analysis.rmse_against(&self.truth),
            free_run_rmse: self.free_run.rmse_against(&self.truth),
        };
        self.background = analysis;
        self.cycle += 1;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_core::{inflated, serial_enkf};
    use enkf_grid::LocalizationRadius;

    #[test]
    fn cycled_assimilation_beats_the_free_run() {
        let mesh = Mesh::new(20, 10);
        let mut exp = CycledExperiment::new(mesh, 16, CycleConfig::default(), 3);
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let mut last = None;
        for _ in 0..5 {
            // Standard practice in cycled EnKF: inflate the background to
            // counter spread collapse, then assimilate.
            let stats = exp
                .run_cycle(|bg, obs| serial_enkf(&inflated(bg, 1.15), obs, radius))
                .expect("analysis succeeds");
            assert!(
                stats.analysis_rmse <= stats.forecast_rmse * 1.25,
                "cycle {}: analysis {} vs forecast {}",
                stats.cycle,
                stats.analysis_rmse,
                stats.forecast_rmse
            );
            last = Some(stats);
        }
        let last = last.unwrap();
        assert!(
            last.analysis_rmse < last.free_run_rmse,
            "assimilating run ({}) must beat the free run ({})",
            last.analysis_rmse,
            last.free_run_rmse
        );
    }

    #[test]
    fn analysis_feeds_the_next_forecast() {
        let mesh = Mesh::new(12, 8);
        let mut exp = CycledExperiment::new(mesh, 8, CycleConfig::default(), 5);
        let radius = LocalizationRadius { xi: 1, eta: 1 };
        let s0 = exp
            .run_cycle(|bg, obs| serial_enkf(bg, obs, radius))
            .unwrap();
        let s1 = exp
            .run_cycle(|bg, obs| serial_enkf(bg, obs, radius))
            .unwrap();
        assert_eq!(s0.cycle, 0);
        assert_eq!(s1.cycle, 1);
        // The second forecast starts from the first analysis, so its error
        // should not balloon back to the free-run level.
        assert!(s1.forecast_rmse < s1.free_run_rmse * 1.2);
    }

    #[test]
    fn observe_is_deterministic_per_cycle() {
        let mesh = Mesh::new(10, 6);
        let mk = || {
            let mut e = CycledExperiment::new(mesh, 6, CycleConfig::default(), 9);
            let _ = e
                .run_cycle(|bg, _| Ok::<_, std::convert::Infallible>(bg.clone()))
                .unwrap();
            e.observe().values().to_vec()
        };
        assert_eq!(mk(), mk());
    }
}
