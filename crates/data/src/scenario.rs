//! Twin-experiment scenarios: truth, background ensemble, observations.

use crate::field::SmoothFieldGenerator;
use enkf_core::{Ensemble, ObservationOperator, Observations, PerturbedObservations};
use enkf_grid::{Mesh, ObservationNetwork};
use enkf_linalg::{GaussianSampler, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A complete synthetic assimilation problem (twin experiment): a known
/// truth, a biased background ensemble whose error is spatially correlated,
/// and noisy observations of the truth.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The mesh everything lives on.
    pub mesh: Mesh,
    /// The true state the experiment tries to recover.
    pub truth: Vec<f64>,
    /// The background ensemble `Xᵇ`.
    pub ensemble: Ensemble,
    /// Observations of the truth with diagonal error covariance.
    pub observations: Observations,
}

impl Scenario {
    /// RMSE of the background ensemble mean against the truth.
    pub fn rmse_background(&self) -> f64 {
        self.ensemble.rmse_against(&self.truth)
    }

    /// RMSE of an analysis ensemble mean against the truth.
    pub fn rmse_of(&self, analysis: &Ensemble) -> f64 {
        analysis.rmse_against(&self.truth)
    }
}

/// Builder for [`Scenario`]s.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    mesh: Mesh,
    members: usize,
    observation_stride: usize,
    obs_noise_std: f64,
    background_bias: f64,
    seed: u64,
    field: SmoothFieldGenerator,
}

impl ScenarioBuilder {
    /// Start a builder with sensible defaults: 20 members, stride-3
    /// observations with 0.2 error std, background bias 0.4.
    pub fn new(mesh: Mesh) -> Self {
        ScenarioBuilder {
            mesh,
            members: 20,
            observation_stride: 3,
            obs_noise_std: 0.2,
            background_bias: 0.4,
            seed: 0,
            field: SmoothFieldGenerator::default(),
        }
    }

    /// Ensemble size `N` (at least 2).
    pub fn members(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least 2 members");
        self.members = n;
        self
    }

    /// Observe every `stride`-th point in each direction.
    pub fn observation_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0);
        self.observation_stride = stride;
        self
    }

    /// Observation error standard deviation.
    pub fn obs_noise_std(mut self, std: f64) -> Self {
        assert!(std > 0.0);
        self.obs_noise_std = std;
        self
    }

    /// Constant bias added to every background member (error the ensemble
    /// spread does not represent — makes the problem honest).
    pub fn background_bias(mut self, bias: f64) -> Self {
        self.background_bias = bias;
        self
    }

    /// Master seed; every derived random draw is deterministic in it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the field generator (correlation structure / nugget).
    pub fn field_generator(mut self, field: SmoothFieldGenerator) -> Self {
        self.field = field;
        self
    }

    /// Generate the scenario.
    pub fn build(self) -> Scenario {
        let mesh = self.mesh;
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let mut gs = GaussianSampler::new();

        let truth = self.field.generate(mesh, &mut rng);
        let members: Vec<Vec<f64>> = (0..self.members)
            .map(|_| {
                let err = self.field.generate(mesh, &mut rng);
                truth
                    .iter()
                    .zip(&err)
                    .map(|(&t, &e)| t + self.background_bias + e)
                    .collect()
            })
            .collect();
        let states = Matrix::from_fn(mesh.n(), self.members, |i, k| members[k][i]);
        let ensemble = Ensemble::new(mesh, states);

        let net = ObservationNetwork::uniform(mesh, self.observation_stride);
        let op = ObservationOperator::new(net);
        let values: Vec<f64> = op
            .apply(&truth)
            .into_iter()
            .map(|v| v + self.obs_noise_std * gs.sample(&mut rng))
            .collect();
        let m = op.len();
        let observations = Observations::new(
            op,
            values,
            vec![self.obs_noise_std * self.obs_noise_std; m],
            PerturbedObservations::new(self.seed ^ 0xABCD_EF01, self.members),
        );
        Scenario {
            mesh,
            truth,
            ensemble,
            observations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enkf_core::serial_enkf;
    use enkf_grid::LocalizationRadius;

    #[test]
    fn builder_produces_consistent_geometry() {
        let mesh = Mesh::new(18, 12);
        let s = ScenarioBuilder::new(mesh)
            .members(12)
            .observation_stride(3)
            .seed(1)
            .build();
        assert_eq!(s.ensemble.size(), 12);
        assert_eq!(s.ensemble.dim(), mesh.n());
        assert_eq!(s.truth.len(), mesh.n());
        assert_eq!(s.observations.len(), 6 * 4);
    }

    #[test]
    fn deterministic_in_seed() {
        let mesh = Mesh::new(10, 10);
        let a = ScenarioBuilder::new(mesh).seed(9).build();
        let b = ScenarioBuilder::new(mesh).seed(9).build();
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.ensemble.states(), b.ensemble.states());
        assert_eq!(a.observations.values(), b.observations.values());
        let c = ScenarioBuilder::new(mesh).seed(10).build();
        assert_ne!(a.truth, c.truth);
    }

    #[test]
    fn background_bias_shows_in_rmse() {
        let mesh = Mesh::new(12, 12);
        let unbiased = ScenarioBuilder::new(mesh)
            .background_bias(0.0)
            .seed(3)
            .build();
        let biased = ScenarioBuilder::new(mesh)
            .background_bias(2.0)
            .seed(3)
            .build();
        assert!(biased.rmse_background() > unbiased.rmse_background() + 1.0);
    }

    #[test]
    fn assimilating_a_scenario_reduces_error() {
        let mesh = Mesh::new(15, 9);
        // On a mesh this small, cap the wavenumbers so the error field is
        // genuinely smooth at the observation stride.
        let s = ScenarioBuilder::new(mesh)
            .members(24)
            .observation_stride(2)
            .obs_noise_std(0.1)
            .field_generator(SmoothFieldGenerator {
                modes: 4,
                max_wavenumber: 2,
                amplitude: 1.0,
                nugget: 0.2,
            })
            .seed(7)
            .build();
        let radius = LocalizationRadius { xi: 2, eta: 2 };
        let analysis = serial_enkf(&s.ensemble, &s.observations, radius).unwrap();
        assert!(
            s.rmse_of(&analysis) < s.rmse_background() * 0.8,
            "rmse {} -> {}",
            s.rmse_background(),
            s.rmse_of(&analysis)
        );
    }
}
