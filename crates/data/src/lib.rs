//! Synthetic data for the S-EnKF reproduction.
//!
//! The paper evaluates on 120 background ensemble members from a long-time
//! 0.1° ocean model integration — data we cannot ship. This crate builds the
//! closest synthetic equivalent: smooth random fields with a prescribed
//! correlation structure plus a white-noise nugget (so ensemble anomaly
//! spectra are full-rank, as real geophysical fields are), a truth state, an
//! observation network with noisy measurements of the truth, and writers
//! that lay the members out on disk in exactly the row-priority format the
//! reading strategies (block/bar/concurrent) operate on.

pub mod cycle;
pub mod dynamics;
pub mod field;
pub mod scenario;
pub mod storeio;

pub use cycle::{CycleConfig, CycleState, CycleStats, CycledExperiment};
pub use dynamics::AdvectionDiffusion;
pub use field::SmoothFieldGenerator;
pub use scenario::{Scenario, ScenarioBuilder};
pub use storeio::{read_ensemble, region_to_matrix, write_ensemble, LEVEL_LAPSE};
