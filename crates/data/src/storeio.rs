//! Laying ensembles out on disk and reading them back.
//!
//! Members are written in the row-priority format the reading strategies
//! operate on; when the layout carries more than one vertical level per
//! point, the surface value is replicated with a small per-level lapse so
//! files have the paper's `h = 8·levels` bytes per point while the analysis
//! (which works on the surface level) stays unchanged.

use enkf_core::Ensemble;
use enkf_grid::RegionRect;
use enkf_linalg::Matrix;
use enkf_pfs::{FileStore, RegionData};

/// Per-level offset applied when replicating the surface value into deeper
/// levels (a fixed, invertible transformation — level 0 is the analysis
/// variable). Public so parallel write-back produces byte-identical files.
pub const LEVEL_LAPSE: f64 = 0.01;

/// Write every member of an ensemble into the store.
///
/// The store's layout must match the ensemble's mesh.
pub fn write_ensemble(store: &FileStore, ensemble: &Ensemble) -> std::io::Result<()> {
    assert_eq!(
        store.layout().mesh(),
        ensemble.mesh(),
        "layout/ensemble mesh mismatch"
    );
    let levels = store.levels();
    let n = ensemble.dim();
    let mut buf = vec![0.0f64; n * levels];
    for k in 0..ensemble.size() {
        let member = ensemble.member(k);
        for (i, &v) in member.iter().enumerate() {
            for level in 0..levels {
                buf[i * levels + level] = v - LEVEL_LAPSE * level as f64;
            }
        }
        store.write_member(k, &buf)?;
    }
    Ok(())
}

/// Read `members` full member files back into an ensemble (surface level).
pub fn read_ensemble(store: &FileStore, members: usize) -> std::io::Result<Ensemble> {
    let mesh = store.layout().mesh();
    let mut states = Matrix::zeros(mesh.n(), members);
    for k in 0..members {
        let data = store.read_full(k)?;
        let col: Vec<f64> = data.surface().collect();
        states.set_col(k, &col);
    }
    Ok(Ensemble::new(mesh, states))
}

/// Assemble region-local background data `X̄ᵇ` (surface level) from one
/// [`RegionData`] per member: the `region.npoints() × N` matrix of Eq. 6.
pub fn region_to_matrix(region: &RegionRect, per_member: &[RegionData]) -> Matrix {
    let npoints = region.npoints();
    let mut m = Matrix::zeros(npoints, per_member.len());
    for (k, data) in per_member.iter().enumerate() {
        assert_eq!(
            &data.region(),
            region,
            "member {k} covers a different region"
        );
        for (i, v) in data.surface().enumerate() {
            m[(i, k)] = v;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioBuilder;
    use enkf_grid::{FileLayout, Mesh};
    use enkf_pfs::ScratchDir;

    fn setup(levels: u64) -> (ScratchDir, FileStore, Ensemble) {
        let mesh = Mesh::new(12, 6);
        let scenario = ScenarioBuilder::new(mesh).members(5).seed(2).build();
        let scratch = ScratchDir::new("data-io").unwrap();
        let store = FileStore::open(scratch.path(), FileLayout::new(mesh, 8 * levels)).unwrap();
        write_ensemble(&store, &scenario.ensemble).unwrap();
        (scratch, store, scenario.ensemble)
    }

    #[test]
    fn write_read_roundtrip_single_level() {
        let (_s, store, ensemble) = setup(1);
        let back = read_ensemble(&store, 5).unwrap();
        assert_eq!(back.states(), ensemble.states());
    }

    #[test]
    fn multi_level_files_keep_surface_exact() {
        let (_s, store, ensemble) = setup(3);
        assert_eq!(store.levels(), 3);
        let back = read_ensemble(&store, 5).unwrap();
        assert_eq!(back.states(), ensemble.states());
        // Deeper levels follow the lapse.
        let data = store.read_full(0).unwrap();
        let surf = data.value(7, 0);
        assert!((data.value(7, 2) - (surf - 2.0 * LEVEL_LAPSE)).abs() < 1e-12);
    }

    #[test]
    fn region_matrix_matches_ensemble_restrict() {
        let (_s, store, ensemble) = setup(2);
        let region = RegionRect::new(3, 9, 1, 5);
        let per_member: Vec<RegionData> = (0..5)
            .map(|k| store.read_region(k, &region).unwrap())
            .collect();
        let m = region_to_matrix(&region, &per_member);
        let expect = ensemble.restrict(&region);
        assert!(
            m.approx_eq(&expect, 0.0),
            "file-backed region must equal in-memory restrict"
        );
    }

    #[test]
    #[should_panic(expected = "covers a different region")]
    fn region_matrix_rejects_mismatched_regions() {
        let (_s, store, _) = setup(1);
        let a = store.read_region(0, &RegionRect::new(0, 2, 0, 2)).unwrap();
        region_to_matrix(&RegionRect::new(0, 3, 0, 2), &[a]);
    }
}
