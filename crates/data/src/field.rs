//! Smooth random field generation.
//!
//! A field is a superposition of low-wavenumber Fourier modes with random
//! amplitudes and phases (spatially correlated, ocean-like), plus an
//! optional white-noise nugget that keeps ensemble anomaly spectra
//! full-rank — without it the modified-Cholesky regressions fit the
//! anomalies exactly and the estimated inverse covariance degenerates.

use enkf_grid::Mesh;
use enkf_linalg::GaussianSampler;
use rand::Rng;

/// Generator of smooth random fields on a mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothFieldGenerator {
    /// Number of Fourier modes to superpose.
    pub modes: usize,
    /// Largest wavenumber (per axis) a mode may take.
    pub max_wavenumber: usize,
    /// Overall amplitude scale of the correlated part.
    pub amplitude: f64,
    /// Standard deviation of the white-noise nugget added per point.
    pub nugget: f64,
}

impl Default for SmoothFieldGenerator {
    fn default() -> Self {
        SmoothFieldGenerator {
            modes: 6,
            max_wavenumber: 4,
            amplitude: 1.0,
            nugget: 0.2,
        }
    }
}

impl SmoothFieldGenerator {
    /// Draw one field (length `mesh.n()`, mesh row-priority order) from the
    /// given RNG.
    pub fn generate<R: Rng + ?Sized>(&self, mesh: Mesh, rng: &mut R) -> Vec<f64> {
        let mut gs = GaussianSampler::new();
        let modes: Vec<(f64, f64, f64, f64)> = (0..self.modes)
            .map(|m| {
                let kx = rng.gen_range(1..=self.max_wavenumber) as f64;
                let ky = rng.gen_range(1..=self.max_wavenumber) as f64;
                let phase = rng.gen::<f64>() * std::f64::consts::TAU;
                // 1/f-style decay across modes.
                let amp = self.amplitude * gs.sample(rng) / (1.0 + m as f64);
                (kx, ky, phase, amp)
            })
            .collect();
        let (nx, ny) = (mesh.nx() as f64, mesh.ny() as f64);
        let mut out = Vec::with_capacity(mesh.n());
        for p in mesh.iter_points() {
            let smooth: f64 = modes
                .iter()
                .map(|&(kx, ky, phase, amp)| {
                    amp * (std::f64::consts::TAU * (kx * p.ix as f64 / nx + ky * p.iy as f64 / ny)
                        + phase)
                        .sin()
                })
                .sum();
            let noise = if self.nugget > 0.0 {
                self.nugget * gs.sample(rng)
            } else {
                0.0
            };
            out.push(smooth + noise);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x - ma) * (y - mb))
            .sum::<f64>()
            / n;
        let va: f64 = a.iter().map(|&x| (x - ma) * (x - ma)).sum::<f64>() / n;
        let vb: f64 = b.iter().map(|&y| (y - mb) * (y - mb)).sum::<f64>() / n;
        cov / (va * vb).sqrt()
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = Mesh::new(16, 8);
        let g = SmoothFieldGenerator::default();
        let a = g.generate(mesh, &mut StdRng::seed_from_u64(5));
        let b = g.generate(mesh, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let c = g.generate(mesh, &mut StdRng::seed_from_u64(6));
        assert_ne!(a, c);
    }

    #[test]
    fn neighboring_points_are_correlated_across_realizations() {
        // Over many independent fields, adjacent points must be strongly
        // correlated (smooth part dominates) while distant points are less
        // correlated.
        let mesh = Mesh::new(32, 16);
        let g = SmoothFieldGenerator {
            nugget: 0.1,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let fields: Vec<Vec<f64>> = (0..200).map(|_| g.generate(mesh, &mut rng)).collect();
        let at = |ix: usize, iy: usize| -> Vec<f64> {
            let idx = mesh.index(enkf_grid::GridPoint { ix, iy });
            fields.iter().map(|f| f[idx]).collect()
        };
        let center = at(16, 8);
        let near = at(17, 8);
        let far = at(0, 0);
        let c_near = correlation(&center, &near);
        let c_far = correlation(&center, &far).abs();
        assert!(c_near > 0.7, "near correlation {c_near}");
        assert!(c_near > c_far, "near {c_near} vs far {c_far}");
    }

    #[test]
    fn nugget_breaks_exact_low_rank() {
        // With a nugget, 2 nearby fields sampled from one RNG never agree
        // exactly pointwise even on the smooth scale.
        let mesh = Mesh::new(8, 8);
        let g = SmoothFieldGenerator {
            modes: 1,
            max_wavenumber: 1,
            amplitude: 1.0,
            nugget: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let f = g.generate(mesh, &mut rng);
        // Neighboring points differ by more than the smooth gradient alone.
        let diffs: f64 =
            f.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (f.len() - 1) as f64;
        assert!(diffs > 0.1, "mean neighbor diff {diffs}");
    }

    #[test]
    fn zero_nugget_is_pure_smooth() {
        let mesh = Mesh::new(8, 4);
        let g = SmoothFieldGenerator {
            nugget: 0.0,
            ..Default::default()
        };
        let f = g.generate(mesh, &mut StdRng::seed_from_u64(3));
        assert_eq!(f.len(), mesh.n());
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
