//! Unified execution tracing across the real and modeled executors.
//!
//! Both execution paths of every variant emit the same span vocabulary —
//! reads (member, bytes, disk addressing operations), sends (destination,
//! bytes), local-analysis batches, waits — stamped with the rank, the rank's
//! role, the stage (layer) and a start/duration. The real executors stamp
//! wall time relative to a shared epoch ([`RankTracer`]); the modeled
//! executors stamp virtual DES time (`enkf_sim::Simulation::export_trace`).
//!
//! Because the *operations* are identical even though the *times* are not,
//! a [`Trace::digest`] — the deterministic, time-free multiset of operations
//! (count, total bytes, total seeks per rank/role/stage/kind/peer) — must be
//! byte-identical between a real run and a modeled run of the same
//! configuration. That digest is the conformance artifact checked by
//! `tests/trace_conformance.rs`.
//!
//! Two exporters:
//! * [`Trace::write_chrome_json`] — Chrome-trace (`chrome://tracing`,
//!   Perfetto) JSON, one lane per rank;
//! * [`Trace::digest`] — the sorted text digest above.
//!
//! The phase reports the repo always had (`PhaseBreakdown` in
//! `enkf-parallel`) are projections of these spans: [`Trace::per_rank_phases`]
//! sums durations by operation kind.

pub mod json;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// What a rank *is* in the variant's processor-role split (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Owns a sub-domain and runs local analyses.
    Compute,
    /// Dedicated I/O processor (S-EnKF's `C₁` side).
    Io,
}

impl Role {
    /// Lower-case label used in digests and Chrome-trace args.
    pub fn label(self) -> &'static str {
        match self {
            Role::Compute => "compute",
            Role::Io => "io",
        }
    }
}

/// The operation a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// A file-system read (bytes + disk addressing operations).
    Read,
    /// A file-system write.
    Write,
    /// A message transmission to `peer`.
    Send,
    /// A local-analysis batch.
    Compute,
    /// A dependency/receive/resource stall. Excluded from digests: wait
    /// placement is scheduling, not operation structure.
    Wait,
    /// An injected fault or a recovery action (failed read attempt, retry
    /// backoff). Included in digests — fault structure is operation
    /// structure, and the same plan must inject the same faults on both
    /// executors.
    Fault,
    /// A durable checkpoint write (member file flushed through the atomic
    /// temp + fsync + rename path). Distinguished from `Write` so campaign
    /// digests separate assimilation I/O from durability I/O.
    Ckpt,
    /// A checkpoint read during recovery or resume.
    Restore,
    /// Supervisor recovery overhead: cycle teardown plus restart backoff.
    Recovery,
}

impl Op {
    /// Lower-case label used in digests and Chrome-trace event names.
    pub fn label(self) -> &'static str {
        match self {
            Op::Read => "read",
            Op::Write => "write",
            Op::Send => "send",
            Op::Compute => "compute",
            Op::Wait => "wait",
            Op::Fault => "fault",
            Op::Ckpt => "ckpt",
            Op::Restore => "restore",
            Op::Recovery => "recovery",
        }
    }
}

/// One recorded operation. Times are seconds — wall time since the cluster
/// epoch on the real path, virtual DES time on the modeled path.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Rank that performed the operation.
    pub rank: usize,
    /// The rank's role.
    pub role: Role,
    /// Stage (layer) index for multi-stage variants, `None` otherwise.
    pub stage: Option<usize>,
    /// Operation kind.
    pub op: Op,
    /// Start time, seconds.
    pub start: f64,
    /// Duration, seconds (non-negative).
    pub dur: f64,
    /// Bytes moved (reads, writes, sends); 0 otherwise.
    pub bytes: u64,
    /// Disk addressing operations issued (reads/writes); 0 otherwise.
    pub seeks: u64,
    /// Destination rank for sends.
    pub peer: Option<usize>,
    /// Ensemble member / file index for reads and writes.
    pub member: Option<usize>,
    /// Modeled resource index (OST, NIC) the operation held, if any.
    pub res: Option<usize>,
    /// Tenant that owns the campaign this span belongs to (multi-tenant
    /// scheduler runs; `None` for standalone executions). Excluded from
    /// digests so a scheduled campaign conforms span-for-span with the
    /// identical campaign run standalone — the isolation invariant.
    pub tenant: Option<u32>,
    /// Job id within the tenant, set together with `tenant`.
    pub job: Option<u32>,
}

/// Operation metadata attached to a modeled task so the DES can emit the
/// same spans the real executors record (`enkf_sim::Task::with_op`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpTag {
    /// Role of the agent's rank (`None` → compute).
    pub io: bool,
    /// Stage (layer) index.
    pub stage: Option<usize>,
    /// Bytes moved.
    pub bytes: u64,
    /// Disk addressing operations.
    pub seeks: u64,
    /// Destination rank for sends.
    pub peer: Option<usize>,
    /// Member / file index.
    pub member: Option<usize>,
}

/// Span durations summed by kind — the projection the phase reports are
/// built from. `Write` durations count toward `read` (both are file I/O in
/// the paper's four-phase accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    /// File I/O (reads + writes).
    pub read: f64,
    /// Communication (sends).
    pub comm: f64,
    /// Local analysis.
    pub compute: f64,
    /// Stalls.
    pub wait: f64,
    /// Injected faults and recovery actions (failed attempts, backoffs).
    pub fault: f64,
}

impl PhaseTotals {
    /// Accumulate one span's duration into the matching slot.
    pub fn add(&mut self, span: &Span) {
        match span.op {
            // Checkpoint writes and restore reads are file I/O in the
            // paper's four-phase accounting, like `Write`.
            Op::Read | Op::Write | Op::Ckpt | Op::Restore => self.read += span.dur,
            Op::Send => self.comm += span.dur,
            Op::Compute => self.compute += span.dur,
            Op::Wait => self.wait += span.dur,
            Op::Fault | Op::Recovery => self.fault += span.dur,
        }
    }

    /// Sum of all five slots.
    pub fn total(&self) -> f64 {
        self.read + self.comm + self.compute + self.wait + self.fault
    }
}

/// Checkpoint durability time split by whether it was hidden behind
/// concurrent campaign work. Produced by [`Trace::ckpt_overlap`].
///
/// A synchronous campaign commits checkpoints on the critical path, so
/// its [`Op::Ckpt`] spans overlap nothing and every second is *exposed* —
/// the campaign is that much longer than it would be with free
/// durability. A pipelined campaign writes checkpoints from a background
/// thread while the next cycle computes; the seconds of a `Ckpt` span
/// that coincide with other work are *hidden* (they cost OST bandwidth
/// but no wall time). The split works on both timelines — wall clock for
/// real traces, virtual time for DES traces — because overlap is a pure
/// interval computation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CkptOverlap {
    /// Total [`Op::Ckpt`] span seconds.
    pub total: f64,
    /// Seconds coinciding with non-checkpoint, non-wait work.
    pub hidden: f64,
    /// Seconds during which the checkpoint write was the only work.
    pub exposed: f64,
}

impl CkptOverlap {
    /// Fraction of checkpoint time hidden behind other work (0 when no
    /// checkpoint spans were recorded).
    pub fn hidden_fraction(&self) -> f64 {
        if self.total > 0.0 {
            self.hidden / self.total
        } else {
            0.0
        }
    }
}

/// A completed execution's spans, with a label naming the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    label: String,
    spans: Vec<Span>,
}

impl Trace {
    /// An empty trace with the given label (used in exporter file names).
    pub fn new(label: impl Into<String>) -> Self {
        Trace {
            label: label.into(),
            spans: Vec::new(),
        }
    }

    /// The run label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Rename the trace (exporter file names derive from the label, so
    /// callers writing several runs disambiguate them here).
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// All recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Record one span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Record many spans (e.g. one rank's collected output, merged in rank
    /// order for determinism).
    pub fn extend(&mut self, spans: impl IntoIterator<Item = Span>) {
        self.spans.extend(spans);
    }

    /// Stamp every span with the owning tenant and job — the multi-tenant
    /// scheduler calls this once per campaign so merged fleet traces stay
    /// attributable. Tags are carried into Chrome-trace `args` but excluded
    /// from [`Trace::digest`], preserving the isolation invariant (a
    /// scheduled campaign's digest equals its standalone digest).
    pub fn tag_tenant(&mut self, tenant: u32, job: u32) {
        for s in &mut self.spans {
            s.tenant = Some(tenant);
            s.job = Some(job);
        }
    }

    /// Per-rank phase totals — the projection `PhaseBreakdown` is derived
    /// from. Ranks are keyed by id; absent ranks recorded nothing.
    pub fn per_rank_phases(&self) -> BTreeMap<usize, PhaseTotals> {
        let mut out: BTreeMap<usize, PhaseTotals> = BTreeMap::new();
        for s in &self.spans {
            out.entry(s.rank).or_default().add(s);
        }
        out
    }

    /// Split checkpoint time into hidden and exposed seconds: for every
    /// [`Op::Ckpt`] span, the portion of its interval covered by the
    /// union of all non-checkpoint, non-wait spans (any rank) is hidden;
    /// the rest is exposed. Wait spans do not hide anything — a rank
    /// blocked on the checkpoint writer is precisely the cost this
    /// accounting exists to surface.
    pub fn ckpt_overlap(&self) -> CkptOverlap {
        // Merge the non-checkpoint busy intervals once, then intersect
        // each checkpoint span against the sorted merged set.
        let mut busy: Vec<(f64, f64)> = self
            .spans
            .iter()
            .filter(|s| !matches!(s.op, Op::Ckpt | Op::Wait) && s.dur > 0.0)
            .map(|s| (s.start, s.start + s.dur))
            .collect();
        busy.sort_by(|a, b| a.partial_cmp(b).expect("trace times are finite"));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(busy.len());
        for (a, b) in busy {
            match merged.last_mut() {
                Some((_, end)) if a <= *end => *end = end.max(b),
                _ => merged.push((a, b)),
            }
        }
        let mut out = CkptOverlap::default();
        for s in self.spans.iter().filter(|s| s.op == Op::Ckpt) {
            let (a, b) = (s.start, s.start + s.dur);
            // First merged interval that could reach `a`.
            let from = merged.partition_point(|&(_, end)| end <= a);
            let hidden: f64 = merged[from..]
                .iter()
                .take_while(|&&(start, _)| start < b)
                .map(|&(x, y)| (y.min(b) - x.max(a)).max(0.0))
                .sum();
            out.total += s.dur;
            out.hidden += hidden;
            out.exposed += (s.dur - hidden).max(0.0);
        }
        out
    }

    /// Total disk addressing operations across all file-I/O spans.
    pub fn total_seeks(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| matches!(s.op, Op::Read | Op::Write | Op::Ckpt | Op::Restore))
            .map(|s| s.seeks)
            .sum()
    }

    /// The deterministic, time-free operation digest: one sorted line per
    /// `(rank, role, stage, op, peer)` group with the group's count, total
    /// bytes and total seeks. Wait spans are excluded (their placement is
    /// scheduling, not operation structure), as are all durations — so a
    /// real run and a modeled run of the same configuration produce
    /// byte-identical digests.
    pub fn digest(&self) -> String {
        type Key = (usize, Role, i64, Op, i64);
        let mut groups: BTreeMap<Key, (u64, u64, u64)> = BTreeMap::new();
        let opt = |v: Option<usize>| v.map_or(-1, |x| x as i64);
        for s in &self.spans {
            if s.op == Op::Wait {
                continue;
            }
            let key = (s.rank, s.role, opt(s.stage), s.op, opt(s.peer));
            let g = groups.entry(key).or_insert((0, 0, 0));
            g.0 += 1;
            g.1 += s.bytes;
            g.2 += s.seeks;
        }
        let fmt_opt = |v: i64| {
            if v < 0 {
                "-".to_string()
            } else {
                v.to_string()
            }
        };
        let mut out = String::new();
        for ((rank, role, stage, op, peer), (count, bytes, seeks)) in groups {
            writeln!(
                out,
                "rank={rank} role={} stage={} op={} peer={} count={count} bytes={bytes} seeks={seeks}",
                role.label(),
                fmt_opt(stage),
                op.label(),
                fmt_opt(peer),
            )
            .expect("writing to a String cannot fail");
        }
        out
    }

    /// Serialize as Chrome-trace JSON (`chrome://tracing` / Perfetto):
    /// complete (`"ph":"X"`) events in microseconds, one lane (`tid`) per
    /// rank, with bytes/seeks/stage in `args`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = match s.stage {
                Some(l) => format!("{} L{l}", s.op.label()),
                None => s.op.label().to_string(),
            };
            write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"role\":\"{}\",\"bytes\":{},\"seeks\":{}",
                s.role.label(),
                fmt_json_f64(s.start * 1e6),
                fmt_json_f64(s.dur * 1e6),
                s.rank,
                s.role.label(),
                s.bytes,
                s.seeks,
            )
            .expect("writing to a String cannot fail");
            if let Some(l) = s.stage {
                write!(out, ",\"stage\":{l}").expect("write to String");
            }
            if let Some(p) = s.peer {
                write!(out, ",\"peer\":{p}").expect("write to String");
            }
            if let Some(m) = s.member {
                write!(out, ",\"member\":{m}").expect("write to String");
            }
            if let Some(r) = s.res {
                write!(out, ",\"res\":{r}").expect("write to String");
            }
            if let (Some(t), Some(j)) = (s.tenant, s.job) {
                write!(out, ",\"tenant\":{t},\"job\":{j}").expect("write to String");
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Write the Chrome-trace JSON as `<dir>/<label>.json`, creating the
    /// directory if needed; returns the path written.
    pub fn write_chrome_json(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("{}.json", self.label));
        std::fs::write(&path, self.to_chrome_json())?;
        Ok(path)
    }
}

/// Shortest-roundtrip decimal for finite `f64` (Rust's `Display` never emits
/// `inf`/`NaN`-style tokens for the finite values traces hold).
fn fmt_json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "trace times must be finite");
    format!("{v}")
}

/// Per-rank wall-clock span recorder for the real executors. All ranks of
/// one run share an epoch `Instant` so their spans lie on a common timeline.
#[derive(Debug)]
pub struct RankTracer {
    rank: usize,
    role: Role,
    epoch: Instant,
    spans: Vec<Span>,
}

impl RankTracer {
    /// A recorder for `rank`, starting as a compute rank.
    pub fn new(rank: usize, epoch: Instant) -> Self {
        RankTracer {
            rank,
            role: Role::Compute,
            epoch,
            spans: Vec::new(),
        }
    }

    /// Reclassify this rank (an S-EnKF rank learns it is an I/O rank from
    /// its position).
    pub fn set_role(&mut self, role: Role) {
        self.role = role;
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// A second recorder for the *same* rank on the *same* epoch, for work
    /// the rank offloads to a sibling thread (e.g. the read-ahead prefetch
    /// thread). The fork starts empty; when the sibling finishes, merge its
    /// spans back with [`RankTracer::absorb`]. Digests are order-free
    /// multisets, so the interleaving of forked and main spans is
    /// irrelevant to conformance.
    pub fn fork(&self) -> RankTracer {
        RankTracer {
            rank: self.rank,
            role: self.role,
            epoch: self.epoch,
            spans: Vec::new(),
        }
    }

    /// Merge a forked recorder's spans into this one (appended after the
    /// spans already recorded; per-rank span order is not chronological
    /// across threads, which no consumer relies on).
    pub fn absorb(&mut self, fork: RankTracer) {
        debug_assert_eq!(fork.rank, self.rank, "absorb crosses ranks");
        self.spans.extend(fork.spans);
    }

    fn record<T>(&mut self, op: Op, tag: OpTag, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        let dur = t0.elapsed().as_secs_f64();
        let start = t0.duration_since(self.epoch).as_secs_f64();
        self.spans.push(Span {
            rank: self.rank,
            role: self.role,
            stage: tag.stage,
            op,
            start,
            dur,
            bytes: tag.bytes,
            seeks: tag.seeks,
            peer: tag.peer,
            member: tag.member,
            res: None,
            tenant: None,
            job: None,
        });
        out
    }

    /// Time a file read of `bytes` bytes / `seeks` addressing operations.
    pub fn read<T>(
        &mut self,
        stage: Option<usize>,
        member: Option<usize>,
        bytes: u64,
        seeks: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        let tag = OpTag {
            stage,
            bytes,
            seeks,
            member,
            ..OpTag::default()
        };
        self.record(Op::Read, tag, f)
    }

    /// Time a file write.
    pub fn write<T>(
        &mut self,
        stage: Option<usize>,
        member: Option<usize>,
        bytes: u64,
        seeks: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        let tag = OpTag {
            stage,
            bytes,
            seeks,
            member,
            ..OpTag::default()
        };
        self.record(Op::Write, tag, f)
    }

    /// Time a message transmission of `bytes` bytes to `peer`.
    pub fn send<T>(
        &mut self,
        stage: Option<usize>,
        peer: usize,
        bytes: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        let tag = OpTag {
            stage,
            bytes,
            peer: Some(peer),
            ..OpTag::default()
        };
        self.record(Op::Send, tag, f)
    }

    /// Time a local-analysis batch.
    pub fn compute<T>(&mut self, stage: Option<usize>, f: impl FnOnce() -> T) -> T {
        self.record(
            Op::Compute,
            OpTag {
                stage,
                ..OpTag::default()
            },
            f,
        )
    }

    /// Time an injected fault or recovery action: a failed read attempt
    /// (carrying the bytes/seeks the attempt consumed) or a retry backoff
    /// (`bytes = seeks = 0`).
    pub fn fault<T>(
        &mut self,
        stage: Option<usize>,
        member: Option<usize>,
        bytes: u64,
        seeks: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        let tag = OpTag {
            stage,
            bytes,
            seeks,
            member,
            ..OpTag::default()
        };
        self.record(Op::Fault, tag, f)
    }

    /// Time a durable checkpoint write of one member file.
    pub fn ckpt<T>(
        &mut self,
        member: Option<usize>,
        bytes: u64,
        seeks: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        let tag = OpTag {
            io: true,
            bytes,
            seeks,
            member,
            ..OpTag::default()
        };
        self.record(Op::Ckpt, tag, f)
    }

    /// Time a checkpoint read performed during recovery or resume.
    pub fn restore<T>(
        &mut self,
        member: Option<usize>,
        bytes: u64,
        seeks: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        let tag = OpTag {
            io: true,
            bytes,
            seeks,
            member,
            ..OpTag::default()
        };
        self.record(Op::Restore, tag, f)
    }

    /// Time supervisor recovery overhead (cycle teardown + restart backoff).
    pub fn recovery<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.record(Op::Recovery, OpTag::default(), f)
    }

    /// Time a blocking wait (receive, join).
    pub fn wait<T>(&mut self, stage: Option<usize>, f: impl FnOnce() -> T) -> T {
        self.record(
            Op::Wait,
            OpTag {
                stage,
                ..OpTag::default()
            },
            f,
        )
    }

    /// The phase projection of everything recorded so far.
    pub fn phases(&self) -> PhaseTotals {
        let mut t = PhaseTotals::default();
        for s in &self.spans {
            t.add(s);
        }
        t
    }

    /// Consume the recorder, yielding its spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(rank: usize, op: Op, stage: Option<usize>, bytes: u64, seeks: u64) -> Span {
        Span {
            rank,
            role: Role::Compute,
            stage,
            op,
            start: 0.5,
            dur: 0.25,
            bytes,
            seeks,
            peer: None,
            member: None,
            res: None,
            tenant: None,
            job: None,
        }
    }

    #[test]
    fn digest_is_order_independent_and_excludes_waits() {
        let mut a = Trace::new("a");
        a.push(span(0, Op::Read, Some(1), 64, 2));
        a.push(span(0, Op::Read, Some(1), 64, 2));
        a.push(span(1, Op::Compute, None, 0, 0));
        a.push(span(0, Op::Wait, Some(1), 0, 0));
        let mut b = Trace::new("b");
        b.push(span(1, Op::Compute, None, 0, 0));
        b.push(span(0, Op::Read, Some(1), 64, 2));
        b.push(span(0, Op::Read, Some(1), 64, 2));
        assert_eq!(
            a.digest(),
            b.digest(),
            "sorted aggregation ignores order and waits"
        );
        assert!(a.digest().contains("count=2 bytes=128 seeks=4"));
        assert!(!a.digest().contains("wait"));
    }

    #[test]
    fn digest_distinguishes_peers() {
        let mut a = Trace::new("a");
        let mut s = span(0, Op::Send, None, 10, 0);
        s.peer = Some(1);
        a.push(s.clone());
        let mut b = Trace::new("b");
        s.peer = Some(2);
        b.push(s);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn phases_project_spans_by_kind() {
        let mut t = Trace::new("t");
        t.push(span(0, Op::Read, None, 8, 1));
        t.push(span(0, Op::Compute, None, 0, 0));
        t.push(span(0, Op::Wait, None, 0, 0));
        let phases = t.per_rank_phases();
        let p = phases[&0];
        assert_eq!(p.read, 0.25);
        assert_eq!(p.compute, 0.25);
        assert_eq!(p.wait, 0.25);
        assert_eq!(p.comm, 0.0);
        assert_eq!(p.total(), 0.75);
    }

    #[test]
    fn fault_spans_enter_digest_and_fault_phase() {
        let mut t = Trace::new("f");
        t.push(span(0, Op::Fault, Some(1), 64, 2));
        t.push(span(0, Op::Read, Some(1), 64, 2));
        let d = t.digest();
        assert!(d.contains("op=fault"), "faults are operation structure");
        let p = t.per_rank_phases()[&0];
        assert_eq!(p.fault, 0.25);
        assert_eq!(p.read, 0.25);
        assert_eq!(p.total(), 0.5);
        // A trace with the fault missing digests differently.
        let mut clean = Trace::new("c");
        clean.push(span(0, Op::Read, Some(1), 64, 2));
        assert_ne!(d, clean.digest());
    }

    #[test]
    fn tracer_fault_spans_carry_member_and_cost() {
        let mut tr = RankTracer::new(2, Instant::now());
        tr.fault(Some(0), Some(4), 128, 3, || ());
        tr.fault(Some(0), Some(4), 0, 0, || ());
        let spans = tr.into_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].op, Op::Fault);
        assert_eq!(spans[0].member, Some(4));
        assert_eq!(spans[0].bytes, 128);
        assert_eq!(spans[0].seeks, 3);
        assert_eq!(spans[1].bytes, 0, "backoff spans move no bytes");
    }

    #[test]
    fn durability_ops_project_and_digest() {
        let mut t = Trace::new("d");
        t.push(span(0, Op::Ckpt, None, 512, 1));
        t.push(span(0, Op::Restore, None, 512, 1));
        t.push(span(0, Op::Recovery, None, 0, 0));
        let d = t.digest();
        assert!(d.contains("op=ckpt"));
        assert!(d.contains("op=restore"));
        assert!(d.contains("op=recovery"));
        let p = t.per_rank_phases()[&0];
        assert_eq!(p.read, 0.5, "ckpt + restore are file I/O");
        assert_eq!(p.fault, 0.25, "recovery overhead counts as fault time");
        assert_eq!(t.total_seeks(), 2);

        let mut tr = RankTracer::new(9, Instant::now());
        tr.set_role(Role::Io);
        tr.ckpt(Some(3), 256, 1, || ());
        tr.restore(Some(3), 256, 1, || ());
        tr.recovery(|| ());
        let spans = tr.into_spans();
        assert_eq!(spans[0].op, Op::Ckpt);
        assert_eq!(spans[0].member, Some(3));
        assert_eq!(spans[1].op, Op::Restore);
        assert_eq!(spans[2].op, Op::Recovery);
        assert_eq!(spans[2].bytes, 0);
    }

    fn timed(rank: usize, op: Op, start: f64, dur: f64) -> Span {
        let mut s = span(rank, op, None, 0, 0);
        s.start = start;
        s.dur = dur;
        s
    }

    #[test]
    fn ckpt_overlap_splits_hidden_and_exposed_time() {
        let mut t = Trace::new("overlap");
        // Cycle work on ranks 0–1 covering [0, 10] with a gap at [4, 6].
        t.push(timed(0, Op::Read, 0.0, 4.0));
        t.push(timed(1, Op::Compute, 6.0, 4.0));
        // A pipelined checkpoint on the supervisor rank at [2, 8]: hidden
        // under the read for [2, 4] and the compute for [6, 8], exposed in
        // the gap [4, 6].
        t.push(timed(2, Op::Ckpt, 2.0, 6.0));
        let o = t.ckpt_overlap();
        assert!((o.total - 6.0).abs() < 1e-12);
        assert!((o.hidden - 4.0).abs() < 1e-12, "hidden {}", o.hidden);
        assert!((o.exposed - 2.0).abs() < 1e-12, "exposed {}", o.exposed);
        assert!((o.hidden_fraction() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ckpt_overlap_synchronous_commits_are_fully_exposed() {
        let mut t = Trace::new("sync");
        // The synchronous schedule: cycle, then checkpoint, then cycle —
        // no concurrency, every checkpoint second is exposed.
        t.push(timed(0, Op::Compute, 0.0, 5.0));
        t.push(timed(3, Op::Ckpt, 5.0, 2.0));
        t.push(timed(0, Op::Compute, 7.0, 5.0));
        let o = t.ckpt_overlap();
        assert!((o.exposed - 2.0).abs() < 1e-12);
        assert_eq!(o.hidden, 0.0);
        // Empty trace: all-zero split, no NaN from the fraction.
        let empty = Trace::new("none").ckpt_overlap();
        assert_eq!(empty, CkptOverlap::default());
        assert_eq!(empty.hidden_fraction(), 0.0);
    }

    #[test]
    fn ckpt_overlap_ignores_waits_and_other_ckpt_spans() {
        let mut t = Trace::new("waits");
        // A rank blocked on the writer does not hide the write; neither
        // does another checkpoint span running concurrently.
        t.push(timed(0, Op::Wait, 0.0, 10.0));
        t.push(timed(3, Op::Ckpt, 1.0, 3.0));
        t.push(timed(3, Op::Ckpt, 2.0, 3.0));
        let o = t.ckpt_overlap();
        assert!((o.total - 6.0).abs() < 1e-12);
        assert_eq!(o.hidden, 0.0, "waits and sibling ckpts hide nothing");
        assert!((o.exposed - 6.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_json_parses_and_roundtrips_times() {
        let mut t = Trace::new("roundtrip");
        let mut s = span(3, Op::Send, Some(2), 1024, 0);
        s.peer = Some(7);
        s.start = 0.001234567891;
        s.dur = 0.000000789;
        t.push(s);
        let doc = json::parse(&t.to_chrome_json()).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("events array");
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("tid").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
        let dur_s = e.get("dur").and_then(|v| v.as_f64()).unwrap() / 1e6;
        assert!((dur_s - 0.000000789).abs() < 1e-12);
        let args = e.get("args").expect("args");
        assert_eq!(args.get("peer").and_then(|v| v.as_f64()), Some(7.0));
        assert_eq!(args.get("bytes").and_then(|v| v.as_f64()), Some(1024.0));
    }

    #[test]
    fn tracer_records_wall_spans_on_a_shared_epoch() {
        let epoch = Instant::now();
        let mut tr = RankTracer::new(5, epoch);
        tr.set_role(Role::Io);
        let v = tr.read(Some(0), Some(2), 100, 3, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            17
        });
        assert_eq!(v, 17);
        tr.compute(Some(0), || ());
        let spans = tr.into_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].role, Role::Io);
        assert_eq!(spans[0].member, Some(2));
        assert!(
            spans[0].dur >= 0.002,
            "slept 2ms, recorded {}",
            spans[0].dur
        );
        assert!(
            spans[1].start >= spans[0].start + spans[0].dur - 1e-9,
            "ordered on one rank"
        );
    }
}
