//! A minimal JSON reader, enough to validate and inspect the Chrome-trace
//! exports in tests without external dependencies. Parses the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null); numbers are read as `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte sequences pass
                // through unchanged).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(r#"{"a": [1, -2.5e3, "x\ny"], "b": {"c": true, "d": null}}"#).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert_eq!(a[2].as_str(), Some("x\ny"));
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escape_decodes() {
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }
}
