//! Counting-allocator proof that the kernel layer is allocation-free at
//! steady state.
//!
//! One warm pass sizes every output matrix, vector and eigensolve
//! workspace to its high-water mark; a second identical pass must then
//! complete without a single call into the global allocator. This is the
//! guarantee the pointwise LETKF loop depends on: the cache-oblivious
//! recursion works in-place on the output, the microkernels keep their
//! tiles in registers/stack arrays, and `EigenWorkspace` reuses its
//! scratch (including the parallel-ordering rotation set).
//!
//! Problem sizes stay below `kernel::tiles::PAR_FLOPS` so the recursion
//! never forks — the shim's `rayon::join` spawns a real scoped thread,
//! which allocates by design and is exactly what the flop gate exists to
//! amortize away.

use enkf_linalg::{EigenWorkspace, GaussianSampler, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn random_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gs = GaussianSampler::new();
    Matrix::from_fn(r, c, |_, _| gs.sample(&mut rng))
}

/// One steady-state pass over every kernel entry point, returning a
/// checksum so nothing is optimized away.
#[allow(clippy::too_many_arguments)]
fn pass(
    a: &Matrix,
    b: &Matrix,
    x: &[f64],
    nn: &mut Matrix,
    tn: &mut Matrix,
    nt: &mut Matrix,
    mv: &mut Vec<f64>,
    sym: &Matrix,
    ws: &mut EigenWorkspace,
) -> f64 {
    a.matmul_into(b, nn).unwrap();
    a.tr_matmul_into(b, tn).unwrap();
    a.matmul_tr_into(b, nt).unwrap();
    a.matvec_into(x, mv).unwrap();
    ws.decompose(sym).unwrap();
    nn.as_slice()[0] + tn.as_slice()[1] + nt.as_slice()[2] + mv[3] + ws.values()[0]
}

#[test]
fn gemm_and_eigensolve_steady_state_is_allocation_free() {
    // 96³ keeps 2·m·n·k below PAR_FLOPS (no fork) while still crossing
    // block boundaries of every microkernel (96 = 24 MR tiles, 12 NR
    // tiles, 1.5 NT_KC chunks).
    let n = 96;
    let a = random_matrix(n, n, 7);
    let b = random_matrix(n, n, 8);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
    let mut sym = random_matrix(n, n, 9);
    sym.symmetrize();

    let mut nn = Matrix::zeros(1, 1);
    let mut tn = Matrix::zeros(1, 1);
    let mut nt = Matrix::zeros(1, 1);
    let mut mv = Vec::new();
    let mut ws = EigenWorkspace::new();

    // Warm pass: outputs and workspace grow to their final sizes.
    let warm = pass(
        &a, &b, &x, &mut nn, &mut tn, &mut nt, &mut mv, &sym, &mut ws,
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let steady = pass(
        &a, &b, &x, &mut nn, &mut tn, &mut nt, &mut mv, &sym, &mut ws,
    );
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        warm.to_bits(),
        steady.to_bits(),
        "passes must be deterministic"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state GEMM/matvec/eigensolve must not touch the allocator"
    );
}

#[test]
fn parallel_ordering_eigensolve_steady_state_is_allocation_free() {
    // Order ≥ PAR_JACOBI_MIN so the rotation-set machinery is fully
    // engaged; on a single-core host the round phases stay sequential, so
    // no scoped-thread spawns enter the count.
    let n = 56;
    let mut sym = random_matrix(n, n, 11);
    sym.symmetrize();
    let mut ws = EigenWorkspace::new();
    ws.decompose_parallel(&sym).unwrap();
    let warm = ws.values()[0];

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    ws.decompose_parallel(&sym).unwrap();
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(warm.to_bits(), ws.values()[0].to_bits());
    assert_eq!(
        after - before,
        0,
        "steady-state parallel-ordering eigensolve must not allocate"
    );
}
