//! Property-based tests for the linear-algebra kernels.

use enkf_linalg::{Cholesky, GaussianSampler, Ldlt, Matrix, ModifiedCholesky};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random well-conditioned SPD matrix: A = M Mᵀ + (n+1)·I.
fn spd_strategy(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let m = Matrix::from_fn(n, n, |_, _| gs.sample(&mut rng));
        let mut a = m.matmul_tr(&m).unwrap().scale(1.0 / n as f64);
        for i in 0..n {
            a[(i, i)] += 1.0 + n as f64 * 0.1;
        }
        a
    })
}

fn matrix_strategy(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n, 1..=max_n, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        Matrix::from_fn(r, c, |_, _| gs.sample(&mut rng))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_roundtrips(a in spd_strategy(12)) {
        let ch = Cholesky::factor(&a).unwrap();
        let back = ch.l().matmul_tr(ch.l()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn cholesky_solve_has_small_residual(a in spd_strategy(12), seed in any::<u64>()) {
        let n = a.nrows();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let b = gs.vec(&mut rng, n);
        let x = Cholesky::factor(&a).unwrap().solve_vec(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-7 * (1.0 + bi.abs()));
        }
    }

    #[test]
    fn ldlt_matches_cholesky_for_spd(a in spd_strategy(10)) {
        let f = Ldlt::factor(&a).unwrap();
        prop_assert!(f.d().iter().all(|&d| d > 0.0));
        prop_assert!(f.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn transpose_is_involution(m in matrix_strategy(16)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_vector(m in matrix_strategy(10), seed in any::<u64>()) {
        // (A B) x == A (B x) for random conforming B, x.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let k = m.ncols();
        let b = Matrix::from_fn(k, 5, |_, _| gs.sample(&mut rng));
        let x = gs.vec(&mut rng, 5);
        let lhs = m.matmul(&b).unwrap().matvec(&x).unwrap();
        let rhs = m.matvec(&b.matvec(&x).unwrap()).unwrap();
        for (a, b) in lhs.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn tr_matmul_agrees_with_naive(m in matrix_strategy(10), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let other = Matrix::from_fn(m.nrows(), 4, |_, _| gs.sample(&mut rng));
        let fast = m.tr_matmul(&other).unwrap();
        let slow = m.transpose().matmul(&other).unwrap();
        prop_assert!(fast.approx_eq(&slow, 1e-10));
    }

    #[test]
    fn modified_cholesky_inverse_is_spd(n in 2usize..10, nens in 4usize..24, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let mut u = Matrix::from_fn(n, nens, |_, _| gs.sample(&mut rng));
        let means = u.row_means();
        u.subtract_row_vector(&means);
        let mc = ModifiedCholesky::estimate(&u, |i| (i.saturating_sub(3)..i).collect(), 1e-4).unwrap();
        let binv = mc.inverse_covariance();
        prop_assert!(Cholesky::factor(&binv).is_ok());
    }

    #[test]
    fn modified_cholesky_apply_matches_dense(n in 2usize..9, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let u = Matrix::from_fn(n, 12, |_, _| gs.sample(&mut rng));
        let mc = ModifiedCholesky::estimate(&u, |i| (i.saturating_sub(2)..i).collect(), 1e-5).unwrap();
        let x = gs.vec(&mut rng, n);
        let fast = mc.apply_inverse(&x).unwrap();
        let slow = mc.inverse_covariance().matvec(&x).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn row_means_invariant_under_anomaly_subtraction(m in matrix_strategy(12)) {
        let mut anomalies = m.clone();
        let means = anomalies.row_means();
        anomalies.subtract_row_vector(&means);
        for mean in anomalies.row_means() {
            prop_assert!(mean.abs() < 1e-10);
        }
    }
}
