//! Property-based tests for the linear-algebra kernels.

use enkf_linalg::kernel::{gemm, reference};
use enkf_linalg::{Cholesky, EigenWorkspace, GaussianSampler, Ldlt, Matrix, ModifiedCholesky};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random well-conditioned SPD matrix: A = M Mᵀ + (n+1)·I.
fn spd_strategy(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let m = Matrix::from_fn(n, n, |_, _| gs.sample(&mut rng));
        let mut a = m.matmul_tr(&m).unwrap().scale(1.0 / n as f64);
        for i in 0..n {
            a[(i, i)] += 1.0 + n as f64 * 0.1;
        }
        a
    })
}

fn matrix_strategy(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n, 1..=max_n, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        Matrix::from_fn(r, c, |_, _| gs.sample(&mut rng))
    })
}

/// Random matrix with a sprinkling of exact zeros (to exercise the NN
/// kernel's pinned zero-skip branch). Dimensions may be zero.
fn sparse_matrix(r: usize, c: usize, rng: &mut StdRng, gs: &mut GaussianSampler) -> Matrix {
    Matrix::from_fn(r, c, |_, _| {
        if rng.gen::<f64>() < 0.15 {
            0.0
        } else {
            gs.sample(rng)
        }
    })
}

/// GEMM shape triples including degenerate 1×N, N×1 and fully empty
/// operands (any of m, k, n may be 0). The output dimensions occasionally
/// exceed `kernel::tiles::BASE_M`/`BASE_N` so the recursive split — and,
/// with the fork threshold forced down, the actual `rayon::join` path —
/// gets exercised too.
fn gemm_shape() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    // Draws ≥ 34 are remapped past BASE_M/BASE_N so ~15% of cases recurse.
    let dim = || (0usize..=39).prop_map(|d| if d >= 34 { d + 95 } else { d });
    (dim(), 0usize..=21, dim(), any::<u64>())
}

/// Assert two equal-length f64 slices match bit-for-bit.
fn assert_bits(new: &[f64], old: &[f64]) -> std::result::Result<(), String> {
    prop_assert_eq!(new.len(), old.len());
    for (i, (a, b)) in new.iter().zip(old).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "element {} differs: {} vs {}",
            i,
            a,
            b
        );
    }
    Ok(())
}

/// Compare against the reference oracle: bit-for-bit under default
/// features, tight relative tolerance when the FMA fast path is active
/// (its exact bits are pinned separately in `kernel_conformance.rs`).
fn assert_matches_oracle(new: &[f64], oracle: &[f64]) -> std::result::Result<(), String> {
    if enkf_linalg::kernel::fma_active() {
        prop_assert_eq!(new.len(), oracle.len());
        for (i, (a, b)) in new.iter().zip(oracle).enumerate() {
            let tol = 1e-12 * (1.0 + b.abs());
            prop_assert!(
                (a - b).abs() <= tol,
                "element {} differs: {} vs {}",
                i,
                a,
                b
            );
        }
        Ok(())
    } else {
        assert_bits(new, oracle)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_roundtrips(a in spd_strategy(12)) {
        let ch = Cholesky::factor(&a).unwrap();
        let back = ch.l().matmul_tr(ch.l()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn cholesky_solve_has_small_residual(a in spd_strategy(12), seed in any::<u64>()) {
        let n = a.nrows();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let b = gs.vec(&mut rng, n);
        let x = Cholesky::factor(&a).unwrap().solve_vec(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-7 * (1.0 + bi.abs()));
        }
    }

    #[test]
    fn ldlt_matches_cholesky_for_spd(a in spd_strategy(10)) {
        let f = Ldlt::factor(&a).unwrap();
        prop_assert!(f.d().iter().all(|&d| d > 0.0));
        prop_assert!(f.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn transpose_is_involution(m in matrix_strategy(16)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_vector(m in matrix_strategy(10), seed in any::<u64>()) {
        // (A B) x == A (B x) for random conforming B, x.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let k = m.ncols();
        let b = Matrix::from_fn(k, 5, |_, _| gs.sample(&mut rng));
        let x = gs.vec(&mut rng, 5);
        let lhs = m.matmul(&b).unwrap().matvec(&x).unwrap();
        let rhs = m.matvec(&b.matvec(&x).unwrap()).unwrap();
        for (a, b) in lhs.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn tr_matmul_agrees_with_naive(m in matrix_strategy(10), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let other = Matrix::from_fn(m.nrows(), 4, |_, _| gs.sample(&mut rng));
        let fast = m.tr_matmul(&other).unwrap();
        let slow = m.transpose().matmul(&other).unwrap();
        prop_assert!(fast.approx_eq(&slow, 1e-10));
    }

    #[test]
    fn modified_cholesky_inverse_is_spd(n in 2usize..10, nens in 4usize..24, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let mut u = Matrix::from_fn(n, nens, |_, _| gs.sample(&mut rng));
        let means = u.row_means();
        u.subtract_row_vector(&means);
        let mc = ModifiedCholesky::estimate(&u, |i| (i.saturating_sub(3)..i).collect(), 1e-4).unwrap();
        let binv = mc.inverse_covariance();
        prop_assert!(Cholesky::factor(&binv).is_ok());
    }

    #[test]
    fn modified_cholesky_apply_matches_dense(n in 2usize..9, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let u = Matrix::from_fn(n, 12, |_, _| gs.sample(&mut rng));
        let mc = ModifiedCholesky::estimate(&u, |i| (i.saturating_sub(2)..i).collect(), 1e-5).unwrap();
        let x = gs.vec(&mut rng, n);
        let fast = mc.apply_inverse(&x).unwrap();
        let slow = mc.inverse_covariance().matvec(&x).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn row_means_invariant_under_anomaly_subtraction(m in matrix_strategy(12)) {
        let mut anomalies = m.clone();
        let means = anomalies.row_means();
        anomalies.subtract_row_vector(&means);
        for mean in anomalies.row_means() {
            prop_assert!(mean.abs() < 1e-10);
        }
    }
}

// Bit-identity of the kernel layer against the pre-refactor blocked loops
// (`kernel::reference`), across rectangular, degenerate and empty shapes,
// and with the fork threshold forced to 1 flop so the `rayon::join`
// recursion actually runs. Under default features every element must match
// to the last bit; these properties are what lets the rest of the codebase
// treat the GEMM rewrite as a pure perf change.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_nn_bit_identical_to_reference((m, k, n, seed) in gemm_shape()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let a = sparse_matrix(m, k, &mut rng, &mut gs);
        let b = sparse_matrix(k, n, &mut rng, &mut gs);
        let mut oracle = vec![0.0; m * n];
        reference::nn(a.as_slice(), b.as_slice(), &mut oracle, m, k, n);
        let fast = a.matmul(&b).unwrap();
        assert_matches_oracle(fast.as_slice(), &oracle)?;
        // Forcing every split to fork must not change a single bit: the
        // recursion only partitions the output, never the accumulation.
        let mut forked = vec![0.0; m * n];
        gemm::nn_tuned(a.as_slice(), b.as_slice(), &mut forked, m, k, n, true, 1);
        assert_bits(&forked, fast.as_slice())?;
    }

    #[test]
    fn gemm_tn_bit_identical_to_reference((m, k, n, seed) in gemm_shape()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let a = sparse_matrix(k, m, &mut rng, &mut gs);
        let b = sparse_matrix(k, n, &mut rng, &mut gs);
        let mut oracle = vec![0.0; m * n];
        reference::tn(a.as_slice(), b.as_slice(), &mut oracle, m, k, n);
        let fast = a.tr_matmul(&b).unwrap();
        assert_matches_oracle(fast.as_slice(), &oracle)?;
        let mut forked = vec![0.0; m * n];
        gemm::tn_tuned(a.as_slice(), b.as_slice(), &mut forked, m, k, n, true, 1);
        assert_bits(&forked, fast.as_slice())?;
    }

    #[test]
    fn gemm_nt_bit_identical_to_reference((m, k, n, seed) in gemm_shape()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let a = sparse_matrix(m, k, &mut rng, &mut gs);
        let b = sparse_matrix(n, k, &mut rng, &mut gs);
        let mut oracle = vec![0.0; m * n];
        reference::nt(a.as_slice(), b.as_slice(), &mut oracle, m, k, n);
        let fast = a.matmul_tr(&b).unwrap();
        assert_matches_oracle(fast.as_slice(), &oracle)?;
        let mut forked = vec![0.0; m * n];
        gemm::nt_tuned(a.as_slice(), b.as_slice(), &mut forked, m, k, n, true, 1);
        assert_bits(&forked, fast.as_slice())?;
    }

    #[test]
    fn matvec_bit_identical_to_reference(
        m in 0usize..=40, k in 0usize..=40, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let a = sparse_matrix(m, k, &mut rng, &mut gs);
        let x: Vec<f64> = (0..k).map(|_| gs.sample(&mut rng)).collect();
        let mut oracle = Vec::new();
        reference::matvec(a.as_slice(), &x, &mut oracle, m, k);
        let fast = a.matvec(&x).unwrap();
        assert_bits(&fast, &oracle)?;
    }
}

// The parallel-ordering Jacobi solve: forcing the fork path on a
// single-core host must reproduce the serial-schedule bits exactly —
// the cross-thread-count determinism claim.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_eigensolve_fork_path_is_bit_stable(
        n in 48usize..=53, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let mut a = Matrix::from_fn(n, n, |_, _| gs.sample(&mut rng));
        a.symmetrize();
        let mut serial = EigenWorkspace::new();
        let mut forked = EigenWorkspace::new();
        serial.decompose_parallel(&a).unwrap();
        forked.decompose_parallel_forced(&a).unwrap();
        assert_bits(serial.values(), forked.values())?;
        assert_bits(serial.vectors().as_slice(), forked.vectors().as_slice())?;
    }
}
