//! Property-based tests for the linear-algebra kernels.

use enkf_linalg::kernel::{gemm, reference};
use enkf_linalg::{
    Cholesky, EigenWorkspace, GaussianSampler, Ldlt, Matrix, ModifiedCholesky,
    ShermanMorrisonWorkspace,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random well-conditioned SPD matrix: A = M Mᵀ + (n+1)·I.
fn spd_strategy(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let m = Matrix::from_fn(n, n, |_, _| gs.sample(&mut rng));
        let mut a = m.matmul_tr(&m).unwrap().scale(1.0 / n as f64);
        for i in 0..n {
            a[(i, i)] += 1.0 + n as f64 * 0.1;
        }
        a
    })
}

fn matrix_strategy(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n, 1..=max_n, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        Matrix::from_fn(r, c, |_, _| gs.sample(&mut rng))
    })
}

/// Random matrix with a sprinkling of exact zeros (to exercise the NN
/// kernel's pinned zero-skip branch). Dimensions may be zero.
fn sparse_matrix(r: usize, c: usize, rng: &mut StdRng, gs: &mut GaussianSampler) -> Matrix {
    Matrix::from_fn(r, c, |_, _| {
        if rng.gen::<f64>() < 0.15 {
            0.0
        } else {
            gs.sample(rng)
        }
    })
}

/// GEMM shape triples including degenerate 1×N, N×1 and fully empty
/// operands (any of m, k, n may be 0). The output dimensions occasionally
/// exceed `kernel::tiles::BASE_M`/`BASE_N` so the recursive split — and,
/// with the fork threshold forced down, the actual `rayon::join` path —
/// gets exercised too.
fn gemm_shape() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    // Draws ≥ 34 are remapped past BASE_M/BASE_N so ~15% of cases recurse.
    let dim = || (0usize..=39).prop_map(|d| if d >= 34 { d + 95 } else { d });
    (dim(), 0usize..=21, dim(), any::<u64>())
}

/// Assert two equal-length f64 slices match bit-for-bit.
fn assert_bits(new: &[f64], old: &[f64]) -> std::result::Result<(), String> {
    prop_assert_eq!(new.len(), old.len());
    for (i, (a, b)) in new.iter().zip(old).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "element {} differs: {} vs {}",
            i,
            a,
            b
        );
    }
    Ok(())
}

/// Compare against the reference oracle: bit-for-bit under default
/// features, tight relative tolerance when the FMA fast path is active
/// (its exact bits are pinned separately in `kernel_conformance.rs`).
fn assert_matches_oracle(new: &[f64], oracle: &[f64]) -> std::result::Result<(), String> {
    if enkf_linalg::kernel::fma_active() {
        prop_assert_eq!(new.len(), oracle.len());
        for (i, (a, b)) in new.iter().zip(oracle).enumerate() {
            let tol = 1e-12 * (1.0 + b.abs());
            prop_assert!(
                (a - b).abs() <= tol,
                "element {} differs: {} vs {}",
                i,
                a,
                b
            );
        }
        Ok(())
    } else {
        assert_bits(new, oracle)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_roundtrips(a in spd_strategy(12)) {
        let ch = Cholesky::factor(&a).unwrap();
        let back = ch.l().matmul_tr(ch.l()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn cholesky_solve_has_small_residual(a in spd_strategy(12), seed in any::<u64>()) {
        let n = a.nrows();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let b = gs.vec(&mut rng, n);
        let x = Cholesky::factor(&a).unwrap().solve_vec(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-7 * (1.0 + bi.abs()));
        }
    }

    #[test]
    fn ldlt_matches_cholesky_for_spd(a in spd_strategy(10)) {
        let f = Ldlt::factor(&a).unwrap();
        prop_assert!(f.d().iter().all(|&d| d > 0.0));
        prop_assert!(f.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn transpose_is_involution(m in matrix_strategy(16)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_vector(m in matrix_strategy(10), seed in any::<u64>()) {
        // (A B) x == A (B x) for random conforming B, x.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let k = m.ncols();
        let b = Matrix::from_fn(k, 5, |_, _| gs.sample(&mut rng));
        let x = gs.vec(&mut rng, 5);
        let lhs = m.matmul(&b).unwrap().matvec(&x).unwrap();
        let rhs = m.matvec(&b.matvec(&x).unwrap()).unwrap();
        for (a, b) in lhs.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn tr_matmul_agrees_with_naive(m in matrix_strategy(10), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let other = Matrix::from_fn(m.nrows(), 4, |_, _| gs.sample(&mut rng));
        let fast = m.tr_matmul(&other).unwrap();
        let slow = m.transpose().matmul(&other).unwrap();
        prop_assert!(fast.approx_eq(&slow, 1e-10));
    }

    #[test]
    fn modified_cholesky_inverse_is_spd(n in 2usize..10, nens in 4usize..24, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let mut u = Matrix::from_fn(n, nens, |_, _| gs.sample(&mut rng));
        let means = u.row_means();
        u.subtract_row_vector(&means);
        let mc = ModifiedCholesky::estimate(&u, |i| (i.saturating_sub(3)..i).collect(), 1e-4).unwrap();
        let binv = mc.inverse_covariance();
        prop_assert!(Cholesky::factor(&binv).is_ok());
    }

    #[test]
    fn modified_cholesky_apply_matches_dense(n in 2usize..9, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let u = Matrix::from_fn(n, 12, |_, _| gs.sample(&mut rng));
        let mc = ModifiedCholesky::estimate(&u, |i| (i.saturating_sub(2)..i).collect(), 1e-5).unwrap();
        let x = gs.vec(&mut rng, n);
        let fast = mc.apply_inverse(&x).unwrap();
        let slow = mc.inverse_covariance().matvec(&x).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn row_means_invariant_under_anomaly_subtraction(m in matrix_strategy(12)) {
        let mut anomalies = m.clone();
        let means = anomalies.row_means();
        anomalies.subtract_row_vector(&means);
        for mean in anomalies.row_means() {
            prop_assert!(mean.abs() < 1e-10);
        }
    }
}

// The two C⁻¹ kernels of the batched (D-EnKF) analysis: the iterative
// Sherman-Morrison solve against factored references, across conditioning
// regimes. The first property solves the *same* matrix both ways, so the
// agreement is tight and only degrades with the condition number; the
// second compares SM against the modified-Cholesky inverse-covariance
// estimate, whose ridge enters through per-component regressions rather
// than a diagonal shift — an O(κ · ridge) modeling difference the
// tolerance makes explicit.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sherman_morrison_matches_cholesky_across_conditioning(
        m in 1usize..=12,
        n in 1usize..=8,
        nrhs in 1usize..=4,
        // Per-element R magnitudes drawn from 6 decades: mixing 1e-3 and
        // 1e3 variances in one diagonal is what stresses the rank-1 sweep.
        rexp in proptest::collection::vec(-3i32..=3, 12),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let r: Vec<f64> = (0..m).map(|i| 10f64.powi(rexp[i])).collect();
        let v = Matrix::from_fn(m, n, |_, _| gs.sample(&mut rng));
        let b = Matrix::from_fn(m, nrhs, |_, _| gs.sample(&mut rng));

        let mut c = v.matmul_tr(&v).unwrap();
        for (i, &ri) in r.iter().enumerate() {
            c[(i, i)] += ri;
        }
        c.symmetrize();
        let ch = Cholesky::factor(&c).unwrap();
        let oracle = ch.solve(&b).unwrap();

        let mut ws = ShermanMorrisonWorkspace::new();
        let z = ws.solve(&r, &v, &b).unwrap();

        // κ proxy from the factor diagonal: cond(C) ≈ (max lᵢᵢ / min lᵢᵢ)².
        let diag: Vec<f64> = (0..m).map(|i| ch.l()[(i, i)]).collect();
        let dmax = diag.iter().cloned().fold(f64::MIN, f64::max);
        let dmin = diag.iter().cloned().fold(f64::MAX, f64::min);
        let kappa = (dmax / dmin).powi(2);
        let xmax = oracle.max_abs();
        let tol = 1e-12 * kappa * (1.0 + xmax);
        for i in 0..m {
            for j in 0..nrhs {
                prop_assert!(
                    (z[(i, j)] - oracle[(i, j)]).abs() <= tol,
                    "({i},{j}): sm {} vs chol {} exceeds tol {tol:.3e} (κ ≈ {kappa:.3e})",
                    z[(i, j)],
                    oracle[(i, j)]
                );
            }
        }
    }

    #[test]
    fn sherman_morrison_agrees_with_modified_cholesky_inverse_covariance(
        n in 2usize..=7,
        extra in 6usize..=18,
        scale_exp in -2i32..=2,
        ridge_exp in -9i32..=-5,
        seed in any::<u64>(),
    ) {
        // Full-rank regime (N − 1 ≥ n + 5) with full predecessor sets: the
        // modified Cholesky is an exact LDL of the sample covariance up to
        // its regression ridge, so both kernels estimate the same B⁻¹.
        let nens = n + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let scale = 10f64.powi(scale_exp);
        let mut u = Matrix::from_fn(n, nens, |_, _| scale * gs.sample(&mut rng));
        let means = u.row_means();
        u.subtract_row_vector(&means);
        let denom = (nens - 1) as f64;
        let mean_var = u.as_slice().iter().map(|&x| x * x).sum::<f64>() / (denom * n as f64);
        let ridge_rel = 10f64.powi(ridge_exp);
        let lambda = ridge_rel * mean_var;

        let mc = ModifiedCholesky::estimate(&u, |i| (0..i).collect(), lambda).unwrap();
        let y = gs.vec(&mut rng, n);
        let x_mc = mc.inverse_covariance().matvec(&y).unwrap();

        // SM solves (λI + U Uᵀ/(N−1)) x = y — the diagonal-shift form of
        // the same ridge-regularized inverse.
        let v = u.scale(1.0 / denom.sqrt());
        let yb = Matrix::from_vec(n, 1, y.clone()).unwrap();
        let mut ws = ShermanMorrisonWorkspace::new();
        let x_sm = ws.solve(&vec![lambda; n], &v, &yb).unwrap();

        let mut c = v.matmul_tr(&v).unwrap();
        for i in 0..n {
            c[(i, i)] += lambda;
        }
        c.symmetrize();
        let ch = Cholesky::factor(&c).unwrap();
        let diag: Vec<f64> = (0..n).map(|i| ch.l()[(i, i)]).collect();
        let dmax = diag.iter().cloned().fold(f64::MIN, f64::max);
        let dmin = diag.iter().cloned().fold(f64::MAX, f64::min);
        let kappa = (dmax / dmin).powi(2);
        let xmax = x_mc.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        // Roundoff term plus the ridge-placement modeling difference
        // (per-regression ridge vs diagonal shift differ by O(κ · ridge)
        // with a modest constant), both amplified by the conditioning.
        let tol = kappa * (1e-10 + 300.0 * ridge_rel) * (1.0 + xmax);
        for i in 0..n {
            prop_assert!(
                (x_sm[(i, 0)] - x_mc[i]).abs() <= tol,
                "component {i}: sm {} vs modchol {} exceeds tol {tol:.3e} (κ ≈ {kappa:.3e})",
                x_sm[(i, 0)],
                x_mc[i]
            );
        }
    }
}

// Bit-identity of the kernel layer against the pre-refactor blocked loops
// (`kernel::reference`), across rectangular, degenerate and empty shapes,
// and with the fork threshold forced to 1 flop so the `rayon::join`
// recursion actually runs. Under default features every element must match
// to the last bit; these properties are what lets the rest of the codebase
// treat the GEMM rewrite as a pure perf change.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_nn_bit_identical_to_reference((m, k, n, seed) in gemm_shape()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let a = sparse_matrix(m, k, &mut rng, &mut gs);
        let b = sparse_matrix(k, n, &mut rng, &mut gs);
        let mut oracle = vec![0.0; m * n];
        reference::nn(a.as_slice(), b.as_slice(), &mut oracle, m, k, n);
        let fast = a.matmul(&b).unwrap();
        assert_matches_oracle(fast.as_slice(), &oracle)?;
        // Forcing every split to fork must not change a single bit: the
        // recursion only partitions the output, never the accumulation.
        let mut forked = vec![0.0; m * n];
        gemm::nn_tuned(a.as_slice(), b.as_slice(), &mut forked, m, k, n, true, 1);
        assert_bits(&forked, fast.as_slice())?;
    }

    #[test]
    fn gemm_tn_bit_identical_to_reference((m, k, n, seed) in gemm_shape()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let a = sparse_matrix(k, m, &mut rng, &mut gs);
        let b = sparse_matrix(k, n, &mut rng, &mut gs);
        let mut oracle = vec![0.0; m * n];
        reference::tn(a.as_slice(), b.as_slice(), &mut oracle, m, k, n);
        let fast = a.tr_matmul(&b).unwrap();
        assert_matches_oracle(fast.as_slice(), &oracle)?;
        let mut forked = vec![0.0; m * n];
        gemm::tn_tuned(a.as_slice(), b.as_slice(), &mut forked, m, k, n, true, 1);
        assert_bits(&forked, fast.as_slice())?;
    }

    #[test]
    fn gemm_nt_bit_identical_to_reference((m, k, n, seed) in gemm_shape()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let a = sparse_matrix(m, k, &mut rng, &mut gs);
        let b = sparse_matrix(n, k, &mut rng, &mut gs);
        let mut oracle = vec![0.0; m * n];
        reference::nt(a.as_slice(), b.as_slice(), &mut oracle, m, k, n);
        let fast = a.matmul_tr(&b).unwrap();
        assert_matches_oracle(fast.as_slice(), &oracle)?;
        let mut forked = vec![0.0; m * n];
        gemm::nt_tuned(a.as_slice(), b.as_slice(), &mut forked, m, k, n, true, 1);
        assert_bits(&forked, fast.as_slice())?;
    }

    #[test]
    fn matvec_bit_identical_to_reference(
        m in 0usize..=40, k in 0usize..=40, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let a = sparse_matrix(m, k, &mut rng, &mut gs);
        let x: Vec<f64> = (0..k).map(|_| gs.sample(&mut rng)).collect();
        let mut oracle = Vec::new();
        reference::matvec(a.as_slice(), &x, &mut oracle, m, k);
        let fast = a.matvec(&x).unwrap();
        assert_bits(&fast, &oracle)?;
    }
}

// The parallel-ordering Jacobi solve: forcing the fork path on a
// single-core host must reproduce the serial-schedule bits exactly —
// the cross-thread-count determinism claim.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_eigensolve_fork_path_is_bit_stable(
        n in 48usize..=53, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let mut a = Matrix::from_fn(n, n, |_, _| gs.sample(&mut rng));
        a.symmetrize();
        let mut serial = EigenWorkspace::new();
        let mut forked = EigenWorkspace::new();
        serial.decompose_parallel(&a).unwrap();
        forked.decompose_parallel_forced(&a).unwrap();
        assert_bits(serial.values(), forked.values())?;
        assert_bits(serial.vectors().as_slice(), forked.vectors().as_slice())?;
    }
}
