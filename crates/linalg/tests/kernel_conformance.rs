//! Kernel conformance suite — the contract CI runs under every feature
//! combination (default, `--features fast-math`, `--no-default-features`):
//!
//! 1. **Default-feature bit-identity**: when the FMA fast path is *not*
//!    active, every GEMM flavour (including the forced fork path that
//!    splits across scoped threads) reproduces `kernel::reference`
//!    byte-for-byte on fixed shapes chosen to cross every tile boundary.
//! 2. **Run-to-run determinism**: two invocations of any kernel produce
//!    identical FNV-64 digests, under *all* features. The fast-math
//!    kernels may reassociate relative to the reference, but they must
//!    never be nondeterministic.
//! 3. **Fast-math confinement**: when FMA is active its results stay
//!    within a tight relative tolerance of the reference, and its exact
//!    bit patterns are pinned by digest so any codegen drift is caught
//!    rather than silently shipped.

use enkf_linalg::kernel::{self, gemm, reference};
use enkf_linalg::{EigenWorkspace, GaussianSampler, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a over the little-endian bytes of the slice — the same digest
/// construction the trace/digest conformance suites use.
fn fnv64(data: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in data {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn random_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gs = GaussianSampler::new();
    Matrix::from_fn(r, c, |_, _| gs.sample(&mut rng))
}

/// Shapes crossing every boundary the kernels care about: the recursive
/// split (>128 rows/cols, forcing real `rayon::join` forks with the flop
/// gate lowered), partial MR/NR edge tiles, k past one NT chunk, and
/// degenerate single-row/column outputs.
const SHAPES: &[(usize, usize, usize)] = &[
    (200, 17, 150),
    (300, 3, 40),
    (40, 70, 300),
    (129, 1, 129),
    (1, 64, 1),
    (131, 131, 5),
];

fn assert_bits(new: &[f64], old: &[f64], what: &str) {
    assert_eq!(new.len(), old.len(), "{what}: length");
    for (i, (a, b)) in new.iter().zip(old).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: element {i}: {a} vs {b}");
    }
}

fn assert_close(new: &[f64], old: &[f64], what: &str) {
    assert_eq!(new.len(), old.len(), "{what}: length");
    for (i, (a, b)) in new.iter().zip(old).enumerate() {
        let tol = 1e-12 * (1.0 + b.abs());
        assert!((a - b).abs() <= tol, "{what}: element {i}: {a} vs {b}");
    }
}

/// Run all three GEMM flavours through the tuned entry points with the
/// fork gate lowered to 1 flop, so split shapes exercise real threads.
fn run_all(m: usize, k: usize, n: usize, seed: u64) -> [(Vec<f64>, Vec<f64>); 3] {
    let a_nn = random_matrix(m, k, seed);
    let b_nn = random_matrix(k, n, seed ^ 1);
    let a_tn = random_matrix(k, m, seed ^ 2);
    let b_tn = random_matrix(k, n, seed ^ 3);
    let a_nt = random_matrix(m, k, seed ^ 4);
    let b_nt = random_matrix(n, k, seed ^ 5);

    let mut out = [
        (vec![0.0; m * n], vec![0.0; m * n]),
        (vec![0.0; m * n], vec![0.0; m * n]),
        (vec![0.0; m * n], vec![0.0; m * n]),
    ];
    gemm::nn_tuned(
        a_nn.as_slice(),
        b_nn.as_slice(),
        &mut out[0].0,
        m,
        k,
        n,
        true,
        1,
    );
    reference::nn(a_nn.as_slice(), b_nn.as_slice(), &mut out[0].1, m, k, n);
    gemm::tn_tuned(
        a_tn.as_slice(),
        b_tn.as_slice(),
        &mut out[1].0,
        m,
        k,
        n,
        true,
        1,
    );
    reference::tn(a_tn.as_slice(), b_tn.as_slice(), &mut out[1].1, m, k, n);
    gemm::nt_tuned(
        a_nt.as_slice(),
        b_nt.as_slice(),
        &mut out[2].0,
        m,
        k,
        n,
        true,
        1,
    );
    reference::nt(a_nt.as_slice(), b_nt.as_slice(), &mut out[2].1, m, k, n);
    out
}

#[test]
fn gemm_conformance_against_reference() {
    let fma = kernel::fma_active();
    println!(
        "kernel conformance: isa={} fma_active={}",
        kernel::active_isa().name(),
        fma
    );
    for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
        let results = run_all(m, k, n, 1000 + si as u64);
        for (flavour, (new, old)) in ["nn", "tn", "nt"].iter().zip(&results) {
            let what = format!("{flavour} {m}x{k}x{n}");
            if fma {
                // Reassociation confined to a tolerance band; exact bits
                // are pinned separately by the digest test.
                assert_close(new, old, &what);
            } else {
                assert_bits(new, old, &what);
            }
        }
    }
}

#[test]
fn kernels_are_run_to_run_deterministic() {
    for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
        let first = run_all(m, k, n, 2000 + si as u64);
        let second = run_all(m, k, n, 2000 + si as u64);
        for (flavour, (one, two)) in ["nn", "tn", "nt"]
            .iter()
            .zip(first.iter().map(|r| &r.0).zip(second.iter().map(|r| &r.0)))
        {
            assert_eq!(
                fnv64(one),
                fnv64(two),
                "{flavour} {m}x{k}x{n}: nondeterministic result"
            );
        }
    }
}

#[test]
fn parallel_eigensolve_forced_fork_matches_serial_schedule() {
    // The cross-thread-count determinism claim, independent of features:
    // forcing the fork path must not change a bit relative to running the
    // identical rotation schedule sequentially.
    let n = 52;
    let mut sym = random_matrix(n, n, 77);
    sym.symmetrize();
    let mut a = EigenWorkspace::new();
    let mut b = EigenWorkspace::new();
    a.decompose_parallel(&sym).unwrap();
    b.decompose_parallel_forced(&sym).unwrap();
    assert_bits(a.values(), b.values(), "eigenvalues");
    assert_bits(
        a.vectors().as_slice(),
        b.vectors().as_slice(),
        "eigenvectors",
    );
    // And twice through the same workspace stays bitwise stable.
    let v1 = fnv64(a.values());
    a.decompose_parallel(&sym).unwrap();
    assert_eq!(v1, fnv64(a.values()));
}

/// Pinned digests for the FMA fast path on x86-64 AVX2+FMA hosts. These
/// bits are *allowed* to differ from the reference (that is the point of
/// `fast-math`) but they are not allowed to drift silently: a toolchain
/// or kernel change that alters them must update the pins consciously.
#[cfg(feature = "fast-math")]
#[test]
fn fast_math_digests_are_pinned() {
    if !kernel::fma_active() {
        println!("fast-math digest pins skipped: FMA not active on this host");
        return;
    }
    const PINS: &[(usize, usize, usize, [u64; 3])] = &[
        (
            200,
            17,
            150,
            [0xe5257cd71a0b776d, 0x3fad0e9c4cb2f3a2, 0x8df86edb93b345d0],
        ),
        (
            131,
            131,
            5,
            [0xf0b6c7442c5e6987, 0x3144c613132639bd, 0x816f07d71a19bea9],
        ),
    ];
    for &(m, k, n, expect) in PINS {
        let results = run_all(m, k, n, 4000 + m as u64);
        let got = [
            fnv64(&results[0].0),
            fnv64(&results[1].0),
            fnv64(&results[2].0),
        ];
        println!(
            "PIN ({m}, {k}, {n}, [{:#x}, {:#x}, {:#x}]),",
            got[0], got[1], got[2]
        );
        assert_eq!(got, expect, "fast-math digest drift at {m}x{k}x{n}");
    }
}
