//! Cholesky and LDLᵀ factorizations with triangular solves.
//!
//! The local analysis (Eq. 6) solves SPD systems with the matrix
//! `B̂⁻¹ + Hᵀ R⁻¹ H`; operationally this is done with a Cholesky
//! factorization (paper §2.3). LDLᵀ is provided as the square-root-free
//! variant used by the modified-Cholesky covariance estimator.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Fails with
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
    /// positive.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite(i));
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Borrow the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solve `A x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimMismatch {
                op: "Cholesky::solve_vec",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        // Forward substitution L y = b.
        for i in 0..n {
            let mut sum = y[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solve `A X = B` column-by-column.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.nrows() != n {
            return Err(LinalgError::DimMismatch {
                op: "Cholesky::solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let x = self.solve_vec(&b.col(j))?;
            out.set_col(j, &x);
        }
        Ok(out)
    }

    /// Explicit inverse `A⁻¹` (solve against the identity). Use sparingly;
    /// `solve` is cheaper and more accurate when a product is all that is
    /// needed.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        self.solve(&Matrix::identity(n))
            .expect("identity has matching dimension")
    }

    /// `log det A = 2 Σ log L[i][i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Reusable buffer for repeated Cholesky factorizations and solves.
///
/// The local analysis factors one SPD system per grid point; with a
/// workspace the factor storage is reused across points and the solve runs
/// in place on a caller-owned right-hand side, so the steady-state path
/// never allocates. The arithmetic is identical to [`Cholesky`], entry for
/// entry.
#[derive(Debug, Clone)]
pub struct CholWorkspace {
    l: Matrix,
}

impl Default for CholWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl CholWorkspace {
    /// An empty workspace; the factor buffer grows on first use.
    pub fn new() -> Self {
        CholWorkspace {
            l: Matrix::zeros(0, 0),
        }
    }

    /// Factor a symmetric positive-definite matrix into the reused buffer.
    ///
    /// Same algorithm and error behavior as [`Cholesky::factor`]; only the
    /// lower triangle of `a` is read.
    pub fn factor(&mut self, a: &Matrix) -> Result<()> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        self.l.resize(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= self.l[(i, k)] * self.l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite(i));
                    }
                    self.l[(i, j)] = sum.sqrt();
                } else {
                    self.l[(i, j)] = sum / self.l[(j, j)];
                }
            }
        }
        Ok(())
    }

    /// Dimension of the last factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Borrow the lower-triangular factor of the last factorization.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` in place: `x` holds `b` on entry, the solution on
    /// exit. Same substitution order as [`Cholesky::solve_vec`].
    pub fn solve_in_place(&self, x: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::DimMismatch {
                op: "CholWorkspace::solve_in_place",
                lhs: (n, n),
                rhs: (x.len(), 1),
            });
        }
        // Forward substitution L y = b.
        for i in 0..n {
            let mut sum = x[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        // Back substitution Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(())
    }
}

/// Square-root-free factorization `A = L D Lᵀ` with unit lower-triangular `L`.
#[derive(Debug, Clone)]
pub struct Ldlt {
    l: Matrix,
    d: Vec<f64>,
}

impl Ldlt {
    /// Factor a symmetric matrix. Pivots may be any nonzero value, so this
    /// also handles indefinite (but still factorizable) matrices; a zero
    /// pivot is reported as [`LinalgError::NotPositiveDefinite`].
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        let mut l = Matrix::identity(n);
        let mut d = vec![0.0; n];
        for j in 0..n {
            let mut dj = a[(j, j)];
            for k in 0..j {
                dj -= l[(j, k)] * l[(j, k)] * d[k];
            }
            if dj == 0.0 || !dj.is_finite() {
                return Err(LinalgError::NotPositiveDefinite(j));
            }
            d[j] = dj;
            for i in (j + 1)..n {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)] * d[k];
                }
                l[(i, j)] = sum / dj;
            }
        }
        Ok(Ldlt { l, d })
    }

    /// Borrow the unit lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Borrow the diagonal of `D`.
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Reassemble `L D Lᵀ` (diagnostics / tests).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.d.len();
        let mut ld = self.l.clone();
        for j in 0..n {
            for i in 0..n {
                ld[(i, j)] *= self.d[j];
            }
        }
        ld.matmul_tr(&self.l).expect("shapes agree by construction")
    }

    /// Solve `A x = b`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.d.len();
        if b.len() != n {
            return Err(LinalgError::DimMismatch {
                op: "Ldlt::solve_vec",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
        }
        for i in 0..n {
            y[i] /= self.d[i];
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[(k, i)] * y[k];
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A well-conditioned SPD test matrix: A = M Mᵀ + n·I.
    fn spd(n: usize) -> Matrix {
        let m = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0);
        let mut a = m.matmul_tr(&m).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(8);
        let ch = Cholesky::factor(&a).unwrap();
        let back = ch.l().matmul_tr(ch.l()).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite(1))
        ));
    }

    #[test]
    fn solve_vec_residual_small() {
        let a = spd(10);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let x = ch.solve_vec(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_matrix_matches_columnwise() {
        let a = spd(6);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_fn(6, 3, |i, j| (i + j) as f64);
        let x = ch.solve(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-9));
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = spd(7);
        let inv = Cholesky::factor(&a).unwrap().inverse();
        let prod = inv.matmul(&a).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(7), 1e-8));
    }

    #[test]
    fn log_det_of_diagonal() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (24.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn chol_workspace_matches_cholesky_bitwise_across_reuse() {
        let mut ws = CholWorkspace::new();
        for n in [8usize, 3, 10, 6] {
            let a = spd(n);
            let ch = Cholesky::factor(&a).unwrap();
            ws.factor(&a).unwrap();
            assert_eq!(ws.l(), ch.l());
            assert_eq!(ws.dim(), n);
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            let mut x = b.clone();
            ws.solve_in_place(&mut x).unwrap();
            assert_eq!(x, ch.solve_vec(&b).unwrap());
        }
    }

    #[test]
    fn chol_workspace_rejects_bad_inputs() {
        let mut ws = CholWorkspace::new();
        assert!(ws.factor(&Matrix::zeros(2, 3)).is_err());
        let indefinite = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            ws.factor(&indefinite),
            Err(LinalgError::NotPositiveDefinite(1))
        ));
        ws.factor(&spd(4)).unwrap();
        let mut wrong = vec![0.0; 3];
        assert!(ws.solve_in_place(&mut wrong).is_err());
    }

    #[test]
    fn ldlt_reconstructs_and_solves() {
        let a = spd(9);
        let f = Ldlt::factor(&a).unwrap();
        assert!(f.reconstruct().approx_eq(&a, 1e-9));
        let b: Vec<f64> = (0..9).map(|i| 1.0 + i as f64).collect();
        let x = f.solve_vec(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn ldlt_unit_diagonal() {
        let a = spd(5);
        let f = Ldlt::factor(&a).unwrap();
        for i in 0..5 {
            assert_eq!(f.l()[(i, i)], 1.0);
        }
        assert!(f.d().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn ldlt_handles_indefinite() {
        // Symmetric indefinite but LDLT-factorizable without pivoting.
        let a = Matrix::from_vec(2, 2, vec![2.0, 3.0, 3.0, 1.0]).unwrap();
        let f = Ldlt::factor(&a).unwrap();
        assert!(f.reconstruct().approx_eq(&a, 1e-12));
        assert!(f.d()[1] < 0.0);
    }
}
