//! Householder QR factorization and least squares.
//!
//! An orthogonalization-based alternative to the normal-equations ridge
//! solver in [`crate::lstsq`]: numerically safer when a localization
//! neighborhood produces an ill-conditioned design matrix, at roughly twice
//! the flops. The modified-Cholesky estimator accepts either solver; QR is
//! also reused by tests as an independent oracle.

use crate::{LinalgError, Matrix, Result};

/// A compact Householder QR factorization of a tall (or square) matrix.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors below the diagonal; `R` on and above it.
    factors: Matrix,
    /// Scaling coefficients `tau` of the reflectors.
    tau: Vec<f64>,
}

impl Qr {
    /// Factor `a` (`m × n`, requires `m ≥ n`).
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::DimMismatch {
                op: "Qr::factor (needs rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut f = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the reflector for column k.
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += f[(i, k)] * f[(i, k)];
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if f[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = f[(k, k)] - alpha;
            // Normalize so v[k] = 1 implicitly; store v[i]/v0 below diag.
            for i in (k + 1)..m {
                let scaled = f[(i, k)] / v0;
                f[(i, k)] = scaled;
            }
            tau[k] = -v0 / alpha;
            f[(k, k)] = alpha;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = f[(k, j)];
                for i in (k + 1)..m {
                    dot += f[(i, k)] * f[(i, j)];
                }
                let t = tau[k] * dot;
                f[(k, j)] -= t;
                for i in (k + 1)..m {
                    let vik = f[(i, k)];
                    f[(i, j)] -= t * vik;
                }
            }
        }
        Ok(Qr { factors: f, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn nrows(&self) -> usize {
        self.factors.nrows()
    }

    /// Number of columns of the factored matrix.
    pub fn ncols(&self) -> usize {
        self.factors.ncols()
    }

    /// Apply `Qᵀ` to a vector in place.
    fn apply_qt(&self, x: &mut [f64]) {
        let (m, n) = self.factors.shape();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut dot = x[k];
            for i in (k + 1)..m {
                dot += self.factors[(i, k)] * x[i];
            }
            let t = self.tau[k] * dot;
            x[k] -= t;
            for i in (k + 1)..m {
                x[i] -= t * self.factors[(i, k)];
            }
        }
    }

    /// Solve the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// Fails with [`LinalgError::NotPositiveDefinite`] when `R` has a zero
    /// diagonal entry (rank-deficient `A`).
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.factors.shape();
        if b.len() != m {
            return Err(LinalgError::DimMismatch {
                op: "Qr::solve_least_squares",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on R; a (numerically) zero pivot flags rank
        // deficiency.
        let rmax = (0..n)
            .map(|i| self.factors[(i, i)].abs())
            .fold(0.0f64, f64::max);
        let tol = 1e-12 * rmax.max(f64::MIN_POSITIVE);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let rii = self.factors[(i, i)];
            if rii.abs() <= tol {
                return Err(LinalgError::NotPositiveDefinite(i));
            }
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.factors[(i, j)] * x[j];
            }
            x[i] = sum / rii;
        }
        Ok(x)
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> Matrix {
        let n = self.ncols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.factors[(i, j)] } else { 0.0 })
    }
}

/// One-shot least squares `min ‖A x − b‖₂` via Householder QR.
pub fn qr_least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ridge_least_squares, GaussianSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        Matrix::from_fn(m, n, |_, _| gs.sample(&mut rng))
    }

    #[test]
    fn exact_solve_square_system() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x_true = [1.0, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = qr_least_squares(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_matches_normal_equations() {
        let a = random(20, 5, 3);
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).sin()).collect();
        let qr = qr_least_squares(&a, &b).unwrap();
        let ne = ridge_least_squares(&a, &b, 0.0).unwrap();
        for (x, y) in qr.iter().zip(&ne) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a = random(15, 4, 8);
        let b: Vec<f64> = (0..15).map(|i| 1.0 + i as f64).collect();
        let x = qr_least_squares(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        // Aᵀ r ≈ 0.
        for j in 0..4 {
            let dot: f64 = (0..15).map(|i| a[(i, j)] * r[i]).sum();
            assert!(dot.abs() < 1e-9, "column {j}: {dot}");
        }
    }

    #[test]
    fn r_factor_is_upper_triangular_with_correct_gram() {
        let a = random(12, 6, 4);
        let qr = Qr::factor(&a).unwrap();
        let r = qr.r();
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        // RᵀR == AᵀA.
        let rtr = r.tr_matmul(&r).unwrap();
        let ata = a.tr_matmul(&a).unwrap();
        assert!(rtr.approx_eq(&ata, 1e-9));
    }

    #[test]
    fn wide_matrix_rejected() {
        assert!(Qr::factor(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn rank_deficient_detected() {
        // Two identical columns.
        let a = Matrix::from_vec(4, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]).unwrap();
        let err = qr_least_squares(&a, &[1.0, 2.0, 3.0, 4.0]);
        assert!(err.is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let a = random(6, 2, 1);
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }
}
