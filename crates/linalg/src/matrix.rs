//! Dense row-major matrix type; products dispatch to the kernel layer.
//!
//! All tiling constants and parallel-dispatch heuristics live in
//! [`crate::kernel::tiles`]; the products here are thin shape-checked
//! wrappers over [`crate::kernel::gemm`].

use crate::kernel::gemm;
use crate::{LinalgError, Result};

/// A dense row-major matrix of `f64`.
///
/// All EnKF operands (ensembles, observation operators, covariance factors)
/// are instances of this type. Storage is a single contiguous `Vec<f64>`;
/// element `(i, j)` lives at `i * ncols + j`.
///
/// ```
/// use enkf_linalg::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let x = a.matvec(&[1.0, 1.0]).unwrap();
/// assert_eq!(x, vec![3.0, 7.0]);
/// let b = a.matmul(&Matrix::identity(2)).unwrap();
/// assert_eq!(b, a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create an `nrows x ncols` matrix filled with zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Matrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Create a matrix from a closure evaluated at every `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        Matrix { nrows, ncols, data }
    }

    /// Create a matrix that takes ownership of a row-major buffer.
    ///
    /// Returns an error if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(LinalgError::DimMismatch {
                op: "Matrix::from_vec",
                lhs: (nrows, ncols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { nrows, ncols, data })
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reshape to `nrows x ncols` and zero-fill, reusing the allocation.
    ///
    /// This is the workspace-reuse primitive behind the `_into` product
    /// variants: once a buffer has grown to its steady-state size, repeated
    /// `resize` calls never touch the allocator.
    pub fn resize(&mut self, nrows: usize, ncols: usize) {
        self.nrows = nrows;
        self.ncols = ncols;
        self.data.clear();
        self.data.resize(nrows * ncols, 0.0);
    }

    /// Become an elementwise copy of `other`, reusing the allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.nrows = other.nrows;
        self.ncols = other.ncols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Reset to the `n x n` identity, reusing the allocation.
    pub fn resize_identity(&mut self, n: usize) {
        self.resize(n, n);
        for i in 0..n {
            self.data[i * n + i] = 1.0;
        }
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.nrows).map(|i| self[(i, j)]).collect()
    }

    /// Copy column `j` into a caller-owned buffer (allocation-free once
    /// the buffer has capacity).
    pub fn col_into(&self, j: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.nrows).map(|i| self[(i, j)]));
    }

    /// Overwrite column `j` with the given values.
    pub fn set_col(&mut self, j: usize, values: &[f64]) {
        assert_eq!(values.len(), self.nrows, "set_col length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// Return the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Elementwise sum; errors on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "Matrix::add", |a, b| a + b)
    }

    /// Elementwise difference; errors on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "Matrix::sub", |a, b| a - b)
    }

    /// In-place `self += alpha * other`; errors on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimMismatch {
                op: "Matrix::axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect::<Vec<_>>();
        Ok(Matrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        })
    }

    /// Return `alpha * self` as a new matrix.
    pub fn scale(&self, alpha: f64) -> Matrix {
        let data = self.data.iter().map(|&a| alpha * a).collect();
        Matrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        }
    }

    /// Matrix-vector product `self * x`; errors when `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// Matrix-vector product `self * x` written into a caller-owned buffer.
    ///
    /// `out` is cleared and refilled; at steady state no allocation occurs.
    pub fn matvec_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if x.len() != self.ncols {
            return Err(LinalgError::DimMismatch {
                op: "Matrix::matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        gemm::matvec(&self.data, x, out, self.nrows, self.ncols);
        Ok(())
    }

    /// Matrix product `self * other` via the cache-oblivious kernel layer.
    ///
    /// The recursion forks `rayon::join` once a subproblem carries enough
    /// flops (`kernel::tiles::PAR_FLOPS`); below that the serial path wins.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// `self * other` written into a caller-owned matrix.
    ///
    /// `out` is resized (allocation-free at steady state) and overwritten.
    /// Same kernel and accumulation order as [`Matrix::matmul`], so results
    /// are bit-identical.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.ncols != other.nrows {
            return Err(LinalgError::DimMismatch {
                op: "Matrix::matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.nrows, self.ncols, other.ncols);
        out.resize(m, n);
        gemm::nn(&self.data, &other.data, &mut out.data, m, k, n);
        Ok(())
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn tr_matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.tr_matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// `selfᵀ * other` written into a caller-owned matrix.
    ///
    /// The per-element accumulation order (ascending shared index) is
    /// independent of the kernel recursion's splits, so serial and parallel
    /// paths produce bit-identical results.
    pub fn tr_matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.nrows != other.nrows {
            return Err(LinalgError::DimMismatch {
                op: "Matrix::tr_matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.ncols, self.nrows, other.ncols);
        out.resize(m, n);
        gemm::tn(&self.data, &other.data, &mut out.data, m, k, n);
        Ok(())
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_tr(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_tr_into(other, &mut out)?;
        Ok(out)
    }

    /// `self * otherᵀ` written into a caller-owned matrix.
    ///
    /// The contraction dimension is chunked (`kernel::tiles::NT_KC`) into
    /// partial dot products exactly as the legacy kernel chunked it, so
    /// accumulation per element is deterministic regardless of thread count.
    pub fn matmul_tr_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.ncols != other.ncols {
            return Err(LinalgError::DimMismatch {
                op: "Matrix::matmul_tr",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.nrows, self.ncols, other.nrows);
        out.resize(m, n);
        gemm::nt(&self.data, &other.data, &mut out.data, m, k, n);
        Ok(())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&a| a * a).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (∞-entrywise norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &a| m.max(a.abs()))
    }

    /// Mean of each row (used for the ensemble mean x̄ᵇ, Eq. 4).
    pub fn row_means(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.row_means_into(&mut out);
        out
    }

    /// Mean of each row written into a caller-owned buffer.
    pub fn row_means_into(&self, out: &mut Vec<f64>) {
        let inv = 1.0 / self.ncols as f64;
        out.clear();
        out.extend((0..self.nrows).map(|i| self.row(i).iter().sum::<f64>() * inv));
    }

    /// Subtract `v[i]` from every entry of row `i` (anomaly computation, Eq. 4).
    pub fn subtract_row_vector(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.nrows, "subtract_row_vector length mismatch");
        for i in 0..self.nrows {
            let vi = v[i];
            for a in self.row_mut(i) {
                *a -= vi;
            }
        }
    }

    /// Extract the sub-matrix of the given rows (gather), preserving order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.select_rows_into(rows, &mut out);
        out
    }

    /// Row gather written into a caller-owned matrix.
    pub fn select_rows_into(&self, rows: &[usize], out: &mut Matrix) {
        out.resize(rows.len(), self.ncols);
        for (oi, &ri) in rows.iter().enumerate() {
            out.row_mut(oi).copy_from_slice(self.row(ri));
        }
    }

    /// True when `self` and `other` agree entrywise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }

    /// Symmetrize in place: `self = (self + selfᵀ) / 2`. Useful before a
    /// Cholesky factorization of a product that is symmetric only up to
    /// rounding.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn indexing_row_major() {
        let m = small();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = small();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = small();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
        let i2 = Matrix::identity(2);
        assert_eq!(i2.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = small();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = small();
        assert!(a.matmul(&small()).is_err());
    }

    #[test]
    fn tr_matmul_matches_explicit_transpose() {
        let a = small();
        let b = Matrix::from_vec(2, 4, (0..8).map(|x| x as f64).collect()).unwrap();
        let expect = a.transpose().matmul(&b).unwrap();
        let got = a.tr_matmul(&b).unwrap();
        assert!(got.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_tr_matches_explicit_transpose() {
        let a = small();
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f64).collect()).unwrap();
        let expect = a.matmul(&b.transpose()).unwrap();
        let got = a.matmul_tr(&b).unwrap();
        assert!(got.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matvec_known() {
        let a = small();
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn row_means_and_anomalies() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 3.0, 10.0, 20.0]).unwrap();
        let means = m.row_means();
        assert_eq!(means, vec![2.0, 15.0]);
        m.subtract_row_vector(&means);
        assert_eq!(m.as_slice(), &[-1.0, 1.0, -5.0, 5.0]);
    }

    #[test]
    fn select_rows_gathers_in_order() {
        let m = small();
        let s = m.select_rows(&[1, 0]);
        assert_eq!(s.row(0), m.row(1));
        assert_eq!(s.row(1), m.row(0));
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 4.0, 3.0]).unwrap();
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn large_parallel_matmul_matches_serial() {
        let n = 300;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 17) as f64 - 8.0);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
        let big = a.matmul(&b).unwrap();
        // Compare a few spot entries against a direct dot product.
        for &(i, j) in &[(0, 0), (17, 250), (299, 299), (150, 3)] {
            let direct: f64 = (0..n).map(|l| a[(i, l)] * b[(l, j)]).sum();
            assert!((big[(i, j)] - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn into_variants_match_allocating_counterparts() {
        let a = Matrix::from_fn(7, 5, |i, j| (i * 5 + j) as f64 * 0.25 - 4.0);
        let b = Matrix::from_fn(5, 9, |i, j| ((i * 9 + j) % 13) as f64 - 6.0);
        let c = Matrix::from_fn(7, 5, |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        // Pre-dirty the outputs with wrong shapes to exercise resize.
        let mut out = Matrix::from_fn(2, 2, |_, _| 99.0);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        a.tr_matmul_into(&c, &mut out).unwrap();
        assert_eq!(out, a.tr_matmul(&c).unwrap());
        a.matmul_tr_into(&c, &mut out).unwrap();
        assert_eq!(out, a.matmul_tr(&c).unwrap());
        let x: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let mut v = vec![7.0; 3];
        a.matvec_into(&x, &mut v).unwrap();
        assert_eq!(v, a.matvec(&x).unwrap());
        let mut means = vec![1.0];
        a.row_means_into(&mut means);
        assert_eq!(means, a.row_means());
        let mut sel = Matrix::zeros(1, 1);
        a.select_rows_into(&[6, 0, 3], &mut sel);
        assert_eq!(sel, a.select_rows(&[6, 0, 3]));
    }

    #[test]
    fn resize_and_copy_from_reuse_buffers() {
        let mut m = Matrix::from_fn(4, 4, |_, _| 5.0);
        let cap = m.data.capacity();
        m.resize(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.data.capacity(), cap);
        let src = small();
        m.copy_from(&src);
        assert_eq!(m, src);
        assert_eq!(m.data.capacity(), cap);
        m.resize_identity(3);
        assert_eq!(m, Matrix::identity(3));
    }

    #[test]
    fn large_parallel_tr_matmul_matches_transpose() {
        // Large enough to cross PAR_THRESHOLD and the flop cutoff; includes
        // exact zeros to cover the removed skip branch.
        let n = 300;
        let a = Matrix::from_fn(n, n, |i, j| (((i * 7 + j * 13) % 17) as f64 - 8.0).max(0.0));
        let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
        let got = a.tr_matmul(&b).unwrap();
        for &(i, j) in &[(0, 0), (17, 250), (299, 299), (150, 3)] {
            let direct: f64 = (0..n).map(|l| a[(l, i)] * b[(l, j)]).sum();
            assert!((got[(i, j)] - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn large_parallel_matmul_tr_matches_transpose() {
        let n = 300;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 17) as f64 - 8.0);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
        let got = a.matmul_tr(&b).unwrap();
        for &(i, j) in &[(0, 0), (17, 250), (299, 299), (150, 3)] {
            let direct: f64 = (0..n).map(|l| a[(i, l)] * b[(j, l)]).sum();
            assert!((got[(i, j)] - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::identity(2);
        a.axpy(2.5, &b).unwrap();
        assert_eq!(a[(0, 0)], 2.5);
        assert_eq!(a[(0, 1)], 0.0);
    }
}
