//! Symmetric eigendecomposition via the cyclic Jacobi method, with a
//! parallel-ordering variant for larger Gram matrices.
//!
//! The deterministic ensemble-space formulation of the EnKF (the LETKF of
//! Ott et al. 2004, which the paper's L-EnKF baselines build on) needs the
//! eigendecomposition of an `N × N` symmetric matrix in ensemble space —
//! `N` is the ensemble size, so a simple, robust Jacobi sweep is entirely
//! adequate and keeps the stack dependency-free.
//!
//! The observation-space dual transform additionally solves an `m̄ × m̄`
//! Gram eigenproblem per local analysis — the serial residue of the
//! pointwise LETKF loop. [`EigenWorkspace::decompose_parallel`] runs
//! *parallel-ordering* Jacobi for that path: each sweep is a round-robin
//! tournament of `n−1` rounds of ⌊n/2⌋ **disjoint** rotation pairs; all
//! rotation angles of a round are computed from the same matrix snapshot
//! (legal because disjoint rotations don't touch each other's defining
//! entries), then applied as one row phase + one column phase. Every
//! element sees a fixed op sequence per round, so results are
//! **deterministic and thread-count independent** — but the rotation
//! *ordering* differs from the serial cyclic sweep, so they are not
//! bit-identical to [`EigenWorkspace::decompose`]. Under default features
//! `decompose` therefore always runs the serial kernel; with the
//! `fast-math` feature it routes orders ≥ `kernel::tiles::PAR_JACOBI_MIN`
//! to the parallel kernel.

use crate::kernel::tiles::PAR_JACOBI_MIN;
use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as *columns* (`V`), ordered like `values`.
    pub vectors: Matrix,
}

impl SymEigen {
    /// Decompose a symmetric matrix with cyclic Jacobi rotations.
    ///
    /// Only the lower triangle is trusted; the matrix is symmetrized
    /// internally. Converges quadratically; `max_sweeps` bounds the work
    /// (15 sweeps are far more than small ensemble-space problems need).
    ///
    /// Convenience wrapper over [`EigenWorkspace::decompose`]; both run the
    /// same kernel, so their results are bit-identical.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        let mut ws = EigenWorkspace::new();
        ws.decompose(a)?;
        Ok(SymEigen {
            values: ws.values,
            vectors: ws.vectors,
        })
    }

    /// Reassemble `V diag(λ) Vᵀ` (diagnostics / tests).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut scaled = self.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                scaled[(i, j)] *= self.values[j];
            }
        }
        scaled.matmul_tr(&self.vectors).expect("square")
    }

    /// Apply `f` to the spectrum: `V diag(f(λ)) Vᵀ`. The workhorse for the
    /// ETKF's inverse and symmetric square root.
    pub fn map_spectrum(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let n = self.values.len();
        let mut scaled = self.vectors.clone();
        for j in 0..n {
            let fj = f(self.values[j]);
            for i in 0..n {
                scaled[(i, j)] *= fj;
            }
        }
        let mut out = scaled.matmul_tr(&self.vectors).expect("square");
        out.symmetrize();
        out
    }

    /// Smallest eigenvalue.
    pub fn min_eigenvalue(&self) -> f64 {
        *self.values.first().expect("non-empty spectrum")
    }
}

/// Reusable buffers for repeated symmetric eigendecompositions.
///
/// The LETKF solves one small ensemble-space eigenproblem per grid point;
/// with a workspace the whole sequence — Jacobi iteration, eigenvalue sort,
/// column permutation and `map_spectrum` products — runs without touching
/// the allocator once the buffers have reached steady-state size. The
/// kernel is shared with [`SymEigen::decompose`], so results are
/// bit-identical to the allocating API.
#[derive(Debug, Clone)]
pub struct EigenWorkspace {
    m: Matrix,
    /// Accumulated rotations as `Vᵀ`: row `k` is the `k`-th eigenvector.
    vt: Matrix,
    diag: Vec<f64>,
    order: Vec<usize>,
    values: Vec<f64>,
    vectors: Matrix,
    scaled: Matrix,
    rot: RotationSet,
}

/// Reusable buffers for one round of parallel-ordering Jacobi: the
/// tournament schedule plus the per-pair rotation parameters (computed
/// up front from one matrix snapshot, then applied phase by phase).
#[derive(Debug, Clone, Default)]
struct RotationSet {
    sched: Vec<usize>,
    p: Vec<usize>,
    q: Vec<usize>,
    c: Vec<f64>,
    s: Vec<f64>,
    dpp: Vec<f64>,
    dqq: Vec<f64>,
}

impl RotationSet {
    fn clear(&mut self) {
        self.p.clear();
        self.q.clear();
        self.c.clear();
        self.s.clear();
        self.dpp.clear();
        self.dqq.clear();
    }

    fn len(&self) -> usize {
        self.p.len()
    }
}

impl Default for EigenWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl EigenWorkspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        EigenWorkspace {
            m: Matrix::zeros(0, 0),
            vt: Matrix::zeros(0, 0),
            diag: Vec::new(),
            order: Vec::new(),
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
            scaled: Matrix::zeros(0, 0),
            rot: RotationSet::default(),
        }
    }

    /// Decompose a symmetric matrix into the workspace buffers.
    ///
    /// See [`SymEigen::decompose`] for the algorithm; the results are read
    /// back through [`EigenWorkspace::values`] / [`EigenWorkspace::vectors`].
    ///
    /// Under default features this always runs the serial cyclic kernel
    /// (bit-stable across every machine and thread count). With the
    /// `fast-math` feature, orders at or above
    /// `kernel::tiles::PAR_JACOBI_MIN` route to
    /// [`EigenWorkspace::decompose_parallel`] — still deterministic, but
    /// a different rotation ordering and therefore different bits.
    pub fn decompose(&mut self, a: &Matrix) -> Result<()> {
        #[cfg(feature = "fast-math")]
        if a.is_square() && a.nrows() >= PAR_JACOBI_MIN {
            return self.decompose_parallel(a);
        }
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        self.m.copy_from(a);
        self.m.symmetrize();
        self.vt.resize_identity(n);
        jacobi_iterate(&mut self.m, &mut self.vt);
        self.finish(n);
        Ok(())
    }

    /// Decompose with parallel-ordering Jacobi rotation sets.
    ///
    /// Always available regardless of features. Per sweep, a round-robin
    /// tournament visits every index pair exactly once in `n−1` rounds of
    /// disjoint pairs; each round computes all rotation angles from one
    /// snapshot, applies the row phase (pairs in parallel), the column
    /// phase (rows in parallel), the exact diagonal/zero fixups, and
    /// re-mirrors the upper triangle so the iteration stays exactly
    /// symmetric. Per-element op sequences are fixed, so the result is
    /// **bit-stable across thread counts** (including fully serial) —
    /// just not bit-identical to the serial cyclic ordering of
    /// [`EigenWorkspace::decompose`].
    pub fn decompose_parallel(&mut self, a: &Matrix) -> Result<()> {
        self.decompose_parallel_impl(a, false)
    }

    /// Test hook: run the parallel-ordering solve with the fork path forced
    /// on even when only one hardware thread is detected. Bit-identity of
    /// forced-on vs single-threaded runs is the cross-thread-count
    /// determinism proof the conformance suite relies on.
    #[doc(hidden)]
    pub fn decompose_parallel_forced(&mut self, a: &Matrix) -> Result<()> {
        self.decompose_parallel_impl(a, true)
    }

    fn decompose_parallel_impl(&mut self, a: &Matrix, force_par: bool) -> Result<()> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        self.m.copy_from(a);
        self.m.symmetrize();
        self.vt.resize_identity(n);
        jacobi_iterate_parallel(&mut self.m, &mut self.vt, &mut self.rot, force_par);
        self.finish(n);
        Ok(())
    }

    /// Shared post-iteration path: extract the diagonal, sort ascending,
    /// and scatter eigenvectors into columns.
    fn finish(&mut self, n: usize) {
        // Extract the diagonal and sort ascending. The insertion sort is
        // stable (like the `sort_by` it replaces) and allocation-free.
        self.diag.clear();
        self.diag.extend((0..n).map(|i| self.m[(i, i)]));
        self.order.clear();
        self.order.extend(0..n);
        for i in 1..n {
            let oi = self.order[i];
            let key = self.diag[oi];
            let mut j = i;
            while j > 0 && self.diag[self.order[j - 1]] > key {
                self.order[j] = self.order[j - 1];
                j -= 1;
            }
            self.order[j] = oi;
        }
        self.values.clear();
        self.values.extend(self.order.iter().map(|&i| self.diag[i]));
        self.vectors.resize(n, n);
        for (new_col, &old_row) in self.order.iter().enumerate() {
            // Eigenvector `old_row` is a contiguous row of `vt`; scatter it
            // into column `new_col` of the column-major-by-convention output.
            for (r, &x) in self.vt.row(old_row).iter().enumerate() {
                self.vectors[(r, new_col)] = x;
            }
        }
    }

    /// Eigenvalues of the last decomposition, ascending.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Eigenvectors of the last decomposition (columns, ordered like
    /// [`EigenWorkspace::values`]).
    #[inline]
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Smallest eigenvalue of the last decomposition.
    pub fn min_eigenvalue(&self) -> f64 {
        *self.values.first().expect("non-empty spectrum")
    }

    /// `V diag(f(λ)) Vᵀ` written into a caller-owned matrix.
    ///
    /// Same kernel as [`SymEigen::map_spectrum`] (bit-identical), but the
    /// scaled-eigenvector scratch and the output are reused buffers.
    pub fn map_spectrum_into(&mut self, f: impl Fn(f64) -> f64, out: &mut Matrix) -> Result<()> {
        let n = self.values.len();
        self.scaled.copy_from(&self.vectors);
        for j in 0..n {
            let fj = f(self.values[j]);
            for i in 0..n {
                self.scaled[(i, j)] *= fj;
            }
        }
        self.scaled.matmul_tr_into(&self.vectors, out)?;
        out.symmetrize();
        Ok(())
    }
}

/// Cyclic Jacobi sweeps on a symmetrized matrix `m`, accumulating the
/// rotations into the *rows* of `vt` (which must start as the identity).
/// On exit row `k` of `vt` is the eigenvector belonging to `m[(k, k)]`.
///
/// The row layout keeps every rotation a pair of contiguous-slice updates
/// (no strided column walks, no per-element bounds-checked 2-D indexing);
/// the arithmetic per element is unchanged from the textbook two-sided
/// update, so results are bit-identical to the column-accumulating form.
fn jacobi_iterate(m: &mut Matrix, vt: &mut Matrix) {
    let n = m.nrows();
    let max_sweeps = 30;
    for _ in 0..max_sweeps {
        let off: f64 = off_diagonal_norm(m);
        if off < 1e-14 * (1.0 + m.frobenius_norm()) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Stable rotation computation (Golub & Van Loan).
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                apply_rotation(m, p, q, c, s);
                rotate_rows(vt, p, q, c, s);
            }
        }
    }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.nrows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += m[(i, j)] * m[(i, j)];
        }
    }
    (2.0 * s).sqrt()
}

/// Two-sided Jacobi rotation on rows/columns `p < q`.
///
/// `m` stays exactly symmetric throughout the iteration, so the column
/// entries `m[(k, p)]` are read from the contiguous row `p` instead of
/// walking a stride-`n` column. The rotation runs branch-free over both
/// full rows (the `p`/`q` entries are overwritten by the 2×2 diagonal-block
/// update from values saved beforehand), then the rows are mirrored back
/// into their columns. Every element sees the same inputs and the same
/// expression as the classic per-element loop — bit-identical output.
fn apply_rotation(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.nrows();
    debug_assert!(p < q);
    let data = m.as_mut_slice();
    let (head, tail) = data.split_at_mut(q * n);
    let rp = &mut head[p * n..(p + 1) * n];
    let rq = &mut tail[..n];
    let app = rp[p];
    let aqq = rq[q];
    let apq = rp[q];
    for (xp, xq) in rp.iter_mut().zip(rq.iter_mut()) {
        let mkp = *xp;
        let mkq = *xq;
        *xp = c * mkp - s * mkq;
        *xq = s * mkp + c * mkq;
    }
    rp[p] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    rq[q] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    rp[q] = 0.0;
    rq[p] = 0.0;
    for k in 0..n {
        data[k * n + p] = data[p * n + k];
        data[k * n + q] = data[q * n + k];
    }
}

/// Rotate rows `p` and `q` of the accumulated `Vᵀ` (contiguous slices).
fn rotate_rows(vt: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = vt.ncols();
    let data = vt.as_mut_slice();
    let (head, tail) = data.split_at_mut(q * n);
    let rp = &mut head[p * n..(p + 1) * n];
    let rq = &mut tail[..n];
    for (xp, xq) in rp.iter_mut().zip(rq.iter_mut()) {
        let vkp = *xp;
        let vkq = *xq;
        *xp = c * vkp - s * vkq;
        *xq = s * vkp + c * vkq;
    }
}

/// Raw mutable matrix view crossing `rayon::join`; the recursion halves
/// always address disjoint rows (row phase: disjoint pairs; column phase:
/// disjoint row ranges).
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Minimum pairs (row phase) / rows (column phase) per task before the
/// recursion stops forking.
const PAR_JACOBI_GRAIN: usize = 16;

/// Parallel-ordering Jacobi sweeps: round-robin tournament rotation sets
/// applied as snapshot-parameter row/column phases. See
/// [`EigenWorkspace::decompose_parallel`] for the determinism argument.
fn jacobi_iterate_parallel(
    m: &mut Matrix,
    vt: &mut Matrix,
    rot: &mut RotationSet,
    force_par: bool,
) {
    let n = m.nrows();
    if n < 2 {
        return;
    }
    // Circle-method schedule; odd orders get a bye slot `players - 1 = n`.
    let players = if n.is_multiple_of(2) { n } else { n + 1 };
    rot.sched.clear();
    rot.sched.extend(0..players);
    let par = (force_par || rayon::current_num_threads() > 1) && n >= PAR_JACOBI_MIN;
    let max_sweeps = 30;
    for _ in 0..max_sweeps {
        let off: f64 = off_diagonal_norm(m);
        if off < 1e-14 * (1.0 + m.frobenius_norm()) {
            break;
        }
        for _round in 0..players - 1 {
            rot.clear();
            for i in 0..players / 2 {
                let x = rot.sched[i];
                let y = rot.sched[players - 1 - i];
                if x >= n || y >= n {
                    continue; // bye slot of an odd-order schedule
                }
                let (p, q) = if x < y { (x, y) } else { (y, x) };
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Stable rotation computation (Golub & Van Loan) — the same
                // expressions as the serial kernel. Disjoint rotations leave
                // each other's defining entries untouched, so snapshot
                // parameters equal on-the-fly parameters.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                rot.p.push(p);
                rot.q.push(q);
                rot.c.push(c);
                rot.s.push(s);
                rot.dpp.push(c * c * app - 2.0 * s * c * apq + s * s * aqq);
                rot.dqq.push(s * s * app + 2.0 * s * c * apq + c * c * aqq);
            }
            if rot.len() > 0 {
                apply_rotation_set(m, rot, par);
                // Vᵀ ← QᵀVᵀ: the same disjoint row-pair combination.
                row_phase(
                    SendPtr(vt.as_mut_slice().as_mut_ptr()),
                    n,
                    rot,
                    0,
                    rot.len(),
                    par,
                );
            }
            // Advance the tournament: slot 0 is fixed, slots 1.. rotate.
            let last = rot.sched[players - 1];
            for i in (2..players).rev() {
                rot.sched[i] = rot.sched[i - 1];
            }
            rot.sched[1] = last;
        }
    }
}

/// Apply one round of disjoint rotations `A ← QᵀAQ` in two phases, then
/// fix the rotated diagonals/zeros exactly and re-mirror the upper
/// triangle so the iterate stays exactly symmetric.
fn apply_rotation_set(m: &mut Matrix, rot: &RotationSet, par: bool) {
    let n = m.nrows();
    let data = SendPtr(m.as_mut_slice().as_mut_ptr());
    row_phase(data, n, rot, 0, rot.len(), par);
    col_phase(data, n, rot, 0, n, par);
    let d = m.as_mut_slice();
    for idx in 0..rot.len() {
        let (p, q) = (rot.p[idx], rot.q[idx]);
        // The 2×2 pivot block closed forms (identical expressions to the
        // serial kernel); the rotation annihilates (p, q) exactly.
        d[p * n + p] = rot.dpp[idx];
        d[q * n + q] = rot.dqq[idx];
        d[p * n + q] = 0.0;
        d[q * n + p] = 0.0;
    }
    for i in 0..n {
        for j in (i + 1)..n {
            d[j * n + i] = d[i * n + j];
        }
    }
}

/// Row phase `A ← QᵀA`: each pair combines its two full rows. Pairs are
/// disjoint, so the pair range can be split across threads freely.
fn row_phase(data: SendPtr, n: usize, rot: &RotationSet, lo: usize, hi: usize, par: bool) {
    if par && hi - lo > PAR_JACOBI_GRAIN {
        let mid = (lo + hi) / 2;
        rayon::join(
            || row_phase(data, n, rot, lo, mid, par),
            || row_phase(data, n, rot, mid, hi, par),
        );
        return;
    }
    for idx in lo..hi {
        let (p, q, c, s) = (rot.p[idx], rot.q[idx], rot.c[idx], rot.s[idx]);
        unsafe {
            let rp = data.0.add(p * n);
            let rq = data.0.add(q * n);
            for j in 0..n {
                let xp = *rp.add(j);
                let xq = *rq.add(j);
                *rp.add(j) = c * xp - s * xq;
                *rq.add(j) = s * xp + c * xq;
            }
        }
    }
}

/// Column phase `A ← AQ`: per row, each pair combines two entries. Rows
/// are independent, so the row range splits across threads freely.
fn col_phase(data: SendPtr, n: usize, rot: &RotationSet, lo: usize, hi: usize, par: bool) {
    if par && hi - lo > PAR_JACOBI_GRAIN {
        let mid = (lo + hi) / 2;
        rayon::join(
            || col_phase(data, n, rot, lo, mid, par),
            || col_phase(data, n, rot, mid, hi, par),
        );
        return;
    }
    for k in lo..hi {
        unsafe {
            let row = data.0.add(k * n);
            for idx in 0..rot.len() {
                let (p, q, c, s) = (rot.p[idx], rot.q[idx], rot.c[idx], rot.s[idx]);
                let xp = *row.add(p);
                let xq = *row.add(q);
                *row.add(p) = c * xp - s * xq;
                *row.add(q) = s * xp + c * xq;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GaussianSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let mut m = Matrix::from_fn(n, n, |_, _| gs.sample(&mut rng));
        m.symmetrize();
        m
    }

    #[test]
    fn diagonal_matrix_is_its_own_spectrum() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let e = SymEigen::decompose(&a).unwrap();
        assert_eq!(e.values.len(), 3);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        for seed in [1, 7, 23] {
            let a = random_symmetric(8, seed);
            let e = SymEigen::decompose(&a).unwrap();
            assert!(e.reconstruct().approx_eq(&a, 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_symmetric(10, 5);
        let e = SymEigen::decompose(&a).unwrap();
        let vtv = e.vectors.tr_matmul(&e.vectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(10), 1e-10));
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = SymEigen::decompose(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn map_spectrum_inverse() {
        // For SPD A, map_spectrum(1/λ) must equal A⁻¹.
        let m = random_symmetric(6, 9);
        let a = {
            let mut spd = m.matmul_tr(&m).unwrap();
            for i in 0..6 {
                spd[(i, i)] += 6.0;
            }
            spd
        };
        let e = SymEigen::decompose(&a).unwrap();
        let inv = e.map_spectrum(|l| 1.0 / l);
        let prod = inv.matmul(&a).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(6), 1e-8));
    }

    #[test]
    fn map_spectrum_square_root() {
        let m = random_symmetric(5, 11);
        let a = {
            let mut spd = m.matmul_tr(&m).unwrap();
            for i in 0..5 {
                spd[(i, i)] += 5.0;
            }
            spd
        };
        let e = SymEigen::decompose(&a).unwrap();
        let root = e.map_spectrum(f64::sqrt);
        let back = root.matmul(&root).unwrap();
        assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn rejects_non_square() {
        assert!(SymEigen::decompose(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn workspace_matches_symeigen_bitwise_across_reuse() {
        // One workspace reused across different sizes and seeds must produce
        // exactly what the allocating API produces.
        let mut ws = EigenWorkspace::new();
        let mut out = Matrix::zeros(0, 0);
        for (n, seed) in [(8usize, 1u64), (4, 7), (10, 23), (6, 9)] {
            let a = random_symmetric(n, seed);
            let e = SymEigen::decompose(&a).unwrap();
            ws.decompose(&a).unwrap();
            assert_eq!(ws.values(), &e.values[..]);
            assert_eq!(ws.vectors(), &e.vectors);
            assert_eq!(ws.min_eigenvalue(), e.min_eigenvalue());
            ws.map_spectrum_into(|l| 1.0 / (l * l + 1.0), &mut out)
                .unwrap();
            assert_eq!(out, e.map_spectrum(|l| 1.0 / (l * l + 1.0)));
        }
    }

    #[test]
    fn workspace_rejects_non_square() {
        assert!(EigenWorkspace::new()
            .decompose(&Matrix::zeros(2, 3))
            .is_err());
    }

    #[test]
    fn parallel_decompose_is_a_valid_eigendecomposition() {
        let mut ws = EigenWorkspace::new();
        for (n, seed) in [(2usize, 3u64), (7, 5), (20, 9), (53, 17)] {
            let a = random_symmetric(n, seed);
            ws.decompose_parallel(&a).unwrap();
            // Reconstruct V diag(λ) Vᵀ and check orthonormality.
            let v = ws.vectors().clone();
            let mut scaled = v.clone();
            for j in 0..n {
                for i in 0..n {
                    scaled[(i, j)] *= ws.values()[j];
                }
            }
            let recon = scaled.matmul_tr(&v).unwrap();
            assert!(recon.approx_eq(&a, 1e-9), "n={n} seed={seed} reconstruct");
            let vtv = v.tr_matmul(&v).unwrap();
            assert!(
                vtv.approx_eq(&Matrix::identity(n), 1e-10),
                "n={n} seed={seed} orthonormal"
            );
            // Ascending eigenvalue order.
            assert!(ws.values().windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn parallel_decompose_matches_serial_spectrum() {
        let mut serial = EigenWorkspace::new();
        let mut par = EigenWorkspace::new();
        for (n, seed) in [(6usize, 1u64), (21, 7), (48, 23)] {
            let a = random_symmetric(n, seed);
            serial.decompose(&a).unwrap();
            par.decompose_parallel(&a).unwrap();
            for (l_s, l_p) in serial.values().iter().zip(par.values()) {
                assert!(
                    (l_s - l_p).abs() <= 1e-9 * (1.0 + l_s.abs()),
                    "n={n} seed={seed}: {l_s} vs {l_p}"
                );
            }
        }
    }

    #[test]
    fn parallel_decompose_is_self_deterministic() {
        // Two runs (and two workspaces) must agree bitwise — the parallel
        // ordering is fixed, not scheduling-dependent.
        let a = random_symmetric(33, 41);
        let mut w1 = EigenWorkspace::new();
        let mut w2 = EigenWorkspace::new();
        w1.decompose_parallel(&a).unwrap();
        w2.decompose_parallel(&a).unwrap();
        assert_eq!(w1.values(), w2.values());
        assert_eq!(w1.vectors(), w2.vectors());
    }

    #[test]
    fn parallel_decompose_handles_degenerate_orders() {
        let mut ws = EigenWorkspace::new();
        ws.decompose_parallel(&Matrix::zeros(0, 0)).unwrap();
        assert!(ws.values().is_empty());
        ws.decompose_parallel(&Matrix::from_diag(&[4.0])).unwrap();
        assert_eq!(ws.values(), &[4.0]);
        assert!(ws.decompose_parallel(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = random_symmetric(7, 13);
        let e = SymEigen::decompose(&a).unwrap();
        let trace: f64 = (0..7).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }
}
