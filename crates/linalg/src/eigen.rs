//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The deterministic ensemble-space formulation of the EnKF (the LETKF of
//! Ott et al. 2004, which the paper's L-EnKF baselines build on) needs the
//! eigendecomposition of an `N × N` symmetric matrix in ensemble space —
//! `N` is the ensemble size, so a simple, robust Jacobi sweep is entirely
//! adequate and keeps the stack dependency-free.

use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as *columns* (`V`), ordered like `values`.
    pub vectors: Matrix,
}

impl SymEigen {
    /// Decompose a symmetric matrix with cyclic Jacobi rotations.
    ///
    /// Only the lower triangle is trusted; the matrix is symmetrized
    /// internally. Converges quadratically; `max_sweeps` bounds the work
    /// (15 sweeps are far more than small ensemble-space problems need).
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Matrix::identity(n);
        let max_sweeps = 30;
        for _ in 0..max_sweeps {
            let off: f64 = off_diagonal_norm(&m);
            if off < 1e-14 * (1.0 + m.frobenius_norm()) {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Stable rotation computation (Golub & Van Loan).
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    apply_rotation(&mut m, p, q, c, s);
                    rotate_columns(&mut v, p, q, c, s);
                }
            }
        }
        // Extract and sort ascending.
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("finite eigenvalues"));
        let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for r in 0..n {
                vectors[(r, new_col)] = v[(r, old_col)];
            }
        }
        Ok(SymEigen { values, vectors })
    }

    /// Reassemble `V diag(λ) Vᵀ` (diagnostics / tests).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut scaled = self.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                scaled[(i, j)] *= self.values[j];
            }
        }
        scaled.matmul_tr(&self.vectors).expect("square")
    }

    /// Apply `f` to the spectrum: `V diag(f(λ)) Vᵀ`. The workhorse for the
    /// ETKF's inverse and symmetric square root.
    pub fn map_spectrum(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let n = self.values.len();
        let mut scaled = self.vectors.clone();
        for j in 0..n {
            let fj = f(self.values[j]);
            for i in 0..n {
                scaled[(i, j)] *= fj;
            }
        }
        let mut out = scaled.matmul_tr(&self.vectors).expect("square");
        out.symmetrize();
        out
    }

    /// Smallest eigenvalue.
    pub fn min_eigenvalue(&self) -> f64 {
        *self.values.first().expect("non-empty spectrum")
    }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.nrows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += m[(i, j)] * m[(i, j)];
        }
    }
    (2.0 * s).sqrt()
}

/// Two-sided Jacobi rotation on rows/columns `p`, `q`.
fn apply_rotation(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.nrows();
    for k in 0..n {
        if k != p && k != q {
            let mkp = m[(k, p)];
            let mkq = m[(k, q)];
            m[(k, p)] = c * mkp - s * mkq;
            m[(p, k)] = m[(k, p)];
            m[(k, q)] = s * mkp + c * mkq;
            m[(q, k)] = m[(k, q)];
        }
    }
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let apq = m[(p, q)];
    m[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    m[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;
}

fn rotate_columns(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.nrows();
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GaussianSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs = GaussianSampler::new();
        let mut m = Matrix::from_fn(n, n, |_, _| gs.sample(&mut rng));
        m.symmetrize();
        m
    }

    #[test]
    fn diagonal_matrix_is_its_own_spectrum() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let e = SymEigen::decompose(&a).unwrap();
        assert_eq!(e.values.len(), 3);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        for seed in [1, 7, 23] {
            let a = random_symmetric(8, seed);
            let e = SymEigen::decompose(&a).unwrap();
            assert!(e.reconstruct().approx_eq(&a, 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_symmetric(10, 5);
        let e = SymEigen::decompose(&a).unwrap();
        let vtv = e.vectors.tr_matmul(&e.vectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(10), 1e-10));
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = SymEigen::decompose(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn map_spectrum_inverse() {
        // For SPD A, map_spectrum(1/λ) must equal A⁻¹.
        let m = random_symmetric(6, 9);
        let a = {
            let mut spd = m.matmul_tr(&m).unwrap();
            for i in 0..6 {
                spd[(i, i)] += 6.0;
            }
            spd
        };
        let e = SymEigen::decompose(&a).unwrap();
        let inv = e.map_spectrum(|l| 1.0 / l);
        let prod = inv.matmul(&a).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(6), 1e-8));
    }

    #[test]
    fn map_spectrum_square_root() {
        let m = random_symmetric(5, 11);
        let a = {
            let mut spd = m.matmul_tr(&m).unwrap();
            for i in 0..5 {
                spd[(i, i)] += 5.0;
            }
            spd
        };
        let e = SymEigen::decompose(&a).unwrap();
        let root = e.map_spectrum(f64::sqrt);
        let back = root.matmul(&root).unwrap();
        assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn rejects_non_square() {
        assert!(SymEigen::decompose(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = random_symmetric(7, 13);
        let e = SymEigen::decompose(&a).unwrap();
        let trace: f64 = (0..7).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }
}
