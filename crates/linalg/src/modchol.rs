//! Modified-Cholesky estimation of the inverse background-error covariance.
//!
//! P-EnKF (Nino-Ruiz, Sandu & Deng 2017/2018) replaces the rank-deficient
//! ensemble covariance `B = U Uᵀ / (N−1)` with a full-rank estimate of the
//! *inverse* covariance built via the modified Cholesky decomposition of
//! Bickel & Levina (2008):
//!
//! ```text
//! B̂⁻¹ = Lᵀ D⁻¹ L
//! ```
//!
//! where `L` is unit lower triangular and row `i` of `L` holds the negated
//! coefficients of the regression of component `i`'s anomalies on the
//! anomalies of its *predecessors* — components that come before `i` in the
//! grid ordering and lie within the localization radius. Components outside
//! the radius get a structural zero, which is how domain localization enters
//! the estimator and what makes `L` sparse.
//!
//! `D` is the diagonal of residual variances. Because every regression uses
//! at most the localization neighborhood as predictors, the estimator is
//! well defined even when `N ≪ n`, and `B̂⁻¹` is symmetric positive definite
//! by construction whenever all residual variances are positive.

use crate::{ridge_least_squares, LinalgError, Matrix, Result};

/// The factors of the modified Cholesky inverse-covariance estimate.
#[derive(Debug, Clone)]
pub struct ModifiedCholesky {
    /// Unit lower-triangular regression-coefficient factor.
    l: Matrix,
    /// Residual variances (diagonal of `D`).
    d: Vec<f64>,
}

impl ModifiedCholesky {
    /// Estimate the factors from an anomaly matrix.
    ///
    /// * `anomalies` — `n_local × N` matrix `U` of ensemble deviations from
    ///   the mean (Eq. 4); each *row* is one model component, each *column*
    ///   one member.
    /// * `predecessors(i)` — indices `j < i` allowed as predictors for
    ///   component `i` (the localization neighborhood intersected with
    ///   `0..i`). Indices `≥ i` are ignored.
    /// * `ridge` — Tikhonov term for the per-component regressions; a small
    ///   positive value (e.g. `1e-6 · tr(cov)/n`) keeps rank-deficient
    ///   neighborhoods solvable.
    pub fn estimate(
        anomalies: &Matrix,
        mut predecessors: impl FnMut(usize) -> Vec<usize>,
        ridge: f64,
    ) -> Result<Self> {
        let n = anomalies.nrows();
        let nens = anomalies.ncols();
        if nens < 2 {
            return Err(LinalgError::DimMismatch {
                op: "ModifiedCholesky::estimate (need at least 2 members)",
                lhs: anomalies.shape(),
                rhs: (n, 2),
            });
        }
        let denom = (nens - 1) as f64;
        let mut l = Matrix::identity(n);
        let mut d = vec![0.0; n];
        for i in 0..n {
            let preds: Vec<usize> = predecessors(i).into_iter().filter(|&j| j < i).collect();
            let yi = anomalies.row(i);
            if preds.is_empty() {
                d[i] = variance(yi, denom).max(ridge.max(f64::MIN_POSITIVE));
                continue;
            }
            // Design matrix: N samples × |preds| predictors.
            let x = Matrix::from_fn(nens, preds.len(), |s, p| anomalies[(preds[p], s)]);
            let beta = ridge_least_squares(&x, yi, ridge)?;
            // Residual variance for D[i].
            let mut ss = 0.0;
            for s in 0..nens {
                let mut fit = 0.0;
                for (p, &j) in preds.iter().enumerate() {
                    fit += beta[p] * anomalies[(j, s)];
                }
                let r = yi[s] - fit;
                ss += r * r;
            }
            d[i] = (ss / denom).max(ridge.max(f64::MIN_POSITIVE));
            for (p, &j) in preds.iter().enumerate() {
                l[(i, j)] = -beta[p];
            }
        }
        Ok(ModifiedCholesky { l, d })
    }

    /// The unit lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// The residual variances (diagonal of `D`).
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Dimension of the estimated covariance.
    pub fn dim(&self) -> usize {
        self.d.len()
    }

    /// Materialize `B̂⁻¹ = Lᵀ D⁻¹ L` as a dense symmetric matrix.
    ///
    /// `B̂⁻¹ = Gᵀ G` with `G = D^{−1/2} L`, and row `i` of `L` is zero
    /// outside `predecessors(i) ∪ {i}` by construction — so instead of a
    /// dense `n³` product, each row contributes a rank-1 update confined to
    /// its `O(|preds|²)` support. The per-term products and the ascending
    /// row-accumulation order match the dense zero-skipping product this
    /// replaces.
    pub fn inverse_covariance(&self) -> Matrix {
        let n = self.dim();
        let mut binv = Matrix::zeros(n, n);
        let mut idx: Vec<usize> = Vec::new();
        let mut val: Vec<f64> = Vec::new();
        for i in 0..n {
            let s = 1.0 / self.d[i].sqrt();
            let row = self.l.row(i);
            idx.clear();
            val.clear();
            for (j, &x) in row.iter().enumerate().take(i + 1) {
                if x != 0.0 {
                    idx.push(j);
                    val.push(x * s);
                }
            }
            for (a, &ja) in idx.iter().enumerate() {
                let fa = val[a];
                for (b, &jb) in idx.iter().enumerate() {
                    binv[(ja, jb)] += fa * val[b];
                }
            }
        }
        binv.symmetrize();
        binv
    }

    /// Apply `B̂⁻¹ x` without materializing the dense matrix:
    /// `y = Lᵀ (D⁻¹ (L x))`.
    pub fn apply_inverse(&self, x: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::DimMismatch {
                op: "ModifiedCholesky::apply_inverse",
                lhs: (n, n),
                rhs: (x.len(), 1),
            });
        }
        // t = L x  (unit lower triangular, dense row scan).
        let mut t = vec![0.0; n];
        for i in 0..n {
            let row = self.l.row(i);
            let mut sum = x[i];
            for (j, &lij) in row.iter().enumerate().take(i) {
                sum += lij * x[j];
            }
            t[i] = sum;
        }
        for (ti, &di) in t.iter_mut().zip(&self.d) {
            *ti /= di;
        }
        // y = Lᵀ t.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let row = self.l.row(i);
            y[i] += t[i];
            for (j, &lij) in row.iter().enumerate().take(i) {
                y[j] += lij * t[i];
            }
        }
        Ok(y)
    }
}

/// Convenience wrapper: estimate and immediately materialize `B̂⁻¹`.
pub fn modified_cholesky_inverse(
    anomalies: &Matrix,
    predecessors: impl FnMut(usize) -> Vec<usize>,
    ridge: f64,
) -> Result<Matrix> {
    Ok(ModifiedCholesky::estimate(anomalies, predecessors, ridge)?.inverse_covariance())
}

fn variance(row: &[f64], denom: f64) -> f64 {
    row.iter().map(|&v| v * v).sum::<f64>() / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::GaussianSampler;
    use crate::Cholesky;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn band_predecessors(width: usize) -> impl FnMut(usize) -> Vec<usize> {
        move |i| (i.saturating_sub(width)..i).collect()
    }

    #[test]
    fn unit_lower_triangular_structure() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut gs = GaussianSampler::new();
        let u = Matrix::from_fn(6, 12, |_, _| gs.sample(&mut rng));
        let mc = ModifiedCholesky::estimate(&u, band_predecessors(2), 1e-8).unwrap();
        for i in 0..6 {
            assert_eq!(mc.l()[(i, i)], 1.0);
            for j in (i + 1)..6 {
                assert_eq!(mc.l()[(i, j)], 0.0, "upper triangle must be zero");
            }
            for j in 0..i.saturating_sub(2) {
                assert_eq!(
                    mc.l()[(i, j)],
                    0.0,
                    "outside band must be structurally zero"
                );
            }
        }
        assert!(mc.d().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn inverse_covariance_is_spd() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut gs = GaussianSampler::new();
        let u = Matrix::from_fn(10, 8, |_, _| gs.sample(&mut rng));
        let binv = modified_cholesky_inverse(&u, band_predecessors(3), 1e-6).unwrap();
        assert!(Cholesky::factor(&binv).is_ok(), "B̂⁻¹ must be SPD");
    }

    #[test]
    fn apply_inverse_matches_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gs = GaussianSampler::new();
        let u = Matrix::from_fn(7, 9, |_, _| gs.sample(&mut rng));
        let mc = ModifiedCholesky::estimate(&u, band_predecessors(3), 1e-6).unwrap();
        let dense = mc.inverse_covariance();
        let x: Vec<f64> = (0..7).map(|i| (i as f64 * 0.7).cos()).collect();
        let fast = mc.apply_inverse(&x).unwrap();
        let slow = dense.matvec(&x).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn diagonal_truth_recovered_for_independent_components() {
        // Anomalies of independent unit-variance components: B ≈ I, so
        // B̂⁻¹ should approach I as N grows.
        let mut rng = StdRng::seed_from_u64(99);
        let mut gs = GaussianSampler::new();
        let n = 5;
        let nens = 4000;
        let mut u = Matrix::from_fn(n, nens, |_, _| gs.sample(&mut rng));
        let means = u.row_means();
        u.subtract_row_vector(&means);
        let binv = modified_cholesky_inverse(&u, band_predecessors(2), 1e-8).unwrap();
        for i in 0..n {
            assert!(
                (binv[(i, i)] - 1.0).abs() < 0.15,
                "diag {} = {}",
                i,
                binv[(i, i)]
            );
            for j in 0..i {
                assert!(
                    binv[(i, j)].abs() < 0.15,
                    "offdiag ({i},{j}) = {}",
                    binv[(i, j)]
                );
            }
        }
    }

    #[test]
    fn correlated_pair_yields_negative_offdiagonal_precision() {
        // Two strongly positively correlated components have a negative
        // off-diagonal in the precision matrix.
        let mut rng = StdRng::seed_from_u64(21);
        let mut gs = GaussianSampler::new();
        let nens = 2000;
        let mut u = Matrix::zeros(2, nens);
        for s in 0..nens {
            let z = gs.sample(&mut rng);
            let e = gs.sample(&mut rng) * 0.3;
            u[(0, s)] = z;
            u[(1, s)] = 0.9 * z + e;
        }
        let means = u.row_means();
        u.subtract_row_vector(&means);
        let binv = modified_cholesky_inverse(&u, band_predecessors(1), 1e-8).unwrap();
        assert!(
            binv[(1, 0)] < -1.0,
            "expected strong negative precision, got {}",
            binv[(1, 0)]
        );
    }

    #[test]
    fn rejects_single_member() {
        let u = Matrix::zeros(4, 1);
        assert!(ModifiedCholesky::estimate(&u, band_predecessors(1), 1e-8).is_err());
    }
}
