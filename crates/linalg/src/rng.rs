//! Gaussian sampling on top of the `rand` uniform generators.
//!
//! Perturbed observations `Yˢ` have distribution `N(0, R)` (Eq. 3) and the
//! synthetic ensembles are built from Gaussian fields. `rand` alone ships
//! only uniform distributions, so the normal variates are produced here with
//! the Box–Muller transform (exact, allocation-free, and plenty fast for the
//! volumes the experiments need).

use rand::Rng;

/// A Box–Muller standard-normal sampler.
///
/// Each transform yields two variates; the spare is cached so consecutive
/// calls consume uniforms at the optimal rate. The sampler carries no RNG
/// state of its own — pass any `rand::Rng` to `sample`.
#[derive(Debug, Default, Clone)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Create a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw one standard-normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 in (0, 1] to keep ln finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draw a `N(mean, std²)` variate.
    pub fn sample_with<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std: f64) -> f64 {
        mean + std * self.sample(rng)
    }

    /// Fill a buffer with standard-normal variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for v in out {
            *v = self.sample(rng);
        }
    }

    /// Collect `n` standard-normal variates into a fresh vector.
    pub fn vec<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        self.fill(rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut gs = GaussianSampler::new();
        let n = 200_000;
        let xs = gs.vec(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn tails_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gs = GaussianSampler::new();
        let n = 100_000;
        let beyond2: usize = (0..n).filter(|_| gs.sample(&mut rng).abs() > 2.0).count();
        let frac = beyond2 as f64 / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!(
            (frac - 0.0455).abs() < 0.006,
            "two-sigma tail fraction {frac}"
        );
    }

    #[test]
    fn sample_with_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut gs = GaussianSampler::new();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| gs.sample_with(&mut rng, 3.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 3.0).abs() < 0.01);
        assert!((var - 0.25).abs() < 0.01);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = GaussianSampler::new().vec(&mut StdRng::seed_from_u64(9), 16);
        let b = GaussianSampler::new().vec(&mut StdRng::seed_from_u64(9), 16);
        assert_eq!(a, b);
    }
}
