//! The kernel layer: the compute floor of `enkf-linalg`.
//!
//! Everything above this module (matrix products, the Gram eigensolve,
//! the LETKF transform, the PFS byte codecs) bottoms out in a small set
//! of kernels that this module owns:
//!
//! - [`gemm`] — cache-oblivious divide-and-conquer drivers for the three
//!   product families (`A·B`, `Aᵀ·B`, `A·Bᵀ`) plus the unrolled
//!   matrix-vector product, dispatching to register-tiled microkernels.
//! - [`simd`] (via re-exports) — runtime ISA detection and the AVX2/FMA
//!   microkernel bodies with scalar fallbacks.
//! - [`convert`] — bulk little-endian ↔ `f64` codecs shared with
//!   `enkf-pfs`.
//! - [`tiles`] — every tiling/dispatch constant, with the cache
//!   reasoning attached.
//! - [`reference`] — the pre-kernel-layer blocked loops, frozen as the
//!   bit-identity oracle and roofline baseline.
//!
//! # Determinism contract
//!
//! Default-feature kernels are **bit-identical** to the legacy
//! implementations, element for element, across ISA tiers and thread
//! counts (see [`gemm`] for the pinned accumulation orders). The
//! `fast-math` cargo feature opts into FMA-fused and reassociated
//! variants whose (still deterministic) outputs are pinned by their own
//! digest suite in `tests/kernel_conformance.rs`.

pub mod convert;
pub mod gemm;
pub mod reference;
mod simd;
pub mod tiles;

pub use simd::{active_isa, fma_active, Isa};
