//! The pre-kernel-layer blocked GEMM loops, kept verbatim.
//!
//! These are the exact serial kernels that `matrix.rs` shipped before the
//! cache-oblivious layer existed. They serve two purposes:
//!
//! 1. **Bit-identity oracle** — the proptests in `tests/proptests.rs` and
//!    the conformance suite assert that the new recursive + SIMD kernels
//!    reproduce these byte-for-byte under default features.
//! 2. **Roofline baseline** — the `roofline` bench bin reports GFLOP/s for
//!    both layers so `BENCH_PR7.json` can show the speedup against the
//!    real previous implementation rather than a strawman.
//!
//! Do not "improve" this module; its value is that it never changes.

use super::tiles::LEGACY_BLOCK;

/// Legacy blocked GEMM: `out[0..m] += a * b` with `a` `m×k`, `b` `k×n`.
///
/// Accumulation per output element ascends the shared index `l` and skips
/// exact-zero left operands — the order the default kernel layer pins.
pub fn nn(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    gemm_block(a, b, out, 0, m, k, n);
}

/// Legacy blocked transpose-GEMM: `out += aᵀ b` with `a` `k×m`, `b` `k×n`.
pub fn tn(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    tr_gemm_block(a, b, out, 0, m, k, n, m);
}

/// Legacy blocked NT-GEMM: `out += a bᵀ` with `a` `m×k`, `b` `n×k`.
///
/// Each output element accumulates `LEGACY_BLOCK`-wide partial dot
/// products in ascending chunk order; the default NT kernel reproduces the
/// same grouping via [`super::tiles::NT_KC`].
pub fn nt(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    nt_gemm_block(a, b, out, 0, m, k, n);
}

/// Legacy matrix-vector product: one ascending fold per row.
pub fn matvec(a: &[f64], x: &[f64], out: &mut Vec<f64>, m: usize, k: usize) {
    out.clear();
    out.extend((0..m).map(|i| {
        a[i * k..(i + 1) * k]
            .iter()
            .zip(x)
            .map(|(&a, &b)| a * b)
            .sum::<f64>()
    }));
}

fn gemm_block(a: &[f64], b: &[f64], out: &mut [f64], i0: usize, rows: usize, k: usize, n: usize) {
    for jj in (0..n).step_by(LEGACY_BLOCK) {
        let jhi = (jj + LEGACY_BLOCK).min(n);
        for ll in (0..k).step_by(LEGACY_BLOCK) {
            let lhi = (ll + LEGACY_BLOCK).min(k);
            for i in 0..rows {
                let arow = &a[(i0 + i) * k..(i0 + i) * k + k];
                let orow = &mut out[i * n + jj..i * n + jhi];
                for l in ll..lhi {
                    let av = arow[l];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[l * n + jj..l * n + jhi];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn tr_gemm_block(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    m: usize,
) {
    for jj in (0..n).step_by(LEGACY_BLOCK) {
        let jhi = (jj + LEGACY_BLOCK).min(n);
        for ll in (0..k).step_by(LEGACY_BLOCK) {
            let lhi = (ll + LEGACY_BLOCK).min(k);
            for l in ll..lhi {
                let arow = &a[l * m..(l + 1) * m];
                let brow = &b[l * n + jj..l * n + jhi];
                for i in 0..rows {
                    let av = arow[i0 + i];
                    let orow = &mut out[i * n + jj..i * n + jhi];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

fn nt_gemm_block(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    for ll in (0..k).step_by(LEGACY_BLOCK) {
        let lhi = (ll + LEGACY_BLOCK).min(k);
        for i in 0..rows {
            let arow = &a[(i0 + i) * k + ll..(i0 + i) * k + lhi];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &b[j * k + ll..j * k + lhi];
                *o += arow.iter().zip(brow).map(|(&a, &b)| a * b).sum::<f64>();
            }
        }
    }
}
