//! The single source of truth for every tiling constant in the kernel
//! layer.
//!
//! Before the kernel layer each blocked product in `matrix.rs` carried its
//! own hard-coded block edge; they happened to agree (64) but nothing
//! enforced it, and the parallel-dispatch heuristics were duplicated per
//! product. Everything tunable now lives here, with the cache-level
//! reasoning attached, so GEMM / trᵀ-GEMM / NT-GEMM cannot drift apart
//! again.
//!
//! # Cache reasoning
//!
//! The working set of the cache-oblivious recursion's base case is one
//! `BASE_M × BASE_N` panel of `C` (held hot across the full `k` sweep),
//! one `BASE_M × k` panel of `A` and one `k × BASE_N` panel of `B`
//! streaming through. At `BASE_M = BASE_N = 128` the `C` panel is
//! `128 · 128 · 8 B = 128 KiB` — it exceeds a typical 32–48 KiB L1d but
//! sits comfortably in a 512 KiB–1 MiB L2, and the *register* tile
//! (`MR × NR`, see below) is what actually bounces in and out of L1. The
//! divide-and-conquer above the base case keeps halving the larger of
//! `m`/`n`, so every recursion level reuses whatever cache level its panel
//! happens to fit in — the cache-oblivious property: no level-specific
//! tuning, near-optimal reuse at every level of the hierarchy.
//!
//! The register tile is `MR × NR = 4 × 8` doubles: 8 columns are two
//! 4-lane AVX2 vectors (or four SSE2 vectors under the scalar fallback's
//! auto-vectorization), times 4 rows = 8 accumulator registers, leaving
//! the rest of the 16 architectural vector registers for the broadcast
//! `A` value and the streamed `B` row. Larger tiles spill; smaller tiles
//! leave the FMA/ALU ports idle waiting on the per-element dependency
//! chain (`vaddpd` latency ≈ 4 cycles needs ≥ 8 independent chains to
//! saturate two ports).

/// Base-case edge for the cache-oblivious recursion: subproblems with
/// `m ≤ BASE_M` and `n ≤ BASE_N` are handed to the register-tiled
/// microkernel. 128 keeps the hot `C` panel (≤ 128 KiB) within L2 while
/// the recursion above provides the L3/L2 blocking for free.
pub const BASE_M: usize = 128;
/// See [`BASE_M`].
pub const BASE_N: usize = 128;

/// Register-tile rows: independent accumulator chains per column vector.
pub const MR: usize = 4;
/// Register-tile columns: two 4-lane AVX2 `f64` vectors.
pub const NR: usize = 8;

/// Contraction-dimension chunk of the NT (`A·Bᵀ`) kernel's partial sums.
///
/// **Pinned for bit-compatibility** — the pre-kernel-layer NT product
/// accumulated each output element as a sequence of 64-wide partial dot
/// products (`out += Σ_{l∈chunk} a·b` per chunk, chunks ascending), and
/// the default deterministic kernel must reproduce those exact bit
/// patterns. 64 doubles = 512 B per operand row chunk, comfortably L1
/// resident; do not retune without a digest migration.
pub const NT_KC: usize = 64;

/// Register-tile columns of the NT kernel: 4 independent `B` rows per `A`
/// row gives `MR × NT_NR = 16` scalar accumulator chains — enough to hide
/// the ~4-cycle add latency that made the old one-chain-per-element NT
/// loop latency-bound.
pub const NT_NR: usize = 4;

/// Row-group size of the unrolled `matvec` kernel: 4 independent
/// per-row dot-product chains (each still folded in ascending index
/// order, so per-row results are bit-identical to a single chain).
pub const MATVEC_MR: usize = 4;

/// Minimum flops (`2·m·n·k`) before the recursion forks a `rayon::join`.
/// Below this the spawn overhead of the vendored shim's scoped thread
/// outweighs the parallelism; above it the two halves write disjoint `C`
/// regions and accumulation order per element is unchanged, so thread
/// count never affects bits.
pub const PAR_FLOPS: usize = 1 << 23;

/// Legacy block edge of the pre-kernel-layer blocked loops, kept for the
/// verbatim reference implementations in [`crate::kernel::reference`].
pub const LEGACY_BLOCK: usize = 64;

/// Matrix order at or above which `fast-math` builds route
/// `EigenWorkspace::decompose` to the parallel rotation-set Jacobi solve.
/// Below it the serial cyclic sweep wins (rotation-set scheduling overhead
/// exceeds the work), and pointwise-LETKF Gram matrices (`m̄ ≈` a local
/// box's observation count) stay on the bit-pinned serial path.
pub const PAR_JACOBI_MIN: usize = 48;
