//! Cache-oblivious GEMM drivers and the scalar register-tiled microkernels.
//!
//! # Structure
//!
//! Each product family (`nn` = `A·B`, `tn` = `Aᵀ·B`, `nt` = `A·Bᵀ`) is a
//! divide-and-conquer driver that recursively halves the **larger of the
//! two output dimensions** until the subproblem fits the
//! [`tiles::BASE_M`]`×`[`tiles::BASE_N`] base case, which dispatches to a
//! register-tiled microkernel (AVX2 when detected, scalar otherwise). The
//! recursion never splits the contraction dimension `k` in the default
//! path — a `k`-split would change each output element's accumulation
//! order and therefore its bits.
//!
//! # Determinism contract
//!
//! Per output element, the default kernels reproduce the legacy blocked
//! loops ([`super::reference`]) bit-for-bit:
//!
//! - **nn**: ascend the shared index `l`, skipping terms whose left
//!   operand is exactly `0.0` (one branch per `(row, l)` pair).
//! - **tn**: ascend `l`, no skip.
//! - **nt**: accumulate [`tiles::NT_KC`]-wide partial dot products, each
//!   folded from `0.0` in ascending `l`, added to the output in ascending
//!   chunk order.
//!
//! Splitting only `m`/`n` hands every recursion leaf a **disjoint** region
//! of `C`, so `rayon::join` parallelism (taken when the subproblem carries
//! at least [`tiles::PAR_FLOPS`] flops and more than one worker exists)
//! cannot reorder any element's accumulation: results are bit-identical
//! across thread counts, including fully serial.
//!
//! The `fast-math` feature swaps in FMA microkernels (and, for `nt`,
//! vectorized dot products) on hardware that has them — different, better
//! bits, pinned by `tests/kernel_conformance.rs` digests instead.

// Pointer + stride kernels necessarily carry many scalar parameters.
#![allow(clippy::too_many_arguments)]
use super::simd::{active_isa, Isa};
use super::tiles::{BASE_M, BASE_N, MATVEC_MR, MR, NR, NT_KC, NT_NR, PAR_FLOPS};

/// Raw mutable view of `C` that may cross a `rayon::join`. Safe because
/// the two recursion halves address disjoint row/column ranges.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[inline]
fn fork(par: bool, m: usize, n: usize, k: usize, par_flops: usize) -> bool {
    par && 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k) >= par_flops
}

/// `c += a·b` with `a` `m×k`, `b` `k×n`, `c` `m×n` (all row-major,
/// contiguous). Callers wanting `c = a·b` zero `c` first (`Matrix::resize`
/// does). Allocation-free; deterministic per the module contract.
pub fn nn(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    nn_tuned(
        a,
        b,
        c,
        m,
        k,
        n,
        rayon::current_num_threads() > 1,
        PAR_FLOPS,
    )
}

/// [`nn`] with explicit parallel-dispatch knobs (tests force or forbid
/// the `join` path with a tiny/huge `par_flops`).
#[doc(hidden)]
pub fn nn_tuned(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    par: bool,
    par_flops: usize,
) {
    assert_eq!(a.len(), m * k, "nn: lhs buffer size");
    assert_eq!(b.len(), k * n, "nn: rhs buffer size");
    assert_eq!(c.len(), m * n, "nn: out buffer size");
    if m == 0 || n == 0 {
        return;
    }
    // b and c share the full output width n as their row stride.
    nn_rec(
        a,
        b,
        SendPtr(c.as_mut_ptr()),
        n,
        0,
        m,
        0,
        n,
        k,
        active_isa(),
        par,
        par_flops,
    );
}

#[allow(clippy::too_many_arguments)]
fn nn_rec(
    a: &[f64],
    b: &[f64],
    c: SendPtr,
    ld: usize,
    i0: usize,
    m: usize,
    j0: usize,
    n: usize,
    k: usize,
    isa: Isa,
    par: bool,
    par_flops: usize,
) {
    if m <= BASE_M && n <= BASE_N {
        unsafe {
            let ap = a.as_ptr().add(i0 * k);
            let bp = b.as_ptr().add(j0);
            let cp = c.0.add(i0 * ld + j0);
            dispatch_nn(isa, ap, k, bp, ld, cp, ld, m, n, k);
        }
        return;
    }
    if m >= n {
        let mh = m / 2;
        let lo = move || nn_rec(a, b, c, ld, i0, mh, j0, n, k, isa, par, par_flops);
        let hi = move || nn_rec(a, b, c, ld, i0 + mh, m - mh, j0, n, k, isa, par, par_flops);
        if fork(par, m, n, k, par_flops) {
            rayon::join(lo, hi);
        } else {
            lo();
            hi();
        }
    } else {
        let nh = n / 2;
        let lo = move || nn_rec(a, b, c, ld, i0, m, j0, nh, k, isa, par, par_flops);
        let hi = move || nn_rec(a, b, c, ld, i0, m, j0 + nh, n - nh, k, isa, par, par_flops);
        if fork(par, m, n, k, par_flops) {
            rayon::join(lo, hi);
        } else {
            lo();
            hi();
        }
    }
}

#[allow(clippy::too_many_arguments)]
unsafe fn dispatch_nn(
    isa: Isa,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    #[cfg(all(target_arch = "x86_64", feature = "simd"))]
    match isa {
        Isa::Avx2Fma if cfg!(feature = "fast-math") => {
            return super::simd::nn_block_fma(a, lda, b, ldb, c, ldc, m, n, k);
        }
        Isa::Avx2 | Isa::Avx2Fma => {
            return super::simd::nn_block_avx2(a, lda, b, ldb, c, ldc, m, n, k);
        }
        Isa::Scalar => {}
    }
    let _ = isa;
    nn_block_scalar(a, lda, b, ldb, c, ldc, m, n, k);
}

/// `c += aᵀ·b` with `a` `k×m` (its columns are the logical left rows),
/// `b` `k×n`, `c` `m×n`.
pub fn tn(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    tn_tuned(
        a,
        b,
        c,
        m,
        k,
        n,
        rayon::current_num_threads() > 1,
        PAR_FLOPS,
    )
}

/// [`tn`] with explicit parallel-dispatch knobs.
#[doc(hidden)]
pub fn tn_tuned(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    par: bool,
    par_flops: usize,
) {
    assert_eq!(a.len(), k * m, "tn: lhs buffer size");
    assert_eq!(b.len(), k * n, "tn: rhs buffer size");
    assert_eq!(c.len(), m * n, "tn: out buffer size");
    if m == 0 || n == 0 {
        return;
    }
    tn_rec(
        a,
        b,
        SendPtr(c.as_mut_ptr()),
        m,
        n,
        0,
        m,
        0,
        n,
        k,
        active_isa(),
        par,
        par_flops,
    );
}

#[allow(clippy::too_many_arguments)]
fn tn_rec(
    a: &[f64],
    b: &[f64],
    c: SendPtr,
    m_full: usize,
    ld: usize,
    i0: usize,
    m: usize,
    j0: usize,
    n: usize,
    k: usize,
    isa: Isa,
    par: bool,
    par_flops: usize,
) {
    if m <= BASE_M && n <= BASE_N {
        unsafe {
            let ap = a.as_ptr().add(i0);
            let bp = b.as_ptr().add(j0);
            let cp = c.0.add(i0 * ld + j0);
            dispatch_tn(isa, ap, m_full, bp, ld, cp, ld, m, n, k);
        }
        return;
    }
    if m >= n {
        let mh = m / 2;
        let lo = move || tn_rec(a, b, c, m_full, ld, i0, mh, j0, n, k, isa, par, par_flops);
        let hi = move || {
            tn_rec(
                a,
                b,
                c,
                m_full,
                ld,
                i0 + mh,
                m - mh,
                j0,
                n,
                k,
                isa,
                par,
                par_flops,
            )
        };
        if fork(par, m, n, k, par_flops) {
            rayon::join(lo, hi);
        } else {
            lo();
            hi();
        }
    } else {
        let nh = n / 2;
        let lo = move || tn_rec(a, b, c, m_full, ld, i0, m, j0, nh, k, isa, par, par_flops);
        let hi = move || {
            tn_rec(
                a,
                b,
                c,
                m_full,
                ld,
                i0,
                m,
                j0 + nh,
                n - nh,
                k,
                isa,
                par,
                par_flops,
            )
        };
        if fork(par, m, n, k, par_flops) {
            rayon::join(lo, hi);
        } else {
            lo();
            hi();
        }
    }
}

#[allow(clippy::too_many_arguments)]
unsafe fn dispatch_tn(
    isa: Isa,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    #[cfg(all(target_arch = "x86_64", feature = "simd"))]
    match isa {
        Isa::Avx2Fma if cfg!(feature = "fast-math") => {
            return super::simd::tn_block_fma(a, lda, b, ldb, c, ldc, m, n, k);
        }
        Isa::Avx2 | Isa::Avx2Fma => {
            return super::simd::tn_block_avx2(a, lda, b, ldb, c, ldc, m, n, k);
        }
        Isa::Scalar => {}
    }
    let _ = isa;
    tn_block_scalar(a, lda, b, ldb, c, ldc, m, n, k);
}

/// `c += a·bᵀ` with `a` `m×k`, `b` `n×k`, `c` `m×n`.
pub fn nt(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    nt_tuned(
        a,
        b,
        c,
        m,
        k,
        n,
        rayon::current_num_threads() > 1,
        PAR_FLOPS,
    )
}

/// [`nt`] with explicit parallel-dispatch knobs.
#[doc(hidden)]
pub fn nt_tuned(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    par: bool,
    par_flops: usize,
) {
    assert_eq!(a.len(), m * k, "nt: lhs buffer size");
    assert_eq!(b.len(), n * k, "nt: rhs buffer size");
    assert_eq!(c.len(), m * n, "nt: out buffer size");
    if m == 0 || n == 0 {
        return;
    }
    let ldc = n;
    nt_rec(
        a,
        b,
        SendPtr(c.as_mut_ptr()),
        ldc,
        0,
        m,
        0,
        n,
        k,
        active_isa(),
        par,
        par_flops,
    );
}

#[allow(clippy::too_many_arguments)]
fn nt_rec(
    a: &[f64],
    b: &[f64],
    c: SendPtr,
    ldc: usize,
    i0: usize,
    m: usize,
    j0: usize,
    n: usize,
    k: usize,
    isa: Isa,
    par: bool,
    par_flops: usize,
) {
    if m <= BASE_M && n <= BASE_N {
        unsafe {
            let ap = a.as_ptr().add(i0 * k);
            let bp = b.as_ptr().add(j0 * k);
            let cp = c.0.add(i0 * ldc + j0);
            dispatch_nt(isa, ap, k, bp, k, cp, ldc, m, n, k);
        }
        return;
    }
    if m >= n {
        let mh = m / 2;
        let lo = move || nt_rec(a, b, c, ldc, i0, mh, j0, n, k, isa, par, par_flops);
        let hi = move || nt_rec(a, b, c, ldc, i0 + mh, m - mh, j0, n, k, isa, par, par_flops);
        if fork(par, m, n, k, par_flops) {
            rayon::join(lo, hi);
        } else {
            lo();
            hi();
        }
    } else {
        let nh = n / 2;
        let lo = move || nt_rec(a, b, c, ldc, i0, m, j0, nh, k, isa, par, par_flops);
        let hi = move || nt_rec(a, b, c, ldc, i0, m, j0 + nh, n - nh, k, isa, par, par_flops);
        if fork(par, m, n, k, par_flops) {
            rayon::join(lo, hi);
        } else {
            lo();
            hi();
        }
    }
}

#[allow(clippy::too_many_arguments)]
unsafe fn dispatch_nt(
    isa: Isa,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    #[cfg(all(target_arch = "x86_64", feature = "simd"))]
    if cfg!(feature = "fast-math") && isa == Isa::Avx2Fma {
        return super::simd::nt_block_fma(a, lda, b, ldb, c, ldc, m, n, k);
    }
    let _ = isa;
    nt_block_scalar(a, lda, b, ldb, c, ldc, m, n, k);
}

/// Matrix-vector product `out = a·x` (`a` `m×k`), unrolled into
/// [`MATVEC_MR`] independent per-row accumulation chains. Each row is
/// still a single ascending fold seeded with `-0.0` — the identity
/// `Iterator::sum::<f64>` uses, which the legacy per-row `.sum()` loop
/// (and therefore the pinned bit pattern, signed zeros included) relied
/// on. `out` is cleared and refilled; allocation-free at steady state.
pub fn matvec(a: &[f64], x: &[f64], out: &mut Vec<f64>, m: usize, k: usize) {
    assert_eq!(a.len(), m * k, "matvec: matrix buffer size");
    assert_eq!(x.len(), k, "matvec: vector length");
    out.clear();
    out.reserve(m);
    let m_main = m - m % MATVEC_MR;
    let mut i = 0;
    while i < m_main {
        let mut acc = [-0.0_f64; MATVEC_MR];
        for (l, &xl) in x.iter().enumerate() {
            for (r, accr) in acc.iter_mut().enumerate() {
                *accr += a[(i + r) * k + l] * xl;
            }
        }
        out.extend_from_slice(&acc);
        i += MATVEC_MR;
    }
    for i in m_main..m {
        out.push(
            a[i * k..(i + 1) * k]
                .iter()
                .zip(x)
                .map(|(&a, &b)| a * b)
                .sum::<f64>(),
        );
    }
}

// ---------------------------------------------------------------------------
// Scalar microkernels (dispatch targets and SIMD edge handlers)
// ---------------------------------------------------------------------------

/// Scalar NN base-case kernel: [`MR`]`×`[`NR`] register tiles with the
/// same per-element order as the AVX2 body (ascending `l`, zero-skip).
///
/// # Safety
/// Pointers must cover `m×k` (`a`, stride `lda`), `k×n` (`b`, stride
/// `ldb`) and `m×n` (`c`, stride `ldc`); `c` disjoint from `a`/`b`.
pub(crate) unsafe fn nn_block_scalar(
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    let m_main = m - m % MR;
    let n_main = n - n % NR;
    let mut i = 0;
    while i < m_main {
        let mut j = 0;
        while j < n_main {
            let mut acc = [[0.0_f64; NR]; MR];
            for (r, row) in acc.iter_mut().enumerate() {
                for (x, v) in row.iter_mut().enumerate() {
                    *v = *c.add((i + r) * ldc + j + x);
                }
            }
            for l in 0..k {
                let bl = b.add(l * ldb + j);
                for (r, row) in acc.iter_mut().enumerate() {
                    let av = *a.add((i + r) * lda + l);
                    if av == 0.0 {
                        continue;
                    }
                    for (x, v) in row.iter_mut().enumerate() {
                        *v += av * *bl.add(x);
                    }
                }
            }
            for (r, row) in acc.iter().enumerate() {
                for (x, v) in row.iter().enumerate() {
                    *c.add((i + r) * ldc + j + x) = *v;
                }
            }
            j += NR;
        }
        if j < n {
            nn_tile_scalar(a, lda, b, ldb, c, ldc, i, j, MR, n - j, k);
        }
        i += MR;
    }
    if i < m {
        nn_tile_scalar(a, lda, b, ldb, c, ldc, i, 0, m - i, n, k);
    }
}

/// Generic-bounds NN edge tile: direct `c` updates, ascending `l` with
/// zero-skip — bit-identical per element to the register-tiled path.
///
/// # Safety
/// As [`nn_block_scalar`], with the tile `(i..i+mr) × (j..j+nr)` in range.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn nn_tile_scalar(
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    i: usize,
    j: usize,
    mr: usize,
    nr: usize,
    k: usize,
) {
    for l in 0..k {
        let bl = b.add(l * ldb + j);
        for r in 0..mr {
            let av = *a.add((i + r) * lda + l);
            if av == 0.0 {
                continue;
            }
            let crow = c.add((i + r) * ldc + j);
            for x in 0..nr {
                *crow.add(x) += av * *bl.add(x);
            }
        }
    }
}

/// Scalar TN base-case kernel: as [`nn_block_scalar`] but the left value
/// comes from `a[l*lda + i + r]` and there is no zero-skip (matching the
/// legacy transpose kernel).
///
/// # Safety
/// `a` covers `k×(lda ≥ i+m)`; `b`, `c` as in [`nn_block_scalar`].
pub(crate) unsafe fn tn_block_scalar(
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    let m_main = m - m % MR;
    let n_main = n - n % NR;
    let mut i = 0;
    while i < m_main {
        let mut j = 0;
        while j < n_main {
            let mut acc = [[0.0_f64; NR]; MR];
            for (r, row) in acc.iter_mut().enumerate() {
                for (x, v) in row.iter_mut().enumerate() {
                    *v = *c.add((i + r) * ldc + j + x);
                }
            }
            for l in 0..k {
                let al = a.add(l * lda + i);
                let bl = b.add(l * ldb + j);
                for (r, row) in acc.iter_mut().enumerate() {
                    let av = *al.add(r);
                    for (x, v) in row.iter_mut().enumerate() {
                        *v += av * *bl.add(x);
                    }
                }
            }
            for (r, row) in acc.iter().enumerate() {
                for (x, v) in row.iter().enumerate() {
                    *c.add((i + r) * ldc + j + x) = *v;
                }
            }
            j += NR;
        }
        if j < n {
            tn_tile_scalar(a, lda, b, ldb, c, ldc, i, j, MR, n - j, k);
        }
        i += MR;
    }
    if i < m {
        tn_tile_scalar(a, lda, b, ldb, c, ldc, i, 0, m - i, n, k);
    }
}

/// Generic-bounds TN edge tile (no zero-skip).
///
/// # Safety
/// As [`tn_block_scalar`], with the tile in range.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn tn_tile_scalar(
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    i: usize,
    j: usize,
    mr: usize,
    nr: usize,
    k: usize,
) {
    for l in 0..k {
        let al = a.add(l * lda + i);
        let bl = b.add(l * ldb + j);
        for r in 0..mr {
            let av = *al.add(r);
            let crow = c.add((i + r) * ldc + j);
            for x in 0..nr {
                *crow.add(x) += av * *bl.add(x);
            }
        }
    }
}

/// Deterministic NT base-case kernel: [`NT_KC`]-chunked partial dot
/// products (legacy grouping) over [`MR`]`×`[`NT_NR`] tiles of
/// independent accumulator chains.
///
/// # Safety
/// `a` covers `m×k` stride `lda`, `b` covers `n×k` stride `ldb`, `c`
/// covers `m×n` stride `ldc`; `c` disjoint from `a`/`b`.
pub(crate) unsafe fn nt_block_scalar(
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    let m_main = m - m % MR;
    let n_main = n - n % NT_NR;
    let mut ll = 0;
    while ll < k {
        let lhi = (ll + NT_KC).min(k);
        let mut i = 0;
        while i < m_main {
            let mut j = 0;
            while j < n_main {
                let mut part = [[0.0_f64; NT_NR]; MR];
                for l in ll..lhi {
                    let mut bx = [0.0_f64; NT_NR];
                    for (x, v) in bx.iter_mut().enumerate() {
                        *v = *b.add((j + x) * ldb + l);
                    }
                    for (r, row) in part.iter_mut().enumerate() {
                        let ar = *a.add((i + r) * lda + l);
                        for (x, v) in row.iter_mut().enumerate() {
                            *v += ar * bx[x];
                        }
                    }
                }
                for (r, row) in part.iter().enumerate() {
                    for (x, v) in row.iter().enumerate() {
                        *c.add((i + r) * ldc + j + x) += *v;
                    }
                }
                j += NT_NR;
            }
            if j < n {
                nt_tile_chunk(a, lda, b, ldb, c, ldc, i, j, MR, n - j, ll, lhi);
            }
            i += MR;
        }
        if i < m {
            nt_tile_chunk(a, lda, b, ldb, c, ldc, i, 0, m - i, n, ll, lhi);
        }
        ll += NT_KC;
    }
}

/// Generic-bounds NT edge tile for one contraction chunk `[ll, lhi)` —
/// same partial-sum grouping as the full tile.
///
/// # Safety
/// As [`nt_block_scalar`], with the tile in range and `lhi ≤ k`.
#[allow(clippy::too_many_arguments)]
unsafe fn nt_tile_chunk(
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    i: usize,
    j: usize,
    mr: usize,
    nr: usize,
    ll: usize,
    lhi: usize,
) {
    for r in 0..mr {
        let arow = a.add((i + r) * lda);
        let crow = c.add((i + r) * ldc + j);
        for x in 0..nr {
            let brow = b.add((j + x) * ldb);
            let mut part = 0.0_f64;
            for l in ll..lhi {
                part += *arow.add(l) * *brow.add(l);
            }
            *crow.add(x) += part;
        }
    }
}
